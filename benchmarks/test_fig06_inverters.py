"""Figure 6(d): diode-load vs biased-load vs pseudo-E DC parameters."""

from repro.analysis.calibration import paper_value
from repro.analysis.figures import fig6_inverter_comparison
from repro.analysis.tables import format_table

from .conftest import run_once


def test_fig6_inverter_comparison(benchmark):
    result = run_once(benchmark, fig6_inverter_comparison)

    p_vm = paper_value("fig6_vm")
    p_gain = paper_value("fig6_gain")
    p_pl = paper_value("fig6_power_low")

    rows = []
    for label, a, pv, pg, pp in zip(
            ("diode-load", "biased-load", "pseudo-E"),
            (result.diode, result.biased, result.pseudo_e),
            p_vm, p_gain, p_pl):
        rows.append([label, f"{a.vm:.1f} / {pv}",
                     f"{a.max_gain:.2f} / {pg}",
                     f"{a.nm_mec:.2f}",
                     f"{a.voh:.2f}", f"{a.vol:.3f}",
                     f"{a.static_power_low * 1e6:.0f} / {pp:.0f}",
                     f"{a.static_power_high * 1e6:.2f}"])
    table = format_table(
        ["style", "VM (ours/paper)", "gain (ours/paper)", "NM-MEC (V)",
         "VOH", "VOL", "P@VIN=0 uW (ours/paper)", "P@VIN=hi uW"],
        rows, title="Figure 6d — inverter style comparison at VDD = 15 V")
    print("\n" + table)
    benchmark.extra_info["table"] = table

    g = result.gains()
    assert g[0] < g[1] < g[2]
    assert result.pseudo_e.voh > 14.5
    assert result.pseudo_e.nm_mec > 10 * max(result.diode.nm_mec, 0.05)
