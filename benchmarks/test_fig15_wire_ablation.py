"""Figure 15: frequency vs stages with and without wire delay."""

from repro.analysis.figures import fig15_wire_ablation
from repro.analysis.tables import format_table

from .conftest import run_once


def test_fig15_wire_ablation(benchmark):
    result = run_once(benchmark, fig15_wire_ablation)

    rows = [[n] + [f"{result.alu[s][i]:.2f}" for s in result.SERIES]
            for i, n in enumerate(result.alu_stage_counts)]
    alu_table = format_table(["stages", *result.SERIES], rows,
                             title="Figure 15a — ALU frequency ratio vs "
                                   "stages (with / without wire)")
    print("\n" + alu_table)

    rows = [[d] + [f"{result.core[s][i]:.2f}" for s in result.SERIES]
            for i, d in enumerate(result.core_depths)]
    core_table = format_table(["depth", *result.SERIES], rows,
                              title="Figure 15b — core frequency ratio vs "
                                    "depth (with / without wire)")
    print("\n" + core_table)
    benchmark.extra_info["alu"] = alu_table
    benchmark.extra_info["core"] = core_table

    # Paper's Section 5.5 claims:
    # 1. Without wire cost, silicon's scaling matches the organic one.
    for a, b in zip(result.core["silicon_no_wire"], result.core["organic"]):
        assert abs(a - b) / b < 0.15
    # 2. With wires, silicon saturates early; organic does not care.
    assert result.core["silicon_no_wire"][-1] > 1.4 * result.core["silicon"][-1]
    for a, b in zip(result.core["organic"], result.core["organic_no_wire"]):
        assert abs(a - b) / b < 0.05
    # 3. At 14 stages: organic ~2x baseline, silicon ~1.5x (paper text).
    idx14 = result.core_depths.index(14)
    assert result.core["organic"][idx14] > 1.7
    assert result.core["silicon"][idx14] < 1.8
