"""Figure 13: normalised core performance across the width grid."""

from repro.analysis.figures import fig13_width_performance
from repro.analysis.tables import format_matrix

from .conftest import run_once


def test_fig13_width_performance(benchmark):
    result = run_once(
        benchmark, lambda: fig13_width_performance(n_instructions=15_000))

    for process, matrix, paper in (
            ("silicon", result.silicon, result.paper_silicon),
            ("organic", result.organic, result.paper_organic)):
        print("\n" + format_matrix(
            matrix, title=f"Figure 13 — {process} normalised performance "
                          f"(rows: back-end pipes 3-7, cols: front 1-6)"))
        paper_m = {(bw + 3, fw + 1): paper[bw][fw]
                   for bw in range(5) for fw in range(6)}
        print(format_matrix(paper_m, title=f"  paper ({process}):"))
        benchmark.extra_info[process] = format_matrix(matrix)

    sil_opt = result.optimum("silicon")
    org_opt = result.optimum("organic")
    summary = (f"optima (back,front): silicon {sil_opt} (paper (4,2)), "
               f"organic {org_opt} (paper (7,2))")
    print("\n" + summary)
    benchmark.extra_info["summary"] = summary

    assert sil_opt[0] == 4
    assert org_opt[0] >= sil_opt[0] + 2
    # Organic is the flatter matrix (less width-sensitive).
    spread = lambda m: max(m.values()) - min(m.values())  # noqa: E731
    assert spread(result.organic) < spread(result.silicon)
