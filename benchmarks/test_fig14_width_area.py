"""Figure 14: normalised core area across the width grid."""

from repro.analysis.figures import fig14_width_area
from repro.analysis.tables import format_matrix

from .conftest import run_once


def test_fig14_width_area(benchmark):
    result = run_once(benchmark, fig14_width_area)

    for process, matrix in (("silicon", result.silicon),
                            ("organic", result.organic)):
        text = format_matrix(
            matrix, title=f"Figure 14 — {process} normalised area "
                          f"(rows: back-end pipes 3-7, cols: front 1-6)")
        print("\n" + text)
        benchmark.extra_info[process] = text

    diff = result.max_process_difference()
    print(f"\nmax |organic - silicon| across the grid: {diff:.3f} "
          f"(paper: 'the areas for silicon-based cores are similar to the "
          f"organic core areas')")
    benchmark.extra_info["max_difference"] = diff

    assert diff < 0.06
    # Area grows monotonically along both axes.
    for bw in range(3, 8):
        for fw in range(1, 6):
            assert result.silicon[(bw, fw + 1)] > result.silicon[(bw, fw)]
    for fw in range(1, 7):
        for bw in range(3, 7):
            assert result.silicon[(bw + 1, fw)] > result.silicon[(bw, fw)]
