"""Figure 7(d): pseudo-E inverter across VDD = 5/10/15 V."""

from repro.analysis.calibration import paper_value
from repro.analysis.figures import fig7_vdd_scaling
from repro.analysis.tables import format_table

from .conftest import run_once


def test_fig7_vdd_scaling(benchmark):
    result = run_once(benchmark, fig7_vdd_scaling)

    p_vm = dict(zip((5.0, 10.0, 15.0), paper_value("fig7_vm")))
    p_gain = dict(zip((5.0, 10.0, 15.0), paper_value("fig7_gain")))
    p_pl = dict(zip((5.0, 10.0, 15.0), paper_value("fig7_power_low")))

    rows = []
    for vdd, a in sorted(result.analyses.items()):
        rows.append([f"{vdd:.0f}", f"{result.vss_used[vdd]:.0f}",
                     f"{a.vm:.2f} / {p_vm[vdd]}",
                     f"{a.max_gain:.2f} / {p_gain[vdd]}",
                     f"{a.nm_mec:.2f}",
                     f"{a.static_power_low * 1e6:.1f} / {p_pl[vdd]:.0f}",
                     f"{a.static_power_high * 1e6:.3f}"])
    table = format_table(
        ["VDD", "VSS", "VM (ours/paper)", "gain (ours/paper)", "NM-MEC",
         "P@VIN=0 uW (ours/paper)", "P@VIN=VDD uW"],
        rows, title="Figure 7d — pseudo-E inverter versus supply voltage")
    print("\n" + table)
    benchmark.extra_info["table"] = table

    a5, a15 = result.analyses[5.0], result.analyses[15.0]
    # Paper: low VDD slashes worst-case static power.
    assert a5.static_power_low < 0.4 * a15.static_power_low
    # VM tracks VDD; noise margin stays a healthy fraction of VDD.
    assert a5.vm < result.analyses[10.0].vm < a15.vm
    for vdd, a in result.analyses.items():
        assert a.nm_mec / vdd > 0.10
