"""Figure 3: pentacene ID-VGS transfer characteristics.

Regenerates the synthetic probe-station sweep and extracts the four DC
figures of merit the paper annotates on the plot.
"""

from repro.analysis.figures import fig3_transfer_characteristics
from repro.analysis.tables import format_table

from .conftest import run_once


def test_fig3_transfer_characteristics(benchmark):
    result = run_once(benchmark, fig3_transfer_characteristics)

    rows = [
        ["linear mobility (cm^2/Vs)", f"{result.report_vds1.mobility_cm2:.3f}",
         result.paper_mobility],
        ["subthreshold slope (mV/dec)",
         f"{result.report_vds1.subthreshold_slope_mv_dec:.0f}",
         result.paper_ss],
        ["on/off ratio", f"{result.report_vds1.on_off_ratio:.2e}",
         f"{result.paper_on_off:.0e}"],
        ["VT @ VDS=-1V (V)", f"{result.report_vds1.threshold_v:.2f}",
         result.paper_vt1],
        ["VT @ VDS=-10V (V)", f"{result.report_vds10.threshold_v:.2f}",
         result.paper_vt10],
    ]
    table = format_table(["quantity", "measured", "paper"], rows,
                         title="Figure 3 — pentacene OTFT DC extraction")
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # Shape assertions (the reproduction contract).
    assert abs(result.report_vds1.mobility_cm2 - 0.16) < 0.04
    assert abs(result.report_vds1.subthreshold_slope_mv_dec - 350) < 40
    assert result.report_vds1.threshold_v < 0 < result.report_vds10.threshold_v
