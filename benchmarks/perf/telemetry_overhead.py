"""Assert that telemetry instrumentation keeps the hot paths free.

The telemetry sites in the solver/characterisation layers follow the
one-branch guard pattern: when ``telemetry.ENABLED`` is False each site
costs one module-attribute load plus a branch, and even when enabled the
sites sit at aggregation boundaries (per solve, per batch) rather than
inside inner loops.  This microbench enforces that claim end to end:

it characterises one cell (or, with ``--bench library``, the full
organic library) repeatedly with collection *disabled* and *enabled* in
interleaved pairs — alternating which mode goes first, so slow clock /
thermal drift cannot systematically favour one side — compares the
**medians** of each mode, and fails (exit 1) if the enabled median is
more than ``--max-overhead`` (default 2%) above the disabled one.
Since the disabled path does strictly less work per site than the
enabled path, the disabled-telemetry overhead relative to
uninstrumented code is bounded by the same margin a fortiori.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.telemetry_overhead
    PYTHONPATH=src python -m benchmarks.perf.telemetry_overhead \
        --bench library --repeats 2 --max-overhead 0.02
"""

from __future__ import annotations

import argparse
import os
import statistics
import time

from repro.runtime import telemetry


def _cell_workload():
    from repro.cells.library_def import organic_library_definition
    from repro.characterization import harness

    defn = organic_library_definition()
    grid = harness.default_grid(defn)
    cell = defn.cells["nand2"]

    def run() -> None:
        harness.characterize_cell(cell, grid, area=1.0, workers=None)

    return run


def _library_workload():
    from repro.cells.library_def import organic_library_definition
    from repro.characterization.harness import characterize_library

    defn = organic_library_definition()

    def run() -> None:
        characterize_library(defn, use_cache=False, workers=None)

    return run


def _dse_workload():
    """A one-combo slice of the batched DSE grid, warm structure caches.

    The sweep engine's telemetry sites (span merging, per-batch solver
    counters, the new native-kernel counter flushes) sit on a different
    hot path than cell characterisation, so the overhead budget is
    enforced there too.  The grid is trimmed (one combo, two widths,
    two width pairs) to keep a repeat pair in seconds, and the result
    cache is pinned cold per run so both modes do identical work.
    """
    import tempfile

    from repro.analysis.dse import default_combos, dse_sweep
    from repro.core.physical import reset_structure_caches
    from repro.core.tradeoffs import make_traces

    combos = default_combos()[:1]
    traces = make_traces(workloads=["gzip"], n_instructions=4_000)

    def run() -> None:
        saved = os.environ.get("REPRO_CACHE_DIR")
        with tempfile.TemporaryDirectory(
                prefix="repro-overhead-cache-") as tmp:
            os.environ["REPRO_CACHE_DIR"] = tmp
            try:
                reset_structure_caches()
                dse_sweep(combos=combos, widths=(8, 32),
                          width_pairs=((1, 3), (2, 4)), traces=traces,
                          workers=None)
            finally:
                if saved is None:
                    os.environ.pop("REPRO_CACHE_DIR", None)
                else:
                    os.environ["REPRO_CACHE_DIR"] = saved

    return run


WORKLOADS = {"cell": _cell_workload, "library": _library_workload,
             "dse": _dse_workload}


def _timed(run, enabled: bool) -> float:
    telemetry.reset()
    telemetry.enable(enabled)
    try:
        t0 = time.perf_counter()
        run()
        return time.perf_counter() - t0
    finally:
        telemetry.enable(False)
        telemetry.reset()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", choices=sorted(WORKLOADS), default="cell",
                        help="workload to time (default: one-cell NLDM "
                             "characterisation)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="disabled/enabled pairs to run (default 5; "
                             "the medians of each mode are compared)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="maximum allowed fractional slowdown of the "
                             "telemetry-enabled run (default 0.02)")
    args = parser.parse_args(argv)

    # REPRO_TELEMETRY=0 would silently force the enabled runs off and
    # make the comparison vacuous; the bench owns the knob here.
    if telemetry.force_disabled_by_env():
        print("[telemetry-overhead] ignoring REPRO_TELEMETRY=0 for the "
              "duration of the bench")
        os.environ.pop("REPRO_TELEMETRY", None)

    run = WORKLOADS[args.bench]()
    run()                                   # warm-up: imports, first-call numpy

    disabled: list[float] = []
    enabled: list[float] = []
    for i in range(args.repeats):
        # Alternate which mode runs first so clock/thermal drift over the
        # bench's lifetime cannot systematically favour one side.
        first_on = bool(i % 2)
        a = _timed(run, enabled=first_on)
        b = _timed(run, enabled=not first_on)
        on, off = (a, b) if first_on else (b, a)
        disabled.append(off)
        enabled.append(on)
        print(f"[telemetry-overhead] pair {i + 1}/{args.repeats}: "
              f"disabled {off:.3f}s, enabled {on:.3f}s", flush=True)

    mid_off = statistics.median(disabled)
    mid_on = statistics.median(enabled)
    overhead = mid_on / mid_off - 1.0
    print(f"[telemetry-overhead] {args.bench}: disabled median "
          f"{mid_off:.3f}s, enabled median {mid_on:.3f}s, overhead "
          f"{overhead:+.2%} (limit {args.max_overhead:.0%})")
    if overhead > args.max_overhead:
        print("[telemetry-overhead] FAIL: enabled telemetry exceeds the "
              "overhead budget")
        return 1
    print("[telemetry-overhead] OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
