"""Performance microbenchmarks for the simulation engine (not figures)."""
