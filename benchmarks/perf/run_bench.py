"""Engine performance microbenchmarks.

Times the workloads the optimisation PRs target, compares them against
the recorded pre-optimisation baselines, and writes the results to
``BENCH_perf.json``:

1. ``single_transient`` — one characterisation-arc transient (nand2),
2. ``cell_characterization`` — the full slew x load NLDM grid of one cell,
3. ``library_characterization`` — all six organic cells (the paper's
   library build; the end-to-end ``>= 3x`` target applies here),
4. ``ipc_simulate`` — the trace-driven IPC kernel alone: all seven
   workloads at full sweep trace length on the baseline core,
5. ``depth_sweep`` — the Figure 11 pipeline-depth sweep on one process,
   run twice: against a cold result cache (everything computed) and a
   warm one (every simulation and block timing replayed from disk,
   reported as ``depth_sweep_warm_cache``),
6. ``width_sweep`` — the 30-point Figure 13/14 width grid, cold cache,
7. ``dse_sweep`` — the 1008-point batched design-space grid (4
   library/wire combos x 7 data widths x 4 width pairs x depths 9-17)
   from :mod:`repro.analysis.dse`, cold cache — the row the
   shared-structure synthesis engine and incremental STA
   (``REPRO_INCREMENTAL_STA``) own; seeded from the pre-incremental
   path's time of the identical grid,
8. ``ensemble_newton`` — the solver-backend microbench: 200 fixed-dt
   ensemble Newton timesteps on a 16-member inverter batch, isolating
   the ``REPRO_BACKEND`` dispatch effect from step control and probing
   (seed baseline recorded under the ``numpy`` reference backend),
9. ``native_timestep`` — 25 complete 16-member ensemble transient
   sweeps (predictor, RHS, Newton, LTE step control, probing): the
   region the whole-timestep native kernel owns, seeded from the
   numpy-backend time of the identical call so the kernel is gated by
   ``--check`` from day one.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.run_bench           # everything
    PYTHONPATH=src python -m benchmarks.perf.run_bench --quick   # skip library
    PYTHONPATH=src python -m benchmarks.perf.run_bench --only depth_sweep
    PYTHONPATH=src python -m benchmarks.perf.run_bench --workers 4
    PYTHONPATH=src python -m benchmarks.perf.run_bench --profile
    PYTHONPATH=src python -m benchmarks.perf.run_bench \
        --check BENCH_perf.json --tolerance 0.25     # CI regression gate

``--profile`` reports a per-stage breakdown (stamp / device-eval /
solve / rhs / probe / step-control / predict / retry / cache /
telemetry / residual overhead) from :mod:`repro.runtime.profiling`
next to each timing and embeds it in the JSON artifact.  The stage counters are
process-aware: worker processes ship their telemetry snapshots back
through ``parallel_map`` and the parent merges them in task order, so
the breakdown is complete (and deterministic) with ``--workers`` too.

``--report PATH`` additionally collects full telemetry for the whole
benchmark run and writes a :mod:`repro.runtime.report` JSON document
(span tree, solver/cache metrics, environment fingerprint) there — the
artifact CI uploads per run.  ``--trace [PATH]`` exports the same
telemetry as a Chrome Trace Event JSON (load it in Perfetto or
``chrome://tracing``); without an explicit PATH it lands next to the
report (or next to ``--out``).

``--check`` re-runs the benchmarks and compares them against a
previously recorded ``BENCH_perf.json``: any benchmark slower than the
recorded time by more than ``--tolerance`` (fraction, default 0.25)
fails the run with exit status 1.  Rows whose recorded entry is missing
or has ``seed_seconds: null`` (benchmarks newer than the baseline) are
not gated, and the gate is skipped entirely — exit 0 with a warning —
when the recorded environment fingerprint (machine, python, cpu count)
does not match the current box, since cross-machine wall-clock
comparisons are meaningless.

Baselines were measured on the same single-core box the optimised
numbers come from: the characterisation rows at the seed commit
(a5dc719), ``depth_sweep`` at the PR-1 commit (0bbc774, which recorded
1.8854 s for the identical call — same 10k-instruction traces, one
worker — before the packed-array kernels and the result cache existed).
The sweep benches pin ``REPRO_CACHE_DIR`` to a private temporary
directory, so a developer's warm cache can never fake a cold number.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.runtime import log as repro_log, profiling, telemetry
from repro.runtime import report as run_report

#: Wall-clock seconds before each optimisation landed (see module
#: docstring for which commit each row was measured at).
SEED_BASELINES = {
    "single_transient": 0.0856,
    "cell_characterization": 7.29,
    "library_characterization": 67.73,
    "ipc_simulate": None,                 # new in PR 2
    "depth_sweep": 1.8854,                # PR-1 time of the identical call
    "depth_sweep_warm_cache": 1.8854,     # vs the same uncached PR-1 run
    "width_sweep": 0.2364,                # PR-7 time, pre-incremental STA
    "dse_sweep": 10.7409,                 # PR-7 path on the same 1008-pt
                                          # grid (serial per-point loop,
                                          # full re-time everywhere)
    "ensemble_newton": 0.082,             # numpy reference backend (PR 6)
    "native_timestep": 2.55,              # numpy backend, PR-6 sweep loop
}

#: Trace length for the sweep benches — matches the PR-1 measurement the
#: ``depth_sweep`` baseline was recorded with.
SWEEP_TRACE_LENGTH = 10_000


def _bench_single_transient() -> float:
    from repro.cells.library_def import organic_library_definition
    from repro.characterization import harness

    defn = organic_library_definition()
    grid = harness.default_grid(defn)
    cell = defn.cells["nand2"]
    # Warm-up (module import, first-call numpy costs), then measure.
    harness.measure_arc(cell, "a", True, grid.slews[0], grid.loads[0])
    profiling.reset()
    t0 = time.perf_counter()
    harness.measure_arc(cell, "a", True, grid.slews[0], grid.loads[0])
    return time.perf_counter() - t0


def _bench_cell_characterization(workers: int | None) -> float:
    from repro.cells.library_def import organic_library_definition
    from repro.characterization import harness

    defn = organic_library_definition()
    grid = harness.default_grid(defn)
    cell = defn.cells["nand2"]
    profiling.reset()
    t0 = time.perf_counter()
    harness.characterize_cell(cell, grid, area=1.0, workers=workers)
    return time.perf_counter() - t0


def _bench_library_characterization(workers: int | None) -> float:
    from repro.cells.library_def import organic_library_definition
    from repro.characterization.harness import characterize_library

    profiling.reset()
    t0 = time.perf_counter()
    characterize_library(organic_library_definition(), use_cache=False,
                         workers=workers)
    return time.perf_counter() - t0


def _bench_ensemble_newton() -> float:
    """Raw stacked-Newton throughput through the active solver backend.

    Marches 200 fixed-step backward-Euler solves of a 16-member
    inverter ensemble straight through
    :meth:`~repro.spice.ensemble.EnsembleSystem.newton_batch` — no step
    control, no probing, no harness — so the row isolates exactly what
    the backend dispatch layer (``REPRO_BACKEND``) changes.
    """
    import numpy as np

    from repro.cells.topologies import diode_load_inverter
    from repro.devices.pentacene import pentacene_model
    from repro.spice import (Capacitor, Circuit, EnsembleSystem,
                             NewtonOptions, RampValue, VoltageSource)

    vdd = 15.0
    members = []
    for k in range(16):
        model = pentacene_model(vt_shift=0.05 * (k % 5))
        cell = diode_load_inverter(model, w_drive=100e-6, w_load=30e-6,
                                   vdd=vdd)
        ckt = Circuit(f"bench_tb{k}")
        ckt.add(VoltageSource("v_vdd", "vdd", "0", vdd))
        ckt.add(VoltageSource("v_a", "a", "0",
                              RampValue(0.0, vdd, 4e-5, 2e-4)))
        cell.instantiate(ckt, {"a": "a", "out": "out", "vdd": "vdd",
                               "vss": "0"})
        ckt.add(Capacitor("c_load", "out", "0", 1e-12))
        members.append(ckt)
    es = EnsembleSystem(members)
    opts = NewtonOptions()
    x, _ok = es.solve_dc(options=opts)

    mem = np.arange(es.B)
    dt = 2e-6
    inv_dt = np.full(es.B, 1.0 / dt)
    t = np.full(es.B, dt)

    def step(x, t):
        b = es.rhs_batch(mem, t)
        x_new, _conv = es.newton_batch(mem, None, b, x.copy(), opts,
                                       inv_dt=inv_dt, x_prev=x,
                                       add_storage=True)
        return x_new, t + dt

    # Warm-up pays kernel compile / gather memoisation, then measure.
    step(x, t)
    profiling.reset()
    t0 = time.perf_counter()
    for _ in range(200):
        x, t = step(x, t)
    return time.perf_counter() - t0


def _bench_native_timestep() -> float:
    """The whole transient sweep loop through the active solver backend.

    Where ``ensemble_newton`` isolates the stacked Newton inner loop,
    this row times complete :meth:`~repro.spice.ensemble.
    EnsembleTransient.run` sweeps — predictor, RHS assembly, Newton,
    LTE step control and probe crossing extraction — on a 16-member
    inverter ensemble with spread slews and loads, which is exactly the
    region the whole-timestep native kernel
    (``SolverBackend.ensemble_timestep``) takes over.  Seeded from the
    numpy-backend time of the identical call at the PR-6 commit, so the
    kernel is regression-gated from day one.
    """
    from repro.cells.topologies import diode_load_inverter
    from repro.devices.pentacene import pentacene_model
    from repro.spice import (Capacitor, Circuit, RampValue, VoltageSource)
    from repro.spice.ensemble import EnsembleTransient, Probe
    from repro.spice.transient import TransientOptions

    vdd = 15.0
    members, opts = [], []
    for k in range(16):
        model = pentacene_model(vt_shift=0.05 * (k % 5))
        cell = diode_load_inverter(model, w_drive=100e-6, w_load=30e-6,
                                   vdd=vdd)
        slew = 1e-4 * (1.0 + 0.5 * (k % 4))
        ckt = Circuit(f"ts_tb{k}")
        ckt.add(VoltageSource("v_vdd", "vdd", "0", vdd))
        ckt.add(VoltageSource("v_a", "a", "0",
                              RampValue(0.0, vdd, 4e-5, slew)))
        cell.instantiate(ckt, {"a": "a", "out": "out", "vdd": "vdd",
                               "vss": "0"})
        ckt.add(Capacitor("c_load", "out", "0", 1e-12 * (1 + k % 3)))
        members.append(ckt)
        dt = min(2e-3 / 400.0, slew / 8.0)
        opts.append(TransientOptions(dt=dt, t_stop=2e-3, dt_max=16.0 * dt,
                                     lte_tol=5e-4 * vdd))
    probes = [Probe("a", 0.5 * vdd), Probe("out", 0.5 * vdd)]

    # Warm-up pays kernel compile / gather memoisation, then measure.
    # 25 sweeps keep the row ~100ms: long enough that scheduler noise
    # stays well inside the --check tolerance.
    EnsembleTransient(members, opts, probes).run()
    profiling.reset()
    t0 = time.perf_counter()
    for _ in range(25):
        EnsembleTransient(members, opts, probes).run()
    return time.perf_counter() - t0


def _warm_ipc_kernel() -> None:
    """Pay one-time compile/build costs outside the timed region.

    The fast IPC kernel compiles its C backend the first time it runs on
    a machine (cached under ``~/.cache/repro/native`` afterwards); that
    is a per-machine build artifact, not per-sweep work, so it does not
    belong in any timed region.
    """
    from repro.core import ipc_native

    ipc_native.native_available()


def _bench_ipc_simulate() -> float:
    """All seven workloads through ``simulate()`` on the baseline core.

    Full sweep trace length (30k dynamic instructions per workload), no
    caching involved — this is the raw timing-kernel cost a sweep pays
    per configuration.
    """
    from repro.core.config import CoreConfig
    from repro.core.superscalar import simulate
    from repro.core.tradeoffs import make_traces

    _warm_ipc_kernel()
    traces = make_traces()
    config = CoreConfig()
    # Warm per-trace derived state (packed arrays, predictor streams) the
    # way any sweep's first config does, then time a clean pass.
    for trace in traces.values():
        simulate(config, trace)
    profiling.reset()
    t0 = time.perf_counter()
    for trace in traces.values():
        simulate(config, trace)
    return time.perf_counter() - t0


def _bench_depth_sweep(workers: int | None) -> tuple[float, float]:
    """(cold, warm) seconds for the Figure 11 depth sweep, one process.

    Cold: fresh result-cache directory, every block timing and
    simulation computed.  Warm: the identical call again, replayed from
    the cache the cold run just filled.
    """
    from repro.analysis.figures import load_libraries, wire_models
    from repro.core.physical import reset_structure_caches
    from repro.core.tradeoffs import depth_sweep, make_traces

    org_lib, _ = load_libraries()
    org_wire, _ = wire_models()
    traces = make_traces(n_instructions=SWEEP_TRACE_LENGTH)
    _warm_ipc_kernel()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp, \
            _cache_dir(tmp):
        # Drop every in-process synthesis memo so "cold" is genuinely
        # cold regardless of which bench rows ran earlier in this
        # process; the warm re-run keeps them, as a warm caller would.
        reset_structure_caches()
        profiling.reset()
        t0 = time.perf_counter()
        depth_sweep(org_lib, org_wire, max_depth=15, traces=traces,
                    workers=workers)
        cold = time.perf_counter() - t0
        # No profiling.reset() here: the row's breakdown is taken over
        # cold + warm, so dropping the cold run's stage totals would
        # misattribute the whole cold run to `overhead`.
        t0 = time.perf_counter()
        depth_sweep(org_lib, org_wire, max_depth=15, traces=traces,
                    workers=workers)
        warm = time.perf_counter() - t0
    return cold, warm


def _bench_width_sweep(workers: int | None) -> float:
    """The 30-point Figure 13/14 width grid, cold cache."""
    from repro.analysis.figures import load_libraries, wire_models
    from repro.core.physical import reset_structure_caches
    from repro.core.tradeoffs import make_traces, width_sweep

    org_lib, _ = load_libraries()
    org_wire, _ = wire_models()
    traces = make_traces(n_instructions=SWEEP_TRACE_LENGTH)
    _warm_ipc_kernel()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp, \
            _cache_dir(tmp):
        reset_structure_caches()
        profiling.reset()
        t0 = time.perf_counter()
        width_sweep(org_lib, org_wire, traces=traces, workers=workers)
        return time.perf_counter() - t0


def _bench_dse_sweep(workers: int | None) -> float:
    """The 1008-point batched DSE grid, cold cache.

    Libraries, wire models and the trace are prepared outside the timed
    region (exactly how the seed number was measured); the timed region
    is :func:`repro.analysis.dse.dse_sweep` on the stock grid against a
    private cold result cache and freshly reset in-process structure
    caches.
    """
    from repro.analysis.dse import DSE_TRACE_LENGTH, default_combos, dse_sweep
    from repro.core.physical import reset_structure_caches
    from repro.core.tradeoffs import make_traces

    combos = default_combos()
    traces = make_traces(workloads=["gzip"], n_instructions=DSE_TRACE_LENGTH)
    _warm_ipc_kernel()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp, \
            _cache_dir(tmp):
        reset_structure_caches()
        profiling.reset()
        t0 = time.perf_counter()
        dse_sweep(combos=combos, traces=traces, workers=workers)
        return time.perf_counter() - t0


class _cache_dir:
    """Temporarily point the persistent result cache somewhere private."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.saved: str | None = None

    def __enter__(self) -> "_cache_dir":
        self.saved = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = self.path
        return self

    def __exit__(self, *exc) -> None:
        if self.saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = self.saved


BENCHES = {
    "single_transient": lambda workers: _bench_single_transient(),
    "cell_characterization": _bench_cell_characterization,
    "library_characterization": _bench_library_characterization,
    "ensemble_newton": lambda workers: _bench_ensemble_newton(),
    "native_timestep": lambda workers: _bench_native_timestep(),
    "ipc_simulate": lambda workers: _bench_ipc_simulate(),
    "depth_sweep": _bench_depth_sweep,
    "width_sweep": _bench_width_sweep,
    "dse_sweep": _bench_dse_sweep,
}


def _record(results: dict, name: str, elapsed: float,
            profile: dict | None = None) -> None:
    baseline = SEED_BASELINES.get(name)
    entry = {"seconds": round(elapsed, 4), "seed_seconds": baseline}
    if baseline:
        entry["speedup_vs_seed"] = round(baseline / elapsed, 2)
    if profile is not None:
        entry["profile"] = profile
    results[name] = entry
    speedup = entry.get("speedup_vs_seed")
    extra = f"  ({speedup}x vs seed)" if speedup else ""
    print(f"[bench] {name}: {elapsed:.4f}s{extra}", flush=True)
    if profile is not None:
        stages = "  ".join(f"{stage} {seconds:.3f}s"
                           for stage, seconds in profile.items())
        print(f"[bench]   profile: {stages}", flush=True)


def _env_fingerprint() -> dict:
    """The machine identity recorded with (and checked against) baselines."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def _check_against(results: dict, baseline_path: Path,
                   tolerance: float) -> int:
    """Regression gate: exit status comparing *results* to a recorded run.

    Delegates to :func:`repro.runtime.history.regress_check` — the same
    gate ``python -m repro perf regress`` applies to run reports — so
    the two never drift apart.
    """
    from repro.runtime import history
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[bench] --check: cannot read {baseline_path}: {exc}")
        return 1
    fresh = {name: entry["seconds"] for name, entry in results.items()}
    status, lines = history.regress_check(fresh, baseline,
                                          current_env=_env_fingerprint(),
                                          tolerance=tolerance)
    for line in lines:
        print(f"[bench] --check: {line}")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the parallel layers "
                             "(default: REPRO_WORKERS or serial)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the slow library characterization")
    parser.add_argument("--only", choices=sorted(BENCHES), default=None,
                        help="run a single benchmark")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parents[2]
                        / "BENCH_perf.json",
                        help="output JSON path (default: repo root)")
    parser.add_argument("--profile", action="store_true",
                        help="per-stage stamp/device-eval/solve/overhead "
                             "breakdown next to each timing")
    parser.add_argument("--check", type=Path, default=None,
                        metavar="BASELINE_JSON",
                        help="compare against a recorded BENCH_perf.json "
                             "and exit 1 on regressions")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown fraction for --check "
                             "(default 0.25)")
    parser.add_argument("--report", type=Path, default=None,
                        metavar="REPORT_JSON",
                        help="collect telemetry and write a run-report "
                             "JSON (span tree + solver/cache metrics) here")
    parser.add_argument("--trace", nargs="?", const=True, default=None,
                        metavar="TRACE_JSON",
                        help="export a Chrome Trace Event JSON of the run "
                             "(default path: next to --report, else next "
                             "to --out)")
    repro_log.add_cli_flags(parser)
    args = parser.parse_args(argv)
    repro_log.configure_from_args(args)

    names = [args.only] if args.only else list(BENCHES)
    if args.quick and not args.only:
        names.remove("library_characterization")

    collect = args.report is not None or args.trace is not None
    if collect:
        telemetry.reset()
        telemetry.enable(True)
        repro_log.capture_warnings()
    t_run = time.perf_counter()

    results: dict = {}
    for name in names:
        # Collect garbage left by the previous row so its collection
        # cost lands nowhere: rows must not time each other's debris.
        gc.collect()
        print(f"[bench] {name} ...", flush=True)
        if args.profile:
            profiling.reset()
            profiling.enable(True)
        if name == "depth_sweep":
            with telemetry.span("bench:depth_sweep"):
                cold, warm = _bench_depth_sweep(args.workers)
            profiling.enable(False)
            prof = (profiling.breakdown(cold + warm)
                    if args.profile else None)
            _record(results, "depth_sweep", cold, prof)
            _record(results, "depth_sweep_warm_cache", warm)
            continue
        with telemetry.span(f"bench:{name}"):
            elapsed = BENCHES[name](args.workers)
        profiling.enable(False)
        prof = profiling.breakdown(elapsed) if args.profile else None
        _record(results, name, elapsed, prof)

    from repro.core import ipc_native
    from repro.spice.backends import get_backend

    payload = {
        "benchmarks": results,
        "environment": {
            **_env_fingerprint(),
            "workers": args.workers,
            "vectorized": os.environ.get("REPRO_VECTORIZED", "auto"),
            "ensemble": os.environ.get("REPRO_ENSEMBLE", "auto"),
            "ipc_kernel": ("native" if ipc_native.native_available()
                           else "python"),
            "spice_backend": get_backend().name,
            "spice_backend_requested": os.environ.get("REPRO_BACKEND",
                                                      "auto"),
        },
        "notes": ("Characterisation seed_seconds measured at commit "
                  "a5dc719 (scalar stamping, fixed-step transient "
                  "controller); depth_sweep seed_seconds is the PR-1 "
                  "(0bbc774) time of the identical call, before the "
                  "packed-array IPC kernels and the persistent result "
                  "cache. width_sweep and dse_sweep seed_seconds were "
                  "measured at the PR-7 commit (b47c364), before the "
                  "shared-structure synthesis engine and incremental "
                  "STA. Sweep benches run against a private temporary "
                  "REPRO_CACHE_DIR with in-process structure caches "
                  "reset: 'depth_sweep' is the cold-cache "
                  "time, 'depth_sweep_warm_cache' the immediate re-run. "
                  "On a single-core box all speedup comes from the "
                  "engine; multi-core boxes additionally gain from "
                  "--workers."),
    }
    if collect:
        telemetry.enable(False)
        report = run_report.build_report(
            "bench", argv=argv, status="ok",
            duration_seconds=time.perf_counter() - t_run)
        report["benchmarks"] = results
        if args.report is not None:
            run_report.write_report(report, path=args.report)
            print(f"[bench] wrote run report {args.report}")
        if args.trace is not None:
            from repro.runtime import trace_export
            anchor = args.report if args.report is not None else args.out
            trace_path = trace_export.default_trace_path(anchor) \
                if args.trace is True else Path(args.trace)
            trace_export.write_trace(report, trace_path)
            print(f"[bench] wrote trace {trace_path}")

    status = 0
    if args.check is not None:
        status = _check_against(results, args.check, args.tolerance)
    if args.check is not None and args.check.resolve() == args.out.resolve():
        # Gating against the file we would write: keep the recorded
        # baseline instead of clobbering it with the fresh run.
        print(f"[bench] not overwriting baseline {args.out}")
    else:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[bench] wrote {args.out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
