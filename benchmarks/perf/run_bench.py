"""Engine performance microbenchmarks.

Times the three workloads the vectorized-stamping / parallel-fan-out work
targets, compares them against the recorded pre-optimisation baselines,
and writes the results to ``BENCH_perf.json``:

1. ``single_transient`` — one characterisation-arc transient (nand2),
2. ``cell_characterization`` — the full slew x load NLDM grid of one cell,
3. ``library_characterization`` — all six organic cells (the paper's
   library build; the end-to-end ``>= 3x`` target applies here),
4. ``depth_sweep`` — the Figure 11 pipeline-depth sweep on one process
   (microarchitectural side; dominated by trace simulation).

Usage::

    PYTHONPATH=src python -m benchmarks.perf.run_bench           # everything
    PYTHONPATH=src python -m benchmarks.perf.run_bench --quick   # skip library
    PYTHONPATH=src python -m benchmarks.perf.run_bench --only single_transient
    PYTHONPATH=src python -m benchmarks.perf.run_bench --workers 4

Baselines were measured at the seed commit (a5dc719) on the same box the
optimised numbers come from; ``cpu_count`` is recorded so multi-core
parallel gains can be told apart from single-core engine gains.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

#: Wall-clock seconds at the seed commit (scalar stamping, fixed-step
#: controller, per-element rhs assembly), measured on a single-core box.
SEED_BASELINES = {
    "single_transient": 0.0856,
    "cell_characterization": 7.29,
    "library_characterization": 67.73,
    # The depth sweep is dominated by the trace-driven IPC simulator, not
    # the circuit engine; its baseline is recorded for completeness.
    "depth_sweep": None,
}


def _bench_single_transient() -> float:
    from repro.cells.library_def import organic_library_definition
    from repro.characterization import harness

    defn = organic_library_definition()
    grid = harness.default_grid(defn)
    cell = defn.cells["nand2"]
    # Warm-up (module import, first-call numpy costs), then measure.
    harness.measure_arc(cell, "a", True, grid.slews[0], grid.loads[0])
    t0 = time.perf_counter()
    harness.measure_arc(cell, "a", True, grid.slews[0], grid.loads[0])
    return time.perf_counter() - t0


def _bench_cell_characterization(workers: int | None) -> float:
    from repro.cells.library_def import organic_library_definition
    from repro.characterization import harness

    defn = organic_library_definition()
    grid = harness.default_grid(defn)
    cell = defn.cells["nand2"]
    t0 = time.perf_counter()
    harness.characterize_cell(cell, grid, area=1.0, workers=workers)
    return time.perf_counter() - t0


def _bench_library_characterization(workers: int | None) -> float:
    from repro.cells.library_def import organic_library_definition
    from repro.characterization.harness import characterize_library

    t0 = time.perf_counter()
    characterize_library(organic_library_definition(), use_cache=False,
                         workers=workers)
    return time.perf_counter() - t0


def _bench_depth_sweep(workers: int | None) -> float:
    from repro.analysis.figures import load_libraries, wire_models
    from repro.core.tradeoffs import depth_sweep, make_traces

    org_lib, _ = load_libraries()
    org_wire, _ = wire_models()
    traces = make_traces(n_instructions=10_000)
    t0 = time.perf_counter()
    depth_sweep(org_lib, org_wire, max_depth=15, traces=traces,
                workers=workers)
    return time.perf_counter() - t0


BENCHES = {
    "single_transient": lambda workers: _bench_single_transient(),
    "cell_characterization": _bench_cell_characterization,
    "library_characterization": _bench_library_characterization,
    "depth_sweep": _bench_depth_sweep,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the parallel layers "
                             "(default: REPRO_WORKERS or serial)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the slow library characterization")
    parser.add_argument("--only", choices=sorted(BENCHES), default=None,
                        help="run a single benchmark")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parents[2]
                        / "BENCH_perf.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    names = [args.only] if args.only else list(BENCHES)
    if args.quick and not args.only:
        names.remove("library_characterization")

    results = {}
    for name in names:
        print(f"[bench] {name} ...", flush=True)
        elapsed = BENCHES[name](args.workers)
        baseline = SEED_BASELINES.get(name)
        entry = {"seconds": round(elapsed, 4), "seed_seconds": baseline}
        if baseline:
            entry["speedup_vs_seed"] = round(baseline / elapsed, 2)
        results[name] = entry
        speedup = entry.get("speedup_vs_seed")
        extra = f"  ({speedup}x vs seed)" if speedup else ""
        print(f"[bench] {name}: {elapsed:.4f}s{extra}", flush=True)

    payload = {
        "benchmarks": results,
        "environment": {
            "cpu_count": os.cpu_count(),
            "workers": args.workers,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "vectorized": os.environ.get("REPRO_VECTORIZED", "auto"),
        },
        "notes": ("seed_seconds measured at commit a5dc719 (scalar "
                  "stamping, fixed-step transient controller). On a "
                  "single-core box all speedup comes from the engine; "
                  "multi-core boxes additionally gain from --workers."),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
