"""Figure 11: core area and per-benchmark performance vs pipeline depth.

Regenerates all three panels for both processes: (a) normalised core
area, (b) silicon performance, (c) organic performance — seven benchmarks
on seven depths each, exactly the paper's grid.
"""

from repro.analysis.calibration import paper_value
from repro.analysis.figures import fig11_pipeline_depth
from repro.analysis.tables import format_table

from .conftest import run_once


def test_fig11_pipeline_depth(benchmark):
    result = run_once(
        benchmark, lambda: fig11_pipeline_depth(max_depth=15,
                                                n_instructions=20_000))

    for process in ("silicon", "organic"):
        perf = result.normalized_performance(process)
        area = result.normalized_area(process)
        benches = sorted(next(iter(perf.values())))
        rows = []
        for depth in sorted(perf):
            rows.append([depth, f"{area[depth]:.3f}"]
                        + [f"{perf[depth][b]:.2f}" for b in benches])
        table = format_table(["depth", "area"] + benches, rows,
                             title=f"Figure 11 — {process} core vs depth "
                                   f"(normalised to 9 stages)")
        print("\n" + table)
        benchmark.extra_info[process] = table

    d_sil = result.optimal_depth("silicon")
    d_org = result.optimal_depth("organic")
    f_org9 = result.organic[0].physical.frequency
    f_sil9 = result.silicon[0].physical.frequency
    summary = (f"optimal depth: silicon {d_sil} (paper "
               f"{paper_value('optimal_depth_silicon')}), organic {d_org} "
               f"(paper {paper_value('optimal_depth_organic')}); baseline "
               f"frequency: organic {f_org9:.0f} Hz (paper ~200 Hz), "
               f"silicon {f_sil9 / 1e6:.0f} MHz (paper ~800 MHz)")
    print("\n" + summary)
    benchmark.extra_info["summary"] = summary

    assert d_org > d_sil
    assert 10 <= d_sil <= 12
    assert 13 <= d_org <= 15
