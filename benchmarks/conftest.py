"""Benchmark-suite fixtures.

Each benchmark regenerates one of the paper's tables/figures and prints
the measured rows next to the paper-reported values (run with ``-s`` to
see them inline; they are also echoed into the benchmark's ``extra_info``).
Heavy experiments run exactly once via ``benchmark.pedantic``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def libraries():
    """Characterised libraries, built (or loaded from disk cache) once."""
    from repro.analysis.figures import load_libraries
    return load_libraries()


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
