"""Figure 4: level 1 vs level 61 fits of the measured transfer curve."""

from repro.analysis.figures import fig4_model_fits
from repro.analysis.tables import format_table

from .conftest import run_once


def test_fig4_model_fits(benchmark):
    result = run_once(benchmark, fig4_model_fits)

    rows = [
        ["level 1 (Shichman-Hodges)", f"{result.level1.rms_log_error:.3f}",
         f"{result.level1.rms_log_error_on:.3f}"],
        ["level 61 (unified TFT)", f"{result.level61.rms_log_error:.3f}",
         f"{result.level61.rms_log_error_on:.3f}"],
    ]
    table = format_table(
        ["model", "RMS log10 error (full sweep)", "RMS log10 error (on)"],
        rows,
        title="Figure 4 — device-model fit quality (paper: level 1 misses "
              "sub-VT conduction and leakage; level 61 'fits the device "
              "well')")
    print("\n" + table)
    benchmark.extra_info["table"] = table

    assert result.level1_much_worse
    assert result.level61.rms_log_error < 0.1
    assert result.level1.rms_log_error_on < 1.0
