"""Figure 8: switching threshold versus the VSS bias rail."""

from repro.analysis.figures import fig8_vss_tuning
from repro.analysis.tables import format_series

from .conftest import run_once


def test_fig8_vss_tuning(benchmark):
    result = run_once(benchmark, fig8_vss_tuning)

    chart = format_series(
        [f"{v:.2f}" for v in result.vss_values], result.vm_values,
        title=("Figure 8b — VM vs VSS at VDD = 5 V  "
               f"(fit: VM = {result.slope:.3f} VSS + {result.intercept:.2f}; "
               f"paper: VM = {result.paper_slope:.2f} VSS + 5.76)"))
    print("\n" + chart)
    benchmark.extra_info["series"] = chart

    # Paper's qualitative law: VM rises linearly as VSS rises.
    assert result.slope > 0
    import numpy as np
    fit = result.slope * result.vss_values + result.intercept
    assert float(np.max(np.abs(fit - result.vm_values))) < 0.15
