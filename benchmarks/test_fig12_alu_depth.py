"""Figure 12: complex-ALU area and frequency versus pipeline stages."""

from repro.analysis.calibration import paper_value
from repro.analysis.figures import fig12_alu_depth
from repro.analysis.tables import format_table

from .conftest import run_once


def test_fig12_alu_depth(benchmark):
    result = run_once(benchmark, fig12_alu_depth)

    rows = []
    for i, n in enumerate(result.stage_counts):
        rows.append([n,
                     f"{result.frequency_ratios('organic')[i]:.2f}",
                     f"{result.area_ratios('organic')[i]:.2f}",
                     f"{result.frequency_ratios('silicon')[i]:.2f}",
                     f"{result.area_ratios('silicon')[i]:.2f}"])
    table = format_table(
        ["stages", "organic f/f1", "organic area", "silicon f/f1",
         "silicon area"],
        rows,
        title="Figure 12 — complex ALU (2 multipliers + 2 stallable "
              "dividers) vs pipeline stages")
    print("\n" + table)
    sat_org = result.saturation_stage("organic")
    sat_sil = result.saturation_stage("silicon")
    summary = (f"frequency flattens near: silicon {sat_sil} stages (paper "
               f"~{paper_value('fig12_si_saturation')}), organic {sat_org} "
               f"stages (paper ~{paper_value('fig12_org_top')})")
    print(summary)
    benchmark.extra_info["table"] = table
    benchmark.extra_info["summary"] = summary

    assert sat_sil < sat_org
    idx8 = result.stage_counts.index(8)
    assert max(result.frequency_ratios("silicon")) < \
        1.35 * result.frequency_ratios("silicon")[idx8]
    assert max(result.frequency_ratios("organic")) > \
        1.4 * result.frequency_ratios("organic")[idx8]
