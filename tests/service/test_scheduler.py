"""Scheduler: in-flight dedup, warm cache, progress routing, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.runtime import progress
from repro.runtime.cache import ResultCache
from repro.service import jobs as jobs_mod
from repro.service.jobs import JobError
from repro.service.scheduler import Scheduler

# -- a controllable synthetic job kind ---------------------------------------

#: gate name -> Event the runner blocks on (module-level: job slots are
#: threads of this process).
_GATES: dict[str, threading.Event] = {}


def _normalize_gated(params: dict) -> dict:
    return {"gate": str(params.get("gate", "default")),
            "payload": params.get("payload", 0)}


def _run_gated(params: dict, workers):
    event = _GATES.get(params["gate"])
    if event is not None:
        assert event.wait(timeout=30)
    return {"payload": params["payload"], "gate": params["gate"]}


def _run_emitting(params: dict, workers):
    with progress.phase("gated-work", total=2) as ph:
        progress.update(ph, 2)
    return _run_gated(params, workers)


@pytest.fixture()
def gated_kind():
    jobs_mod.register_kind("testgate", _normalize_gated, _run_gated)
    jobs_mod.register_kind("testemit", _normalize_gated, _run_emitting)
    _GATES.clear()
    yield
    jobs_mod._KINDS.pop("testgate", None)
    jobs_mod._KINDS.pop("testemit", None)
    _GATES.clear()


@pytest.fixture()
def scheduler(tmp_path, gated_kind):
    sched = Scheduler(slots=1, workers=1,
                      cache=ResultCache(root=tmp_path / "svc", enabled=True))
    yield sched
    for event in _GATES.values():
        event.set()
    sched.close()


def _submit(sched, gate="default", payload=0, kind="testgate"):
    return sched.submit({"kind": kind,
                         "params": {"gate": gate, "payload": payload}})


class TestDedup:
    def test_identical_inflight_requests_compute_once(self, scheduler):
        _GATES["g"] = threading.Event()
        first, created = _submit(scheduler, gate="g", payload=7)
        assert created
        # While the job holds the only slot, identical requests attach.
        dup1, created1 = _submit(scheduler, gate="g", payload=7)
        dup2, created2 = _submit(scheduler, gate="g", payload=7)
        assert (created1, created2) == (False, False)
        assert dup1 is first and dup2 is first
        assert first.waiters == 3
        _GATES["g"].set()
        record = scheduler.wait(first.id, timeout=30)
        assert record.state == "done"
        assert record.result == {"payload": 7, "gate": "g"}
        assert scheduler.stats["computed"] == 1
        assert scheduler.stats["deduped"] == 2

    def test_different_params_are_not_deduped(self, scheduler):
        a, _ = _submit(scheduler, payload=1)
        b, _ = _submit(scheduler, payload=2)
        assert a.id != b.id
        assert scheduler.wait(a.id, 30).result["payload"] == 1
        assert scheduler.wait(b.id, 30).result["payload"] == 2
        assert scheduler.stats["deduped"] == 0

    def test_completed_job_serves_warm_from_cache(self, scheduler):
        first, _ = _submit(scheduler, payload=5)
        scheduler.wait(first.id, 30)
        again, created = _submit(scheduler, payload=5)
        assert created and again.id != first.id
        assert again.state == "done" and again.cached
        assert again.result == first.result
        assert scheduler.stats == {"submitted": 2, "deduped": 0,
                                   "cached": 1, "computed": 1, "failed": 0}

    def test_warm_result_survives_scheduler_restart(self, tmp_path,
                                                    gated_kind):
        cache = ResultCache(root=tmp_path / "svc", enabled=True)
        with Scheduler(slots=1, workers=1, cache=cache) as sched:
            record, _ = _submit(sched, payload=9)
            sched.wait(record.id, 30)
        with Scheduler(slots=1, workers=1, cache=cache) as sched:
            warm, _ = _submit(sched, payload=9)
            assert warm.cached and warm.result == {"payload": 9,
                                                   "gate": "default"}
            assert sched.stats["computed"] == 0


class TestLifecycle:
    def test_failed_job_reports_error_and_is_not_cached(self, scheduler):
        def boom(params, workers):
            raise RuntimeError("kaput")

        jobs_mod.register_kind("testboom", _normalize_gated, boom)
        try:
            record, _ = _submit(scheduler, kind="testboom")
            scheduler.wait(record.id, 30)
            assert record.state == "failed"
            assert "kaput" in record.error
            assert scheduler.stats["failed"] == 1
            # A retry recomputes (failures are never served warm).
            retry, created = _submit(scheduler, kind="testboom")
            assert created and not retry.cached
        finally:
            jobs_mod._KINDS.pop("testboom", None)

    def test_malformed_request_raises_before_any_record(self, scheduler):
        with pytest.raises(JobError):
            scheduler.submit({"kind": "no-such-kind"})
        assert scheduler.stats["submitted"] == 0

    def test_close_drains_queued_jobs(self, tmp_path, gated_kind):
        sched = Scheduler(slots=1, workers=1,
                          cache=ResultCache(root=tmp_path / "svc",
                                            enabled=True))
        records = [_submit(sched, payload=i)[0] for i in range(4)]
        sched.close()                        # waits for all four
        assert [r.result["payload"] for r in records] == [0, 1, 2, 3]
        with pytest.raises(RuntimeError):
            _submit(sched, payload=9)

    def test_stats_snapshot_shape(self, scheduler):
        snap = scheduler.stats_snapshot()
        assert snap["slots"] == 1 and snap["workers"] == 1
        assert set(snap["jobs"]) == {"submitted", "deduped", "cached",
                                     "computed", "failed"}
        assert snap["cache"]["enabled"]


class TestProgressRouting:
    def test_job_heartbeats_land_on_its_record(self, scheduler):
        record, _ = _submit(scheduler, kind="testemit", payload=3)
        scheduler.wait(record.id, 30)
        events = [(r["phase"], r["event"]) for r in record.progress]
        assert ("gated-work", "begin") in events
        assert ("gated-work", "end") in events
        assert all(r["ctx"] == record.id for r in record.progress)

    def test_subscriber_streams_progress_then_done(self, scheduler):
        _GATES["s"] = threading.Event()
        record, _ = _submit(scheduler, kind="testemit", gate="s")
        got: list[dict] = []
        scheduler.subscribe(record.id, got.append)
        _GATES["s"].set()
        scheduler.wait(record.id, 30)
        scheduler.unsubscribe(record.id, got.append)
        assert got[-1]["event"] == "done"

    def test_subscribing_to_terminal_job_fires_immediately(self, scheduler):
        record, _ = _submit(scheduler, payload=1)
        scheduler.wait(record.id, 30)
        got: list[dict] = []
        scheduler.subscribe(record.id, got.append)
        assert got and got[0]["event"] == "done"
        scheduler.unsubscribe(record.id, got.append)
