"""Job normalisation, fingerprints, and runner bit-identity."""

from __future__ import annotations

import json

import pytest

from repro.service import jobs
from repro.service.jobs import JobError, normalize_request, run_job


class TestNormalize:
    def test_defaults_filled_in(self):
        spec = normalize_request({"kind": "sta"})
        assert spec.param_dict() == {"process": "organic", "block": "adder",
                                     "width": 16, "wire": True}

    def test_equivalent_requests_share_fingerprint(self):
        explicit = normalize_request({"kind": "sta", "params": {
            "process": "organic", "block": "adder", "width": 16,
            "wire": True}})
        defaulted = normalize_request({"kind": "sta"})
        assert explicit == defaulted
        assert explicit.fingerprint() == defaulted.fingerprint()

    def test_different_params_different_fingerprint(self):
        a = normalize_request({"kind": "sta", "params": {"width": 8}})
        b = normalize_request({"kind": "sta", "params": {"width": 12}})
        assert a.fingerprint() != b.fingerprint()

    def test_kind_is_part_of_fingerprint(self):
        a = normalize_request({"kind": "characterize"})
        b = normalize_request({"kind": "dse"})
        assert a.fingerprint() != b.fingerprint()

    @pytest.mark.parametrize("bad", [
        None,
        [],
        {"kind": "nope"},
        {"kind": "sta", "params": {"bogus": 1}},
        {"kind": "sta", "params": {"width": "wide"}},
        {"kind": "sta", "params": {"width": 1000}},
        {"kind": "sta", "params": {"block": "fpu"}},
        {"kind": "sweep", "params": {"axis": "diagonal"}},
        {"kind": "sweep", "params": {"workloads": ["quake"]}},
        {"kind": "sweep", "params": {"workloads": []}},
        {"kind": "sweep", "params": {"axis": "depth", "front_widths": [2]}},
        {"kind": "characterize", "params": {"process": "gallium"}},
        {"kind": "dse", "params": {"quick": "yes"}},
        {"kind": "sta", "extra": 1},
    ])
    def test_malformed_requests_rejected(self, bad):
        with pytest.raises(JobError):
            normalize_request(bad)

    def test_sweep_axes_get_axis_specific_defaults(self):
        depth = normalize_request({"kind": "sweep"}).param_dict()
        assert depth["axis"] == "depth" and depth["max_depth"] == 12
        width = normalize_request(
            {"kind": "sweep", "params": {"axis": "width"}}).param_dict()
        assert width["front_widths"] == [1, 2, 3]
        assert "max_depth" not in width

    def test_job_kinds_listing(self):
        assert {"characterize", "sweep", "sta", "dse"} <= set(
            jobs.job_kinds())


class TestRunners:
    def test_sta_result_is_json_safe_and_deterministic(self):
        spec = normalize_request({"kind": "sta", "params": {"width": 8}})
        first = run_job(spec)
        second = run_job(spec)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        assert first["netlist"] == "csa8_mapped"
        assert first["max_delay"] > 0
        assert first["critical_length"] == len(first["critical_path"])

    def test_sta_wire_flag_changes_delay(self):
        with_wire = run_job(normalize_request(
            {"kind": "sta", "params": {"width": 8}}))
        without = run_job(normalize_request(
            {"kind": "sta", "params": {"width": 8, "wire": False}}))
        assert without["max_delay"] < with_wire["max_delay"]

    def test_characterize_matches_direct_library(self, organic_lib):
        spec = normalize_request({"kind": "characterize"})
        result = run_job(spec)
        assert json.dumps(result, sort_keys=True) == \
            json.dumps(organic_lib.to_dict(), sort_keys=True)

    def test_sweep_depth_small(self, organic_lib):
        spec = normalize_request({"kind": "sweep", "params": {
            "max_depth": 10, "n_instructions": 300}})
        result = run_job(spec)
        points = result["points"]
        assert [p["depth"] for p in points] == [9, 10]
        for p in points:
            assert set(p["ipc"]) == {"gzip"}
            assert p["physical"]["frequency"] > 0
            assert p["mean_performance"] > 0

    def test_unknown_kind_run_rejected(self):
        from repro.service.jobs import JobSpec

        with pytest.raises(JobError):
            run_job(JobSpec(kind="nope", params=()))
