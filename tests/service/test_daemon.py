"""Daemon + client over a real socket: protocol, dedup, bit-identity."""

from __future__ import annotations

import json
import threading

import pytest

from repro.runtime.cache import ResultCache
from repro.service import jobs as jobs_mod
from repro.service.client import ServiceClient, parse_address
from repro.service.daemon import ServiceDaemon
from repro.service.jobs import normalize_request, run_job
from repro.service.scheduler import Scheduler

_GATES: dict[str, threading.Event] = {}


def _normalize_gate(params: dict) -> dict:
    return {"gate": str(params.get("gate", "default"))}


def _run_gate(params: dict, workers):
    event = _GATES.get(params["gate"])
    if event is not None:
        assert event.wait(timeout=60)
    return {"gate": params["gate"]}


@pytest.fixture()
def daemon(tmp_path):
    """A live daemon on an ephemeral TCP port, torn down via shutdown."""
    jobs_mod.register_kind("testgate", _normalize_gate, _run_gate)
    _GATES.clear()
    sched = Scheduler(slots=1, workers=1,
                      cache=ResultCache(root=tmp_path / "svc", enabled=True))
    svc = ServiceDaemon(sched, port=0)
    ready = threading.Event()
    thread = threading.Thread(target=svc.run, args=(ready,), daemon=True)
    thread.start()
    assert ready.wait(30)
    yield svc
    for event in _GATES.values():
        event.set()
    if thread.is_alive():
        try:
            with ServiceClient(svc.bound) as client:
                client.shutdown()
        except (OSError, ConnectionError):
            pass
        thread.join(60)
    assert not thread.is_alive()
    jobs_mod._KINDS.pop("testgate", None)
    _GATES.clear()


def test_parse_address():
    assert parse_address("127.0.0.1:7341") == ("127.0.0.1", 7341)
    assert parse_address(":7341") == ("127.0.0.1", 7341)
    assert parse_address("/tmp/svc.sock") == "/tmp/svc.sock"


class TestProtocol:
    def test_ping(self, daemon):
        with ServiceClient(daemon.bound) as client:
            reply = client.ping()
        assert reply["ok"] and reply["op"] == "pong"
        assert "sta" in reply["kinds"]

    def test_malformed_line_and_unknown_op(self, daemon):
        with ServiceClient(daemon.bound) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            assert "bad request" in client._recv()["error"]
            reply = client.request({"op": "frobnicate"})
            assert not reply["ok"] and "unknown op" in reply["error"]
            assert client.ping()["ok"]       # connection still usable

    def test_bad_job_rejected_with_kinds(self, daemon):
        with ServiceClient(daemon.bound) as client:
            reply = client.submit({"kind": "no-such"})
        assert not reply["ok"] and "unknown job kind" in reply["error"]

    def test_status_result_jobs_ops(self, daemon):
        with ServiceClient(daemon.bound) as client:
            accepted = client.submit({"kind": "testgate"}, wait=False)
            job_id = accepted["id"]
            done = client.result(job_id)
            assert done["ok"] and done["result"] == {"gate": "default"}
            status = client.status(job_id)
            assert status["state"] == "done"
            listing = client.jobs()
            assert job_id in [j["id"] for j in listing["jobs"]]
            missing = client.status("job-999-deadbeef")
            assert not missing["ok"]

    def test_streamed_progress_events(self, daemon):
        def emitting(params, workers):
            from repro.runtime import progress
            _run_gate(params, workers)       # hold until the test is ready
            with progress.phase("svc-work", total=3) as ph:
                progress.update(ph, 3)
            return {"ok": True}

        jobs_mod.register_kind("testemit", _normalize_gate, emitting)
        _GATES["emit"] = threading.Event()
        try:
            ticks: list[dict] = []
            with ServiceClient(daemon.bound) as client:
                # Drive the protocol by hand: once `accepted` arrives the
                # daemon has subscribed, so releasing the gate after that
                # guarantees every emission is streamed.
                client._send({"op": "submit", "stream": True, "wait": True,
                              "job": {"kind": "testemit",
                                      "params": {"gate": "emit"}}})
                accepted = client._recv()
                assert accepted["ok"] and accepted["event"] == "accepted"
                _GATES["emit"].set()
                while True:
                    event = client._recv()
                    if event.get("event") == "done":
                        assert event["ok"]
                        break
                    ticks.append(event.get("progress", {}))
            assert any(t.get("phase") == "svc-work" for t in ticks)
        finally:
            jobs_mod._KINDS.pop("testemit", None)


class TestConcurrentMixedJobs:
    def test_eight_concurrent_jobs_dedup_and_bit_identity(self, daemon):
        """The acceptance scenario: >= 8 concurrent mixed jobs, identical
        requests computed once, every response bit-identical to the
        one-shot local path."""
        # Hold the single slot so all eight submissions overlap
        # deterministically (queued jobs dedup by fingerprint).
        _GATES["plug"] = threading.Event()
        with ServiceClient(daemon.bound) as plug_client:
            plug = plug_client.submit(
                {"kind": "testgate", "params": {"gate": "plug"}},
                wait=False)
            assert plug["ok"]

            jobs = [
                {"kind": "sta", "params": {"width": 8}},
                {"kind": "sta", "params": {"width": 8}},
                {"kind": "sta", "params": {"width": 8}},
                {"kind": "sta", "params": {"width": 8, "wire": False}},
                {"kind": "sta", "params": {"block": "multiplier",
                                           "width": 6}},
                {"kind": "sweep", "params": {"max_depth": 10,
                                             "n_instructions": 300}},
                {"kind": "sweep", "params": {"max_depth": 10,
                                             "n_instructions": 300}},
                {"kind": "characterize", "params": {"process": "organic"}},
            ]
            replies: list[dict | None] = [None] * len(jobs)

            def submit(i):
                with ServiceClient(daemon.bound) as client:
                    replies[i] = client.submit(jobs[i])

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(len(jobs))]
            for t in threads:
                t.start()
            # All eight are queued/deduped behind the plug; release it.
            deadline = threading.Event()
            for _ in range(200):
                with ServiceClient(daemon.bound) as client:
                    if client.stats()["jobs"]["submitted"] >= 9:
                        break
                deadline.wait(0.05)
            _GATES["plug"].set()
            for t in threads:
                t.join(120)
                assert not t.is_alive()

            # Every response matches the one-shot local path, byte for
            # byte (JSON floats round-trip exactly).
            for job, reply in zip(jobs, replies):
                assert reply is not None and reply["ok"], reply
                local = run_job(normalize_request(job))
                assert json.dumps(reply["result"], sort_keys=True) == \
                    json.dumps(local, sort_keys=True)

            stats = plug_client.stats()["jobs"]
        distinct = len({normalize_request(j).fingerprint() for j in jobs})
        assert distinct == 5
        # plug + 5 distinct computed once each; 3 duplicates deduped.
        assert stats["computed"] == distinct + 1
        assert stats["deduped"] == len(jobs) - distinct
        assert stats["failed"] == 0

    def test_second_round_is_served_warm(self, daemon):
        job = {"kind": "sta", "params": {"width": 10}}
        with ServiceClient(daemon.bound) as client:
            cold = client.submit(job)
            warm = client.submit(job)
            stats = client.stats()["jobs"]
        assert cold["ok"] and warm["ok"]
        assert not cold["cached"] and warm["cached"]
        assert json.dumps(cold["result"]) == json.dumps(warm["result"])
        assert stats["computed"] == 1 and stats["cached"] == 1


class TestShutdown:
    def test_shutdown_drains_and_exits_cleanly(self, tmp_path):
        jobs_mod.register_kind("testgate", _normalize_gate, _run_gate)
        try:
            sched = Scheduler(slots=1, workers=1,
                              cache=ResultCache(root=tmp_path / "svc2",
                                                enabled=True))
            svc = ServiceDaemon(sched, port=0)
            ready = threading.Event()
            thread = threading.Thread(target=svc.run, args=(ready,),
                                      daemon=True)
            thread.start()
            assert ready.wait(30)
            with ServiceClient(svc.bound) as client:
                accepted = client.submit({"kind": "testgate"}, wait=False)
                assert client.shutdown()["op"] == "bye"
            thread.join(60)
            assert not thread.is_alive()
            # The queued job was drained, not dropped.
            record = sched.store.get(accepted["id"])
            assert record.state == "done"
        finally:
            jobs_mod._KINDS.pop("testgate", None)
