"""Units helpers and CLI smoke tests."""

import math

import pytest

from repro.units import (
    EPS_R_AL2O3,
    decades,
    engineering,
    mobility_cm2_to_m2,
    mobility_m2_to_cm2,
    oxide_capacitance_per_area,
)


class TestUnits:
    def test_mobility_round_trip(self):
        assert mobility_m2_to_cm2(mobility_cm2_to_m2(0.16)) == pytest.approx(0.16)

    def test_oxide_capacitance(self):
        # 50 nm Al2O3: ~1.6 mF/m^2 (the paper's gate stack).
        ci = oxide_capacitance_per_area(EPS_R_AL2O3, 50e-9)
        assert ci == pytest.approx(1.59e-3, rel=0.01)

    def test_oxide_capacitance_validation(self):
        with pytest.raises(ValueError):
            oxide_capacitance_per_area(9.0, 0.0)

    def test_decades(self):
        assert decades(1e6) == pytest.approx(6.0)
        with pytest.raises(ValueError):
            decades(0.0)

    def test_engineering_format(self):
        assert engineering(2.2e-5, "s") == "22 us"
        assert engineering(1.5e9, "Hz") == "1.5 GHz"
        assert engineering(0, "V") == "0 V"
        assert engineering(-3e-3, "A") == "-3 mA"


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "liberty" in out

    def test_fig4_runs(self, capsys):
        from repro.__main__ import main
        assert main(["fig4"]) == 0
        assert "level 61" in capsys.readouterr().out

    def test_unknown_experiment(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_experiment_writes_run_report(self, tmp_path, capsys):
        import json
        from repro.__main__ import main
        out = tmp_path / "fig6-report.json"
        assert main(["fig6", "--report", str(out)]) == 0
        assert f"run report: {out}" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["target"] == "fig6"
        assert doc["status"] == "ok"
        assert doc["span_tree"][0]["name"] == "fig6"
        assert doc["metrics"]["counters"]["spice.newton_solves"] > 0

    def test_no_report_flag(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["fig4", "--no-report"]) == 0
        assert "run report:" not in capsys.readouterr().out
        assert list(tmp_path.glob("*.json")) == []

    def test_report_subcommand(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["report"]) == 1
        assert "no run reports" in capsys.readouterr().out
        assert main(["fig4"]) == 0
        capsys.readouterr()
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "run report: fig4 [ok]" in out
        assert "spans:" in out

    def test_cache_stats_subcommand(self, capsys):
        from repro.__main__ import main
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "cache root:" in out
        assert "this process:" in out
