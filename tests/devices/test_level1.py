"""Shichman-Hodges level 1 model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import Level1Mosfet
from repro.errors import DeviceModelError

MODEL = Level1Mosfet(polarity=1, kp=1e-5, vt0=0.5, lambda_=0.05,
                     ci=1e-3, c_overlap=1e-9)
W, L = 10e-6, 1e-6


class TestRegions:
    def test_cutoff_is_exactly_zero(self):
        """Level 1's defining flaw: no subthreshold conduction at all."""
        i, gm, gds = MODEL.ids(0.4, 1.0, W, L)
        assert i == 0.0 and gm == 0.0 and gds == 0.0

    def test_triode_current(self):
        vgs, vds = 2.0, 0.5
        i, _, _ = MODEL.ids(vgs, vds, W, L)
        beta = MODEL.kp * W / L
        expected = beta * ((vgs - 0.5) * vds - 0.5 * vds ** 2) \
            * (1 + MODEL.lambda_ * vds)
        assert i == pytest.approx(expected)

    def test_saturation_current(self):
        vgs, vds = 2.0, 3.0
        i, _, _ = MODEL.ids(vgs, vds, W, L)
        beta = MODEL.kp * W / L
        expected = 0.5 * beta * (vgs - 0.5) ** 2 * (1 + MODEL.lambda_ * vds)
        assert i == pytest.approx(expected)

    def test_continuity_at_pinchoff(self):
        vgs = 2.0
        vov = vgs - MODEL.vt0
        below, _, _ = MODEL.ids(vgs, vov - 1e-9, W, L)
        above, _, _ = MODEL.ids(vgs, vov + 1e-9, W, L)
        assert below == pytest.approx(above, rel=1e-6)


@given(vgs=st.floats(0.6, 5.0), vds=st.floats(0.01, 5.0))
@settings(max_examples=100, deadline=None)
def test_derivatives_match_finite_difference(vgs, vds):
    h = 1e-7
    i0, gm, gds = MODEL.ids(vgs, vds, W, L)
    i_g, _, _ = MODEL.ids(vgs + h, vds, W, L)
    i_d, _, _ = MODEL.ids(vgs, vds + h, W, L)
    assert gm == pytest.approx((i_g - i0) / h, rel=1e-3, abs=1e-12)
    assert gds == pytest.approx((i_d - i0) / h, rel=1e-3, abs=1e-12)


class TestValidation:
    def test_bad_kp(self):
        with pytest.raises(DeviceModelError):
            Level1Mosfet(polarity=1, kp=0.0, vt0=0.5)

    def test_bad_polarity(self):
        with pytest.raises(DeviceModelError):
            Level1Mosfet(polarity=2, kp=1e-5, vt0=0.5)

    def test_negative_lambda(self):
        with pytest.raises(DeviceModelError):
            Level1Mosfet(polarity=1, kp=1e-5, vt0=0.5, lambda_=-0.1)
