"""Vectorized (`ids_array`) vs scalar (`ids`) device-model equivalence.

The batched MNA stamping path is only sound if the array-valued model
evaluation agrees with the scalar reference everywhere the solver can
visit — subthreshold, triode, saturation, the knee, and the leakage-floor
region, on both device polarities and both model families.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.mosfet_level1 import Level1Mosfet
from repro.devices.pentacene import PENTACENE
from repro.devices.silicon import silicon_nmos_45, silicon_pmos_45
from repro.devices.tft_level61 import UnifiedTft

# Both polarities, organic and silicon parameter corners, plus a no-leak
# no-DIBL corner where several model terms collapse to zero.
TFT_MODELS = [
    PENTACENE,                     # p-type organic
    silicon_nmos_45(),             # n-type, gamma < 0 (alpha-power)
    silicon_pmos_45(),
    UnifiedTft(polarity=+1, mu_band=1e-5, ci=1e-4, vt0=1.0,
               vt_dibl=0.0, lambda_=0.0, i_off_w=0.0, name="bare"),
]

LEVEL1_MODELS = [
    Level1Mosfet(polarity=+1, kp=2e-4, vt0=0.7, lambda_=0.05),
    Level1Mosfet(polarity=-1, kp=8e-5, vt0=0.9, lambda_=0.0),
]


def _assert_triplet_close(scalar, batched, what):
    for s, b, name in zip(scalar, batched, ("ids", "gm", "gds")):
        assert np.isclose(b, s, rtol=1e-9, atol=1e-280), \
            f"{what}: {name} scalar={s!r} vectorized={b!r}"


@pytest.mark.parametrize("model", TFT_MODELS, ids=lambda m: m.name)
@settings(max_examples=150, deadline=None)
@given(
    vgs=st.floats(-30.0, 30.0),
    vds=st.floats(0.0, 30.0),
    w=st.floats(1e-6, 1e-3),
    l=st.floats(1e-6, 1e-4),
)
def test_tft_array_matches_scalar(model, vgs, vds, w, l):
    scalar = model.ids(vgs, vds, w, l)
    batched = model.ids_array(np.array([vgs]), np.array([vds]),
                              np.array([w]), np.array([l]))
    _assert_triplet_close(scalar, [float(v[0]) for v in batched],
                          f"{model.name} vgs={vgs} vds={vds}")


@pytest.mark.parametrize("model", LEVEL1_MODELS,
                         ids=["level1_n", "level1_p"])
@settings(max_examples=150, deadline=None)
@given(
    vgs=st.floats(-5.0, 5.0),
    vds=st.floats(0.0, 5.0),
    w=st.floats(1e-7, 1e-4),
    l=st.floats(1e-8, 1e-5),
)
def test_level1_array_matches_scalar(model, vgs, vds, w, l):
    scalar = model.ids(vgs, vds, w, l)
    batched = model.ids_array(np.array([vgs]), np.array([vds]),
                              np.array([w]), np.array([l]))
    _assert_triplet_close(scalar, [float(v[0]) for v in batched],
                          f"level1 vgs={vgs} vds={vds}")


@pytest.mark.parametrize("model", TFT_MODELS, ids=lambda m: m.name)
def test_tft_edge_cases(model):
    """vds = 0, deep subthreshold, and deep saturation lanes stay finite
    and equal to the scalar branch results."""
    w, l = 100e-6, 10e-6
    points = [
        (5.0, 0.0),      # vds = 0: zero channel term, exact gds limit
        (-25.0, 10.0),   # deep subthreshold: tiny vgte, huge vds/vsat
        (25.0, 0.01),    # hard triode
        (2.0, 25.0),     # deep saturation + leakage-dominated
    ]
    vgs = np.array([p[0] for p in points])
    vds = np.array([p[1] for p in points])
    ids_v, gm_v, gds_v = model.ids_array(vgs, vds, w, l)
    assert np.all(np.isfinite(ids_v))
    assert np.all(np.isfinite(gm_v))
    assert np.all(np.isfinite(gds_v))
    for k, (g, d) in enumerate(points):
        _assert_triplet_close(
            model.ids(g, d, w, l),
            (float(ids_v[k]), float(gm_v[k]), float(gds_v[k])),
            f"{model.name} edge vgs={g} vds={d}")


def test_batch_evaluator_matches_ids_array():
    """The precompiled kernel and the convenience wrapper agree."""
    model = PENTACENE
    w = np.array([100e-6, 50e-6, 200e-6])
    l = np.array([10e-6, 10e-6, 5e-6])
    vgs = np.array([3.0, -2.0, 14.0])
    vds = np.array([0.5, 8.0, 2.0])
    via_eval = model.batch_evaluator(w, l)(vgs, vds)
    via_array = model.ids_array(vgs, vds, w, l)
    for a, b in zip(via_eval, via_array):
        np.testing.assert_allclose(a, b, rtol=0, atol=0)


def test_broadcasting():
    """ids_array broadcasts bias grids against scalar geometry."""
    model = PENTACENE
    vgs = np.linspace(-5, 15, 7)[:, None]
    vds = np.linspace(0, 10, 5)[None, :]
    ids_v, gm_v, gds_v = model.ids_array(vgs, vds, 100e-6, 10e-6)
    assert ids_v.shape == gm_v.shape == gds_v.shape == (7, 5)
    s = model.ids(float(vgs[3, 0]), float(vds[0, 2]), 100e-6, 10e-6)
    _assert_triplet_close(
        s, (float(ids_v[3, 2]), float(gm_v[3, 2]), float(gds_v[3, 2])),
        "broadcast sample")
