"""Extraction and model-fitting tests (Figure 4 reproduction)."""

import numpy as np
import pytest

from repro.devices import measured_transfer_curve
from repro.devices.extraction import (
    characterize_curve,
    extract_on_off_ratio,
    extract_subthreshold_slope,
    fit_level1,
    fit_level61,
)
from repro.devices.pentacene import PENTACENE_CI, TEST_L, TEST_W
from repro.errors import ExtractionError


@pytest.fixture(scope="module")
def curve():
    return measured_transfer_curve(vds=-1.0)


class TestFigure4:
    def test_level61_fits_well(self, curve):
        fit = fit_level61(curve, PENTACENE_CI)
        # Sub-0.1-decade RMS error across the whole sweep.
        assert fit.rms_log_error < 0.1

    def test_level1_fits_on_region(self, curve):
        fit = fit_level1(curve, PENTACENE_CI)
        # "Fast and qualitative": decent above threshold...
        assert fit.rms_log_error_on < 1.0

    def test_level1_fails_subthreshold(self, curve):
        """Figure 4's message: level 1 misses sub-VT conduction/leakage."""
        l1 = fit_level1(curve, PENTACENE_CI)
        l61 = fit_level61(curve, PENTACENE_CI)
        assert l1.rms_log_error > 10 * l61.rms_log_error

    def test_level61_recovers_parameters(self, curve):
        """The fit lands near the golden device's parameters."""
        from repro.devices import PENTACENE
        fit = fit_level61(curve, PENTACENE_CI)
        assert fit.params["mu_band"] == pytest.approx(PENTACENE.mu_band,
                                                      rel=0.2)
        assert fit.params["ss"] == pytest.approx(PENTACENE.ss, rel=0.15)
        assert fit.params["i_off_w"] == pytest.approx(PENTACENE.i_off_w,
                                                      rel=0.5)

    def test_fit_predict_matches_measurement(self, curve):
        fit = fit_level61(curve, PENTACENE_CI)
        vgs_n = -np.asarray(curve.vgs)
        order = np.argsort(vgs_n)
        pred = fit.predict(vgs_n[order], 1.0, TEST_W, TEST_L)
        meas = np.abs(curve.id_)[order]
        log_err = np.abs(np.log10(np.maximum(pred, 1e-14))
                         - np.log10(np.maximum(meas, 1e-14)))
        assert np.median(log_err) < 0.1


class TestExtractionEdgeCases:
    def test_too_few_points(self):
        curve = measured_transfer_curve(
            vgs=np.linspace(10, -10, 4))
        with pytest.raises(ExtractionError):
            characterize_curve(curve, PENTACENE_CI)

    def test_flat_curve_rejected(self):
        vgs = np.linspace(-1, 1, 50)
        with pytest.raises(ExtractionError):
            extract_subthreshold_slope(vgs, np.full(50, 1e-9))

    def test_on_off_handles_zero_floor(self):
        ratio = extract_on_off_ratio(np.array([0.0, 1e-6]))
        assert ratio > 1e6

    def test_report_fields_sane(self, curve):
        rep = characterize_curve(curve, PENTACENE_CI)
        assert rep.vds == -1.0
        assert rep.mobility_cm2 > 0
        assert rep.subthreshold_slope_mv_dec > 0
