"""Process variation and alternative-material tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import MATERIALS, PENTACENE, VariationModel, dntt_model
from repro.devices.materials import scaled_pentacene


class TestVariation:
    def test_spread_matches_paper(self):
        """Paper: VT spread across a sample 'within 0.5 V' (+/- 2 sigma)."""
        model = VariationModel()
        devices = model.sample_many(PENTACENE, 400, seed=3)
        vts = np.array([d.vt0 for d in devices])
        spread_95 = np.percentile(vts, 97.7) - np.percentile(vts, 2.3)
        assert spread_95 == pytest.approx(0.5, rel=0.25)

    def test_deterministic_per_seed(self):
        m = VariationModel()
        a = m.sample_many(PENTACENE, 5, seed=1)
        b = m.sample_many(PENTACENE, 5, seed=1)
        assert [d.vt0 for d in a] == [d.vt0 for d in b]

    def test_mobility_lognormal_positive(self):
        m = VariationModel(mu_sigma_rel=0.5)
        devices = m.sample_many(PENTACENE, 100, seed=2)
        assert all(d.mu_band > 0 for d in devices)

    def test_zero_variation(self):
        m = VariationModel(vt_spread=0.0, mu_sigma_rel=0.0)
        d = m.sample_many(PENTACENE, 3, seed=0)
        assert all(x.vt0 == PENTACENE.vt0 for x in d)

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            VariationModel(vt_spread=-0.1)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_samples_remain_valid_devices(self, seed):
        m = VariationModel()
        rng = np.random.default_rng(seed)
        d = m.sample(PENTACENE, rng)
        i, gm, gds = d.ids(5.0, 2.0, 100e-6, 20e-6)
        assert i > 0 and gm >= 0 and gds >= 0


class TestMaterials:
    def test_dntt_mobility_factor(self):
        d = dntt_model(mobility_factor=10.0)
        assert d.mu_band == pytest.approx(10 * PENTACENE.mu_band)
        assert d.polarity == -1

    def test_dntt_faster_device(self):
        d = dntt_model()
        i_dntt, _, _ = d.ids(5.0, 2.0, 100e-6, 20e-6)
        i_pent, _, _ = PENTACENE.ids(5.0, 2.0, 100e-6, 20e-6)
        assert i_dntt > 5 * i_pent

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            dntt_model(mobility_factor=-1)

    def test_registry(self):
        assert "pentacene" in MATERIALS and "dntt" in MATERIALS

    def test_scaled_pentacene_overlap(self):
        s = scaled_pentacene(0.5)
        assert s.c_overlap == pytest.approx(0.5 * PENTACENE.c_overlap)

    def test_scaled_pentacene_validation(self):
        with pytest.raises(ValueError):
            scaled_pentacene(0.0)
