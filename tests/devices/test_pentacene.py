"""Golden-device calibration tests: Section 4.1's reported values.

These are reproduction checks — the pentacene model must yield the
paper's extracted figures of merit through the same extraction routines
the 'measurements' feed.
"""

import numpy as np
import pytest

from repro.devices import PENTACENE, measured_transfer_curve, pentacene_model
from repro.devices.extraction import characterize_curve
from repro.devices.pentacene import (
    ORGANIC_VDD,
    ORGANIC_VSS,
    PENTACENE_CI,
    TEST_L,
    TEST_W,
)


@pytest.fixture(scope="module")
def report_vds1():
    return characterize_curve(measured_transfer_curve(vds=-1.0), PENTACENE_CI)


@pytest.fixture(scope="module")
def report_vds10():
    return characterize_curve(measured_transfer_curve(vds=-10.0), PENTACENE_CI)


class TestSection41Calibration:
    def test_linear_mobility(self, report_vds1):
        """Paper: 0.16 cm^2/Vs (within measurement noise)."""
        assert report_vds1.mobility_cm2 == pytest.approx(0.16, rel=0.15)

    def test_subthreshold_slope(self, report_vds1):
        """Paper: 350 mV/dec."""
        assert report_vds1.subthreshold_slope_mv_dec == pytest.approx(
            350.0, rel=0.10)

    def test_on_off_ratio(self, report_vds1):
        """Paper: 1e6 (order of magnitude)."""
        assert 3e5 < report_vds1.on_off_ratio < 3e6

    def test_vt_at_vds1_negative(self, report_vds1):
        """Paper: VT = -1.3 V at VDS = -1 V."""
        assert report_vds1.threshold_v == pytest.approx(-1.3, abs=0.5)

    def test_vt_sign_flip_at_high_drain_bias(self, report_vds1, report_vds10):
        """Paper: VT flips to +1.3 V at VDS = -10 V."""
        assert report_vds1.threshold_v < 0
        assert report_vds10.threshold_v > 0.5


class TestMeasurementGenerator:
    def test_deterministic_per_seed(self):
        a = measured_transfer_curve(seed=7)
        b = measured_transfer_curve(seed=7)
        assert np.array_equal(a.id_, b.id_)

    def test_noise_varies_with_seed(self):
        a = measured_transfer_curve(seed=1)
        b = measured_transfer_curve(seed=2)
        assert not np.array_equal(a.id_, b.id_)

    def test_positive_vds_rejected(self):
        with pytest.raises(ValueError):
            measured_transfer_curve(vds=+1.0)

    def test_gate_leakage_small(self):
        curve = measured_transfer_curve()
        assert np.max(curve.ig) < 1e-10
        assert np.max(curve.id_) > 1e-6

    def test_geometry_recorded(self):
        curve = measured_transfer_curve()
        assert curve.w == TEST_W and curve.l == TEST_L


class TestModelVariants:
    def test_vt_shift(self):
        shifted = pentacene_model(vt_shift=0.3)
        assert shifted.vt0 == pytest.approx(PENTACENE.vt0 + 0.3)

    def test_mu_scale(self):
        scaled = pentacene_model(mu_scale=2.0)
        assert scaled.mu_band == pytest.approx(2 * PENTACENE.mu_band)

    def test_bad_mu_scale(self):
        with pytest.raises(ValueError):
            pentacene_model(mu_scale=0.0)

    def test_rails(self):
        assert ORGANIC_VDD == 5.0
        assert ORGANIC_VSS == -15.0
