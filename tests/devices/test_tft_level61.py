"""Unified TFT model tests: physics invariants and exact derivatives."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import PENTACENE, UnifiedTft
from repro.errors import DeviceModelError

W, L = 100e-6, 20e-6


class TestValidation:
    def test_bad_polarity(self):
        with pytest.raises(DeviceModelError):
            UnifiedTft(polarity=0, mu_band=1e-5, ci=1e-3, vt0=0.0)

    def test_negative_mobility(self):
        with pytest.raises(DeviceModelError):
            UnifiedTft(polarity=-1, mu_band=-1e-5, ci=1e-3, vt0=0.0)

    def test_gamma_floor(self):
        with pytest.raises(DeviceModelError):
            UnifiedTft(polarity=1, mu_band=1e-5, ci=1e-3, vt0=0.0,
                       gamma=-2.5)


class TestPhysicsInvariants:
    def test_zero_vds_zero_current(self):
        i, _, gds = PENTACENE.ids(5.0, 0.0, W, L)
        assert i == 0.0
        assert gds > 0.0  # finite channel conductance at the origin

    def test_current_increases_with_vgs(self):
        i1, _, _ = PENTACENE.ids(3.0, 2.0, W, L)
        i2, _, _ = PENTACENE.ids(5.0, 2.0, W, L)
        assert i2 > i1

    def test_current_increases_with_vds(self):
        i1, _, _ = PENTACENE.ids(5.0, 1.0, W, L)
        i2, _, _ = PENTACENE.ids(5.0, 3.0, W, L)
        assert i2 > i1

    def test_current_scales_with_geometry(self):
        i1, _, _ = PENTACENE.ids(5.0, 2.0, W, L)
        i2, _, _ = PENTACENE.ids(5.0, 2.0, 2 * W, L)
        # Channel part doubles; leakage also scales with W.
        assert i2 == pytest.approx(2 * i1, rel=0.01)

    def test_subthreshold_is_exponential(self):
        """One observed-SS step below threshold drops current ~10x."""
        vt = PENTACENE.threshold(1.0)
        v1 = vt - 4 * PENTACENE.ss
        v2 = v1 - PENTACENE.ss
        i1, _, _ = PENTACENE.ids(v1, 1.0, W, L)
        i2, _, _ = PENTACENE.ids(v2, 1.0, W, L)
        ratio = (i1 - PENTACENE.i_off_w * W) / max(i2 - PENTACENE.i_off_w * W,
                                                   1e-30)
        assert 6.0 < ratio < 14.0

    def test_leakage_floor(self):
        """Deep off: the current approaches the leakage floor."""
        i, _, _ = PENTACENE.ids(-10.0, 1.0, W, L)
        floor = PENTACENE.i_off_w * W * math.tanh(1.0 / 0.1)
        assert i == pytest.approx(floor, rel=0.05)

    def test_saturation_flattens(self):
        """Beyond vdsat, current grows only via CLM/DIBL (slowly)."""
        i1, _, _ = PENTACENE.ids(5.0, 4.0, W, L)
        i2, _, _ = PENTACENE.ids(5.0, 8.0, W, L)
        assert i2 < 1.5 * i1


@given(vgs=st.floats(-8.0, 8.0), vds=st.floats(0.01, 10.0))
@settings(max_examples=120, deadline=None)
def test_gm_matches_finite_difference(vgs, vds):
    h = 1e-6
    i0, gm, _ = PENTACENE.ids(vgs, vds, W, L)
    i1, _, _ = PENTACENE.ids(vgs + h, vds, W, L)
    numeric = (i1 - i0) / h
    scale = max(abs(gm), abs(numeric), 1e-15)
    assert abs(gm - numeric) / scale < 1e-2


@given(vgs=st.floats(-8.0, 8.0), vds=st.floats(0.01, 10.0))
@settings(max_examples=120, deadline=None)
def test_gds_matches_finite_difference(vgs, vds):
    h = 1e-6
    i0, _, gds = PENTACENE.ids(vgs, vds, W, L)
    i1, _, _ = PENTACENE.ids(vgs, vds + h, W, L)
    numeric = (i1 - i0) / h
    scale = max(abs(gds), abs(numeric), 1e-15)
    assert abs(gds - numeric) / scale < 1e-2


@given(vgs=st.floats(-50.0, 50.0), vds=st.floats(0.0, 50.0))
@settings(max_examples=120, deadline=None)
def test_no_overflow_in_extreme_bias(vgs, vds):
    """Far outside the calibrated range the model stays finite."""
    i, gm, gds = PENTACENE.ids(vgs, vds, W, L)
    assert math.isfinite(i) and math.isfinite(gm) and math.isfinite(gds)
    assert i >= 0.0


@given(vgs=st.floats(-5.0, 8.0), vds=st.floats(0.0, 10.0),
       w=st.floats(10e-6, 1000e-6), l=st.floats(5e-6, 100e-6))
@settings(max_examples=80, deadline=None)
def test_current_nonnegative_and_monotone_in_w(vgs, vds, w, l):
    i1, _, _ = PENTACENE.ids(vgs, vds, w, l)
    i2, _, _ = PENTACENE.ids(vgs, vds, 1.5 * w, l)
    assert 0.0 <= i1 <= i2 + 1e-30


class TestCapacitances:
    def test_gate_capacitance_positive(self):
        assert PENTACENE.gate_capacitance(W, L) > 0

    def test_capacitance_scaling(self):
        c1 = PENTACENE.gate_capacitance(W, L)
        c2 = PENTACENE.gate_capacitance(2 * W, L)
        assert c2 == pytest.approx(2 * c1, rel=1e-9)

    def test_split_convention(self):
        cgs, cgd, cds = PENTACENE.capacitances(W, L)
        assert cgs == cgd
        assert cds == 0.0
