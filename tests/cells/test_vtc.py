"""VTC analysis tests, including the Figure 6/7/8 reproduction claims."""

import numpy as np
import pytest

from repro.analysis.figures import (
    fig6_inverter_comparison,
    fig7_vdd_scaling,
    fig8_vss_tuning,
)
from repro.cells.topologies import pseudo_e_inverter
from repro.cells.vtc import (
    VtcCurve,
    analyze_inverter,
    compute_vtc,
    max_gain,
    noise_margin_mec,
    noise_margins_unity_gain,
    switching_threshold,
)
from repro.devices import PENTACENE


@pytest.fixture(scope="module")
def pseudo_curve():
    return compute_vtc(pseudo_e_inverter(PENTACENE), n_points=121)


class TestVtcMechanics:
    def test_monotone_decreasing_overall(self, pseudo_curve):
        assert pseudo_curve.vout[0] > pseudo_curve.vout[-1]

    def test_vm_is_fixed_point(self, pseudo_curve):
        vm = switching_threshold(pseudo_curve)
        f_vm = float(np.interp(vm, pseudo_curve.vin, pseudo_curve.vout))
        assert f_vm == pytest.approx(vm, abs=0.02)

    def test_gain_exceeds_one(self, pseudo_curve):
        assert max_gain(pseudo_curve) > 1.0

    def test_mec_positive_for_regenerative_curve(self, pseudo_curve):
        assert noise_margin_mec(pseudo_curve) > 0.3

    def test_mec_on_ideal_inverter(self):
        """An ideal steep inverter's MEC approaches VDD/2."""
        vin = np.linspace(0, 5, 501)
        vout = np.where(vin < 2.5, 5.0, 0.0) + 0.0
        # smooth one segment to keep it a function
        curve = VtcCurve(vin=vin, vout=vout, power=np.zeros_like(vin), vdd=5.0)
        nm = noise_margin_mec(curve)
        assert nm == pytest.approx(2.5, abs=0.1)

    def test_unity_gain_margins_nonnegative(self, pseudo_curve):
        nmh, nml = noise_margins_unity_gain(pseudo_curve)
        assert nmh >= 0 and nml >= 0

    def test_power_positive_somewhere(self, pseudo_curve):
        assert np.max(pseudo_curve.power) > 0


class TestFigure6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return fig6_inverter_comparison()

    def test_gain_ordering(self, fig6):
        """Paper: diode 1.2 < biased 1.6 < pseudo-E 3.0."""
        g_d, g_b, g_p = fig6.gains()
        assert g_d < g_b < g_p

    def test_pseudo_e_gain_factor(self, fig6):
        """Pseudo-E gain ~2.5x the diode-load gain (paper: 3.0 vs 1.2)."""
        g_d, _, g_p = fig6.gains()
        assert g_p / g_d > 2.0

    def test_noise_margin_improvement(self, fig6):
        """Paper: 'the noise margin increases ten times'."""
        assert fig6.pseudo_e.nm_mec > 10 * max(fig6.diode.nm_mec, 0.05)

    def test_pseudo_e_reaches_rails(self, fig6):
        """Pseudo-E's level shifter lets VOH reach VDD (Section 4.3.2)."""
        assert fig6.pseudo_e.voh > 0.97 * 15.0
        assert fig6.pseudo_e.vol < 0.02 * 15.0

    def test_ratioed_styles_do_not_reach_vdd(self, fig6):
        assert fig6.diode.voh < 0.9 * 15.0
        assert fig6.biased.voh < 0.9 * 15.0

    def test_static_power_scale(self, fig6):
        """All styles burn ~100 uW-scale static power at VIN = 0."""
        for a in (fig6.diode, fig6.biased, fig6.pseudo_e):
            assert 20e-6 < a.static_power_low < 500e-6

    def test_static_power_asymmetry(self, fig6):
        """Input-high static power is orders of magnitude lower."""
        for a in (fig6.diode, fig6.biased, fig6.pseudo_e):
            assert a.static_power_high < 0.05 * a.static_power_low


class TestFigure7:
    @pytest.fixture(scope="class")
    def fig7(self):
        return fig7_vdd_scaling()

    def test_vm_tracks_vdd(self, fig7):
        vms = [fig7.analyses[v].vm for v in (5.0, 10.0, 15.0)]
        assert vms[0] < vms[1] < vms[2]

    def test_power_reduction_at_low_vdd(self, fig7):
        """Paper: 'the 5 V inverter will be only 6% that of the 15 V'."""
        p5 = fig7.analyses[5.0].static_power_low
        p15 = fig7.analyses[15.0].static_power_low
        assert p5 < 0.4 * p15

    def test_gain_stays_useful(self, fig7):
        for a in fig7.analyses.values():
            assert a.max_gain > 2.0

    def test_noise_margin_fraction_of_vdd(self, fig7):
        """Paper: noise margin about 20-25% of VDD across supplies."""
        for vdd, a in fig7.analyses.items():
            assert 0.10 < a.nm_mec / vdd < 0.35


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return fig8_vss_tuning()

    def test_vm_increases_with_vss(self, fig8):
        """Paper: 'when VSS increases by 10 V, VM increases by 2.2 V'."""
        assert fig8.slope > 0

    def test_relationship_is_linear(self, fig8):
        fit = fig8.slope * fig8.vss_values + fig8.intercept
        residual = np.max(np.abs(fit - fig8.vm_values))
        assert residual < 0.15

    def test_slope_magnitude(self, fig8):
        """Paper slope 0.22; ours is the same order (document exact)."""
        assert 0.05 < fig8.slope < 0.4
