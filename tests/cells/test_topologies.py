"""Cell topology tests: structure, logic functions, DC behaviour."""

import itertools

import pytest

from repro.cells.topologies import (
    CellDesign,
    biased_load_inverter,
    build_dc_testbench,
    cmos_inverter,
    cmos_nand,
    cmos_nor,
    diode_load_inverter,
    nand_dff,
    pseudo_e_inverter,
    pseudo_e_nand,
    pseudo_e_nor,
)
from repro.devices import PENTACENE, silicon_nmos_45, silicon_pmos_45
from repro.errors import CircuitError
from repro.spice.dc import operating_point


def _dc_logic_output(cell: CellDesign, inputs: dict[str, bool]) -> float:
    vdd = cell.rails["vdd"]
    levels = {p: (vdd if v else 0.0) for p, v in inputs.items()}
    ckt = build_dc_testbench(cell, levels)
    x, sys = operating_point(ckt)
    return sys.voltage(x, "out")


ORGANIC_GATES = [
    pseudo_e_nand(PENTACENE, 2),
    pseudo_e_nand(PENTACENE, 3),
    pseudo_e_nor(PENTACENE, 2),
    pseudo_e_nor(PENTACENE, 3),
    pseudo_e_inverter(PENTACENE),
]

_nmos, _pmos = silicon_nmos_45(), silicon_pmos_45()
CMOS_GATES = [
    cmos_nand(_nmos, _pmos, 2),
    cmos_nand(_nmos, _pmos, 3),
    cmos_nor(_nmos, _pmos, 2),
    cmos_nor(_nmos, _pmos, 3),
    cmos_inverter(_nmos, _pmos),
]


@pytest.mark.parametrize("cell", ORGANIC_GATES + CMOS_GATES,
                         ids=lambda c: f"{c.style}_{c.name}")
def test_dc_output_matches_logic_function(cell):
    """Every input combination produces the boolean the function says."""
    vdd = cell.rails["vdd"]
    for values in itertools.product((False, True), repeat=len(cell.inputs)):
        inputs = dict(zip(cell.inputs, values))
        expected = cell.evaluate(**inputs)
        vout = _dc_logic_output(cell, inputs)
        if expected:
            assert vout > 0.7 * vdd, (inputs, vout)
        else:
            assert vout < 0.3 * vdd, (inputs, vout)


class TestStructure:
    def test_pseudo_e_inverter_is_4t(self):
        assert pseudo_e_inverter(PENTACENE).transistor_count == 4

    def test_diode_load_is_2t(self):
        assert diode_load_inverter(PENTACENE).transistor_count == 2

    def test_nand_transistor_counts(self):
        assert pseudo_e_nand(PENTACENE, 2).transistor_count == 6
        assert pseudo_e_nand(PENTACENE, 3).transistor_count == 8

    def test_cmos_nand2_is_4t(self):
        assert cmos_nand(_nmos, _pmos, 2).transistor_count == 4

    def test_dff_structure(self):
        lib_nand2 = pseudo_e_nand(PENTACENE, 2)
        lib_nand3 = pseudo_e_nand(PENTACENE, 3)
        dff = nand_dff(lib_nand2, lib_nand3)
        assert dff.transistor_count == 6 * lib_nand3.transistor_count
        assert set(dff.inputs) == {"d", "clk", "pre_n", "clr_n"}
        assert set(dff.outputs) == {"q", "q_n"}

    def test_input_capacitance_positive(self):
        cell = pseudo_e_nand(PENTACENE, 2)
        for pin in cell.inputs:
            assert cell.input_capacitance(pin) > 0

    def test_unknown_pin_rejected(self):
        with pytest.raises(CircuitError):
            pseudo_e_inverter(PENTACENE).input_capacitance("z")

    def test_nand_width_bounds(self):
        with pytest.raises(CircuitError):
            pseudo_e_nand(PENTACENE, 1)
        with pytest.raises(CircuitError):
            pseudo_e_nand(PENTACENE, 5)

    def test_polarity_checks(self):
        with pytest.raises(CircuitError):
            pseudo_e_inverter(silicon_nmos_45())
        with pytest.raises(CircuitError):
            cmos_inverter(_pmos, _pmos)


class TestEvaluate:
    def test_nand3_function(self):
        cell = pseudo_e_nand(PENTACENE, 3)
        assert cell.evaluate(a=True, b=True, c=True) is False
        assert cell.evaluate(a=True, b=True, c=False) is True

    def test_missing_input_raises(self):
        with pytest.raises(CircuitError):
            pseudo_e_nand(PENTACENE, 2).evaluate(a=True)

    def test_dff_has_no_function(self):
        dff = nand_dff(pseudo_e_nand(PENTACENE, 2), pseudo_e_nand(PENTACENE, 3))
        with pytest.raises(CircuitError):
            dff.input_capacitance("nope")
