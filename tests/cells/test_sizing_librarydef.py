"""Sizing explorer and library-definition tests."""

import pytest

from repro.cells.library_def import (
    ORGANIC_SIZES,
    organic_library_definition,
    silicon_library_definition,
)
from repro.cells.sizing import (
    UtilityWeights,
    estimate_area,
    estimate_gate_delay,
    optimize_inverter_sizing,
)
from repro.cells.topologies import pseudo_e_inverter
from repro.devices import PENTACENE
from repro.errors import LibraryError


class TestDelayEstimate:
    def test_positive(self):
        cell = pseudo_e_inverter(PENTACENE)
        d = estimate_gate_delay(cell, 10e-12)
        assert d > 0

    def test_scales_with_load(self):
        cell = pseudo_e_inverter(PENTACENE)
        d1 = estimate_gate_delay(cell, 5e-12)
        d2 = estimate_gate_delay(cell, 50e-12)
        assert d2 == pytest.approx(10 * d1, rel=1e-6)

    def test_organic_timescale(self):
        """Pentacene FO4-ish delay is in the tens-of-us range."""
        cell = pseudo_e_inverter(PENTACENE)
        d = estimate_gate_delay(cell, 4 * cell.input_capacitance("a"))
        assert 1e-6 < d < 1e-2


class TestOptimizer:
    @pytest.fixture(scope="class")
    def result(self):
        # Reduced grid to keep the suite fast.
        return optimize_inverter_sizing(
            PENTACENE,
            w_drive_grid=(100e-6,),
            load_ratio_grid=(0.1, 0.3),
            down_ratio_grid=(0.5, 1.5),
            n_vtc_points=41,
        )

    def test_returns_scored_candidates(self, result):
        assert len(result.candidates) == 4
        assert result.best is result.candidates[0]

    def test_ranking_is_descending(self, result):
        utils = [c.utility for c in result.candidates]
        assert utils == sorted(utils, reverse=True)

    def test_prefers_weak_shifter_load(self, result):
        """The known-good design point: weak load (ratio 0.1) wins."""
        assert result.best.sizes["w_shift_load"] == pytest.approx(10e-6)

    def test_weights_validation_free(self):
        w = UtilityWeights(noise_margin=5.0)
        assert w.noise_margin == 5.0

    def test_area_estimate(self):
        cell = pseudo_e_inverter(PENTACENE)
        assert estimate_area(cell) > 0


class TestLibraryDefinitions:
    def test_organic_has_six_cells(self):
        lib = organic_library_definition()
        assert set(lib.cells) == {"inv", "nand2", "nand3", "nor2", "nor3"}
        assert lib.dff is not None
        assert lib.process == "organic"

    def test_silicon_has_six_cells(self):
        lib = silicon_library_definition()
        assert set(lib.cells) == {"inv", "nand2", "nand3", "nor2", "nor3"}
        assert lib.process == "silicon"

    def test_unknown_cell_raises(self):
        with pytest.raises(LibraryError):
            organic_library_definition().cell("xor9")

    def test_areas_ordered_by_complexity(self):
        lib = organic_library_definition()
        assert (lib.cell_area("inv") < lib.cell_area("nand2")
                < lib.cell_area("nand3"))
        assert lib.cell_area("dff") > 5 * lib.cell_area("nand3")

    def test_organic_cells_much_larger_than_silicon(self):
        org = organic_library_definition()
        sil = silicon_library_definition()
        assert org.cell_area("inv") > 1e4 * sil.cell_area("inv")

    def test_size_overrides(self):
        lib = organic_library_definition(sizes={"w_drive": 150e-6})
        drive = [d for d in lib.cell("inv").devices
                 if d.name == "m_shift_drive"][0]
        assert drive.w == pytest.approx(150e-6)

    def test_default_sizes_document_weak_load(self):
        ratio = ORGANIC_SIZES["w_shift_load"] / ORGANIC_SIZES["l_shift_load"]
        assert ratio == pytest.approx(0.1)

    def test_input_capacitance_accessor(self):
        lib = organic_library_definition()
        assert lib.input_capacitance("inv", "a") > 0
        assert lib.input_capacitance("dff", "clk") > 0
