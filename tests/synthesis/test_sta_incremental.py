"""Incremental STA and shared-structure synthesis (PR 8).

The contract under test is *bit-identical results*: the incremental
delta-retiming path must reproduce the full re-time path exactly —
every arrival, slew, load, per-gate delay, the critical path and the
max delay — for both the scalar and the vector engine, across
copy-on-extend construction, in-place edits and the feature-gate
fallback.  Tolerance-free comparisons throughout.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.runtime import profiling, telemetry
from repro.synthesis import sta
from repro.synthesis.generators import (
    carry_select_adder,
    extend_carry_select_adder,
    ripple_carry_adder,
    simple_alu,
)
from repro.synthesis.mapping import (
    map_cached,
    mapped_cell_counts,
    reset_map_cache,
    technology_map,
)
from repro.synthesis.netlist import LIBRARY_CELLS


@pytest.fixture(autouse=True)
def _incremental_isolation(monkeypatch):
    """Fresh sessions + the feature gate on, for every test here."""
    monkeypatch.setenv("REPRO_INCREMENTAL_STA", "1")
    sta.reset_incremental()
    reset_map_cache()
    yield
    sta.reset_incremental()
    reset_map_cache()


def _assert_reports_identical(got, want):
    assert got.max_delay == want.max_delay
    assert got.critical_path == want.critical_path
    assert got.arrival == want.arrival
    assert got.slew == want.slew
    assert got.load == want.load
    assert got.gate_delay == want.gate_delay


def _full_retime(netlist, library, wire, monkeypatch):
    """Oracle: the non-incremental path on a fresh session store."""
    with monkeypatch.context() as m:
        m.setenv("REPRO_INCREMENTAL_STA", "0")
        return sta.static_timing(netlist, library, wire)


# ---------------------------------------------------------------------------
# Scalar engine
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("base_w,ext_w", [(8, 12), (8, 16), (16, 24)])
def test_scalar_extension_bitwise(base_w, ext_w, organic_lib, organic_wire,
                                  monkeypatch):
    base = carry_select_adder(base_w)
    mapped_base = map_cached(base)
    sta.static_timing(mapped_base, organic_lib, organic_wire)

    ext = extend_carry_select_adder(base, ext_w)
    got = sta.static_timing(map_cached(ext), organic_lib, organic_wire)

    fresh = technology_map(carry_select_adder(ext_w))
    want = _full_retime(fresh, organic_lib, organic_wire, monkeypatch)
    _assert_reports_identical(got, want)


def test_scalar_in_place_edit_bitwise(organic_lib, organic_wire,
                                      monkeypatch):
    """Editing a timed netlist in place re-times only from the edit."""
    nl = technology_map(ripple_carry_adder(8))
    sta.static_timing(nl, organic_lib, organic_wire)

    prev = nl.primary_outputs[0]
    for _ in range(4):
        prev = nl.add_gate("inv", (prev,))
    nl.set_outputs(list(nl.primary_outputs) + [prev])
    got = sta.static_timing(nl, organic_lib, organic_wire)

    sta.reset_incremental()
    want = _full_retime(nl, organic_lib, organic_wire, monkeypatch)
    _assert_reports_identical(got, want)


def test_exact_repeat_returns_recorded_report(organic_lib, organic_wire):
    nl = technology_map(ripple_carry_adder(8))
    first = sta.static_timing(nl, organic_lib, organic_wire)
    assert sta.static_timing(nl, organic_lib, organic_wire) is first


# ---------------------------------------------------------------------------
# Vector engine
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("base_w,ext_w", [(8, 16), (16, 32)])
def test_vector_extension_bitwise(base_w, ext_w, organic_lib, organic_wire,
                                  monkeypatch):
    monkeypatch.setattr(sta, "VECTOR_MIN_GATES", 1)
    base = carry_select_adder(base_w)
    mapped_base = map_cached(base)
    sta.static_timing(mapped_base, organic_lib, organic_wire)

    ext = extend_carry_select_adder(base, ext_w)
    got = sta.static_timing(map_cached(ext), organic_lib, organic_wire)

    fresh = technology_map(carry_select_adder(ext_w))
    want = _full_retime(fresh, organic_lib, organic_wire, monkeypatch)
    _assert_reports_identical(got, want)


def test_vector_incremental_retimes_subset(organic_lib, organic_wire):
    monkeypatch_min = 1
    with pytest.MonkeyPatch.context() as m:
        m.setattr(sta, "VECTOR_MIN_GATES", monkeypatch_min)
        base = carry_select_adder(16)
        sta.static_timing(map_cached(base), organic_lib, organic_wire)
        ext = extend_carry_select_adder(base, 20)
        telemetry.enable(True)
        try:
            sta.static_timing(map_cached(ext), organic_lib, organic_wire)
            counters = telemetry.counters()
        finally:
            telemetry.enable(False)
    assert counters.get("sta.incremental_runs") == 1
    # The whole point: far fewer gates re-timed than the netlist holds.
    assert 0 < counters["sta.retimed_gates"] < counters["sta.gates"]


def test_engine_mismatch_falls_back_to_full(organic_lib, organic_wire,
                                            monkeypatch):
    """A scalar-recorded session must not satisfy a vector run (and the
    other way round) — the exact-repeat shortcut is engine-aware."""
    nl = technology_map(ripple_carry_adder(8))
    scalar_report = sta.static_timing(nl, organic_lib, organic_wire)
    monkeypatch.setattr(sta, "VECTOR_MIN_GATES", 1)
    vector_report = sta.static_timing(nl, organic_lib, organic_wire)
    assert vector_report is not scalar_report
    assert vector_report.max_delay == pytest.approx(scalar_report.max_delay,
                                                    rel=1e-12)


# ---------------------------------------------------------------------------
# Session keying: no collisions across wires, loads, libraries
# ---------------------------------------------------------------------------

def test_sessions_keyed_by_wire_model(organic_lib, organic_wire,
                                      monkeypatch):
    """Re-timing the same netlist under a scaled wire model must not
    reuse the other wire's session."""
    nl = technology_map(carry_select_adder(8))
    half_wire = organic_wire.scaled(0.5)
    r_full_wire = sta.static_timing(nl, organic_lib, organic_wire)
    r_half_wire = sta.static_timing(nl, organic_lib, half_wire)
    assert r_full_wire.max_delay != r_half_wire.max_delay

    want_full = _full_retime(nl, organic_lib, organic_wire, monkeypatch)
    want_half = _full_retime(nl, organic_lib, half_wire, monkeypatch)
    _assert_reports_identical(r_full_wire, want_full)
    _assert_reports_identical(r_half_wire, want_half)


def test_sessions_keyed_by_library(organic_lib, silicon_lib, organic_wire,
                                   silicon_wire, monkeypatch):
    nl = technology_map(carry_select_adder(8))
    r_org = sta.static_timing(nl, organic_lib, organic_wire)
    r_sil = sta.static_timing(nl, silicon_lib, silicon_wire)
    assert r_org.max_delay != r_sil.max_delay
    _assert_reports_identical(
        r_sil, _full_retime(nl, silicon_lib, silicon_wire, monkeypatch))


def test_fingerprints_distinguish_widths():
    fps = {technology_map(carry_select_adder(w)).fingerprint()
           for w in (8, 12, 16, 20)}
    assert len(fps) == 4


def test_fingerprint_tracks_edits():
    nl = ripple_carry_adder(8)
    fp0 = nl.fingerprint()
    assert nl.fingerprint() == fp0          # stable across repeated reads
    nl.add_gate("inv", (nl.primary_outputs[0],))
    assert nl.fingerprint() != fp0
    fp1 = nl.fingerprint()
    nl.set_outputs(nl.primary_outputs[:-1])
    assert nl.fingerprint() != fp1          # PO list is part of the print


# ---------------------------------------------------------------------------
# Feature gate
# ---------------------------------------------------------------------------

def test_disabled_gate_records_no_sessions(organic_lib, organic_wire,
                                           monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL_STA", "0")
    sta.reset_incremental()
    nl = technology_map(ripple_carry_adder(8))
    r1 = sta.static_timing(nl, organic_lib, organic_wire)
    r2 = sta.static_timing(nl, organic_lib, organic_wire)
    assert r1 is not r2                     # no exact-repeat shortcut
    _assert_reports_identical(r1, r2)
    assert len(sta._SESSIONS) == 0


def test_map_cached_disabled_gate_maps_fresh(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL_STA", "0")
    nl = ripple_carry_adder(8)
    m1 = map_cached(nl)
    m2 = map_cached(nl)
    assert m1 is not m2
    assert list(m1.gates) == list(m2.gates)


def test_session_store_is_bounded(organic_lib, organic_wire):
    nl = technology_map(ripple_carry_adder(4))
    for k in range(sta._SESSION_LIMIT + 8):
        sta.static_timing(nl, organic_lib, organic_wire,
                          output_load=1e-15 * (k + 1))
    assert len(sta._SESSIONS) <= sta._SESSION_LIMIT


# ---------------------------------------------------------------------------
# Property tests: random extensions
# ---------------------------------------------------------------------------

_CELL_ARITY = {"inv": 1, "nand2": 2, "nor2": 2, "nand3": 3, "nor3": 3}


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.data())
def test_random_extension_bitwise(organic_lib, organic_wire, monkeypatch,
                                  data):
    """Random library-cell extensions of a timed base re-time bitwise."""
    sta.reset_incremental()
    base = technology_map(ripple_carry_adder(4))
    sta.static_timing(base, organic_lib, organic_wire)

    ext = base.extend()
    nets = list(base.primary_inputs) + [g.output
                                        for g in base.gates.values()]
    n_new = data.draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_new):
        cell = data.draw(st.sampled_from(sorted(_CELL_ARITY)))
        arity = _CELL_ARITY[cell]
        ins = [data.draw(st.sampled_from(nets)) for _ in range(arity)]
        nets.append(ext.add_gate(cell, ins))
    extra_pos = data.draw(
        st.lists(st.sampled_from(nets), min_size=1, max_size=4,
                 unique=True))
    ext.set_outputs(list(base.primary_outputs) + [
        n for n in extra_pos if n not in base.primary_outputs])

    got = sta.static_timing(ext, organic_lib, organic_wire)
    want = _full_retime(ext, organic_lib, organic_wire, monkeypatch)
    _assert_reports_identical(got, want)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(widths=st.lists(st.sampled_from([8, 12, 16, 20, 24]),
                       min_size=2, max_size=4, unique=True))
def test_random_width_chain_bitwise(organic_lib, organic_wire, monkeypatch,
                                    widths):
    """A growing CSA chain matches fresh synthesis at every step."""
    sta.reset_incremental()
    reset_map_cache()
    widths = sorted(widths)
    nl = carry_select_adder(widths[0])
    for w in widths:
        if w > widths[0]:
            nl = extend_carry_select_adder(nl, w)
        got = sta.static_timing(map_cached(nl), organic_lib, organic_wire)
        fresh = technology_map(carry_select_adder(w))
        want = _full_retime(fresh, organic_lib, organic_wire, monkeypatch)
        _assert_reports_identical(got, want)


# ---------------------------------------------------------------------------
# Shared-structure construction
# ---------------------------------------------------------------------------

def test_extend_csa_requires_block_boundary():
    base = carry_select_adder(6, block=4)       # 6 % 4 != 0
    with pytest.raises(SynthesisError):
        extend_carry_select_adder(base, 10)
    with pytest.raises(SynthesisError):
        extend_carry_select_adder(carry_select_adder(8), 8)
    with pytest.raises(SynthesisError):
        extend_carry_select_adder(ripple_carry_adder(8), 12)


def test_extended_mapping_matches_fresh():
    base = carry_select_adder(8)
    map_cached(base)
    ext = extend_carry_select_adder(base, 16)
    got = map_cached(ext)
    want = technology_map(carry_select_adder(16))
    assert list(got.gates) == list(want.gates)
    for g1, g2 in zip(got.gates.values(), want.gates.values()):
        assert (g1.name, g1.cell, g1.inputs, g1.output) == \
               (g2.name, g2.cell, g2.inputs, g2.output)
    assert got.primary_outputs == want.primary_outputs


@pytest.mark.parametrize("builder", [
    lambda: ripple_carry_adder(6),
    lambda: carry_select_adder(8),
    lambda: simple_alu(8),
    lambda: technology_map(ripple_carry_adder(6)),
])
def test_mapped_cell_counts_exact(builder):
    source = builder()
    mapped = technology_map(source)
    assert mapped_cell_counts(source) == dict(
        Counter(g.cell for g in mapped.gates.values()))
    assert set(mapped_cell_counts(source)) <= LIBRARY_CELLS


def test_counts_area_matches_summed_area(organic_lib):
    import math

    from repro.core.physical import _block_area, reset_structure_caches
    reset_structure_caches()
    try:
        for block, width in (("adder", 8), ("alu", 8), ("complex", 8)):
            got = _block_area(block, width, organic_lib)
            if block == "adder":
                mapped = technology_map(carry_select_adder(width))
            elif block == "alu":
                mapped = technology_map(simple_alu(width))
            else:
                from repro.synthesis.generators import complex_alu_slice
                mapped = technology_map(complex_alu_slice(width))
            want = sum(organic_lib.cell(g.cell).area
                       for g in mapped.gates.values())
            assert math.isclose(got, want, rel_tol=1e-9)
    finally:
        reset_structure_caches()


# ---------------------------------------------------------------------------
# Profiling stages
# ---------------------------------------------------------------------------

def test_synthesis_stages_profiled(organic_lib, organic_wire, monkeypatch):
    from repro.core.config import CoreConfig
    from repro.core.physical import core_physical, reset_structure_caches

    monkeypatch.setenv("REPRO_CACHE", "0")   # force real synthesis work
    reset_structure_caches()
    try:
        import time
        with profiling.profiled():
            t0 = time.perf_counter()
            core_physical(CoreConfig(), organic_lib, organic_wire)
            elapsed = time.perf_counter() - t0
        snap = profiling.snapshot()
        assert snap["netlist"]["calls"] >= 1
        assert snap["mapping"]["calls"] >= 1
        assert snap["sta"]["calls"] >= 1
        # The accounting guard must accept the new stages (no nesting).
        breakdown = profiling.breakdown(elapsed)
        assert breakdown["overhead"] >= 0.0
    finally:
        reset_structure_caches()
        profiling.reset()
