"""Datapath-generator correctness: netlists versus integer arithmetic.

Property-based: random operand pairs across several widths for every
arithmetic block the experiments synthesise.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.synthesis.generators import (
    array_divider,
    array_multiplier,
    bypass_check,
    carry_select_adder,
    complex_alu_slice,
    divider_iteration,
    execution_stage,
    ripple_carry_adder,
    simple_alu,
    wallace_multiplier,
)

W = 8
MASK = (1 << W) - 1


def bits(val, w):
    return {f"{{}}{i}": (val >> i) & 1 for i in range(w)}


def vec(prefix, val, w):
    return {f"{prefix}{i}": bool((val >> i) & 1) for i in range(w)}


def from_bits(outs):
    return sum(int(b) << i for i, b in enumerate(outs))


@pytest.fixture(scope="module")
def netlists():
    return {
        "rca": ripple_carry_adder(W),
        "csa": carry_select_adder(W),
        "mul": array_multiplier(W),
        "wmul": wallace_multiplier(W),
        "div": array_divider(W),
        "alu": simple_alu(W),
        "divstep": divider_iteration(W),
    }


@given(a=st.integers(0, MASK), b=st.integers(0, MASK), cin=st.booleans())
@settings(max_examples=60, deadline=None)
def test_adders_add(netlists, a, b, cin):
    for name in ("rca", "csa"):
        nl = netlists[name]
        out = nl.simulate(vec("a", a, W) | vec("b", b, W) | {"cin": cin})
        got = from_bits([out[n] for n in nl.primary_outputs])
        assert got == a + b + int(cin), name


@given(a=st.integers(0, MASK), b=st.integers(0, MASK))
@settings(max_examples=60, deadline=None)
def test_multipliers_multiply(netlists, a, b):
    for name in ("mul", "wmul"):
        nl = netlists[name]
        out = nl.simulate(vec("a", a, W) | vec("b", b, W))
        got = from_bits([out[n] for n in nl.primary_outputs])
        assert got == a * b, name


@given(a=st.integers(0, MASK), b=st.integers(1, MASK))
@settings(max_examples=60, deadline=None)
def test_divider_divides(netlists, a, b):
    nl = netlists["div"]
    out = nl.simulate(vec("a", a, W) | vec("b", b, W))
    outs = [out[n] for n in nl.primary_outputs]
    assert from_bits(outs[:W]) == a // b
    assert from_bits(outs[W:]) == a % b


@given(r=st.integers(0, MASK), b=st.integers(1, MASK))
@settings(max_examples=60, deadline=None)
def test_divider_iteration_step(netlists, r, b):
    nl = netlists["divstep"]
    out = nl.simulate(vec("r", r, W) | vec("b", b, W))
    outs = [out[n] for n in nl.primary_outputs]
    q, rem = outs[0], from_bits(outs[1:])
    if r >= b:
        assert q and rem == r - b
    else:
        assert not q and rem == r


@given(a=st.integers(0, MASK), b=st.integers(0, MASK),
       op=st.sampled_from(["add", "sub", "and", "xor"]))
@settings(max_examples=80, deadline=None)
def test_alu_operations(netlists, a, b, op):
    nl = netlists["alu"]
    opcode = {"add": (0, 0), "sub": (0, 1), "and": (1, 0), "xor": (1, 1)}
    op1, op0 = opcode[op]
    out = nl.simulate(vec("a", a, W) | vec("b", b, W)
                      | {"op0": bool(op0), "op1": bool(op1)})
    outs = [out[n] for n in nl.primary_outputs]
    result = from_bits(outs[:W])
    carry = int(outs[W])
    if op == "add":
        assert result | (carry << W) == a + b
    elif op == "sub":
        assert result == (a - b) & MASK
        assert carry == (1 if a >= b else 0)
    elif op == "and":
        assert result == (a & b)
    else:
        assert result == (a ^ b)


class TestBypassCheck:
    def test_match_lines(self):
        nl = bypass_check(tag_width=4, n_sources=1, n_producers=2)
        vals = (vec("src0_", 0b1010, 4) | vec("prod0_", 0b1010, 4)
                | vec("prod1_", 0b0101, 4)
                | {"valid0": True, "valid1": True})
        out = nl.simulate(vals)
        outs = [out[n] for n in nl.primary_outputs]
        assert outs[0] is True      # hit on producer 0
        assert outs[1] is False     # miss on producer 1
        assert outs[2] is True      # any-hit

    def test_valid_gating(self):
        nl = bypass_check(tag_width=4, n_sources=1, n_producers=1)
        vals = (vec("src0_", 7, 4) | vec("prod0_", 7, 4)
                | {"valid0": False})
        out = nl.simulate(vals)
        assert all(v is False for v in out.values())


class TestCompositeBlocks:
    def test_complex_slice_structure(self):
        nl = complex_alu_slice(8)
        assert len(nl.primary_outputs) == 16   # result + high product
        assert len(nl) > 500

    def test_complex_slice_multiplies(self):
        nl = complex_alu_slice(8)
        vals = (vec("a", 11, 8) | vec("b", 13, 8) | vec("c", 0, 8)
                | vec("d", 0, 8) | {"sel_div": False, "sel_unit": False})
        out = nl.simulate(vals)
        outs = [out[n] for n in nl.primary_outputs]
        assert from_bits(outs) == 11 * 13

    def test_complex_slice_divider_path(self):
        nl = complex_alu_slice(8)
        vals = (vec("a", 200, 8) | vec("b", 60, 8) | vec("c", 0, 8)
                | vec("d", 0, 8) | {"sel_div": True, "sel_unit": False})
        out = nl.simulate(vals)
        outs = [out[n] for n in nl.primary_outputs]
        assert from_bits(outs[:8]) == 200 - 60  # restoring step remainder

    def test_execution_stage_builds(self):
        nl = execution_stage(8)
        assert len(nl) > 1000
        assert nl.logic_depth() > 10

    def test_wallace_shallower_than_array(self):
        """The tree multiplier's point: logarithmic reduction depth."""
        assert (wallace_multiplier(16).logic_depth()
                < array_multiplier(16).logic_depth() / 2)
