"""Scalar vs levelised-array STA: the engines must agree everywhere.

The vector engine exists purely for speed on the multi-thousand-gate
datapath blocks; any numerical or tie-breaking divergence from the
scalar reference would silently move the paper's clock periods.  Checked
here on every generator block, in both characterised processes.
"""

from __future__ import annotations

import pytest

import repro.synthesis.sta as sta
from repro.synthesis.generators import (
    carry_select_adder,
    complex_alu_slice,
    simple_alu,
)
from repro.synthesis.mapping import technology_map
from repro.synthesis.sta import _vector_static_timing, static_timing

BLOCK_BUILDERS = {
    "alu": lambda: simple_alu(16),
    "adder": lambda: carry_select_adder(16),
    "complex": lambda: complex_alu_slice(16),
}

_MAPPED_CACHE: dict[str, object] = {}


def _mapped(block: str):
    if block not in _MAPPED_CACHE:
        _MAPPED_CACHE[block] = technology_map(BLOCK_BUILDERS[block]())
    return _MAPPED_CACHE[block]


@pytest.mark.parametrize("block", sorted(BLOCK_BUILDERS))
@pytest.mark.parametrize("lib_fixture", ["organic_lib", "silicon_lib"])
def test_engines_agree(block, lib_fixture, request, monkeypatch,
                       organic_wire, silicon_wire):
    library = request.getfixturevalue(lib_fixture)
    wire = organic_wire if lib_fixture == "organic_lib" else silicon_wire
    netlist = _mapped(block)
    input_slew = library.typical_slew()

    vector = _vector_static_timing(netlist, library, wire, input_slew, None)
    assert vector is not None, "library should be batchable"
    monkeypatch.setattr(sta, "VECTOR_MIN_GATES", 10 ** 9)  # force scalar
    scalar = static_timing(netlist, library, wire)

    assert vector.max_delay == pytest.approx(scalar.max_delay, rel=1e-12)
    assert vector.critical_path == scalar.critical_path
    for attr in ("arrival", "slew", "load", "gate_delay"):
        vec_d, ref_d = getattr(vector, attr), getattr(scalar, attr)
        assert vec_d.keys() == ref_d.keys()
        for key, ref_val in ref_d.items():
            assert vec_d[key] == pytest.approx(ref_val, rel=1e-9), \
                (attr, key)


def test_dispatch_threshold(monkeypatch, organic_lib, organic_wire):
    """static_timing routes through the vector engine above the floor."""
    netlist = _mapped("alu")
    baseline = static_timing(netlist, organic_lib, organic_wire)

    calls = []
    real = sta._vector_static_timing

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(sta, "_vector_static_timing", spy)
    monkeypatch.setattr(sta, "VECTOR_MIN_GATES", 1)
    vector_routed = static_timing(netlist, organic_lib, organic_wire)
    assert calls, "vector engine should have been used"
    assert vector_routed.max_delay == pytest.approx(baseline.max_delay,
                                                    rel=1e-12)
    assert vector_routed.critical_path == baseline.critical_path
