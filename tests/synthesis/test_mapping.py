"""Technology-mapping tests: structural legality + logical equivalence."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.synthesis.generators import (
    carry_select_adder,
    simple_alu,
    wallace_multiplier,
)
from repro.synthesis.mapping import technology_map
from repro.synthesis.netlist import LIBRARY_CELLS, Netlist


def random_generic_netlist(seed: int, n_gates: int = 40) -> Netlist:
    """A random DAG over all generic cell types."""
    rng = random.Random(seed)
    nl = Netlist(f"rand{seed}")
    nets = [nl.add_input(f"i{k}") for k in range(5)]
    cells1 = ["inv", "buf"]
    cells2 = ["and2", "or2", "nand2", "nor2", "xor2", "xnor2"]
    cells3 = ["and3", "or3", "nand3", "nor3", "mux2"]
    for _ in range(n_gates):
        cell = rng.choice(cells1 + cells2 + cells3)
        n = 1 if cell in cells1 else (2 if cell in cells2 else 3)
        ins = tuple(rng.choice(nets) for _ in range(n))
        nets.append(nl.add_gate(cell, ins))
    for net in nets[-4:]:
        nl.add_output(net)
    return nl


class TestStructure:
    def test_only_library_cells_remain(self):
        mapped = technology_map(random_generic_netlist(0))
        assert mapped.is_mapped
        assert set(mapped.cell_counts()) <= LIBRARY_CELLS

    def test_io_preserved(self):
        nl = random_generic_netlist(1)
        mapped = technology_map(nl)
        assert mapped.primary_inputs == nl.primary_inputs
        assert mapped.primary_outputs == nl.primary_outputs

    def test_already_mapped_passthrough(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        out = nl.add_gate("nand2", (a, a))
        nl.add_output(out)
        mapped = technology_map(nl)
        assert len(mapped) == 1


@given(seed=st.integers(0, 200), vector=st.integers(0, 31))
@settings(max_examples=80, deadline=None)
def test_mapping_preserves_logic(seed, vector):
    """Random netlists simulate identically before and after mapping."""
    nl = random_generic_netlist(seed)
    mapped = technology_map(nl)
    values = {f"i{k}": bool((vector >> k) & 1) for k in range(5)}
    assert nl.simulate(values) == mapped.simulate(values)


@pytest.mark.parametrize("maker", [
    lambda: carry_select_adder(6),
    lambda: simple_alu(6),
    lambda: wallace_multiplier(6),
], ids=["csa", "alu", "wmul"])
def test_mapping_preserves_datapath_blocks(maker):
    nl = maker()
    mapped = technology_map(nl)
    rng = random.Random(9)
    for _ in range(15):
        values = {n: rng.random() < 0.5 for n in nl.primary_inputs}
        assert nl.simulate(values) == mapped.simulate(values)
