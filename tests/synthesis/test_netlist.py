"""Gate-level netlist structure tests."""

import pytest

from repro.errors import SynthesisError
from repro.synthesis.netlist import Gate, Netlist


def small_netlist():
    nl = Netlist("t")
    a = nl.add_input("a")
    b = nl.add_input("b")
    n1 = nl.add_gate("nand2", (a, b))
    out = nl.add_gate("inv", (n1,))
    nl.add_output(out)
    return nl


class TestConstruction:
    def test_auto_names_unique(self):
        nl = small_netlist()
        assert len(nl.gates) == 2

    def test_duplicate_driver_rejected(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        nl.add_gate("inv", (a,), output="x")
        with pytest.raises(SynthesisError):
            nl.add_gate("inv", (a,), output="x")

    def test_input_cannot_be_redriven(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        with pytest.raises(SynthesisError):
            nl.add_gate("inv", (a,), output="a")

    def test_unknown_cell(self):
        with pytest.raises(SynthesisError):
            Gate("g", "xor5", ("a", "b"), "o")

    def test_wrong_arity(self):
        with pytest.raises(SynthesisError):
            Gate("g", "nand2", ("a",), "o")


class TestTopology:
    def test_topological_order_respects_deps(self):
        nl = small_netlist()
        order = [g.name for g in nl.topological_order()]
        nand = next(g for g in nl.gates.values() if g.cell == "nand2")
        inv = next(g for g in nl.gates.values() if g.cell == "inv")
        assert order.index(nand.name) < order.index(inv.name)

    def test_undriven_net_detected(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("nand2", ("a", "ghost"), output="o")
        with pytest.raises(SynthesisError, match="undriven"):
            nl.topological_order()

    def test_logic_depth(self):
        nl = small_netlist()
        assert nl.logic_depth() == 2

    def test_same_net_on_two_pins(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        out = nl.add_gate("nand2", (a, a))
        nl.add_output(out)
        assert nl.simulate({"a": True})[out] is False
        assert nl.simulate({"a": False})[out] is True


class TestSimulation:
    def test_nand_inv(self):
        nl = small_netlist()
        out = nl.primary_outputs[0]
        assert nl.simulate({"a": True, "b": True})[out] is True
        assert nl.simulate({"a": True, "b": False})[out] is False

    def test_missing_inputs_rejected(self):
        nl = small_netlist()
        with pytest.raises(SynthesisError):
            nl.simulate({"a": True})

    def test_cell_counts(self):
        counts = small_netlist().cell_counts()
        assert counts == {"nand2": 1, "inv": 1}

    def test_is_mapped(self):
        nl = small_netlist()
        assert nl.is_mapped
        a = nl.primary_inputs[0]
        nl.add_gate("xor2", (a, a))
        assert not nl.is_mapped
