"""STA and pipelining tests on real mapped netlists with both libraries."""

import pytest

from repro.errors import PipelineError, SynthesisError
from repro.synthesis.generators import carry_select_adder, wallace_multiplier
from repro.synthesis.mapping import technology_map
from repro.synthesis.netlist import Netlist
from repro.synthesis.pipeline import (
    count_registers,
    min_period_for_stages,
    per_gate_delays,
    pipeline_sweep,
    sequencing_overhead,
    stages_needed,
)
from repro.synthesis.sta import net_loads, static_timing
from repro.synthesis.wires import WireModel, block_span, organic_wire_model, silicon_wire_model


@pytest.fixture(scope="module")
def adder():
    return technology_map(carry_select_adder(8))


@pytest.fixture(scope="module")
def multiplier():
    return technology_map(wallace_multiplier(8))


class TestStaticTiming:
    def test_requires_mapped_netlist(self, organic_lib, organic_wire):
        nl = Netlist("t")
        a = nl.add_input("a")
        out = nl.add_gate("xor2", (a, a))
        nl.add_output(out)
        with pytest.raises(SynthesisError):
            static_timing(nl, organic_lib, organic_wire)

    def test_critical_path_nonempty(self, adder, organic_lib, organic_wire):
        rep = static_timing(adder, organic_lib, organic_wire)
        assert rep.max_delay > 0
        assert rep.critical_length >= adder.logic_depth() // 2

    def test_critical_path_is_connected(self, adder, organic_lib,
                                        organic_wire):
        rep = static_timing(adder, organic_lib, organic_wire)
        gates = adder.gates
        for first, second in zip(rep.critical_path, rep.critical_path[1:]):
            assert gates[first].output in gates[second].inputs

    def test_arrival_monotone_along_path(self, adder, organic_lib,
                                         organic_wire):
        rep = static_timing(adder, organic_lib, organic_wire)
        arrivals = [rep.arrival[adder.gates[g].output]
                    for g in rep.critical_path]
        assert arrivals == sorted(arrivals)

    def test_wire_ablation_speeds_up_silicon(self, multiplier, silicon_lib,
                                             silicon_wire):
        with_wire = static_timing(multiplier, silicon_lib, silicon_wire)
        without = static_timing(multiplier, silicon_lib,
                                silicon_wire.scaled(0.0))
        assert without.max_delay < with_wire.max_delay

    def test_wire_barely_matters_for_organic(self, multiplier, organic_lib,
                                             organic_wire):
        """The paper's premise: organic wires are relatively free."""
        with_wire = static_timing(multiplier, organic_lib, organic_wire)
        without = static_timing(multiplier, organic_lib,
                                organic_wire.scaled(0.0))
        assert without.max_delay > 0.99 * with_wire.max_delay

    def test_net_loads_positive(self, adder, organic_lib, organic_wire):
        loads = net_loads(adder, organic_lib, organic_wire)
        assert all(v > 0 for v in loads.values())


class TestLeveling:
    def test_budget_below_gate_granularity_infeasible(self, adder,
                                                      organic_lib,
                                                      organic_wire):
        delays = per_gate_delays(adder, organic_lib, organic_wire)
        assert stages_needed(adder, delays, max(delays.values()) * 0.5) is None

    def test_large_budget_single_stage(self, adder, organic_lib,
                                       organic_wire):
        delays = per_gate_delays(adder, organic_lib, organic_wire)
        n, assignment = stages_needed(adder, delays, sum(delays.values()))
        assert n == 1
        assert set(assignment.values()) == {0}

    def test_stage_count_monotone_in_budget(self, adder, organic_lib,
                                            organic_wire):
        delays = per_gate_delays(adder, organic_lib, organic_wire)
        total = sum(delays.values())
        counts = []
        for frac in (0.02, 0.05, 0.2, 1.0):
            res = stages_needed(adder, delays, total * frac)
            if res:
                counts.append(res[0])
        assert counts == sorted(counts, reverse=True)

    def test_register_count_includes_outputs(self, adder, organic_lib,
                                             organic_wire):
        delays = per_gate_delays(adder, organic_lib, organic_wire)
        n, assignment = stages_needed(adder, delays, sum(delays.values()))
        regs = count_registers(adder, assignment, n)
        assert regs >= len(adder.primary_outputs)


class TestMinPeriod:
    def test_frequency_increases_with_stages(self, multiplier, organic_lib,
                                             organic_wire):
        sweep = pipeline_sweep(multiplier, organic_lib, organic_wire,
                               [1, 2, 4])
        freqs = [p.frequency for p in sweep]
        assert freqs[0] < freqs[1] < freqs[2]

    def test_area_increases_with_stages(self, multiplier, organic_lib,
                                        organic_wire):
        sweep = pipeline_sweep(multiplier, organic_lib, organic_wire,
                               [1, 4])
        assert sweep[1].area > sweep[0].area
        assert sweep[1].n_registers > sweep[0].n_registers

    def test_period_is_budget_plus_overhead(self, adder, organic_lib,
                                            organic_wire):
        res = min_period_for_stages(adder, organic_lib, organic_wire, 2)
        assert res.period == pytest.approx(res.logic_budget + res.overhead)

    def test_invalid_stage_count(self, adder, organic_lib, organic_wire):
        with pytest.raises(PipelineError):
            min_period_for_stages(adder, organic_lib, organic_wire, 0)

    def test_granularity_cap(self, adder, organic_lib, organic_wire):
        """Requesting absurd depth returns the deepest feasible cut."""
        res = min_period_for_stages(adder, organic_lib, organic_wire, 500)
        assert res.n_stages < 500

    def test_overhead_grows_with_stages_for_silicon(self, multiplier,
                                                    silicon_lib,
                                                    silicon_wire):
        o2 = sequencing_overhead(multiplier, silicon_lib, silicon_wire, 2)
        o20 = sequencing_overhead(multiplier, silicon_lib, silicon_wire, 20)
        assert o20 > o2 * 1.2


class TestWireModel:
    def test_scaled_zero(self):
        wm = silicon_wire_model().scaled(0.0)
        assert wm.net_capacitance(3) == 0.0
        assert wm.elmore_delay(3, 1e-15) == 0.0

    def test_net_length_grows_with_fanout(self):
        wm = organic_wire_model()
        assert wm.net_length(8) > wm.net_length(1)

    def test_block_span(self):
        assert block_span(4e-6) == pytest.approx(2e-3)
        with pytest.raises(SynthesisError):
            block_span(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            WireModel("bad", c_per_m=-1.0, r_per_m=1.0, pitch=1e-6)
