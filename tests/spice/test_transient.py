"""Transient analysis tests against closed-form RC behaviour."""

import math

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    TransientOptions,
    VoltageSource,
    transient,
)


def rc_step_circuit(r=1e3, c=1e-9, v_final=1.0, t_step=1e-7):
    ckt = Circuit("rc")

    def vsrc(t):
        return v_final if t >= t_step else 0.0

    ckt.add(VoltageSource("vin", "in", "0", vsrc))
    ckt.add(Resistor("r1", "in", "out", r))
    ckt.add(Capacitor("c1", "out", "0", c))
    return ckt


class TestRcStep:
    def test_exponential_charge(self):
        r, c = 1e3, 1e-9
        tau = r * c
        t_step = tau / 2
        ckt = rc_step_circuit(r, c, v_final=1.0, t_step=t_step)
        res = transient(ckt, TransientOptions(dt=tau / 100,
                                              t_stop=t_step + 5 * tau))
        w = res.waveform("out")
        for n_tau in (1.0, 2.0, 3.0):
            expected = 1.0 - math.exp(-n_tau)
            assert w.value_at(t_step + n_tau * tau) == pytest.approx(
                expected, abs=0.02)

    def test_final_value(self):
        tau = 1e-6
        ckt = rc_step_circuit(v_final=2.5, t_step=tau)
        res = transient(ckt, TransientOptions(dt=tau / 50, t_stop=9 * tau))
        assert res.waveform("out").final_value == pytest.approx(2.5, abs=0.01)

    def test_initial_condition_from_dc(self):
        """With the source at 1 V from t=0, the DC init starts charged."""
        ckt = Circuit("rc")
        ckt.add(VoltageSource("vin", "in", "0", 1.0))
        ckt.add(Resistor("r1", "in", "out", 1e3))
        ckt.add(Capacitor("c1", "out", "0", 1e-9))
        res = transient(ckt, TransientOptions(dt=1e-8, t_stop=1e-6))
        assert res.waveform("out").initial_value == pytest.approx(1.0, abs=1e-6)

    def test_times_strictly_increasing(self):
        ckt = rc_step_circuit()
        res = transient(ckt, TransientOptions(dt=1e-8, t_stop=1e-6))
        assert np.all(np.diff(res.times) > 0)

    def test_stop_time_reached(self):
        ckt = rc_step_circuit()
        opts = TransientOptions(dt=1e-8, t_stop=1e-6)
        res = transient(ckt, opts)
        # Ends within one minimum step of t_stop.
        assert res.times[-1] >= opts.t_stop - opts.dt / 2 ** opts.max_halvings - 1e-12

    def test_sharp_edge_resolved(self):
        """A mid-run step is integrated through without failure."""
        ckt = rc_step_circuit(c=1e-10, t_step=5e-7)   # tau = 0.1 us
        res = transient(ckt, TransientOptions(dt=2e-8, t_stop=2e-6))
        w = res.waveform("out")
        # sample one full step before the edge (linear interpolation
        # would otherwise blend in the post-step sample)
        assert w.value_at(4.7e-7) == pytest.approx(0.0, abs=0.01)
        assert w.final_value == pytest.approx(1.0, abs=0.02)


class TestOptionsValidation:
    def test_bad_dt(self):
        with pytest.raises(ValueError):
            TransientOptions(dt=0.0, t_stop=1.0)

    def test_dt_exceeds_stop(self):
        with pytest.raises(ValueError):
            TransientOptions(dt=2.0, t_stop=1.0)


class TestEnergyConservation:
    def test_capacitor_charge_balance(self):
        """Total charge delivered equals C * dV (trapezoid on i(t))."""
        r, c = 1e3, 1e-9
        ckt = rc_step_circuit(r, c, v_final=1.0, t_step=r * c)
        res = transient(ckt, TransientOptions(dt=r * c / 200,
                                              t_stop=11 * r * c))
        i_src = -res.source_current("vin")     # current out of + terminal
        charge = np.trapezoid(i_src, res.times)
        assert charge == pytest.approx(c * 1.0, rel=0.02)
