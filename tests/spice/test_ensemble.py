"""Batched ensemble engine vs the scalar solver, member by member.

The ensemble engine promises each member the *exact* trajectory the
scalar controller would produce — same Newton damping, same step-size
schedule, same crossing interpolation — so these tests compare against
:func:`repro.spice.transient` / :func:`repro.spice.dc.dc_sweep` at tight
tolerances, and check that co-residents in a batch cannot perturb each
other (active-set isolation).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.topologies import diode_load_inverter, pseudo_e_inverter
from repro.devices.pentacene import PENTACENE, pentacene_model
from repro.errors import CircuitError
from repro.spice import (
    Capacitor,
    Circuit,
    EnsembleSystem,
    EnsembleTransient,
    NewtonOptions,
    Probe,
    RampValue,
    Resistor,
    TransientOptions,
    VoltageSource,
    dc_sweep,
    ensemble_dc_sweep,
    ensemble_operating_point,
    operating_point,
    transient,
)

VDD = 15.0


def inverter_testbench(load=1e-12, slew=2e-4, w_drive=100e-6,
                       vt_shift=0.0, v0=0.0, v1=VDD):
    """Diode-load inverter driven by a rising (or falling) input ramp."""
    model = pentacene_model(vt_shift=vt_shift)
    cell = diode_load_inverter(model, w_drive=w_drive, w_load=30e-6, vdd=VDD)
    ckt = Circuit("tb")
    ckt.add(VoltageSource("v_vdd", "vdd", "0", VDD))
    ckt.add(VoltageSource("v_a", "a", "0",
                          RampValue(v0, v1, 0.2 * slew, slew)))
    cell.instantiate(ckt, {"a": "a", "out": "out", "vdd": "vdd", "vss": "0"})
    ckt.add(Capacitor("c_load", "out", "0", load))
    return ckt


def run_scalar(ckt, options, nodes=("out",)):
    res = transient(ckt, options)
    return {n: res.waveform(n) for n in nodes}


def default_options(slew=2e-4, t_stop=2e-3):
    dt = min(t_stop / 400, slew / 8)
    return TransientOptions(dt=dt, t_stop=t_stop, dt_max=16 * dt,
                            lte_tol=5e-4 * VDD)


class TestTransientEquivalence:
    def test_grid_matches_scalar_member_by_member(self):
        """A slew x load grid in one batch reproduces scalar waveforms."""
        slews = (1e-4, 4e-4)
        loads = (0.5e-12, 4e-12)
        members, opts = [], []
        for slew in slews:
            for load in loads:
                members.append(inverter_testbench(load=load, slew=slew))
                opts.append(default_options(slew=slew))
        probes = [Probe("out", 0.5 * VDD)]
        ens = EnsembleTransient(members, opts, probes).run()

        for m, (slew, load) in enumerate(
                (s, c) for s in slews for c in loads):
            ckt = inverter_testbench(load=load, slew=slew)
            w = run_scalar(ckt, default_options(slew=slew))["out"]
            assert ens.final_value("out")[m] == pytest.approx(
                w.final_value, abs=1e-9)
            assert ens.initial_value("out")[m] == pytest.approx(
                w.initial_value, abs=1e-9)
            batch_cross = ens.crossing_times(0, m, "fall")
            scalar_cross = w.crossing_times(0.5 * VDD, direction="fall")
            assert len(batch_cross) == len(scalar_cross)
            np.testing.assert_allclose(batch_cross, scalar_cross,
                                       rtol=1e-9, atol=1e-15)

    def test_heterogeneous_devices_match_scalar(self):
        """Members may differ in device parameters (MC-style bindings)."""
        shifts = (-0.4, 0.0, 0.4)
        members = [inverter_testbench(vt_shift=s) for s in shifts]
        opts = [default_options() for _ in shifts]
        ens = EnsembleTransient(members, opts,
                                [Probe("out", 0.5 * VDD)]).run()
        for m, s in enumerate(shifts):
            w = run_scalar(inverter_testbench(vt_shift=s),
                           default_options())["out"]
            assert ens.final_value("out")[m] == pytest.approx(
                w.final_value, abs=1e-9)

    def test_active_set_isolation(self):
        """A fast member finishing early must not perturb slow members.

        Run a short-window member next to a long-window member, then the
        long member alone: the long member's events must be bit-equal.
        """
        slow = inverter_testbench(load=4e-12, slew=4e-4)
        fast = inverter_testbench(load=0.2e-12, slew=1e-4)
        slow_opts = default_options(slew=4e-4, t_stop=2e-3)
        fast_opts = default_options(slew=1e-4, t_stop=2e-4)
        probes = [Probe("out", 0.5 * VDD)]

        paired = EnsembleTransient([slow, fast], [slow_opts, fast_opts],
                                   probes).run()
        alone = EnsembleTransient(
            [inverter_testbench(load=4e-12, slew=4e-4)], [slow_opts],
            probes).run()

        assert paired.final_time()[1] < paired.final_time()[0]
        assert paired.final_value("out")[0] == alone.final_value("out")[0]
        np.testing.assert_array_equal(paired.crossing_times(0, 0),
                                      alone.crossing_times(0, 0))
        assert paired.steps[0] == alone.steps[0]

    def test_extend_continues_members(self):
        ckt = inverter_testbench()
        opts = default_options(t_stop=5e-4)
        ens = EnsembleTransient([ckt], [opts],
                                [Probe("out", 0.5 * VDD)]).run()
        t_first = ens.final_time()[0]
        ens.extend([0], [2e-3])
        ens.run()
        assert ens.final_time()[0] > t_first
        w = run_scalar(inverter_testbench(), default_options(t_stop=2e-3))
        # The extended trajectory keeps integrating the same circuit with
        # its step controller state, so it lands where an uninterrupted
        # run settles — within integration (LTE) tolerance, not bit-equal.
        assert ens.final_value("out")[0] == pytest.approx(
            w["out"].final_value, abs=0.01)

    def test_structural_mismatch_rejected(self):
        a = inverter_testbench()
        b = Circuit("rc")
        b.add(VoltageSource("v1", "in", "0", 1.0))
        b.add(Resistor("r1", "in", "out", 1e3))
        b.add(Capacitor("c1", "out", "0", 1e-9))
        with pytest.raises(CircuitError):
            EnsembleSystem([a, b])

    @settings(max_examples=10, deadline=None)
    @given(
        load=st.floats(min_value=0.2e-12, max_value=6e-12),
        slew=st.floats(min_value=0.5e-4, max_value=6e-4),
        w_drive=st.floats(min_value=40e-6, max_value=300e-6),
        vt_shift=st.floats(min_value=-0.5, max_value=0.5),
    )
    def test_randomized_binding_matches_scalar(self, load, slew, w_drive,
                                               vt_shift):
        """Hypothesis-randomized bindings: batch of 2 vs scalar runs."""
        bindings = [
            dict(load=load, slew=slew, w_drive=w_drive, vt_shift=vt_shift),
            dict(load=2e-12, slew=2e-4, w_drive=100e-6, vt_shift=0.0),
        ]
        members = [inverter_testbench(**b) for b in bindings]
        opts = [default_options(slew=b["slew"]) for b in bindings]
        ens = EnsembleTransient(members, opts,
                                [Probe("out", 0.5 * VDD)]).run()
        for m, b in enumerate(bindings):
            w = run_scalar(inverter_testbench(**b),
                           default_options(slew=b["slew"]))["out"]
            assert ens.final_value("out")[m] == pytest.approx(
                w.final_value, abs=1e-8)


def pseudo_e_testbench(vt_shift=0.0, vss=-15.0):
    model = pentacene_model(vt_shift=vt_shift)
    cell = pseudo_e_inverter(model, vdd=VDD, vss=vss)
    ckt = Circuit("tb_pe")
    node_map = {"a": "a", "out": "out"}
    for rail, volts in cell.rails.items():
        if volts == 0.0:
            node_map[rail] = "0"
        else:
            node_map[rail] = rail
            ckt.add(VoltageSource(f"v_{rail}", rail, "0", volts))
    ckt.add(VoltageSource("v_a", "a", "0", 0.0))
    cell.instantiate(ckt, node_map)
    return ckt


class TestDcEquivalence:
    def test_operating_point_matches_scalar(self):
        shifts = (-0.3, 0.0, 0.3)
        x, es = ensemble_operating_point(
            [pseudo_e_testbench(s) for s in shifts])
        for m, s in enumerate(shifts):
            xs, sys = operating_point(pseudo_e_testbench(s))
            np.testing.assert_allclose(
                x[m, :sys.size], xs, rtol=1e-9, atol=1e-12)

    def test_dc_sweep_matches_scalar(self):
        shifts = (-0.3, 0.0, 0.3)
        values = np.linspace(0.0, VDD, 21)
        sols, ok, es = ensemble_dc_sweep(
            [pseudo_e_testbench(s) for s in shifts], "v_a", values)
        assert ok.all()
        out = es.node_slot("out")
        for m, s in enumerate(shifts):
            scalar = dc_sweep(pseudo_e_testbench(s), "v_a", values)
            np.testing.assert_allclose(sols[:, m, out],
                                       scalar.voltage("out"),
                                       rtol=1e-9, atol=1e-12)

    def test_sweep_restores_source_values(self):
        ckts = [pseudo_e_testbench(0.0)]
        before = ckts[0].element("v_a").value
        ensemble_dc_sweep(ckts, "v_a", [0.0, VDD / 2, VDD])
        assert ckts[0].element("v_a").value == before

    def test_newton_options_must_match(self):
        members = [inverter_testbench(), inverter_testbench()]
        opts = [default_options(),
                TransientOptions(dt=1e-6, t_stop=1e-4,
                                 newton=NewtonOptions(max_step_v=1.0))]
        with pytest.raises(CircuitError):
            EnsembleTransient(members, opts)
