"""Waveform measurement tests."""

import logging

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice.waveform import Waveform, delay_between


def ramp_wave(t0=1.0, t1=2.0, v0=0.0, v1=1.0, n=201, t_end=3.0):
    t = np.linspace(0.0, t_end, n)
    v = np.interp(t, [0.0, t0, t1, t_end], [v0, v0, v1, v1])
    return Waveform(t, v)


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0], [0.0])

    def test_rejects_non_monotonic_time(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0, 0.5], [0.0, 1.0, 2.0])

    def test_rejects_single_sample(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0], [1.0])


class TestCrossings:
    def test_single_rise_crossing(self):
        w = ramp_wave()
        t = w.crossing_time(0.5, "rise")
        assert t == pytest.approx(1.5, abs=0.01)

    def test_fall_direction_filtered(self):
        w = ramp_wave()
        assert len(w.crossing_times(0.5, "fall")) == 0

    def test_missing_crossing_raises(self):
        w = ramp_wave()
        with pytest.raises(AnalysisError, match="never crosses"):
            w.crossing_time(2.0)

    def test_multiple_crossings_indexed(self):
        t = np.linspace(0, 4, 401)
        v = np.sin(np.pi * t)  # crosses 0 rising at t=0 region, t=2...
        w = Waveform(t, v)
        rises = w.crossing_times(0.5, "rise")
        falls = w.crossing_times(0.5, "fall")
        assert len(rises) == 2 and len(falls) == 2

    def test_value_at_clamps(self):
        w = ramp_wave()
        assert w.value_at(-1.0) == w.initial_value
        assert w.value_at(99.0) == w.final_value


class TestTransitionTime:
    def test_linear_ramp_slew(self):
        w = ramp_wave(t0=1.0, t1=2.0)
        # 20%-80% of a 1 s full-swing linear ramp = 0.6 s.
        assert w.transition_time(0.0, 1.0) == pytest.approx(0.6, abs=0.01)

    def test_falling_ramp_slew(self):
        w = ramp_wave(v0=1.0, v1=0.0)
        assert w.transition_time(0.0, 1.0) == pytest.approx(0.6, abs=0.01)

    def test_requires_high_above_low(self):
        w = ramp_wave()
        with pytest.raises(AnalysisError):
            w.transition_time(1.0, 0.0)


class TestDelayBetween:
    def test_shifted_ramps(self):
        a = ramp_wave(t0=1.0, t1=2.0)
        b = ramp_wave(t0=1.4, t1=2.4)
        d = delay_between(a, b, 0.5, 0.5)
        assert d == pytest.approx(0.4, abs=0.01)

    def test_effect_before_cause_clamps_and_warns(self, caplog):
        # Regression: the fallback used to silently return a negative
        # delay; the documented policy clamps to 0 and logs a warning
        # naming the arc so it can never enter an NLDM table unnoticed.
        a = ramp_wave(t0=2.0, t1=2.5)
        b = ramp_wave(t0=0.5, t1=1.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            d = delay_between(a, b, 0.5, 0.5, context="inv.a rise test-arc")
        assert d == 0.0
        messages = [r.getMessage() for r in caplog.records]
        assert any("negative propagation delay" in m for m in messages)
        assert any("inv.a rise test-arc" in m for m in messages)

    def test_effect_before_cause_raise_policy(self):
        a = ramp_wave(t0=2.0, t1=2.5)
        b = ramp_wave(t0=0.5, t1=1.0)
        with pytest.raises(AnalysisError, match="precedes"):
            delay_between(a, b, 0.5, 0.5, on_negative="raise")

    def test_bad_on_negative_rejected(self):
        a = ramp_wave(t0=2.0, t1=2.5)
        b = ramp_wave(t0=0.5, t1=1.0)
        with pytest.raises(ValueError, match="on_negative"):
            delay_between(a, b, 0.5, 0.5, on_negative="ignore")

    def test_no_effect_crossing_still_raises(self):
        a = ramp_wave()
        flat = Waveform([0.0, 1.0, 2.0], [0.0, 0.0, 0.0])
        with pytest.raises(AnalysisError, match="never crosses"):
            delay_between(a, flat, 0.5, 0.5)

    def test_settled(self):
        w = ramp_wave()
        assert w.settled(1.0, 0.05)
        assert not w.settled(0.5, 0.05)


class TestExactThresholdCrossings:
    """Regression: a sample lying exactly on the threshold is one crossing.

    The pre-fix code counted the sign sequence ``-1, 0, +1`` as two
    crossings (one per adjacent segment), double-counting the instant.
    """

    def test_rise_through_exact_sample_counted_once(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        crossings = w.crossing_times(0.5, "rise")
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(1.0)

    def test_fall_through_exact_sample_counted_once(self):
        w = Waveform([0.0, 1.0, 2.0], [1.0, 0.5, 0.0])
        crossings = w.crossing_times(0.5, "fall")
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(1.0)

    def test_any_direction_counted_once(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        assert len(w.crossing_times(0.5, "any")) == 1

    def test_zero_run_collapses_to_first_instant(self):
        w = Waveform([0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 0.5, 1.0])
        crossings = w.crossing_times(0.5, "any")
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(1.0)

    def test_touch_is_not_a_crossing(self):
        # Reaching the level and returning to the same side never crosses.
        w = Waveform([0.0, 1.0, 2.0], [0.0, 0.5, 0.0])
        assert len(w.crossing_times(0.5, "any")) == 0

    def test_crossing_instants_strictly_increasing(self):
        # Multiple crossings with exact-threshold samples stay ordered
        # and deduplicated.
        w = Waveform([0.0, 1.0, 2.0, 3.0, 4.0],
                     [0.0, 0.5, 1.0, 0.5, 0.0])
        crossings = w.crossing_times(0.5, "any")
        assert len(crossings) == 2
        assert np.all(np.diff(crossings) > 0)

    def test_crossing_time_occurrence_with_exact_sample(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        assert w.crossing_time(0.5, "rise", occurrence=0) == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            w.crossing_time(0.5, "rise", occurrence=1)

    def test_endpoint_on_threshold(self):
        # Starting or ending exactly on the level counts once.
        start = Waveform([0.0, 1.0], [0.5, 1.0])
        assert len(start.crossing_times(0.5, "rise")) == 1
        end = Waveform([0.0, 1.0], [0.0, 0.5])
        assert len(end.crossing_times(0.5, "rise")) == 1


class TestGlitchyTransitionTime:
    """Regression: slew must be measured on the final monotone transition.

    The pre-fix code took the *first* directional crossing of each
    fractional threshold: on a glitch-then-settle output the 20% point
    came from the glitch edge and the 80% point from the settling edge,
    producing a bogusly large slew.
    """

    def _glitchy_rise(self):
        # Glitch to 0.4 (above the 20% point), back to 0.05, then the
        # real 0-to-1 transition between t=4 and t=6.
        t = [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 7.0]
        v = [0.0, 0.4, 0.05, 0.05, 0.05, 1.0, 1.0]
        return Waveform(t, v)

    def test_rising_glitch_then_settle(self):
        w = self._glitchy_rise()
        # Final edge: 0.05 -> 1.0 over t in [4, 6]; crosses 0.2 at
        # t = 4 + 2*(0.15/0.95) and 0.8 at t = 4 + 2*(0.75/0.95).
        expected = 2.0 * (0.8 - 0.2) / 0.95
        assert w.transition_time(0.0, 1.0) == pytest.approx(expected,
                                                            rel=1e-12)
        # The pre-fix measurement mixed edges: first 0.2-rise crossing is
        # on the glitch at t=0.5, giving a much larger bogus value.
        bogus = (4.0 + 2.0 * 0.75 / 0.95) - 0.5
        assert w.transition_time(0.0, 1.0) < 0.8 * bogus

    def test_falling_glitch_then_settle(self):
        t = [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 7.0]
        v = [1.0, 0.6, 0.95, 0.95, 0.95, 0.0, 0.0]
        w = Waveform(t, v)
        # Final edge: 0.95 -> 0.0 over t in [4, 6].
        expected = 2.0 * (0.8 - 0.2) / 0.95
        assert w.transition_time(0.0, 1.0) == pytest.approx(expected,
                                                            rel=1e-12)

    def test_monotone_ramp_unchanged(self):
        w = ramp_wave(t0=1.0, t1=2.0)
        assert w.transition_time(0.0, 1.0) == pytest.approx(0.6, abs=0.01)

    def test_never_reaching_high_raises(self):
        w = Waveform([0.0, 1.0, 2.0], [0.0, 0.3, 0.3])
        with pytest.raises(AnalysisError, match="never crosses"):
            w.transition_time(0.0, 1.0)
