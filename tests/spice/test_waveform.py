"""Waveform measurement tests."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice.waveform import Waveform, delay_between


def ramp_wave(t0=1.0, t1=2.0, v0=0.0, v1=1.0, n=201, t_end=3.0):
    t = np.linspace(0.0, t_end, n)
    v = np.interp(t, [0.0, t0, t1, t_end], [v0, v0, v1, v1])
    return Waveform(t, v)


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0], [0.0])

    def test_rejects_non_monotonic_time(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0, 1.0, 0.5], [0.0, 1.0, 2.0])

    def test_rejects_single_sample(self):
        with pytest.raises(AnalysisError):
            Waveform([0.0], [1.0])


class TestCrossings:
    def test_single_rise_crossing(self):
        w = ramp_wave()
        t = w.crossing_time(0.5, "rise")
        assert t == pytest.approx(1.5, abs=0.01)

    def test_fall_direction_filtered(self):
        w = ramp_wave()
        assert len(w.crossing_times(0.5, "fall")) == 0

    def test_missing_crossing_raises(self):
        w = ramp_wave()
        with pytest.raises(AnalysisError, match="never crosses"):
            w.crossing_time(2.0)

    def test_multiple_crossings_indexed(self):
        t = np.linspace(0, 4, 401)
        v = np.sin(np.pi * t)  # crosses 0 rising at t=0 region, t=2...
        w = Waveform(t, v)
        rises = w.crossing_times(0.5, "rise")
        falls = w.crossing_times(0.5, "fall")
        assert len(rises) == 2 and len(falls) == 2

    def test_value_at_clamps(self):
        w = ramp_wave()
        assert w.value_at(-1.0) == w.initial_value
        assert w.value_at(99.0) == w.final_value


class TestTransitionTime:
    def test_linear_ramp_slew(self):
        w = ramp_wave(t0=1.0, t1=2.0)
        # 20%-80% of a 1 s full-swing linear ramp = 0.6 s.
        assert w.transition_time(0.0, 1.0) == pytest.approx(0.6, abs=0.01)

    def test_falling_ramp_slew(self):
        w = ramp_wave(v0=1.0, v1=0.0)
        assert w.transition_time(0.0, 1.0) == pytest.approx(0.6, abs=0.01)

    def test_requires_high_above_low(self):
        w = ramp_wave()
        with pytest.raises(AnalysisError):
            w.transition_time(1.0, 0.0)


class TestDelayBetween:
    def test_shifted_ramps(self):
        a = ramp_wave(t0=1.0, t1=2.0)
        b = ramp_wave(t0=1.4, t1=2.4)
        d = delay_between(a, b, 0.5, 0.5)
        assert d == pytest.approx(0.4, abs=0.01)

    def test_effect_before_cause_fallback(self):
        a = ramp_wave(t0=2.0, t1=2.5)
        b = ramp_wave(t0=0.5, t1=1.0)
        d = delay_between(a, b, 0.5, 0.5)
        assert d < 0  # closest-crossing fallback reports negative delay

    def test_settled(self):
        w = ramp_wave()
        assert w.settled(1.0, 0.05)
        assert not w.settled(0.5, 0.05)
