"""Circuit container tests."""

import pytest

from repro.errors import CircuitError
from repro.spice import Circuit, Resistor, VoltageSource
from repro.spice.netlist import is_ground


class TestGroundAliases:
    def test_canonical_names(self):
        for name in ("0", "gnd", "GND", "ground"):
            assert is_ground(name)

    def test_other_names(self):
        for name in ("vdd", "out", "", "g"):
            assert not is_ground(name)


class TestCircuit:
    def test_nodes_exclude_ground(self):
        ckt = Circuit()
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.add(Resistor("r2", "a", "gnd", 1.0))
        assert ckt.nodes == frozenset({"a"})

    def test_duplicate_element_rejected(self):
        ckt = Circuit()
        ckt.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(CircuitError, match="duplicate"):
            ckt.add(Resistor("r1", "b", "0", 1.0))

    def test_element_lookup(self):
        ckt = Circuit()
        r = ckt.add(Resistor("r1", "a", "0", 5.0))
        assert ckt.element("r1") is r
        assert "r1" in ckt
        assert ckt.has_element("r1")
        assert not ckt.has_element("r2")

    def test_unknown_element_raises(self):
        ckt = Circuit("c")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(CircuitError, match="no element"):
            ckt.element("missing")

    def test_extend_and_len(self):
        ckt = Circuit()
        ckt.extend([Resistor("r1", "a", "b", 1.0),
                    VoltageSource("v1", "a", "0", 1.0)])
        assert len(ckt) == 2

    def test_repr_mentions_counts(self):
        ckt = Circuit("mycirc")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        text = repr(ckt)
        assert "mycirc" in text
        assert "elements=1" in text


class TestElementValidation:
    def test_negative_resistance_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("r", "a", "b", -1.0)

    def test_zero_resistance_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("r", "a", "b", 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("", "a", "b", 1.0)

    def test_negative_capacitance_rejected(self):
        from repro.spice import Capacitor
        with pytest.raises(CircuitError):
            Capacitor("c", "a", "b", -1e-12)
