"""Element stamp tests, including property-based Jacobian consistency.

The FET stamp must satisfy, at any operating point: the Jacobian entries
equal the numerical derivative of the stamped residual currents.  This
holds for n-type and p-type models in both drain/source orientations,
which is exactly where sign errors hide.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import PENTACENE, silicon_nmos_45, silicon_pmos_45
from repro.spice import Circuit, Fet, Resistor, VoltageSource
from repro.spice.mna import MnaSystem


def _residual_currents(model, w, l, voltages):
    """Stamped FET residual at the given (vd, vg, vs) node voltages."""
    ckt = Circuit()
    ckt.add(Resistor("rd", "d", "0", 1e12))
    ckt.add(Resistor("rg", "g", "0", 1e12))
    ckt.add(Resistor("rs", "s", "0", 1e12))
    fet = ckt.add(Fet("m", "d", "g", "s", model, w, l))
    sys = MnaSystem(ckt)
    x = np.zeros(sys.size)
    for node, v in voltages.items():
        x[sys.node_index[node]] = v
    J = np.zeros((sys.size, sys.size))
    F = np.zeros(sys.size)
    fet.stamp_nonlinear(J, F, x)
    return sys, x, J, F


MODELS = {
    "pentacene": (PENTACENE, 100e-6, 20e-6, 5.0),
    "nmos45": (silicon_nmos_45(), 1e-6, 45e-9, 1.1),
    "pmos45": (silicon_pmos_45(), 1e-6, 45e-9, 1.1),
}


@pytest.mark.parametrize("model_name", sorted(MODELS))
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_fet_jacobian_matches_finite_difference(model_name, data):
    model, w, l, vmax = MODELS[model_name]
    vd = data.draw(st.floats(-vmax, vmax))
    vg = data.draw(st.floats(-vmax, vmax))
    vs = data.draw(st.floats(-vmax, vmax))
    voltages = {"d": vd, "g": vg, "s": vs}

    sys, x, J, F = _residual_currents(model, w, l, voltages)
    h = 1e-7 * max(vmax, 1.0)
    for node in ("d", "g", "s"):
        # Skip points within h of the drain/source swap kink, where the
        # one-sided derivative genuinely differs.
        if abs(vd - vs) < 10 * h:
            continue
        xp = x.copy()
        xp[sys.node_index[node]] += h
        Jp = np.zeros_like(J)
        Fp = np.zeros_like(F)
        sys.circuit.element("m").stamp_nonlinear(Jp, Fp, xp)
        numeric = (Fp - F) / h
        col = sys.node_index[node]
        for row_node in ("d", "s"):
            row = sys.node_index[row_node]
            analytic = J[row, col]
            scale = max(abs(analytic), abs(numeric[row]), 1e-9)
            assert abs(analytic - numeric[row]) / scale < 5e-2, (
                f"dF[{row_node}]/dV[{node}] mismatch: "
                f"{analytic} vs {numeric[row]}")


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_fet_current_conservation(model_name):
    """Channel current leaving the drain equals current entering source."""
    model, w, l, vmax = MODELS[model_name]
    sys, x, J, F = _residual_currents(
        model, w, l, {"d": 0.7 * vmax, "g": vmax, "s": 0.0})
    i_d = F[sys.node_index["d"]]
    i_s = F[sys.node_index["s"]]
    assert i_d == pytest.approx(-i_s, rel=1e-12)
    assert F[sys.node_index["g"]] == 0.0  # no DC gate current


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_fet_symmetric_swap(model_name):
    """Swapping drain/source terminals flips the current sign exactly."""
    model, w, l, vmax = MODELS[model_name]
    _, xa, _, Fa = _residual_currents(
        model, w, l, {"d": 0.5 * vmax, "g": vmax, "s": 0.0})
    sys, xb, _, Fb = _residual_currents(
        model, w, l, {"d": 0.0, "g": vmax, "s": 0.5 * vmax})
    assert Fa[sys.node_index["d"]] == pytest.approx(
        Fb[sys.node_index["s"]], rel=1e-9)


def test_fet_operating_point_reports_physical_current():
    """operating_point's drain current matches the stamped residual."""
    model, w, l, vmax = MODELS["nmos45"]
    sys, x, _, F = _residual_currents(
        model, w, l, {"d": 1.0, "g": 1.1, "s": 0.0})
    fet = sys.circuit.element("m")
    i_d, gm, gds = fet.operating_point(x)
    # Residual at d = current leaving node d = current INTO the drain.
    assert i_d == pytest.approx(F[sys.node_index["d"]], rel=1e-6)
    assert gm > 0 and gds > 0


def test_capacitances_attached():
    fet = Fet("m", "d", "g", "s", PENTACENE, 100e-6, 20e-6)
    assert fet.cgs > 0 and fet.cgd > 0
    # Channel + overlap for this geometry is picofarad-scale.
    assert 1e-13 < fet.cgs < 1e-10


def test_invalid_geometry_rejected():
    from repro.errors import CircuitError
    with pytest.raises(CircuitError):
        Fet("m", "d", "g", "s", PENTACENE, -1e-6, 20e-6)
