"""DC operating-point and sweep tests."""

import numpy as np
import pytest

from repro.devices import PENTACENE, silicon_nmos_45
from repro.errors import CircuitError
from repro.spice import (
    Circuit,
    CurrentSource,
    Fet,
    Resistor,
    VoltageSource,
    dc_sweep,
    operating_point,
)


def divider(r1=1e3, r2=1e3, v=1.0):
    ckt = Circuit("div")
    ckt.add(VoltageSource("vin", "in", "0", v))
    ckt.add(Resistor("r1", "in", "mid", r1))
    ckt.add(Resistor("r2", "mid", "0", r2))
    return ckt


class TestLinearDc:
    def test_resistor_divider(self):
        x, sys = operating_point(divider())
        assert sys.voltage(x, "mid") == pytest.approx(0.5)

    def test_divider_ratio(self):
        x, sys = operating_point(divider(r1=3e3, r2=1e3, v=4.0))
        assert sys.voltage(x, "mid") == pytest.approx(1.0)

    def test_source_current(self):
        x, sys = operating_point(divider(r1=1e3, r2=1e3, v=2.0))
        # 2 V across 2 kOhm; current enters the source's + terminal.
        assert sys.source_current(x, "vin") == pytest.approx(-1e-3)

    def test_current_source_into_resistor(self):
        ckt = Circuit()
        ckt.add(CurrentSource("i1", "0", "a", 1e-3))  # pushes into node a
        ckt.add(Resistor("r1", "a", "0", 1e3))
        x, sys = operating_point(ckt)
        assert sys.voltage(x, "a") == pytest.approx(1.0)

    def test_ground_voltage_is_zero(self):
        x, sys = operating_point(divider())
        assert sys.voltage(x, "0") == 0.0
        assert sys.voltage(x, "gnd") == 0.0

    def test_unknown_node_raises(self):
        x, sys = operating_point(divider())
        with pytest.raises(CircuitError):
            sys.voltage(x, "nope")


class TestNonlinearDc:
    def test_nmos_pulldown(self):
        """An on NMOS pulls its drain near ground through a resistor."""
        nmos = silicon_nmos_45()
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", "0", 1.1))
        ckt.add(Resistor("rl", "vdd", "out", 1e5))
        ckt.add(VoltageSource("vg", "g", "0", 1.1))
        ckt.add(Fet("m1", "out", "g", "0", nmos, 1e-6, 45e-9))
        x, sys = operating_point(ckt)
        assert sys.voltage(x, "out") < 0.1

    def test_nmos_off(self):
        nmos = silicon_nmos_45()
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", "0", 1.1))
        ckt.add(Resistor("rl", "vdd", "out", 1e5))
        ckt.add(VoltageSource("vg", "g", "0", 0.0))
        ckt.add(Fet("m1", "out", "g", "0", nmos, 1e-6, 45e-9))
        x, sys = operating_point(ckt)
        # Off transistor: output stays near VDD (only leakage drops).
        assert sys.voltage(x, "out") > 0.9

    def test_ptype_pullup(self):
        """A p-type OTFT with grounded gate pulls its drain toward VDD."""
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", "0", 5.0))
        ckt.add(VoltageSource("vg", "g", "0", 0.0))
        ckt.add(Fet("m1", "out", "g", "vdd", PENTACENE, 100e-6, 20e-6))
        ckt.add(Resistor("rl", "out", "0", 1e7))
        x, sys = operating_point(ckt)
        assert sys.voltage(x, "out") > 4.0

    def test_kcl_residual_small(self):
        """The converged solution satisfies KCL tightly."""
        nmos = silicon_nmos_45()
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", "0", 1.1))
        ckt.add(Resistor("rl", "vdd", "out", 1e4))
        ckt.add(VoltageSource("vg", "g", "0", 0.6))
        ckt.add(Fet("m1", "out", "g", "0", nmos, 1e-6, 45e-9))
        from repro.spice.mna import MnaSystem
        from repro.spice.dc import solve_operating_point
        sys = MnaSystem(ckt)
        x = solve_operating_point(sys)
        G = sys.linear_jacobian()
        b = sys.rhs(0.0)
        F, _ = sys.residual_and_jacobian(x, G, b)
        assert np.max(np.abs(F[:sys.n_nodes])) < 1e-9


class TestDcSweep:
    def test_sweep_matches_pointwise(self):
        ckt = divider()
        values = np.linspace(0.0, 2.0, 11)
        res = dc_sweep(ckt, "vin", values)
        assert np.allclose(res.voltage("mid"), values / 2.0)

    def test_sweep_restores_source_value(self):
        ckt = divider(v=1.25)
        dc_sweep(ckt, "vin", [0.0, 1.0])
        assert ckt.element("vin").value == 1.25

    def test_sweep_len(self):
        res = dc_sweep(divider(), "vin", [0.0, 0.5, 1.0])
        assert len(res) == 3

    def test_sweep_source_current(self):
        res = dc_sweep(divider(r1=1e3, r2=1e3), "vin", [0.0, 2.0])
        assert res.source_current("vin")[1] == pytest.approx(-1e-3)
