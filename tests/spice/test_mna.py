"""MNA assembly tests."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.spice import Capacitor, Circuit, Resistor, VoltageSource
from repro.spice.mna import MnaSystem


def rc_circuit():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("v1", "in", "0", 1.0))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", "0", 1e-9))
    return ckt


class TestAssembly:
    def test_unknown_ordering_nodes_then_branches(self):
        sys = MnaSystem(rc_circuit())
        assert sys.n_nodes == 2
        assert sys.size == 3      # 2 nodes + 1 source branch
        assert sys.branch_index["v1"] == 2

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            MnaSystem(Circuit("empty"))

    def test_all_ground_circuit_rejected(self):
        ckt = Circuit("g")
        ckt.add(Resistor("r1", "0", "gnd", 1.0))
        with pytest.raises(CircuitError):
            MnaSystem(ckt)

    def test_capacitor_open_in_dc(self):
        sys = MnaSystem(rc_circuit())
        G_dc = sys.linear_jacobian(dt=None)
        G_tr = sys.linear_jacobian(dt=1e-9)
        out = sys.node_index["out"]
        # DC: only the resistor loads node 'out'; transient adds C/dt = 1S.
        assert G_dc[out, out] == pytest.approx(1e-3)
        assert G_tr[out, out] == pytest.approx(1e-3 + 1.0)

    def test_jacobian_symmetric_for_rc(self):
        sys = MnaSystem(rc_circuit())
        G = sys.linear_jacobian(dt=1e-9)
        n = sys.n_nodes
        assert np.allclose(G[:n, :n], G[:n, :n].T)

    def test_rhs_contains_source_value(self):
        sys = MnaSystem(rc_circuit())
        b = sys.rhs(t=0.0)
        assert b[sys.branch_index["v1"]] == pytest.approx(1.0)

    def test_rhs_history_term(self):
        sys = MnaSystem(rc_circuit())
        x_prev = np.zeros(sys.size)
        x_prev[sys.node_index["out"]] = 0.5
        b = sys.rhs(t=0.0, x_prev=x_prev, dt=1e-9)
        # Capacitor history: (C/dt) * v_prev = 1 S * 0.5 V.
        assert b[sys.node_index["out"]] == pytest.approx(0.5)

    def test_source_current_unknown_name(self):
        sys = MnaSystem(rc_circuit())
        with pytest.raises(CircuitError):
            sys.source_current(np.zeros(sys.size), "r1")


class TestResidual:
    def test_linear_residual_zero_at_solution(self):
        from repro.spice.dc import solve_operating_point
        sys = MnaSystem(rc_circuit())
        x = solve_operating_point(sys)
        G = sys.linear_jacobian()
        b = sys.rhs(0.0)
        F, J = sys.residual_and_jacobian(x, G, b)
        assert np.max(np.abs(F)) < 1e-9
        assert np.allclose(J, G)   # no nonlinear elements
