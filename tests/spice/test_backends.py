"""Solver-backend dispatch, equivalence, and degradation tests.

The backend layer promises that ``REPRO_BACKEND`` changes *where* the
linear algebra runs, never *what* it computes: the NumPy reference and
the blocked backend below its batch threshold are bit-identical, the
blocked static-LU path and the compiled kernel agree to solver
tolerance, a singular lane is deactivated instead of killing its batch,
and a machine without a C compiler degrades to the reference backend
with a single warning.
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.topologies import diode_load_inverter
from repro.devices.pentacene import pentacene_model
from repro.runtime import telemetry
from repro.spice import (
    Capacitor,
    Circuit,
    EnsembleSystem,
    EnsembleTransient,
    NewtonOptions,
    Probe,
    RampValue,
    Resistor,
    TransientOptions,
    VoltageSource,
)
from repro.spice.backends import (
    BlockedBackend,
    NumpyBackend,
    get_backend,
    reset_backend,
)
from repro.spice.backends import native as native_mod

VDD = 15.0

BACKENDS = ("numpy", "blocked", "native")


@pytest.fixture(autouse=True)
def _backend_isolation():
    """Re-resolve the backend (and the kernel load state) after each test."""
    yield
    reset_backend()
    native_mod.reset()


def _use(monkeypatch, name: str, **env: str):
    for key, value in env.items():
        monkeypatch.setenv(key, value)
    monkeypatch.setenv("REPRO_BACKEND", name)
    reset_backend()
    return get_backend()


def inverter_testbench(load=1e-12, slew=2e-4, vt_shift=0.0):
    model = pentacene_model(vt_shift=vt_shift)
    cell = diode_load_inverter(model, w_drive=100e-6, w_load=30e-6, vdd=VDD)
    ckt = Circuit("tb")
    ckt.add(VoltageSource("v_vdd", "vdd", "0", VDD))
    ckt.add(VoltageSource("v_a", "a", "0",
                          RampValue(0.0, VDD, 0.2 * slew, slew)))
    cell.instantiate(ckt, {"a": "a", "out": "out", "vdd": "vdd", "vss": "0"})
    ckt.add(Capacitor("c_load", "out", "0", load))
    return ckt


def grid_run():
    """Final values + crossing times for a 2x2 slew/load ensemble grid."""
    members, opts = [], []
    for slew in (1e-4, 4e-4):
        for load in (0.5e-12, 4e-12):
            members.append(inverter_testbench(load=load, slew=slew))
            dt = min(2e-3 / 400, slew / 8)
            opts.append(TransientOptions(dt=dt, t_stop=2e-3, dt_max=16 * dt,
                                         lte_tol=5e-4 * VDD))
    ens = EnsembleTransient(members, opts, [Probe("out", 0.5 * VDD)]).run()
    crossings = [ens.crossing_times(0, m) for m in range(len(members))]
    return ens.final_value("out"), crossings


class TestEquivalence:
    def test_blocked_small_batch_bit_identical_to_numpy(self, monkeypatch):
        """Below MIN_BATCH the blocked backend is the reference, bitwise."""
        _use(monkeypatch, "numpy")
        ref_final, ref_cross = grid_run()
        _use(monkeypatch, "blocked")
        final, cross = grid_run()
        assert np.array_equal(final, ref_final)
        for c, rc in zip(cross, ref_cross):
            assert np.array_equal(c, rc)

    def test_blocked_static_lu_matches_numpy(self, monkeypatch):
        """Forcing the static-pivot LU path agrees to solver tolerance."""
        _use(monkeypatch, "numpy")
        ref_final, ref_cross = grid_run()
        _use(monkeypatch, "blocked", REPRO_BLOCKED_MIN_BATCH="1")
        final, cross = grid_run()
        np.testing.assert_allclose(final, ref_final, rtol=1e-9, atol=1e-12)
        for c, rc in zip(cross, ref_cross):
            assert len(c) == len(rc)
            np.testing.assert_allclose(c, rc, rtol=1e-9, atol=1e-15)

    def test_native_matches_numpy_within_tolerance(self, monkeypatch):
        backend = _use(monkeypatch, "native")
        if backend.name != "native":
            pytest.skip("no C compiler on this machine")
        final, cross = grid_run()
        _use(monkeypatch, "numpy")
        ref_final, ref_cross = grid_run()
        np.testing.assert_allclose(final, ref_final, rtol=1e-6, atol=1e-9)
        for c, rc in zip(cross, ref_cross):
            assert len(c) == len(rc)
            np.testing.assert_allclose(c, rc, rtol=1e-6, atol=1e-12)

    @settings(max_examples=5, deadline=None)
    @given(vt_shift=st.floats(-0.4, 0.4),
           load=st.floats(0.5e-12, 4e-12),
           slew=st.floats(1e-4, 4e-4))
    def test_randomized_bindings_agree_across_backends(
            self, vt_shift, load, slew):
        """Hypothesis-randomized bindings: every backend, same answer."""
        def run():
            members = [inverter_testbench(load=load, slew=slew,
                                          vt_shift=vt_shift),
                       inverter_testbench()]
            dt = min(2e-3 / 400, slew / 8)
            opts = [TransientOptions(dt=dt, t_stop=2e-3, dt_max=16 * dt,
                                     lte_tol=5e-4 * VDD)] * 2
            ens = EnsembleTransient(members, opts,
                                    [Probe("out", 0.5 * VDD)]).run()
            return ens.final_value("out")

        try:
            with pytest.MonkeyPatch.context() as mp:
                _use(mp, "numpy")
                ref = run()
            for name in ("blocked", "native"):
                with pytest.MonkeyPatch.context() as mp:
                    backend = _use(mp, name)
                    if name == "native" and backend.name != "native":
                        continue       # no C compiler on this machine
                    np.testing.assert_allclose(run(), ref,
                                               rtol=1e-6, atol=1e-9)
        finally:
            reset_backend()


class TestWholeTimestepLoop:
    """The native whole-timestep entry point (ensemble_timestep)."""

    def _native_or_skip(self, mp, **env):
        backend = _use(mp, "native", **env)
        if backend.name != "native":
            pytest.skip("no C compiler on this machine")
        return backend

    def test_bitwise_identical_to_per_iteration_native(self, monkeypatch):
        """The C sweep loop replays the numpy orchestration bit-exactly.

        ``REPRO_NATIVE_TIMESTEP=0`` keeps the per-iteration Newton
        kernel but runs the sweep loop in Python — the schedule contract
        says both paths produce the same steps, finals and crossings to
        the last bit (probing the ramping *input* guarantees the lanes
        actually record crossings, so the comparison is not vacuous).
        """
        def run():
            members, opts = [], []
            for slew in (1e-4, 4e-4):
                for load in (0.5e-12, 4e-12):
                    members.append(inverter_testbench(load=load, slew=slew))
                    dt = min(2e-3 / 400, slew / 8)
                    opts.append(TransientOptions(
                        dt=dt, t_stop=2e-3, dt_max=16 * dt,
                        lte_tol=5e-4 * VDD))
            ens = EnsembleTransient(
                members, opts,
                [Probe("a", 0.5 * VDD), Probe("out", 0.5 * VDD)]).run()
            cross = [ens.crossing_times(p, m)
                     for p in range(2) for m in range(len(members))]
            return ens.final_value("out"), cross, ens.steps.copy()

        self._native_or_skip(monkeypatch)
        final_ts, cross_ts, steps_ts = run()
        assert sum(len(c) for c in cross_ts) > 0
        monkeypatch.setenv("REPRO_NATIVE_TIMESTEP", "0")
        reset_backend()
        final_it, cross_it, steps_it = run()
        assert np.array_equal(final_ts, final_it)
        assert np.array_equal(steps_ts, steps_it)
        for c_ts, c_it in zip(cross_ts, cross_it):
            assert np.array_equal(c_ts, c_it)

    def test_crossing_buffer_overflow_bails_to_python(self, monkeypatch):
        """A lane overflowing the C crossing buffer resumes in Python.

        With the buffer forced to zero capacity every crossing-bearing
        lane bails at its first event; the Python sweep loop must finish
        those lanes with results bitwise equal to the per-iteration
        native run (the schedule contract's reference arithmetic).
        """
        self._native_or_skip(monkeypatch)
        monkeypatch.setattr(native_mod, "CROSS_CAP", 0)

        def run():
            members, opts = [], []
            for slew in (1e-4, 4e-4):
                members.append(inverter_testbench(slew=slew))
                dt = min(2e-3 / 400, slew / 8)
                opts.append(TransientOptions(
                    dt=dt, t_stop=2e-3, dt_max=16 * dt,
                    lte_tol=5e-4 * VDD))
            ens = EnsembleTransient(members, opts,
                                    [Probe("a", 0.5 * VDD)]).run()
            return (ens.final_value("out"),
                    [ens.crossing_times(0, m) for m in range(2)],
                    ens.steps.copy())

        final_n, cross_n, steps_n = run()
        assert all(len(c) == 1 for c in cross_n)
        monkeypatch.setenv("REPRO_NATIVE_TIMESTEP", "0")
        reset_backend()
        final_ref, cross_ref, steps_ref = run()
        assert np.array_equal(final_n, final_ref)
        assert np.array_equal(steps_n, steps_ref)
        for c, rc in zip(cross_n, cross_ref):
            assert np.array_equal(c, rc)

    def test_disable_knob_falls_back_to_per_iteration(self, monkeypatch):
        backend = self._native_or_skip(monkeypatch,
                                       REPRO_NATIVE_TIMESTEP="0")

        class _Probe:
            pass

        et = _Probe()  # never touched: the knob declines before reading
        assert backend.ensemble_timestep(et) is None

    @settings(max_examples=6, deadline=None)
    @given(batch=st.sampled_from([1, 7, 64]))
    def test_chunk_size_bit_identical_event_times(self, batch):
        """REPRO_ENSEMBLE_BATCH is pure scheduling under the native loop.

        Each lane integrates to completion independently in C, so the
        per-lane step schedule — and every derived event time — cannot
        depend on which chunk a grid point lands in.  Characterising the
        same mini-grid with batch 1, 7 and 64 must give *bit-identical*
        delays and transitions (not approx: the contract is equality).
        """
        from repro.cells.library_def import organic_library_definition
        from repro.characterization import harness

        with pytest.MonkeyPatch.context() as mp:
            self._native_or_skip(mp)
            defn = organic_library_definition()
            grid = harness.default_grid(defn)
            cell = defn.cells["inv"]
            points = [(s, l) for s in grid.slews[:3]
                      for l in grid.loads[:3]]
            mp.setenv("REPRO_ENSEMBLE_BATCH", str(batch))
            got = harness.measure_arc_batch(cell, "a", True, points)
            mp.setenv("REPRO_ENSEMBLE_BATCH", "64")
            ref = harness.measure_arc_batch(cell, "a", True, points)
        reset_backend()
        native_mod.reset()
        assert got == ref


class TestSingularLanes:
    def test_solve_stacked_flags_singular_lane(self):
        """A singular lane yields ok=False, zeros — never LinAlgError."""
        rng = np.random.default_rng(0)
        J = rng.normal(size=(3, 4, 4)) + 4.0 * np.eye(4)
        J[1] = 0.0
        F = rng.normal(size=(3, 4))
        for backend in (NumpyBackend(), BlockedBackend()):
            delta, ok = backend.solve_stacked(J, F, None)
            assert ok.tolist() == [True, False, True]
            assert np.all(delta[1] == 0.0)
            np.testing.assert_allclose(J[0] @ delta[0], -F[0], atol=1e-9)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_singular_lane_never_kills_the_batch(self, monkeypatch, name):
        """Integration: one degenerate lane, the others still converge."""
        backend = _use(monkeypatch, name)
        if name == "native" and backend.name != "native":
            pytest.skip("no C compiler on this machine")
        members = []
        for k in range(2):
            ckt = Circuit(f"rc{k}")
            ckt.add(VoltageSource("v1", "in", "0", 1.0))
            ckt.add(Resistor("r1", "in", "out", 1e3))
            ckt.add(Resistor("r2", "out", "0", 1e3 * (k + 1)))
            members.append(ckt)
        es = EnsembleSystem(members)
        G = es.G_static.copy()
        G[0] = 0.0                       # lane 0: exactly singular
        b = np.zeros((es.B, es.size))
        b[:, es.size - 1] = 1.0          # drive the source branch row
        x, conv = es.newton_batch(np.arange(es.B), G, b,
                                  np.zeros((es.B, es.size)), NewtonOptions())
        assert conv.tolist() == [False, True]
        assert np.all(np.isfinite(x))


class TestCounterParity:
    """The C kernels report the same solver counters as the numpy path.

    The native backends marshal per-lane Newton iteration and probe
    crossing counts out of the C kernels; the contract is *exact*
    integer equality with the numpy reference loop (same schedule, same
    arithmetic, same counts) — not just statistical agreement.  Probing
    the ramping input guarantees every lane records a crossing, so the
    crossing-counter comparison is never vacuous.
    """

    PARITY_KEYS = (
        "ensemble.transient_steps",
        "ensemble.transient_halvings",
        "ensemble.lte_rejections",
        "ensemble.newton_lane_iterations",
        "ensemble.probe_crossings",
    )

    def _counted_run(self):
        members, opts = [], []
        for slew in (1e-4, 4e-4):
            for load in (0.5e-12, 4e-12):
                members.append(inverter_testbench(load=load, slew=slew))
                dt = min(2e-3 / 400, slew / 8)
                opts.append(TransientOptions(dt=dt, t_stop=2e-3,
                                             dt_max=16 * dt,
                                             lte_tol=5e-4 * VDD))
        telemetry.reset()
        telemetry.enable(True)
        try:
            ens = EnsembleTransient(members, opts,
                                    [Probe("a", 0.5 * VDD)]).run()
            metrics = telemetry.metrics_snapshot()
        finally:
            telemetry.enable(False)
            telemetry.reset()
        counters = dict(metrics.get("counters", metrics))
        parity = {key: counters.get(key, 0) for key in self.PARITY_KEYS}
        return ens.final_value("out"), parity, counters

    def test_native_counters_match_numpy(self, monkeypatch):
        _use(monkeypatch, "numpy")
        ref_final, ref_parity, _ = self._counted_run()
        assert ref_parity["ensemble.transient_steps"] > 0
        assert ref_parity["ensemble.newton_lane_iterations"] > 0
        assert ref_parity["ensemble.probe_crossings"] >= 4  # one per lane

        backend = _use(monkeypatch, "native", REPRO_NATIVE_TIMESTEP="1")
        if backend.name != "native":
            pytest.skip("no C compiler on this machine")

        # Whole-timestep C loop (stats marshalled from the sweep kernel).
        final_ts, parity_ts, all_ts = self._counted_run()
        assert all_ts.get("backend.native.timestep_calls", 0) > 0
        assert parity_ts == ref_parity

        # Per-iteration C Newton kernel (stats from the newton kernel).
        monkeypatch.setenv("REPRO_NATIVE_TIMESTEP", "0")
        reset_backend()
        final_it, parity_it, all_it = self._counted_run()
        assert all_it.get("backend.native.kernel_calls", 0) > 0
        assert all_it.get("backend.native.timestep_calls", 0) == 0
        assert parity_it == ref_parity

        np.testing.assert_allclose(final_ts, ref_final,
                                   rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(final_it, ref_final,
                                   rtol=1e-6, atol=1e-9)


class TestDispatchAndDegradation:
    def test_forced_numpy(self, monkeypatch):
        assert _use(monkeypatch, "numpy").name == "numpy"

    def test_unknown_name_warns_and_uses_auto(self, monkeypatch, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            backend = _use(monkeypatch, "no-such-backend")
        assert backend.name in ("numpy", "native")
        assert any("unknown REPRO_BACKEND" in r.getMessage()
                   for r in caplog.records)

    def test_compile_failure_degrades_with_single_warning(
            self, monkeypatch, tmp_path, caplog):
        """No compiler + no cached kernel: one warning, correct results."""
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path / "kernels"))
        monkeypatch.setattr(native_mod.shutil, "which", lambda name: None)
        native_mod.reset()
        with caplog.at_level(logging.WARNING, logger="repro"):
            backend = _use(monkeypatch, "native")
            get_backend()                # resolving again must not re-warn
            assert native_mod.load_kernel() is None
        assert backend.name == "numpy"
        native_warnings = [
            r for r in caplog.records
            if r.name == "repro.spice.backends.native"]
        assert len(native_warnings) == 1
        assert "no C compiler" in native_warnings[0].getMessage()
        # The degraded process still solves correctly.
        final, _ = grid_run()
        assert np.all(np.isfinite(final))

    def test_per_backend_solve_counters(self, monkeypatch):
        backend = _use(monkeypatch, "numpy")
        telemetry.reset()
        telemetry.enable(True)
        try:
            J = np.eye(3)[None].repeat(2, axis=0)
            backend.solve_stacked(J, np.ones((2, 3)), None)
        finally:
            telemetry.enable(False)
        metrics = telemetry.metrics_snapshot()
        counters = metrics.get("counters", metrics)
        assert counters.get("backend.numpy.solve_calls", 0) >= 1
        assert counters.get("backend.numpy.lanes_solved", 0) >= 2
