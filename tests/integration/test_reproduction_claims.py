"""End-to-end reproduction checks of the paper's headline claims.

These run the actual experiment drivers (with reduced trace lengths to
stay test-suite-friendly) and assert the *shape* results the paper
reports:  organic favours deeper pipelines and wider superscalars.
"""

import pytest

from repro.analysis.figures import (
    fig11_pipeline_depth,
    fig12_alu_depth,
    fig14_width_area,
    fig15_wire_ablation,
)
from repro.core.config import CoreConfig
from repro.core.physical import core_physical
from repro.core.superscalar import simulate
from repro.core.tradeoffs import make_traces, width_sweep, width_matrix


@pytest.fixture(scope="module")
def fig11():
    return fig11_pipeline_depth(max_depth=15, n_instructions=12_000)


@pytest.fixture(scope="module")
def fig12():
    return fig12_alu_depth()


class TestHeadlineDepthClaim:
    def test_organic_optimal_depth_deeper(self, fig11):
        """THE claim: organic favours deeper pipelines than silicon."""
        d_org = fig11.optimal_depth("organic")
        d_sil = fig11.optimal_depth("silicon")
        assert d_org > d_sil

    def test_silicon_optimum_near_10_11(self, fig11):
        assert 10 <= fig11.optimal_depth("silicon") <= 12

    def test_organic_optimum_near_14_15(self, fig11):
        assert 13 <= fig11.optimal_depth("organic") <= 15

    def test_area_flat_with_depth(self, fig11):
        """Paper: 'respective areas of the two processes are flat'."""
        for process in ("organic", "silicon"):
            areas = fig11.normalized_area(process)
            assert max(areas.values()) < 1.10

    def test_baseline_frequencies(self, fig11):
        f_org = fig11.organic[0].physical.frequency
        f_sil = fig11.silicon[0].physical.frequency
        assert 50 < f_org < 800          # paper: ~200 Hz
        assert 3e8 < f_sil < 4e9         # paper: ~800 MHz


class TestAluDepthClaim:
    def test_silicon_saturates_before_organic(self, fig12):
        assert (fig12.saturation_stage("silicon")
                < fig12.saturation_stage("organic"))

    def test_silicon_flat_beyond_saturation(self, fig12):
        """Paper: silicon frequency stops improving past ~8 stages."""
        ratios = fig12.frequency_ratios("silicon")
        idx_8 = fig12.stage_counts.index(8)
        assert max(ratios) < 1.35 * ratios[idx_8]

    def test_organic_keeps_scaling(self, fig12):
        """Paper: organic grows roughly linearly well past 8 stages."""
        ratios = fig12.frequency_ratios("organic")
        idx_8 = fig12.stage_counts.index(8)
        assert max(ratios) > 1.4 * ratios[idx_8]

    def test_area_grows_with_stages(self, fig12):
        for process in ("organic", "silicon"):
            areas = fig12.area_ratios(process)
            assert areas[-1] > 2.0


class TestWidthClaim:
    @pytest.fixture(scope="class")
    def matrices(self, organic_lib, organic_wire, silicon_lib, silicon_wire):
        traces = make_traces(n_instructions=10_000)
        org = width_matrix(width_sweep(organic_lib, organic_wire,
                                       traces=traces), "performance")
        sil = width_matrix(width_sweep(silicon_lib, silicon_wire,
                                       traces=traces), "performance")
        return org, sil

    def test_silicon_optimum_at_4_2(self, matrices):
        """Paper: 'the optimal point for silicon is located at M[4][2]'."""
        _, sil = matrices
        best_bw, best_fw = max(sil, key=sil.get)
        assert best_bw == 4
        assert best_fw in (2, 3)

    def test_organic_optimum_wider_backend(self, matrices):
        """Paper: organic optimum ~3 execution pipes wider than silicon."""
        org, sil = matrices
        org_bw = max(org, key=org.get)[0]
        sil_bw = max(sil, key=sil.get)[0]
        assert org_bw >= sil_bw + 2

    def test_organic_less_width_sensitive(self, matrices):
        """Paper: 'organic technology is less sensitive to width change'."""
        org, sil = matrices
        spread = lambda m: max(m.values()) - min(m.values())  # noqa: E731
        assert spread(org) < spread(sil)

    def test_front_width_one_starves(self, matrices):
        """Both processes: the fetch-1 column clearly underperforms."""
        for m in matrices:
            assert m[(4, 1)] < 0.9 * m[(4, 2)]


class TestAreaMatrixClaim:
    def test_area_nearly_process_independent(self):
        """Paper Fig 14: normalised areas 'similar' across processes."""
        result = fig14_width_area()
        assert result.max_process_difference() < 0.06


class TestWireAblationClaim:
    @pytest.fixture(scope="class")
    def fig15(self):
        return fig15_wire_ablation()

    def test_silicon_without_wire_behaves_like_organic(self, fig15):
        """Paper Section 5.5: remove wire cost and silicon's depth
        scaling matches the organic process's."""
        si_nw = fig15.core["silicon_no_wire"]
        org = fig15.core["organic"]
        for a, b in zip(si_nw, org):
            assert a == pytest.approx(b, rel=0.15)

    def test_wire_limits_silicon_depth_scaling(self, fig15):
        si = fig15.core["silicon"]
        si_nw = fig15.core["silicon_no_wire"]
        assert si_nw[-1] > 1.4 * si[-1]

    def test_organic_insensitive_to_wire(self, fig15):
        org = fig15.core["organic"]
        org_nw = fig15.core["organic_no_wire"]
        for a, b in zip(org, org_nw):
            assert a == pytest.approx(b, rel=0.05)

    def test_14_stage_frequency_ratios(self, fig15):
        """Paper: organic 2x vs silicon 1.5x at 14 stages."""
        idx = fig15.core_depths.index(14)
        assert fig15.core["organic"][idx] > 1.7
        assert fig15.core["silicon"][idx] < 1.8


class TestSimulatorPhysicalConsistency:
    def test_performance_product_positive(self, organic_lib, organic_wire):
        cfg = CoreConfig()
        traces = make_traces(workloads=["dhrystone"], n_instructions=2000)
        ipc = simulate(cfg, traces["dhrystone"]).ipc
        f = core_physical(cfg, organic_lib, organic_wire).frequency
        mips = ipc * f
        # Organic baseline: order of 100 instructions/second.
        assert 10 < mips < 1e3
