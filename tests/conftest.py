"""Shared fixtures.

Characterised libraries are expensive (hundreds of transistor-level
transients), so they are session-scoped here and disk-cached by the
characterisation harness itself; the first run of the suite pays the
characterisation cost once, later runs load JSON.
"""

from __future__ import annotations

import pytest

from repro.characterization import organic_library, silicon_library
from repro.runtime import progress, telemetry
from repro.synthesis.wires import organic_wire_model, silicon_wire_model


@pytest.fixture(autouse=True)
def _observability_isolation(tmp_path, monkeypatch):
    """Keep run reports out of the working tree and telemetry state
    from leaking between tests."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    yield
    telemetry.enable(False)
    telemetry.reset()
    # CLI invocations with -v flip the stderr-progress latch; undo it so
    # later tests see the documented disabled-by-default state.
    progress.set_stderr(False)


@pytest.fixture(scope="session")
def organic_lib():
    return organic_library()


@pytest.fixture(scope="session")
def silicon_lib():
    return silicon_library()


@pytest.fixture(scope="session")
def organic_wire():
    return organic_wire_model()


@pytest.fixture(scope="session")
def silicon_wire():
    return silicon_wire_model()
