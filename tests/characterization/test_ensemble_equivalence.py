"""Ensemble-vs-scalar characterisation equivalence.

``REPRO_ENSEMBLE=0`` routes the harness through the original scalar
per-point path; with it enabled (the default), whole slew x load grids
run as stacked batches.  The NLDM tables must agree to solver tolerance
— the batched controller replicates the scalar step-size schedule, so
in practice they agree to rounding error.

The single-arc checks run on every push; the full-grid cell and dff
comparisons carry the ``slow`` marker and run in the dedicated CI job.
"""

import numpy as np
import pytest

from repro.cells.library_def import organic_library_definition
from repro.characterization import harness


@pytest.fixture(scope="module")
def defn():
    return organic_library_definition()


@pytest.fixture(scope="module")
def grid(defn):
    return harness.default_grid(defn)


def test_measure_arc_batch_matches_scalar(defn, grid, monkeypatch):
    monkeypatch.delenv("REPRO_ENSEMBLE", raising=False)
    cell = defn.cells["nand2"]
    points = [(grid.slews[0], grid.loads[0]),
              (grid.slews[2], grid.loads[1]),
              (grid.slews[3], grid.loads[3])]
    batched = harness.measure_arc_batch(cell, "a", True, points)
    for (slew, load), (delay_b, slew_b) in zip(points, batched):
        delay_s, slew_s = harness.measure_arc(cell, "a", True, slew, load)
        assert delay_b == pytest.approx(delay_s, rel=1e-9)
        assert slew_b == pytest.approx(slew_s, rel=1e-9)


def test_batch_size_does_not_change_results(defn, grid, monkeypatch):
    """Chunking is a scheduling detail: batch-of-1 equals batch-of-N."""
    cell = defn.cells["inv"]
    points = [(s, l) for s in grid.slews[:2] for l in grid.loads[:2]]
    monkeypatch.setenv("REPRO_ENSEMBLE_BATCH", "1")
    singles = harness.measure_arc_batch(cell, "a", True, points)
    monkeypatch.setenv("REPRO_ENSEMBLE_BATCH", "32")
    whole = harness.measure_arc_batch(cell, "a", True, points)
    for (d1, s1), (dn, sn) in zip(singles, whole):
        assert d1 == pytest.approx(dn, rel=1e-9)
        assert s1 == pytest.approx(sn, rel=1e-9)


@pytest.mark.slow
def test_characterize_cell_tables_match_scalar(defn, grid, monkeypatch):
    cell = defn.cells["nand2"]
    monkeypatch.setenv("REPRO_ENSEMBLE", "0")
    scalar = harness.characterize_cell(cell, grid, area=1.0)
    monkeypatch.setenv("REPRO_ENSEMBLE", "1")
    batched = harness.characterize_cell(cell, grid, area=1.0)
    assert len(scalar.arcs) == len(batched.arcs)
    for arc_s, arc_b in zip(scalar.arcs, batched.arcs):
        assert arc_s.input_pin == arc_b.input_pin
        assert arc_s.output_transition == arc_b.output_transition
        for table in ("delay", "transition"):
            a = np.asarray(getattr(arc_b, table).values)
            b = np.asarray(getattr(arc_s, table).values)
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-15)


@pytest.mark.slow
def test_characterize_dff_matches_scalar(defn, grid, monkeypatch):
    t_unit = harness.estimate_gate_delay(
        defn.cell("inv"), 4.0 * defn.cell("inv").input_capacitance("a"))
    monkeypatch.setenv("REPRO_ENSEMBLE", "0")
    scalar = harness.characterize_dff(defn.dff, grid, area=1.0,
                                      t_unit=t_unit)
    monkeypatch.setenv("REPRO_ENSEMBLE", "1")
    batched = harness.characterize_dff(defn.dff, grid, area=1.0,
                                       t_unit=t_unit)
    np.testing.assert_allclose(np.asarray(batched.clk_to_q.values),
                               np.asarray(scalar.clk_to_q.values),
                               rtol=1e-9, atol=1e-15)
    assert batched.setup_time == pytest.approx(scalar.setup_time, rel=1e-9)
    assert batched.hold_time == pytest.approx(scalar.hold_time, rel=1e-9)
