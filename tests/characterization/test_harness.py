"""Characterisation-harness unit tests (grid, stimulus, measurements)."""

import pytest

from repro.cells.library_def import organic_library_definition
from repro.characterization.harness import (
    CharacterizationGrid,
    _non_controlling,
    average_leakage,
    default_grid,
    measure_arc,
    ramp_source,
)
from repro.errors import CharacterizationError


class TestGrid:
    def test_valid(self):
        CharacterizationGrid(slews=(1e-6, 1e-5), loads=(1e-12, 1e-11))

    def test_too_small(self):
        with pytest.raises(CharacterizationError):
            CharacterizationGrid(slews=(1e-6,), loads=(1e-12, 1e-11))

    def test_unsorted(self):
        with pytest.raises(CharacterizationError):
            CharacterizationGrid(slews=(1e-5, 1e-6), loads=(1e-12, 1e-11))

    def test_negative(self):
        with pytest.raises(CharacterizationError):
            CharacterizationGrid(slews=(-1e-6, 1e-5), loads=(1e-12, 1e-11))

    def test_default_grid_anchored_on_fo4(self):
        defn = organic_library_definition()
        grid = default_grid(defn)
        assert len(grid.slews) == 4 and len(grid.loads) == 4
        assert grid.slews[0] < grid.slews[-1]


class TestRampSource:
    def test_holds_then_ramps(self):
        src = ramp_source(0.0, 5.0, t_start=1e-5, slew=6e-6)
        assert src(0.0) == 0.0
        assert src(1e-5) == 0.0
        assert src(1.0) == 5.0
        duration = 6e-6 / 0.6
        mid = src(1e-5 + duration / 2)
        assert mid == pytest.approx(2.5, rel=1e-9)

    def test_falling_ramp(self):
        src = ramp_source(5.0, 0.0, t_start=0.0, slew=6e-6)
        assert src(1.0) == 0.0
        assert src(0.0) == 5.0


class TestSensitization:
    def test_inverter_has_no_side_inputs(self):
        defn = organic_library_definition()
        assert _non_controlling(defn.cell("inv"), "a") == {}

    def test_nand_side_inputs_high(self):
        defn = organic_library_definition()
        side = _non_controlling(defn.cell("nand3"), "a")
        assert side == {"b": 5.0, "c": 5.0}

    def test_nor_side_inputs_low(self):
        defn = organic_library_definition()
        side = _non_controlling(defn.cell("nor2"), "a")
        assert side == {"b": 0.0}


class TestMeasurement:
    def test_inverter_arc(self):
        defn = organic_library_definition()
        inv = defn.cell("inv")
        grid = default_grid(defn)
        delay, out_slew = measure_arc(inv, "a", True,
                                      grid.slews[1], grid.loads[1])
        assert delay > 0 and out_slew > 0
        # Organic gate delays are tens-to-hundreds of microseconds.
        assert 1e-6 < delay < 1e-2

    def test_delay_monotone_in_load(self):
        defn = organic_library_definition()
        inv = defn.cell("inv")
        grid = default_grid(defn)
        d_small, _ = measure_arc(inv, "a", True, grid.slews[1], grid.loads[0])
        d_big, _ = measure_arc(inv, "a", True, grid.slews[1], grid.loads[-1])
        assert d_big > d_small

    def test_average_leakage_positive(self):
        defn = organic_library_definition()
        assert average_leakage(defn.cell("nand2")) > 0
