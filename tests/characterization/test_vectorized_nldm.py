"""Acceptance check: NLDM tables from the forced-vectorized MNA path match
the scalar path to 1e-9 relative.

Both runs use the same transient controller settings, so any divergence
would come from the batched device evaluation / stamping itself.
"""

from __future__ import annotations

import numpy as np

from repro.cells.library_def import organic_library_definition
from repro.characterization import harness


def _characterize_inv(monkeypatch, mode: str):
    monkeypatch.setenv("REPRO_VECTORIZED", mode)
    defn = organic_library_definition()
    grid = harness.default_grid(defn)
    return harness.characterize_cell(defn.cell("inv"), grid,
                                     area=defn.cell_area("inv"))


def test_nldm_vectorized_matches_scalar(monkeypatch):
    scalar = _characterize_inv(monkeypatch, "0")
    batched = _characterize_inv(monkeypatch, "1")

    assert scalar.leakage != 0
    np.testing.assert_allclose(batched.leakage, scalar.leakage, rtol=1e-9)
    for arc_s, arc_b in zip(scalar.arcs, batched.arcs):
        assert arc_s.input_pin == arc_b.input_pin
        assert arc_s.output_transition == arc_b.output_transition
        np.testing.assert_allclose(arc_b.delay.values, arc_s.delay.values,
                                   rtol=1e-9, err_msg="delay table")
        np.testing.assert_allclose(arc_b.transition.values,
                                   arc_s.transition.values,
                                   rtol=1e-9, err_msg="slew table")
