"""Library-cache fingerprinting: anything that changes the physics must
change the key, and identical definitions must hit the cache."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cells.library_def import organic_library_definition
from repro.characterization import harness
from repro.characterization.harness import (CharacterizationGrid,
                                            _definition_fingerprint,
                                            characterize_library,
                                            default_grid)
from repro.characterization.library import (CellTiming, NldmTable,
                                            SequentialTiming, TimingArc)
from repro.devices.pentacene import PENTACENE


def _key(defn, grid=None):
    return _definition_fingerprint(defn, grid or default_grid(defn))


def test_identical_definitions_same_key():
    assert _key(organic_library_definition()) == \
        _key(organic_library_definition())


def test_grid_changes_key():
    defn = organic_library_definition()
    grid = default_grid(defn)
    slews_bumped = CharacterizationGrid(
        slews=tuple(s * 1.01 for s in grid.slews), loads=grid.loads)
    loads_bumped = CharacterizationGrid(
        slews=grid.slews, loads=tuple(c * 1.01 for c in grid.loads))
    base = _definition_fingerprint(defn, grid)
    assert _definition_fingerprint(defn, slews_bumped) != base
    assert _definition_fingerprint(defn, loads_bumped) != base


def test_rails_change_key():
    base = organic_library_definition()
    shifted = organic_library_definition(vdd=base.vdd * 1.1)
    assert _key(shifted) != _key(base)
    # vss enters through every device's rail connections.
    assert _key(organic_library_definition(vss=-16.0)) != _key(base)


def test_device_params_change_key():
    base = organic_library_definition()
    slow = organic_library_definition(
        model=dataclasses.replace(PENTACENE, vt0=PENTACENE.vt0 + 0.1))
    assert _key(slow) != _key(base)


def test_sizes_change_key():
    base = organic_library_definition()
    wide = organic_library_definition(sizes={"w_drive": 120e-6})
    longer = organic_library_definition(l=25e-6)
    assert _key(wide) != _key(base)
    assert _key(longer) != _key(base)


# -- cache hit/miss behaviour ----------------------------------------------

def _stub_cell(design, grid, area, workers=None):
    shape = (len(grid.slews), len(grid.loads))
    table = NldmTable(np.asarray(grid.slews), np.asarray(grid.loads),
                      np.full(shape, 1e-6))
    arcs = tuple(
        TimingArc(input_pin=pin, output_transition=tr,
                  delay=table, transition=table)
        for pin in design.inputs for tr in ("rise", "fall"))
    return CellTiming(name=design.name, function=design.name,
                      inputs=tuple(design.inputs),
                      input_caps={p: 1e-12 for p in design.inputs},
                      area=area, arcs=arcs, leakage=1e-9)


def _stub_dff(dff, grid, area, t_unit, workers=None):
    table = NldmTable(np.asarray(grid.slews), np.asarray(grid.loads),
                      np.full((len(grid.slews), len(grid.loads)), 2e-6))
    return SequentialTiming(name=dff.name, input_caps={"d": 1e-12,
                                                       "clk": 1e-12},
                            area=area, clk_to_q=table,
                            setup_time=1e-6, hold_time=0.0, leakage=1e-9)


def test_cache_hit_and_invalidation(tmp_path, monkeypatch):
    calls = {"cell": 0}

    def counting_cell(design, grid, area, workers=None):
        calls["cell"] += 1
        return _stub_cell(design, grid, area, workers)

    monkeypatch.setattr(harness, "characterize_cell", counting_cell)
    monkeypatch.setattr(harness, "characterize_dff", _stub_dff)

    defn = organic_library_definition()
    lib1 = characterize_library(defn, cache_dir=tmp_path)
    assert calls["cell"] == len(defn.COMBINATIONAL)

    # Same definition: served from disk, no new characterisation work.
    lib2 = characterize_library(organic_library_definition(),
                                cache_dir=tmp_path)
    assert calls["cell"] == len(defn.COMBINATIONAL)
    assert lib2.metadata["fingerprint"] == lib1.metadata["fingerprint"]

    # Changed device physics: cache miss, everything re-characterised.
    changed = organic_library_definition(
        model=dataclasses.replace(PENTACENE, vt0=PENTACENE.vt0 + 0.05))
    lib3 = characterize_library(changed, cache_dir=tmp_path)
    assert calls["cell"] == 2 * len(defn.COMBINATIONAL)
    assert lib3.metadata["fingerprint"] != lib1.metadata["fingerprint"]

    # use_cache=False bypasses both read and write.
    n_files = len(list(tmp_path.iterdir()))
    characterize_library(defn, cache_dir=tmp_path, use_cache=False)
    assert calls["cell"] == 3 * len(defn.COMBINATIONAL)
    assert len(list(tmp_path.iterdir())) == n_files
