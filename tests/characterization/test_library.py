"""Characterised-library tests for both processes.

These exercise the real (disk-cached) libraries: timing sanity, NLDM
monotonicity, process contrast, and JSON round-tripping.
"""

import numpy as np
import pytest

from repro.characterization.library import Library
from repro.errors import LibraryError


class TestLibraryContents:
    def test_six_cells(self, organic_lib, silicon_lib):
        for lib in (organic_lib, silicon_lib):
            assert set(lib.cells) == {"inv", "nand2", "nand3", "nor2", "nor3"}
            assert lib.dff.setup_time >= 0
            assert lib.dff.hold_time >= 0

    def test_unknown_cell(self, organic_lib):
        with pytest.raises(LibraryError):
            organic_lib.cell("latch")

    def test_arcs_cover_all_pins(self, organic_lib):
        for name, cell in organic_lib.cells.items():
            pins_with_arcs = {a.input_pin for a in cell.arcs}
            assert pins_with_arcs == set(cell.inputs), name

    def test_leakage_positive(self, organic_lib, silicon_lib):
        for lib in (organic_lib, silicon_lib):
            for cell in lib.cells.values():
                assert cell.leakage > 0


class TestTimingSanity:
    def test_delay_increases_with_load(self, organic_lib, silicon_lib):
        for lib in (organic_lib, silicon_lib):
            inv = lib.cell("inv")
            slew = lib.typical_slew()
            cin = inv.input_caps["a"]
            assert inv.delay("a", slew, 8 * cin) > inv.delay("a", slew, cin)

    def test_slew_increases_with_load(self, organic_lib):
        inv = organic_lib.cell("inv")
        slew = organic_lib.typical_slew()
        cin = inv.input_caps["a"]
        assert (inv.output_slew("a", slew, 8 * cin)
                > inv.output_slew("a", slew, cin))

    def test_nand3_slower_than_nand2(self, organic_lib, silicon_lib):
        """Stacked pull-ups make the 3-input gate slower (Section 5.5)."""
        for lib in (organic_lib, silicon_lib):
            slew = lib.typical_slew()
            load = 4 * lib.cell("inv").input_caps["a"]
            assert (lib.cell("nand3").worst_delay(slew, load)
                    > lib.cell("nand2").worst_delay(slew, load) * 0.9)

    def test_all_table_values_positive(self, organic_lib, silicon_lib):
        for lib in (organic_lib, silicon_lib):
            for cell in lib.cells.values():
                for arc in cell.arcs:
                    assert np.all(arc.delay.values > 0)
                    assert np.all(arc.transition.values > 0)

    def test_clk_to_q_positive(self, organic_lib):
        assert np.all(organic_lib.dff.clk_to_q.values > 0)


class TestProcessContrast:
    def test_fo4_gap_is_millionsfold(self, organic_lib, silicon_lib):
        """~1000x mobility + unipolar logic => ~1e6-1e7x FO4 gap."""
        ratio = organic_lib.inverter_fo4_delay() / silicon_lib.inverter_fo4_delay()
        assert 1e5 < ratio < 1e8

    def test_organic_fo4_timescale(self, organic_lib):
        """Organic FO4 in the 10us-1ms range (kHz-scale logic)."""
        assert 1e-5 < organic_lib.inverter_fo4_delay() < 1e-3

    def test_silicon_fo4_timescale(self, silicon_lib):
        """45 nm FO4 in the 5-50 ps range."""
        assert 5e-12 < silicon_lib.inverter_fo4_delay() < 5e-11

    def test_register_overhead_few_fo4(self, organic_lib, silicon_lib):
        """clk->q + setup lands at a few FO4 for both processes."""
        for lib in (organic_lib, silicon_lib):
            ratio = lib.register_overhead() / lib.inverter_fo4_delay()
            assert 1.5 < ratio < 8.0


class TestSerialization:
    def test_json_round_trip(self, organic_lib, tmp_path):
        path = tmp_path / "lib.json"
        organic_lib.to_json(path)
        loaded = Library.from_json(path)
        assert loaded.name == organic_lib.name
        assert set(loaded.cells) == set(organic_lib.cells)
        slew = organic_lib.typical_slew()
        cin = organic_lib.cell("inv").input_caps["a"]
        assert loaded.cell("inv").delay("a", slew, 4 * cin) == pytest.approx(
            organic_lib.cell("inv").delay("a", slew, 4 * cin))
        assert loaded.dff.setup_time == pytest.approx(
            organic_lib.dff.setup_time)
