"""NLDM lookup-table tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.characterization.nldm import NldmTable
from repro.errors import LibraryError


def table(values=None):
    slews = np.array([1e-6, 1e-5, 1e-4])
    loads = np.array([1e-12, 1e-11, 1e-10])
    if values is None:
        # delay = slew + 1e6 * load (a plane, exactly bilinear)
        values = slews[:, None] + 1e6 * loads[None, :]
    return NldmTable(slews, loads, np.asarray(values))


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                      np.zeros((3, 2)))

    def test_non_monotonic_axis(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([2.0, 1.0]), np.array([1.0, 2.0]),
                      np.zeros((2, 2)))

    def test_too_small(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([1.0]), np.array([1.0, 2.0]),
                      np.zeros((1, 2)))

    def test_nan_rejected(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                      np.array([[1.0, np.nan], [1.0, 1.0]]))


class TestLookup:
    def test_exact_grid_points(self):
        t = table()
        for i, s in enumerate(t.slews):
            for j, c in enumerate(t.loads):
                assert t.lookup(s, c) == pytest.approx(t.values[i, j])

    @given(slew=st.floats(1e-6, 1e-4), load=st.floats(1e-12, 1e-10))
    @settings(max_examples=60, deadline=None)
    def test_planar_function_reproduced_exactly(self, slew, load):
        """Bilinear interpolation is exact on a plane."""
        t = table()
        assert t.lookup(slew, load) == pytest.approx(slew + 1e6 * load,
                                                     rel=1e-9)

    def test_extrapolation_follows_edge_gradient(self):
        t = table()
        assert t.lookup(1e-3, 1e-11) == pytest.approx(1e-3 + 1e-5, rel=1e-6)
        assert t.lookup(1e-6, 1e-9) == pytest.approx(1e-6 + 1e-3, rel=1e-6)

    @given(slew=st.floats(1e-7, 1e-3), load=st.floats(1e-13, 1e-9))
    @settings(max_examples=60, deadline=None)
    def test_monotone_table_stays_monotone(self, slew, load):
        t = table()
        assert t.lookup(slew * 1.1, load) >= t.lookup(slew, load) - 1e-15
        assert t.lookup(slew, load * 1.1) >= t.lookup(slew, load) - 1e-15


class TestSerialization:
    def test_round_trip(self):
        t = table()
        t2 = NldmTable.from_dict(t.to_dict())
        assert np.array_equal(t.values, t2.values)
        assert np.array_equal(t.slews, t2.slews)

    def test_scaled(self):
        t = table().scaled(2.0)
        assert t.lookup(1e-5, 1e-11) == pytest.approx(
            2 * table().lookup(1e-5, 1e-11))
