"""NLDM lookup-table tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from bisect import bisect_right

from repro.characterization.nldm import NldmTable, _segment
from repro.errors import LibraryError


def table(values=None):
    slews = np.array([1e-6, 1e-5, 1e-4])
    loads = np.array([1e-12, 1e-11, 1e-10])
    if values is None:
        # delay = slew + 1e6 * load (a plane, exactly bilinear)
        values = slews[:, None] + 1e6 * loads[None, :]
    return NldmTable(slews, loads, np.asarray(values))


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                      np.zeros((3, 2)))

    def test_non_monotonic_axis(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([2.0, 1.0]), np.array([1.0, 2.0]),
                      np.zeros((2, 2)))

    def test_too_small(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([1.0]), np.array([1.0, 2.0]),
                      np.zeros((1, 2)))

    def test_nan_rejected(self):
        with pytest.raises(LibraryError):
            NldmTable(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                      np.array([[1.0, np.nan], [1.0, 1.0]]))


class TestLookup:
    def test_exact_grid_points(self):
        t = table()
        for i, s in enumerate(t.slews):
            for j, c in enumerate(t.loads):
                assert t.lookup(s, c) == pytest.approx(t.values[i, j])

    @given(slew=st.floats(1e-6, 1e-4), load=st.floats(1e-12, 1e-10))
    @settings(max_examples=60, deadline=None)
    def test_planar_function_reproduced_exactly(self, slew, load):
        """Bilinear interpolation is exact on a plane."""
        t = table()
        assert t.lookup(slew, load) == pytest.approx(slew + 1e6 * load,
                                                     rel=1e-9)

    def test_extrapolation_follows_edge_gradient(self):
        t = table()
        assert t.lookup(1e-3, 1e-11) == pytest.approx(1e-3 + 1e-5, rel=1e-6)
        assert t.lookup(1e-6, 1e-9) == pytest.approx(1e-6 + 1e-3, rel=1e-6)

    @given(slew=st.floats(1e-7, 1e-3), load=st.floats(1e-13, 1e-9))
    @settings(max_examples=60, deadline=None)
    def test_monotone_table_stays_monotone(self, slew, load):
        t = table()
        assert t.lookup(slew * 1.1, load) >= t.lookup(slew, load) - 1e-15
        assert t.lookup(slew, load * 1.1) >= t.lookup(slew, load) - 1e-15


class TestSegmentReconciliation:
    """`_segment` and `NldmTable.lookup` must pick the same segment."""

    def _lookup_segment(self, axis_list: list, x: float) -> int:
        # The exact index arithmetic NldmTable.lookup performs.
        return min(max(bisect_right(axis_list, x) - 1, 0),
                   len(axis_list) - 2)

    @given(x=st.floats(1e-7, 1e-3))
    @settings(max_examples=60, deadline=None)
    def test_segments_agree_off_grid(self, x):
        axis = np.array([1e-6, 1e-5, 1e-4])
        assert _segment(axis, x) == self._lookup_segment(axis.tolist(), x)

    def test_segments_agree_on_grid_nodes(self):
        # Regression: side="left" searchsorted used to put every interior
        # grid node in the segment to its *left* while bisect_right put
        # it in the segment to its right.
        axis = np.array([1e-6, 1e-5, 1e-4, 1e-3])
        for x in axis:
            assert _segment(axis, float(x)) == \
                self._lookup_segment(axis.tolist(), float(x))
        # Interior nodes sit at the left edge of their own segment.
        assert _segment(axis, 1e-5) == 1
        assert _segment(axis, 1e-4) == 2
        # Ends clamp into the outermost segments.
        assert _segment(axis, 1e-6) == 0
        assert _segment(axis, 1e-3) == 2

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_lookup_exact_on_every_grid_node(self, data):
        """Property: lookup at any grid node returns the stored value
        bit-exactly (==, not approx) for arbitrary finite tables."""
        n_s = data.draw(st.integers(2, 5))
        n_l = data.draw(st.integers(2, 5))
        values = np.array([[data.draw(st.floats(-1e3, 1e3,
                                                allow_nan=False))
                            for _ in range(n_l)] for _ in range(n_s)])
        slews = np.cumsum(np.array(
            [data.draw(st.floats(1e-7, 1e-5)) for _ in range(n_s)])) + 1e-7
        loads = np.cumsum(np.array(
            [data.draw(st.floats(1e-13, 1e-11)) for _ in range(n_l)])) + 1e-13
        t = NldmTable(slews, loads, values)
        for i in range(n_s):
            for j in range(n_l):
                assert t.lookup(float(slews[i]), float(loads[j])) \
                    == values[i, j]


class TestSerialization:
    def test_round_trip(self):
        t = table()
        t2 = NldmTable.from_dict(t.to_dict())
        assert np.array_equal(t.values, t2.values)
        assert np.array_equal(t.slews, t2.slews)

    def test_scaled(self):
        t = table().scaled(2.0)
        assert t.lookup(1e-5, 1e-11) == pytest.approx(
            2 * table().lookup(1e-5, 1e-11))
