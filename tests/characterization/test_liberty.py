"""Liberty export tests."""

import pytest

from repro.characterization.liberty import _liberty_function, write_liberty


class TestLibertyExport:
    @pytest.fixture(scope="class")
    def lib_text(self, organic_lib, tmp_path_factory):
        path = tmp_path_factory.mktemp("lib") / "organic.lib"
        write_liberty(organic_lib, path)
        return path.read_text()

    def test_header(self, lib_text):
        assert lib_text.startswith("library (organic_pentacene)")
        assert 'time_unit : "1us";' in lib_text

    def test_all_cells_present(self, lib_text):
        for cell in ("inv", "nand2", "nand3", "nor2", "nor3", "dff"):
            assert f"cell ({cell})" in lib_text

    def test_timing_groups(self, lib_text):
        assert lib_text.count("timing ()") >= 23   # 22 comb arcs + dff
        assert "cell_rise" in lib_text and "cell_fall" in lib_text

    def test_functions_translated(self, lib_text):
        assert '"!(a * b)"' in lib_text     # nand2
        assert '"!(a + b + c)"' in lib_text  # nor3

    def test_balanced_braces(self, lib_text):
        assert lib_text.count("{") == lib_text.count("}")

    def test_silicon_units(self, silicon_lib, tmp_path):
        path = tmp_path / "sil.lib"
        write_liberty(silicon_lib, path)
        assert 'time_unit : "1ns";' in path.read_text()


def test_function_translation():
    assert _liberty_function("not a") == "!a"
    assert _liberty_function("not (a and b)") == "!(a * b)"
    assert _liberty_function("not (a or b or c)") == "!(a + b + c)"
