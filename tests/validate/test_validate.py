"""The validation layer itself: runner, fault primitives, CLI, and the
acceptance property that a perturbed fast path fails loudly."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import ConvergenceError
from repro.runtime.cache import ResultCache
from repro.validate import run_validation
from repro.validate import faults
from repro.validate.checks import (
    CheckContext,
    CheckFailure,
    expect,
    expect_close,
    registered_checks,
    swap_attr,
    swap_env,
)

#: Checks cheap enough to run for real inside the unit suite (no SPICE
#: transients, no library characterisation).
CHEAP_CHECKS = [
    "ipc-kernel-agreement",
    "cache-warm-vs-cold",
    "waveform-crossing-order",
    "telemetry-serial-vs-parallel",
    "worker-crash-fallback",
    "corrupt-cache-recovery",
    "newton-event-trail",
    "missing-toolchain-fallback",
]


class TestRegistry:
    def test_all_three_kinds_registered_in_fast_mode(self):
        kinds = {c.kind for c in registered_checks(fast=True)}
        assert kinds == {"differential", "invariant", "fault"}

    def test_unknown_only_name_rejected(self):
        with pytest.raises(ValueError, match="unknown check"):
            registered_checks(only=["no-such-check"])

    def test_expect_helpers(self):
        expect(True, "fine")
        with pytest.raises(CheckFailure, match="boom"):
            expect(False, "boom")
        expect_close(1.0, 1.0 + 1e-12, rel=1e-9)
        with pytest.raises(CheckFailure, match="mylabel"):
            expect_close(1.0, 2.0, rel=1e-9, label="mylabel")

    def test_context_rng_streams_are_per_check(self):
        a = CheckContext(name="a", seed=0, fast=True)
        b = CheckContext(name="b", seed=0, fast=True)
        assert a.rng().random() != b.rng().random()
        assert a.rng().random() == CheckContext(
            name="a", seed=0, fast=True).rng().random()

    def test_swap_env_and_attr_restore(self, monkeypatch):
        import repro.synthesis.sta as sta
        monkeypatch.setenv("REPRO_VALIDATE_PROBE", "before")
        with swap_env(REPRO_VALIDATE_PROBE="during", REPRO_NEVER_SET=None):
            import os
            assert os.environ["REPRO_VALIDATE_PROBE"] == "during"
        import os
        assert os.environ["REPRO_VALIDATE_PROBE"] == "before"
        original = sta.VECTOR_MIN_GATES
        with swap_attr(sta, "VECTOR_MIN_GATES", 1):
            assert sta.VECTOR_MIN_GATES == 1
        assert sta.VECTOR_MIN_GATES == original


class TestRunner:
    def test_cheap_checks_pass(self):
        report = run_validation(fast=True, seed=0, only=CHEAP_CHECKS)
        assert report.ok, report.format()
        assert len(report.results) == len(CHEAP_CHECKS)
        assert {r.kind for r in report.results} == \
            {"differential", "invariant", "fault"}

    def test_report_shape_and_formatting(self):
        report = run_validation(fast=True, seed=3,
                                only=["cache-warm-vs-cold"])
        d = report.to_dict()
        assert d["seed"] == 3 and d["mode"] == "fast" and d["ok"]
        assert d["n_checks"] == 1 and d["n_failed"] == 0
        assert json.loads(json.dumps(d)) == d
        assert "cache-warm-vs-cold" in report.format()

    def test_broken_check_is_isolated(self, monkeypatch):
        # A check that *errors* (rather than failing its assertion) is
        # reported broken and does not stop the checks after it.
        from repro.validate import checks as checks_mod

        def boom(ctx):
            raise RuntimeError("exploded")

        reg = registered_checks(fast=True)
        target = next(c for c in reg if c.name == "cache-warm-vs-cold")
        # _Check is frozen; swap the registry entry and restore after.
        idx = checks_mod._REGISTRY.index(target)
        broken = checks_mod._Check(name=target.name, kind=target.kind,
                                   fn=boom, fast=target.fast)
        checks_mod._REGISTRY[idx] = broken
        try:
            report = run_validation(
                fast=True, only=["cache-warm-vs-cold",
                                 "corrupt-cache-recovery"])
        finally:
            checks_mod._REGISTRY[idx] = target
        by_name = {r.name: r for r in report.results}
        assert not report.ok
        assert not by_name["cache-warm-vs-cold"].ok
        assert "check broken" in by_name["cache-warm-vs-cold"].error
        assert by_name["corrupt-cache-recovery"].ok

    def test_empty_selection_is_not_ok(self):
        from repro.validate import ValidationReport
        assert not ValidationReport(seed=0, fast=True, results=[]).ok


class TestPerturbationFailsLoudly:
    """Acceptance: deliberately skew a fast path; validation must fail."""

    def test_skewed_ipc_kernel_detected(self, monkeypatch):
        import repro.core.superscalar as superscalar

        original = superscalar._fast_cycles

        def skewed(config, trace):
            return original(config, trace) + 1

        monkeypatch.setattr(superscalar, "_fast_cycles", skewed)
        report = run_validation(fast=True, seed=0,
                                only=["ipc-kernel-agreement"])
        assert not report.ok
        failure = report.results[0]
        assert failure.kind == "differential"
        assert "disagrees with reference" in failure.error

    def test_corrupted_cache_read_detected(self, monkeypatch):
        # Serve stale cycles from the cache: the warm-vs-cold diff must
        # catch the divergence from the uncached computation.
        original = ResultCache.get

        def stale(self, category, key):
            payload = original(self, category, key)
            if payload is not None and "cycles" in payload:
                payload = dict(payload, cycles=payload["cycles"] + 5)
            return payload

        monkeypatch.setattr(ResultCache, "get", stale)
        report = run_validation(fast=True, seed=0,
                                only=["cache-warm-vs-cold"])
        assert not report.ok
        assert "diverges" in report.results[0].error


class TestFaultPrimitives:
    def test_corrupt_cache_entry_modes(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        for mode in ("truncate", "garbage"):
            cache.put("unit", "k1", {"x": 1})
            path = faults.corrupt_cache_entry(cache, "unit", "k1", mode=mode)
            assert path.exists()
            assert cache.get("unit", "k1") is None   # detected, evicted
            assert not path.exists()

    def test_corrupt_cache_entry_validates_input(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        with pytest.raises(FileNotFoundError):
            faults.corrupt_cache_entry(cache, "unit", "missing")
        cache.put("unit", "k2", {"x": 1})
        with pytest.raises(ValueError, match="mode"):
            faults.corrupt_cache_entry(cache, "unit", "k2", mode="nuke")

    def test_strangled_newton_surfaces_full_trail(self):
        from repro.cells.library_def import organic_library_definition
        from repro.cells.topologies import build_dc_testbench
        from repro.spice.dc import operating_point

        defn = organic_library_definition()
        circuit = build_dc_testbench(defn.cell("inv"),
                                     {"a": defn.vdd / 2.0})
        with faults.strangled_newton(max_iterations=1):
            with pytest.raises(ConvergenceError) as excinfo:
                operating_point(circuit)
        stages = [e["stage"] for e in excinfo.value.events]
        assert {"newton", "gmin", "source"} <= set(stages)
        revived = pickle.loads(pickle.dumps(excinfo.value))
        assert revived.events == excinfo.value.events
        # The patch is removed on exit: the same solve now converges.
        operating_point(circuit)

    def test_missing_toolchain_restores_state(self, tmp_path):
        from repro.core import ipc_native

        before = ipc_native.native_available()
        with faults.missing_native_toolchain(tmp_path / "empty"):
            assert not ipc_native.native_available()
        assert ipc_native.native_available() == before


class TestCli:
    def test_validate_command_writes_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "validation.json"
        rc = main(["validate", "--only", "cache-warm-vs-cold",
                   "--report", str(out)])
        assert rc == 0
        # --report now writes a full schema-v1 run report with the
        # validation outcome embedded, so the history index covers
        # validation runs alongside the experiments.
        payload = json.loads(out.read_text())
        assert payload["target"] == "validate"
        assert payload["status"] == "ok"
        assert "env" in payload and "span_tree" in payload
        validation = payload["validation"]
        assert validation["ok"] and validation["n_checks"] == 1
        assert "cache-warm-vs-cold" in capsys.readouterr().out

    def test_validate_command_fails_on_mismatch(self, monkeypatch,
                                                tmp_path):
        import repro.core.superscalar as superscalar
        from repro.__main__ import main

        original = superscalar._fast_cycles
        monkeypatch.setattr(superscalar, "_fast_cycles",
                            lambda config, trace: original(config,
                                                           trace) + 1)
        rc = main(["validate", "--only", "ipc-kernel-agreement"])
        assert rc == 1

    def test_validate_command_rejects_unknown_check(self, capsys):
        from repro.__main__ import main

        rc = main(["validate", "--only", "does-not-exist"])
        assert rc == 2
        assert "unknown check" in capsys.readouterr().out
