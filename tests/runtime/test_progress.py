"""Progress heartbeats: ndjson stream, throttling, and parallel_map."""

from __future__ import annotations

import json

import pytest

from repro.runtime import progress
from repro.runtime.executor import parallel_map


@pytest.fixture()
def stream(tmp_path, monkeypatch):
    """Route heartbeats to an ndjson file; restore module state after."""
    path = tmp_path / "progress.ndjson"
    monkeypatch.setenv(progress.PROGRESS_ENV, str(path))
    monkeypatch.setattr(progress, "_stderr_wanted", False)
    monkeypatch.setattr(progress, "_stream", None)
    monkeypatch.setattr(progress, "_stream_failed", False)
    progress.refresh()
    yield path
    if progress._stream is not None:
        progress._stream.close()
        progress._stream = None
    monkeypatch.delenv(progress.PROGRESS_ENV)
    progress.refresh()


def _records(path) -> list[dict]:
    if not path.exists():
        return []
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


def test_disabled_by_default_costs_nothing(tmp_path, monkeypatch):
    monkeypatch.delenv(progress.PROGRESS_ENV, raising=False)
    monkeypatch.setattr(progress, "_stderr_wanted", False)
    progress.refresh()
    assert not progress.ENABLED
    with progress.phase("quiet", total=3) as ph:
        assert ph is None
        progress.update(ph)                  # no-op, no error
    progress.end(None)
    assert list(tmp_path.iterdir()) == []


def test_stream_records_begin_tick_end_with_eta(stream):
    with progress.phase("dse", total=3) as ph:
        for _ in range(3):
            ph.step()
    records = _records(stream)
    assert [r["event"] for r in records][0] == "begin"
    assert records[-1]["event"] == "end"
    final_tick = [r for r in records if r["event"] == "tick"][-1]
    assert final_tick["done"] == 3 and final_tick["total"] == 3
    assert final_tick["eta_seconds"] == 0.0
    for record in records:
        assert record["phase"] == "dse"
        assert {"event", "phase", "done", "elapsed_seconds", "t"} <= \
            set(record)


def test_intermediate_ticks_throttled_final_always_emitted(stream):
    with progress.phase("mc", total=1000) as ph:
        for _ in range(1000):
            ph.step()
    ticks = [r for r in _records(stream) if r["event"] == "tick"]
    # 1000 sub-millisecond steps collapse under the rate limit, but the
    # 1000/1000 completion tick must survive it.
    assert len(ticks) < 50
    assert ticks[-1]["done"] == 1000


def test_unbounded_phase_and_set_done(stream):
    with progress.phase("scan") as ph:       # no total: no eta, no total key
        ph.set_done(7)
    records = _records(stream)
    assert records[-1]["event"] == "end" and records[-1]["done"] == 7
    assert all("total" not in r and "eta_seconds" not in r
               for r in records)


def test_unwritable_stream_degrades_silently(tmp_path, monkeypatch):
    monkeypatch.setenv(progress.PROGRESS_ENV,
                       str(tmp_path / "no-such-dir" / "p.ndjson"))
    monkeypatch.setattr(progress, "_stream", None)
    monkeypatch.setattr(progress, "_stream_failed", False)
    progress.refresh()
    try:
        with progress.phase("best-effort", total=1) as ph:
            ph.step()                        # must not raise
        assert progress._stream_failed
    finally:
        monkeypatch.delenv(progress.PROGRESS_ENV)
        progress.refresh()


def _square(i: int) -> int:
    return i * i


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_map_emits_named_phase(stream, workers):
    result = parallel_map(_square, list(range(5)), workers=workers,
                          phase="dse[test]")
    assert [r.value for r in result] == [0, 1, 4, 9, 16]
    records = [r for r in _records(stream) if r["phase"] == "dse[test]"]
    assert records[0]["event"] == "begin"
    assert records[0]["total"] == 5
    assert records[-1]["event"] == "end" and records[-1]["done"] == 5


def test_parallel_map_phase_defaults_to_function_name(stream):
    parallel_map(_square, [1, 2], workers=1)
    phases = {r["phase"] for r in _records(stream)}
    assert any("_square" in name for name in phases)


# -- fork inheritance: per-pid stream reopen ---------------------------------

def _noisy_task(i: int) -> int:
    """Emits its own heartbeats from inside a pool worker (the pattern a
    characterisation arc inside a sweep produces)."""
    with progress.phase(f"inner[{i}]", total=4) as ph:
        for _ in range(4):
            progress.update(ph)
    return i


def test_forked_workers_emit_well_formed_ndjson(stream):
    """Regression: forked pool workers inherited the parent's open
    stream object; worker-side emission through that shared handle
    could interleave records and duplicate buffered bytes.  Each
    process must (re)open its own O_APPEND fd, keyed on pid."""
    results = parallel_map(_noisy_task, list(range(6)), workers=3)
    assert [r.value for r in results] == list(range(6))

    records = _records(stream)               # every line parses
    pids = {r["pid"] for r in records}
    assert len(pids) >= 2                    # parent + >=1 worker wrote
    # Parent's phase is complete: begin, final tick, end.
    outer = [r for r in records if r["phase"] == "_noisy_task"]
    assert outer[0]["event"] == "begin"
    assert outer[-1]["event"] == "end"
    assert outer[-1]["done"] == 6
    # Worker phases all reached their final tick.
    for i in range(6):
        inner = [r for r in records if r["phase"] == f"inner[{i}]"]
        assert inner[-1]["event"] == "end"
        assert inner[-1]["done"] == 4


def test_stream_reopened_after_pid_change(stream, monkeypatch):
    with progress.phase("warm", total=1) as ph:
        progress.update(ph)
    first = progress._stream
    assert first is not None
    # Simulate being on the forked side: same module state, new pid.
    monkeypatch.setattr(progress, "_stream_pid", progress._stream_pid - 1)
    with progress.phase("after-fork", total=1) as ph:
        progress.update(ph)
    assert progress._stream is not first     # reopened, not shared
    assert len({r["phase"] for r in _records(stream)}) == 2


# -- sinks and context labels -------------------------------------------------

def test_sink_receives_records_and_enables_progress(tmp_path, monkeypatch):
    monkeypatch.delenv(progress.PROGRESS_ENV, raising=False)
    monkeypatch.setattr(progress, "_stderr_wanted", False)
    progress.refresh()
    assert not progress.ENABLED
    got: list[dict] = []
    progress.add_sink(got.append)
    try:
        assert progress.ENABLED              # a sink alone enables emission
        with progress.phase("sinky", total=2) as ph:
            progress.update(ph, 2)
    finally:
        progress.remove_sink(got.append)
    assert not progress.ENABLED
    assert [r["event"] for r in got] == ["begin", "tick", "end"]
    assert all(r["phase"] == "sinky" for r in got)


def test_raising_sink_does_not_break_emission(stream):
    def bad_sink(_rec):
        raise RuntimeError("subscriber bug")

    progress.add_sink(bad_sink)
    try:
        with progress.phase("robust", total=1) as ph:
            progress.update(ph)
    finally:
        progress.remove_sink(bad_sink)
    assert [r["event"] for r in _records(stream)] == ["begin", "tick", "end"]


def test_context_label_stamped_and_thread_local(stream):
    import threading

    previous = progress.set_context("job-1")
    try:
        with progress.phase("labelled", total=1) as ph:
            progress.update(ph)
        other: list = []

        def worker():
            other.append(progress.get_context())

        t = threading.Thread(target=worker)
        t.start()
        t.join(10)
        assert other == [None]               # label is per-thread
    finally:
        progress.set_context(previous)
    assert progress.get_context() is None
    records = _records(stream)
    assert all(r["ctx"] == "job-1" for r in records)
