"""Progress heartbeats: ndjson stream, throttling, and parallel_map."""

from __future__ import annotations

import json

import pytest

from repro.runtime import progress
from repro.runtime.executor import parallel_map


@pytest.fixture()
def stream(tmp_path, monkeypatch):
    """Route heartbeats to an ndjson file; restore module state after."""
    path = tmp_path / "progress.ndjson"
    monkeypatch.setenv(progress.PROGRESS_ENV, str(path))
    monkeypatch.setattr(progress, "_stderr_wanted", False)
    monkeypatch.setattr(progress, "_stream", None)
    monkeypatch.setattr(progress, "_stream_failed", False)
    progress.refresh()
    yield path
    if progress._stream is not None:
        progress._stream.close()
        progress._stream = None
    monkeypatch.delenv(progress.PROGRESS_ENV)
    progress.refresh()


def _records(path) -> list[dict]:
    if not path.exists():
        return []
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


def test_disabled_by_default_costs_nothing(tmp_path, monkeypatch):
    monkeypatch.delenv(progress.PROGRESS_ENV, raising=False)
    monkeypatch.setattr(progress, "_stderr_wanted", False)
    progress.refresh()
    assert not progress.ENABLED
    with progress.phase("quiet", total=3) as ph:
        assert ph is None
        progress.update(ph)                  # no-op, no error
    progress.end(None)
    assert list(tmp_path.iterdir()) == []


def test_stream_records_begin_tick_end_with_eta(stream):
    with progress.phase("dse", total=3) as ph:
        for _ in range(3):
            ph.step()
    records = _records(stream)
    assert [r["event"] for r in records][0] == "begin"
    assert records[-1]["event"] == "end"
    final_tick = [r for r in records if r["event"] == "tick"][-1]
    assert final_tick["done"] == 3 and final_tick["total"] == 3
    assert final_tick["eta_seconds"] == 0.0
    for record in records:
        assert record["phase"] == "dse"
        assert {"event", "phase", "done", "elapsed_seconds", "t"} <= \
            set(record)


def test_intermediate_ticks_throttled_final_always_emitted(stream):
    with progress.phase("mc", total=1000) as ph:
        for _ in range(1000):
            ph.step()
    ticks = [r for r in _records(stream) if r["event"] == "tick"]
    # 1000 sub-millisecond steps collapse under the rate limit, but the
    # 1000/1000 completion tick must survive it.
    assert len(ticks) < 50
    assert ticks[-1]["done"] == 1000


def test_unbounded_phase_and_set_done(stream):
    with progress.phase("scan") as ph:       # no total: no eta, no total key
        ph.set_done(7)
    records = _records(stream)
    assert records[-1]["event"] == "end" and records[-1]["done"] == 7
    assert all("total" not in r and "eta_seconds" not in r
               for r in records)


def test_unwritable_stream_degrades_silently(tmp_path, monkeypatch):
    monkeypatch.setenv(progress.PROGRESS_ENV,
                       str(tmp_path / "no-such-dir" / "p.ndjson"))
    monkeypatch.setattr(progress, "_stream", None)
    monkeypatch.setattr(progress, "_stream_failed", False)
    progress.refresh()
    try:
        with progress.phase("best-effort", total=1) as ph:
            ph.step()                        # must not raise
        assert progress._stream_failed
    finally:
        monkeypatch.delenv(progress.PROGRESS_ENV)
        progress.refresh()


def _square(i: int) -> int:
    return i * i


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_map_emits_named_phase(stream, workers):
    result = parallel_map(_square, list(range(5)), workers=workers,
                          phase="dse[test]")
    assert [r.value for r in result] == [0, 1, 4, 9, 16]
    records = [r for r in _records(stream) if r["phase"] == "dse[test]"]
    assert records[0]["event"] == "begin"
    assert records[0]["total"] == 5
    assert records[-1]["event"] == "end" and records[-1]["done"] == 5


def test_parallel_map_phase_defaults_to_function_name(stream):
    parallel_map(_square, [1, 2], workers=1)
    phases = {r["phase"] for r in _records(stream)}
    assert any("_square" in name for name in phases)
