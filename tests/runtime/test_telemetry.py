"""Telemetry registry: instruments, spans, and cross-process merge."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConvergenceError
from repro.runtime import profiling, telemetry
from repro.runtime.executor import parallel_map
from repro.spice import Circuit, Resistor, VoltageSource, operating_point


def _divider(v: float) -> Circuit:
    ckt = Circuit("div")
    ckt.add(VoltageSource("vin", "in", "0", v))
    ckt.add(Resistor("r1", "in", "mid", 1e3))
    ckt.add(Resistor("r2", "mid", "0", 1e3))
    return ckt


def _solve_task(v: float) -> float:
    """Module-level (picklable) task driving the real solver counters."""
    x, sys = operating_point(_divider(v))
    return sys.voltage(x, "mid")


def _count_task(i: int) -> int:
    telemetry.count("test.tasks")
    telemetry.count("test.units", i)
    telemetry.observe("test.occupancy", float(i))
    with telemetry.span("unit"):
        pass
    return i


def _profiled_task(i: int) -> int:
    if profiling.ENABLED:
        profiling.add("stamp", 0.002)
        profiling.add("solve", 0.001)
    return i


class TestInstruments:
    def test_disabled_is_noop(self):
        telemetry.reset()
        telemetry.enable(False)
        telemetry.count("x")
        telemetry.observe("y", 1.0)
        telemetry.time_add("z", 0.5)
        with telemetry.span("s"):
            pass
        assert telemetry.counters() == {}
        assert telemetry.timers() == {}
        assert telemetry.span_tree() == []
        assert telemetry.span_totals() == {}

    def test_counters_and_distributions(self):
        with telemetry.collecting():
            telemetry.count("n")
            telemetry.count("n", 4)
            telemetry.observe("d", 3.0)
            telemetry.observe("d", 1.0)
            telemetry.observe("d", 2.0)
            telemetry.time_add("t", 0.25, calls=2)
            assert telemetry.counters() == {"n": 5}
            dist = telemetry.metrics_snapshot()["distributions"]["d"]
            assert dist["count"] == 3
            assert dist["min"] == 1.0 and dist["max"] == 3.0
            assert dist["mean"] == pytest.approx(2.0)
            timer = telemetry.timers()["t"]
            assert timer["calls"] == 2 and timer["seconds"] == 0.25

    def test_env_force_disable_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry.reset()
        telemetry.enable(True)
        assert telemetry.ENABLED is False

    def test_reset_clears_everything(self):
        with telemetry.collecting():
            telemetry.count("a")
            telemetry.warn("w")
        telemetry.reset()
        assert telemetry.counters() == {}
        assert telemetry.warnings() == []


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with telemetry.collecting():
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
                with telemetry.span("inner"):
                    pass
            tree = telemetry.span_tree()
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "outer"
        assert [c["name"] for c in root["children"]] == ["inner", "inner"]
        assert root["seconds"] >= sum(c["seconds"] for c in root["children"]) \
            or root["seconds"] >= 0.0

    def test_span_totals_flatten_paths(self):
        with telemetry.collecting():
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
                with telemetry.span("inner"):
                    pass
            totals = telemetry.span_totals()
        assert totals["outer"]["count"] == 1
        assert totals["outer/inner"]["count"] == 2

    def test_exception_unwinds_stack(self):
        with telemetry.collecting():
            with pytest.raises(ValueError):
                with telemetry.span("outer"):
                    with telemetry.span("inner"):
                        raise ValueError("boom")
            assert telemetry.current_path() == ""
            totals = telemetry.span_totals()
        assert set(totals) == {"outer", "outer/inner"}

    def test_current_path(self):
        with telemetry.collecting():
            assert telemetry.current_path() == ""
            with telemetry.span("a"):
                with telemetry.span("b"):
                    assert telemetry.current_path() == "a/b"


class TestMerge:
    def test_merge_is_additive_and_grafts_prefix(self):
        with telemetry.collecting():
            telemetry.count("n", 2)
            snap = {
                "counters": {"n": 3},
                "timers": {"t": [0.5, 2]},
                "dists": {"d": [2, 10.0, 1.0, 9.0]},
                "span_totals": {"task": [4, 0.25]},
                "warnings": ["worker said so"],
            }
            with telemetry.span("outer"):
                telemetry.merge_snapshot(snap)
            telemetry.merge_snapshot(
                {"dists": {"d": [1, 0.5, 0.5, 0.5]}})
            assert telemetry.counters()["n"] == 5
            assert telemetry.timers()["t"] == {"seconds": 0.5, "calls": 2}
            dist = telemetry.metrics_snapshot()["distributions"]["d"]
            assert dist["count"] == 3
            assert dist["min"] == 0.5 and dist["max"] == 9.0
            assert telemetry.span_totals()["outer/task"]["count"] == 4
            assert "worker said so" in telemetry.warnings()

    def test_parallel_counters_match_serial(self):
        """The regression the registry exists for: metrics accumulated in
        worker processes must come back and equal the serial run's."""
        tasks = list(range(6))
        with telemetry.collecting():
            parallel_map(_count_task, tasks, workers=1)
            serial = telemetry.counters()
            serial_dist = telemetry.metrics_snapshot()["distributions"]
        with telemetry.collecting():
            parallel_map(_count_task, tasks, workers=2)
            merged = telemetry.counters()
            merged_dist = telemetry.metrics_snapshot()["distributions"]
        assert merged == serial
        assert merged_dist == serial_dist

    def test_parallel_solver_counters_match_serial(self):
        voltages = [0.5, 1.0, 1.5, 2.0]
        with telemetry.collecting():
            serial_values = [r.value for r in
                             parallel_map(_solve_task, voltages, workers=1)]
            serial = telemetry.counters()
        with telemetry.collecting():
            parallel_values = [r.value for r in
                               parallel_map(_solve_task, voltages, workers=2)]
            merged = telemetry.counters()
        assert parallel_values == serial_values
        assert serial["spice.newton_solves"] == len(voltages)
        assert merged == serial

    def test_worker_spans_graft_under_call_site(self):
        with telemetry.collecting():
            with telemetry.span("outer"):
                parallel_map(_count_task, list(range(4)), workers=2)
            totals = telemetry.span_totals()
        assert totals["outer/unit"]["count"] == 4

    def test_profile_counters_survive_workers(self):
        """run_bench --profile must not lose worker-side stage time."""
        tasks = list(range(5))
        with profiling.profiled():
            parallel_map(_profiled_task, tasks, workers=1)
            serial = profiling.snapshot()
        with profiling.profiled():
            parallel_map(_profiled_task, tasks, workers=2)
            merged = profiling.snapshot()
        telemetry.reset()
        assert serial["stamp"]["calls"] == len(tasks)
        assert merged == serial
        breakdown = profiling.breakdown(1.0)
        assert breakdown["overhead"] == pytest.approx(1.0)


class TestProfileAccounting:
    """breakdown() must reject stage sums exceeding wall time."""

    def test_double_counted_stage_raises(self):
        with profiling.profiled():
            profiling.add("solve", 0.8)
            profiling.add("step_control", 0.5)  # sums to 1.3 > 1.0
            with pytest.raises(profiling.ProfileAccountingError,
                               match="double-counted"):
                profiling.breakdown(1.0)
        telemetry.reset()

    def test_timer_granularity_slack_tolerated(self):
        # A per-call-overhead overshoot of a fraction of a percent is
        # measurement noise, not double-counting.
        with profiling.profiled():
            profiling.add("solve", 1.001)
            out = profiling.breakdown(1.0)
        telemetry.reset()
        assert out["overhead"] == 0.0

    def test_check_can_be_disabled(self):
        with profiling.profiled():
            profiling.add("solve", 2.0)
            out = profiling.breakdown(1.0, check=False)
        telemetry.reset()
        assert out["solve"] == pytest.approx(2.0)
        assert out["overhead"] == 0.0

    def test_device_eval_not_double_counted(self):
        # device_eval is recorded inside stamp regions; the subtraction
        # must keep the pair within wall time.
        with profiling.profiled():
            profiling.add("stamp", 0.9)
            profiling.add("device_eval", 0.6)
            out = profiling.breakdown(1.0)
        telemetry.reset()
        assert out["stamp"] == pytest.approx(0.3)
        assert out["device_eval"] == pytest.approx(0.6)


class TestConvergenceErrorEvents:
    def test_trail_renders_in_message(self):
        exc = ConvergenceError("no convergence", iterations=150,
                               residual=3.2e-5)
        exc.add_event("newton", iterations=150, residual=3.2e-5, node="out")
        exc.add_event("gmin", last_gmin=0)
        assert "trail:" in str(exc)
        assert "newton(" in str(exc) and "gmin(" in str(exc)
        assert "node=out" in str(exc)

    def test_events_survive_pickling(self):
        exc = ConvergenceError("stuck", iterations=9).add_event(
            "source", last_alpha=0.25)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.events == exc.events
        assert "source(last_alpha=0.25)" in str(clone)

    def test_solver_failure_carries_trail(self):
        from repro.devices import PENTACENE
        from repro.spice import Fet, NewtonOptions

        # A zero-iteration budget forces the whole newton -> gmin ->
        # source fallback chain to fail, deterministically.
        ckt = Circuit("bad")
        ckt.add(VoltageSource("vdd", "vdd", "0", -10.0))
        ckt.add(Fet("m1", "out", "out", "vdd", PENTACENE, w=1e-3, l=1e-5))
        ckt.add(Resistor("rl", "out", "0", 1e6))
        with pytest.raises(ConvergenceError) as info:
            operating_point(ckt, options=NewtonOptions(max_iterations=0))
        trail = info.value.events
        assert trail, "fallback chain should record events"
        stages = [event["stage"] for event in trail]
        assert "newton" in stages
        assert "gmin" in stages and "source" in stages
        assert "trail:" in str(info.value)
