"""Persistent result cache: round trips, knobs, and invalidation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import CoreConfig
from repro.core.isa import CODE_LOAD
from repro.core.superscalar import simulate, simulate_cached
from repro.core.trace import Trace
from repro.core.workloads import WORKLOADS, generate_trace
from repro.runtime.cache import (
    ResultCache,
    cache_enabled,
    default_cache,
    default_cache_root,
    disk_stats,
    reset_stats,
    stats_snapshot,
)


def test_round_trip(tmp_path):
    cache = ResultCache(tmp_path, enabled=True)
    key = cache.key({"x": 1})
    assert cache.get("simulation", key) is None
    payload = {"cycles": 123, "nested": {"a": [1, 2, 3]}}
    path = cache.put("simulation", key, payload)
    assert path is not None and path.is_file()
    assert cache.get("simulation", key) == payload
    assert cache.hits == 1 and cache.misses == 1


def test_key_is_canonical_and_content_sensitive():
    assert ResultCache.key({"a": 1, "b": 2}) == ResultCache.key({"b": 2, "a": 1})
    assert ResultCache.key({"a": 1}) != ResultCache.key({"a": 2})
    assert ResultCache.key([1, 2]) != ResultCache.key([2, 1])


def test_disabled_cache_is_null_object(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert not cache_enabled()
    cache = default_cache()
    assert not cache.enabled
    key = cache.key("anything")
    assert cache.put("simulation", key, {"v": 1}) is None
    assert cache.get("simulation", key) is None
    assert list(tmp_path.iterdir()) == []          # nothing ever written


def test_cache_dir_env_controls_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert default_cache_root() == tmp_path / "elsewhere"
    assert default_cache().root == tmp_path / "elsewhere"


def test_corrupt_entry_is_dropped_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path, enabled=True)
    key = cache.key("k")
    path = cache.path_for("block_timing", key)
    path.parent.mkdir(parents=True)
    path.write_text("{ not json")
    assert cache.get("block_timing", key) is None
    assert not path.exists()                       # dropped, not left to rot


def test_bad_category_rejected(tmp_path):
    cache = ResultCache(tmp_path, enabled=True)
    with pytest.raises(ValueError):
        cache.path_for("../escape", "abc")
    with pytest.raises(ValueError):
        cache.path_for("", "abc")


def test_clear(tmp_path):
    cache = ResultCache(tmp_path, enabled=True)
    cache.put("simulation", cache.key(1), {"v": 1})
    cache.put("simulation", cache.key(2), {"v": 2})
    cache.put("block_timing", cache.key(3), {"v": 3})
    assert cache.clear("simulation") == 2
    assert cache.clear() == 1


# ---------------------------------------------------------------------------
# simulate_cached: round trip and fingerprint invalidation
# ---------------------------------------------------------------------------

def _small_trace(name="gzip", n=400, seed=0):
    return generate_trace(WORKLOADS[name], n, seed=seed)


def test_simulate_cached_round_trip(tmp_path):
    cache = ResultCache(tmp_path, enabled=True)
    config = CoreConfig()
    trace = _small_trace()
    first = simulate_cached(config, trace, cache=cache)
    assert cache.hits == 0
    second = simulate_cached(config, trace, cache=cache)
    assert cache.hits == 1
    assert second == first == simulate(config, trace)


def test_simulate_cached_hit_skips_simulation(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path, enabled=True)
    config = CoreConfig()
    trace = _small_trace()
    expected = simulate_cached(config, trace, cache=cache)

    import repro.core.superscalar as superscalar

    def boom(*a, **k):
        raise AssertionError("simulate() must not run on a cache hit")

    monkeypatch.setattr(superscalar, "_fast_cycles", boom)
    monkeypatch.setattr(superscalar, "_simulate_reference", boom)
    assert simulate_cached(config, trace, cache=cache) == expected


def test_fingerprint_invalidation(tmp_path):
    """Any change to the instruction stream must miss; renames must hit."""
    cache = ResultCache(tmp_path, enabled=True)
    config = CoreConfig()
    base = _small_trace()

    # Same content under a different display name: same fingerprint,
    # cache hit (results are keyed on content, not names).
    renamed = Trace.from_arrays(
        "other-name", klass=base.klass_codes, src0=base.src0, src1=base.src1,
        dst=base.dst, taken=base.taken, pattern_key=base.pattern_key,
        is_miss=base.is_miss)
    assert renamed.fingerprint() == base.fingerprint()
    simulate_cached(config, base, cache=cache)
    simulate_cached(config, renamed, cache=cache)
    assert cache.hits == 1

    # One flipped miss flag: new fingerprint, new entry.
    is_miss = base.is_miss.copy()
    load_positions = np.flatnonzero(base.klass_codes == CODE_LOAD)
    is_miss[load_positions[0]] = ~is_miss[load_positions[0]]
    mutated = Trace.from_arrays(
        base.name, klass=base.klass_codes, src0=base.src0, src1=base.src1,
        dst=base.dst, taken=base.taken, pattern_key=base.pattern_key,
        is_miss=is_miss)
    assert mutated.fingerprint() != base.fingerprint()
    hits_before = cache.hits
    simulate_cached(config, mutated, cache=cache)
    assert cache.hits == hits_before               # it was a miss

    # Different seeds produce different streams (and fingerprints).
    assert _small_trace(seed=1).fingerprint() != base.fingerprint()


def test_config_signature_shares_entries_across_irrelevant_fields(tmp_path):
    """Fields the kernel never reads must not fragment the cache."""
    cache = ResultCache(tmp_path, enabled=True)
    trace = _small_trace()
    simulate_cached(CoreConfig(), trace, cache=cache)
    import dataclasses
    renamed = dataclasses.replace(CoreConfig(), name="same-timing",
                                  data_width=32, phys_regs=128)
    result = simulate_cached(renamed, trace, cache=cache)
    assert cache.hits == 1
    assert result.config_name == "same-timing"     # identity stays local


def test_cached_payload_is_plain_json(tmp_path):
    cache = ResultCache(tmp_path, enabled=True)
    trace = _small_trace()
    simulate_cached(CoreConfig(), trace, cache=cache)
    files = list((tmp_path / "simulation").glob("*.json"))
    assert len(files) == 1
    payload = json.loads(files[0].read_text())
    assert set(payload) == {"instructions", "cycles", "branch_count",
                            "mispredicts", "l1_misses"}


class TestStats:
    def test_counters_track_hits_misses_and_bytes(self, tmp_path):
        reset_stats()
        cache = ResultCache(tmp_path, enabled=True)
        key = cache.key({"x": 1})
        assert cache.get("library", key) is None          # miss
        cache.put("library", key, {"payload": [1, 2, 3]})  # put
        assert cache.get("library", key) is not None       # hit
        stats = stats_snapshot()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["bytes_written"] > 0
        assert stats["bytes_read"] == stats["bytes_written"]
        # Instance counters track the same events.
        assert cache.hits == 1 and cache.misses == 1

    def test_reset_zeroes_counters(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.get("library", cache.key({"y": 2}))
        reset_stats()
        assert all(v == 0 for v in stats_snapshot().values())

    def test_disk_stats_reports_categories(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.put("library", cache.key({"a": 1}), {"v": 1})
        cache.put("simulation", cache.key({"b": 2}), {"v": 2})
        cache.put("simulation", cache.key({"c": 3}), {"v": 3})
        stats = disk_stats(tmp_path)
        assert stats["library"]["entries"] == 1
        assert stats["simulation"]["entries"] == 2
        assert stats["simulation"]["bytes"] > 0

    def test_disk_stats_missing_root(self, tmp_path):
        assert disk_stats(tmp_path / "nope") == {}

    def test_put_leaves_no_temp_files(self, tmp_path):
        """The write-and-rename publish leaves exactly one final file."""
        cache = ResultCache(tmp_path, enabled=True)
        cache.put("library", cache.key({"z": 9}), {"v": 9})
        leftovers = list((tmp_path / "library").glob("*.tmp"))
        assert leftovers == []
        assert len(list((tmp_path / "library").glob("*.json"))) == 1

    def test_put_fsync_opt_in(self, tmp_path, monkeypatch):
        """REPRO_CACHE_FSYNC=1 syncs the entry; default skips the fsync."""
        import os

        import repro.runtime.cache as cache_mod
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(cache_mod.os, "fsync",
                            lambda fd: calls.append(fd) or real_fsync(fd))
        cache = ResultCache(tmp_path, enabled=True)

        monkeypatch.delenv("REPRO_CACHE_FSYNC", raising=False)
        cache.put("library", cache.key({"f": 0}), {"v": 0})
        assert calls == []

        monkeypatch.setenv("REPRO_CACHE_FSYNC", "1")
        key = cache.key({"f": 1})
        cache.put("library", key, {"v": 1})
        assert len(calls) == 1
        assert cache.get("library", key) == {"v": 1}


def test_cache_stats_cli(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache(enabled=True)
    cache.put("library", cache.key({"cli": 1}), {"v": 1})
    from repro.__main__ import main
    assert main(["cache-stats"]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out
    assert "library" in out and "entries" in out


# -- concurrent same-key writers (the dedup layer's invariant) ---------------

def _racing_writer(root: str, key: str, rounds: int, tag: int,
                   out_path: str) -> None:
    """Hammer one cache entry with put+get and report stats as JSON."""
    cache = ResultCache(root=root, enabled=True)
    corrupt = 0
    for i in range(rounds):
        cache.put("race", key, {"tag": tag, "round": i,
                                "pad": list(range(400))})
        entry = cache.get("race", key)
        # Any outcome must be a complete payload from *some* writer —
        # a torn/corrupt entry reads back as None (get drops it).
        if entry is None or len(entry.get("pad", ())) != 400:
            corrupt += 1
    with open(out_path, "w") as fh:
        json.dump({"hits": cache.hits, "misses": cache.misses,
                   "corrupt": corrupt}, fh)


def test_concurrent_same_key_writers_leave_readable_entry(tmp_path):
    """Two processes racing tmp+rename on one entry: every read during
    the race sees a complete payload (atomic os.replace publication),
    counters stay consistent, and the final entry is readable."""
    import multiprocessing

    key = ResultCache.key({"race": True})
    rounds = 50
    outs = [tmp_path / f"stats-{tag}.json" for tag in range(2)]
    procs = [multiprocessing.Process(
                target=_racing_writer,
                args=(str(tmp_path / "cache"), key, rounds, tag, str(out)))
             for tag, out in enumerate(outs)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(60)
        assert proc.exitcode == 0

    for out in outs:
        stats = json.loads(out.read_text())
        # Every get after a put must hit: os.replace guarantees the
        # entry exists and is complete from the first put onwards.
        assert stats == {"hits": rounds, "misses": 0, "corrupt": 0}

    cache = ResultCache(root=tmp_path / "cache", enabled=True)
    final = cache.get("race", key)
    assert final is not None and len(final["pad"]) == 400
    assert final["tag"] in (0, 1) and final["round"] == rounds - 1
    # Exactly one published file, no leftover tmp droppings.
    entries = list((tmp_path / "cache" / "race").iterdir())
    assert [e.name for e in entries] == [f"{key}.json"]
