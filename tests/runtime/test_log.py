"""Logging configuration helper and the telemetry warning tee."""

from __future__ import annotations

import argparse
import logging

import pytest

from repro.runtime import log, telemetry


@pytest.fixture(autouse=True)
def _restore_level():
    logger = logging.getLogger(log.ROOT)
    saved = logger.level
    yield
    logger.setLevel(saved)


class TestConfigure:
    def test_get_logger_namespacing(self):
        assert log.get_logger("core.ipc_native").name == "repro.core.ipc_native"
        assert log.get_logger("repro.spice").name == "repro.spice"

    def test_idempotent_handler_install(self):
        logger = log.configure()
        log.configure()
        ours = [h for h in logger.handlers
                if getattr(h, "_repro_handler", False)]
        assert len(ours) == 1

    def test_verbosity_mapping(self):
        assert log.configure(verbose=0).level == logging.WARNING
        assert log.configure(verbose=1).level == logging.INFO
        assert log.configure(verbose=2).level == logging.DEBUG
        assert log.configure(level="ERROR").level == logging.ERROR
        with pytest.raises(ValueError):
            log.configure(level="NOPE")

    def test_env_default_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "info")
        assert log.configure().level == logging.INFO

    def test_cli_flags_round_trip(self):
        parser = argparse.ArgumentParser()
        log.add_cli_flags(parser)
        args = parser.parse_args(["-vv"])
        assert log.configure_from_args(args).level == logging.DEBUG


class TestWarningTee:
    def test_warnings_reach_the_run_report(self):
        handler = log.capture_warnings()
        assert log.capture_warnings() is handler    # installed once
        try:
            with telemetry.collecting():
                log.get_logger("spice").warning("gmin fallback engaged")
                log.get_logger("spice").info("not captured")
                assert telemetry.warnings() == \
                    ["repro.spice: gmin fallback engaged"]
        finally:
            logging.getLogger(log.ROOT).removeHandler(handler)
