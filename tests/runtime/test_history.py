"""Run-history index, report diffing, and the perf regression gate."""

from __future__ import annotations

import copy
import json
import os
import platform

import pytest

from repro.runtime import history
from repro.runtime import report as run_report
from repro.runtime import telemetry


def _small_report(target: str = "bench", seconds: float = 1.0) -> dict:
    telemetry.reset()
    telemetry.enable(True)
    try:
        with telemetry.span("stage"):
            pass
        report = run_report.build_report(target, argv=[],
                                         duration_seconds=seconds)
    finally:
        telemetry.enable(False)
        telemetry.reset()
    report["benchmarks"] = {
        "depth_sweep": {"seconds": seconds, "cycles": 100},
        "dse_sweep": {"seconds": 2 * seconds},
    }
    # Pin the measured span time so diff tests are deterministic.
    for node in report["span_tree"]:
        node["seconds"] = seconds
    report["span_totals"] = {"stage": {"seconds": seconds, "calls": 1}}
    return report


class TestIndex:
    def test_append_and_load_round_trip(self, tmp_path, monkeypatch):
        hist = tmp_path / "custom" / "history.ndjson"
        monkeypatch.setenv(history.HISTORY_ENV, str(hist))
        report = _small_report()
        assert history.append_entry(report, tmp_path / "r1.json") == hist
        history.append_entry(report, tmp_path / "r2.json")
        entries = history.load_entries()
        assert [e["path"] for e in entries] == \
            [str(tmp_path / "r1.json"), str(tmp_path / "r2.json")]
        entry = entries[0]
        assert entry["target"] == "bench"
        assert entry["status"] == "ok"
        assert entry["duration_seconds"] == 1.0
        assert entry["benchmarks"] == {"depth_sweep": 1.0, "dse_sweep": 2.0}
        assert entry["env_key"] == history.env_key(report["env"])

    def test_write_report_appends_to_index(self, tmp_path, monkeypatch):
        hist = tmp_path / "history.ndjson"
        monkeypatch.setenv(history.HISTORY_ENV, str(hist))
        path = run_report.write_report(_small_report(),
                                       tmp_path / "run.json")
        entries = history.load_entries()
        assert len(entries) == 1
        assert entries[0]["path"] == str(path)

    def test_corrupt_and_blank_lines_skipped(self, tmp_path):
        hist = tmp_path / "history.ndjson"
        history.append_entry(_small_report(), tmp_path / "ok.json",
                             history_path=hist)
        with open(hist, "a") as fh:
            fh.write("{not json\n\n[1, 2]\n")
        history.append_entry(_small_report(), tmp_path / "ok2.json",
                             history_path=hist)
        entries = history.load_entries(hist)
        assert [e["path"] for e in entries] == \
            [str(tmp_path / "ok.json"), str(tmp_path / "ok2.json")]

    def test_missing_index_is_empty_not_fatal(self, tmp_path):
        assert history.load_entries(tmp_path / "nope.ndjson") == []

    def test_env_key_stable_and_sensitive(self):
        env = _small_report()["env"]
        assert history.env_key(env) == history.env_key(copy.deepcopy(env))
        other = copy.deepcopy(env)
        other["cpu_count"] = (env.get("cpu_count") or 0) + 1
        assert history.env_key(other) != history.env_key(env)
        # Worker count is per-run config, not machine identity.
        reconfigured = copy.deepcopy(env)
        reconfigured["workers"] = 99
        assert history.env_key(reconfigured) == history.env_key(env)


class TestResolveReport:
    @pytest.fixture()
    def indexed(self, tmp_path, monkeypatch):
        hist = tmp_path / "history.ndjson"
        monkeypatch.setenv(history.HISTORY_ENV, str(hist))
        paths = []
        for name in ("alpha.json", "beta.json"):
            paths.append(run_report.write_report(
                _small_report(target=name.split(".")[0]),
                tmp_path / name))
        return paths

    def test_by_path_ordinal_and_substring(self, indexed):
        alpha, beta = indexed
        assert history.resolve_report(str(alpha))[0] == alpha
        assert history.resolve_report("-1")[0] == beta
        assert history.resolve_report("-2")[0] == alpha
        assert history.resolve_report("alpha")[0] == alpha
        path, report = history.resolve_report("beta")
        assert path == beta and report["target"] == "beta"

    def test_unresolvable_reference_raises(self, indexed):
        with pytest.raises(FileNotFoundError, match="no report matches"):
            history.resolve_report("gamma")


class TestDiff:
    def test_identical_runs_diff_clean(self):
        report = _small_report()
        diff = history.diff_reports(report, copy.deepcopy(report))
        assert diff["flags"] == []
        assert diff["env_match"]
        assert "clean" in history.format_diff(diff)

    def test_artificially_slowed_run_is_flagged(self):
        before = _small_report(seconds=1.0)
        after = _small_report(seconds=1.5)        # 1.5x across the board
        diff = history.diff_reports(before, after)
        flagged = {(r["kind"], r["name"]) for r in diff["flags"]}
        assert ("duration", "total") in flagged
        assert ("benchmark", "depth_sweep") in flagged
        assert ("benchmark", "dse_sweep") in flagged
        assert ("span", "stage") in flagged
        assert "** FLAG" in history.format_diff(diff)

    def test_speedup_and_noise_not_flagged(self):
        before = _small_report(seconds=1.0)
        faster = _small_report(seconds=0.5)
        assert history.diff_reports(before, faster)["flags"] == []
        # A 50% regression on a sub-millisecond row is scheduler noise.
        tiny_a = _small_report(seconds=0.0005)
        tiny_b = _small_report(seconds=0.00075)
        assert history.diff_reports(tiny_a, tiny_b)["flags"] == []

    def test_counter_deltas_ride_along_unflagged(self):
        a = _small_report()
        b = copy.deepcopy(a)
        a.setdefault("metrics", {}).setdefault("counters", {})[
            "ensemble.newton_lane_iterations"] = 100
        b.setdefault("metrics", {}).setdefault("counters", {})[
            "ensemble.newton_lane_iterations"] = 160
        diff = history.diff_reports(a, b)
        assert diff["counter_deltas"][
            "ensemble.newton_lane_iterations"] == 60
        assert diff["flags"] == []


class TestRegressGate:
    ENV = {"cpu_count": os.cpu_count(),
           "python": platform.python_version(),
           "machine": platform.machine()}

    def _baseline(self, seconds: float = 1.0) -> dict:
        return {
            "environment": dict(self.ENV),
            "benchmarks": {
                "depth_sweep": {"seconds": seconds, "seed_seconds": 0.9},
                "unseeded": {"seconds": 1.0, "seed_seconds": None},
            },
        }

    def test_within_tolerance_passes(self):
        status, lines = history.regress_check(
            {"depth_sweep": 1.2}, self._baseline(), current_env=self.ENV,
            tolerance=0.25)
        assert status == 0
        assert any("passed" in line for line in lines)

    def test_slowdown_beyond_tolerance_fails(self):
        status, lines = history.regress_check(
            {"depth_sweep": 1.3}, self._baseline(), current_env=self.ENV,
            tolerance=0.25)
        assert status == 1
        assert any("depth_sweep" in line for line in lines)

    def test_unseeded_rows_not_gated(self):
        status, _ = history.regress_check(
            {"unseeded": 50.0}, self._baseline(), current_env=self.ENV)
        assert status == 0

    def test_env_mismatch_self_skips(self):
        status, lines = history.regress_check(
            {"depth_sweep": 99.0}, self._baseline(),
            current_env=dict(self.ENV, cpu_count=12345))
        assert status == 0
        assert any("skipped" in line for line in lines)


class TestPerfCli:
    @pytest.fixture()
    def runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(history.HISTORY_ENV,
                           str(tmp_path / "history.ndjson"))
        slow = run_report.write_report(_small_report(seconds=1.5),
                                       tmp_path / "slow.json")
        fast = run_report.write_report(_small_report(seconds=1.0),
                                       tmp_path / "fast.json")
        return fast, slow

    def test_list(self, runs, capsys):
        from repro.__main__ import main

        assert main(["perf", "list"]) == 0
        out = capsys.readouterr().out
        assert "slow.json" in out and "fast.json" in out
        assert "[2 benchmarks]" in out

    def test_diff_flags_slowdown_and_strict_gates(self, runs, capsys):
        from repro.__main__ import main

        fast, slow = runs
        assert main(["perf", "diff", str(fast), str(slow)]) == 0
        out = capsys.readouterr().out
        assert "** FLAG" in out
        assert main(["perf", "diff", "fast.json", "slow.json",
                     "--strict"]) == 1
        assert main(["perf", "diff", str(fast), str(fast),
                     "--strict"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_trend(self, runs, capsys):
        from repro.__main__ import main

        assert main(["perf", "trend", "depth_sweep"]) == 0
        out = capsys.readouterr().out
        assert out.count("env=") == 2
        assert main(["perf", "trend", "no-such-bench"]) == 1

    def test_regress_pass_and_fail(self, runs, tmp_path, capsys):
        from repro.__main__ import main

        fast, slow = runs
        baseline = tmp_path / "BENCH_perf.json"
        baseline.write_text(json.dumps({
            "environment": {"cpu_count": os.cpu_count(),
                            "python": platform.python_version(),
                            "machine": platform.machine()},
            "benchmarks": {"depth_sweep": {"seconds": 1.0,
                                           "seed_seconds": 0.9}},
        }))
        assert main(["perf", "regress", "--baseline", str(baseline),
                     "--report", str(fast)]) == 0
        assert main(["perf", "regress", "--baseline", str(baseline),
                     "--report", str(slow)]) == 1
        out = capsys.readouterr().out
        assert "regress FAILED" in out
        # Default report: the most recent benchmark-bearing index entry
        # (fast.json was written last).
        assert main(["perf", "regress", "--baseline",
                     str(baseline)]) == 0
        assert "fast.json" in capsys.readouterr().out

    def test_regress_missing_baseline(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main(["perf", "regress", "--baseline",
                   str(tmp_path / "absent.json")])
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().out


# -- concurrent appends -------------------------------------------------------

def _big_report(tag: str) -> dict:
    """A report whose index line is far larger than the stdio buffer
    (~8 KiB), so a torn buffered append would corrupt the ndjson."""
    report = {
        "schema": 1,
        "target": f"bench-{tag}",
        "timestamp": "2026-01-01T00:00:00",
        "status": "ok",
        "duration_seconds": 1.0,
        "env": {"python": "3", "machine": "x", "cpu_count": 1},
        "benchmarks": {f"bench_{tag}_{i:04d}": {"seconds": float(i)}
                       for i in range(1500)},
    }
    return report


def _append_worker(hist: str, tag: str, count: int) -> None:
    report = _big_report(tag)
    for i in range(count):
        out = history.append_entry(report, f"/runs/{tag}-{i}.json",
                                   history_path=hist)
        assert out is not None


class TestConcurrentAppends:
    def test_parallel_writers_never_tear_lines(self, tmp_path):
        """Regression: pre-fix append_entry used a buffered write in
        append mode, so two processes landing >8 KiB index lines at the
        same time interleaved partial lines.  Post-fix every entry is
        one os.write on an O_APPEND fd."""
        import multiprocessing

        hist = tmp_path / "history.ndjson"
        n_procs, per_proc = 4, 25
        procs = [multiprocessing.Process(
                    target=_append_worker,
                    args=(str(hist), f"p{p}", per_proc))
                 for p in range(n_procs)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
            assert proc.exitcode == 0

        lines = hist.read_bytes().splitlines()
        assert len(lines) == n_procs * per_proc
        entries = [json.loads(line) for line in lines]   # every line parses
        per_tag: dict[str, int] = {}
        for entry in entries:
            assert len(entry["benchmarks"]) == 1500
            tag = entry["target"].split("-", 1)[1]
            per_tag[tag] = per_tag.get(tag, 0) + 1
        assert per_tag == {f"p{p}": per_proc for p in range(n_procs)}
        # load_entries sees the same thing (nothing skipped as corrupt).
        assert len(history.load_entries(hist)) == n_procs * per_proc
