"""Run-report assembly, serialisation, and rendering."""

from __future__ import annotations

import json

from repro.runtime import report, telemetry


def _collected_report(**kwargs):
    with telemetry.collecting():
        with telemetry.span("fig6"):
            telemetry.count("spice.newton_solves", 7)
            telemetry.observe("ensemble.batch_occupancy", 24)
        telemetry.warn("repro.runtime.executor: serial fallback")
        return report.build_report("fig6", **kwargs)


class TestSchema:
    def test_required_keys(self):
        doc = _collected_report(argv=["fig6"], duration_seconds=1.25)
        assert doc["schema"] == report.SCHEMA_VERSION
        assert doc["target"] == "fig6"
        assert doc["argv"] == ["fig6"]
        assert doc["status"] == "ok"
        assert doc["duration_seconds"] == 1.25
        for key in ("timestamp", "env", "metrics", "span_totals",
                    "span_tree", "cache", "warnings"):
            assert key in doc, key

    def test_env_fingerprint(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        doc = _collected_report()
        env = doc["env"]
        assert env["workers"] == 3
        assert env["repro_env"]["REPRO_WORKERS"] == "3"
        assert "numpy" in env["packages"]
        assert env["python"].count(".") >= 1

    def test_metrics_and_spans_round_trip(self):
        doc = _collected_report()
        assert doc["metrics"]["counters"]["spice.newton_solves"] == 7
        occ = doc["metrics"]["distributions"]["ensemble.batch_occupancy"]
        assert occ["count"] == 1 and occ["max"] == 24
        assert doc["span_totals"]["fig6"]["count"] == 1
        assert doc["span_tree"][0]["name"] == "fig6"
        assert doc["warnings"] == ["repro.runtime.executor: serial fallback"]

    def test_error_status(self):
        doc = _collected_report(status="error", error="ValueError: boom")
        assert doc["status"] == "error"
        assert doc["error"] == "ValueError: boom"

    def test_json_serialisable(self):
        doc = _collected_report(duration_seconds=0.5)
        assert json.loads(json.dumps(doc)) == doc


class TestWriteAndDiscover:
    def test_write_default_path_under_runs_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        path = report.write_report(_collected_report())
        assert path.parent == tmp_path / "runs"
        assert path.name.startswith("fig6-") and path.suffix == ".json"
        assert json.loads(path.read_text())["target"] == "fig6"

    def test_write_explicit_path(self, tmp_path):
        out = tmp_path / "deep" / "r.json"
        assert report.write_report(_collected_report(), path=out) == out
        assert out.exists()

    def test_latest_report_path(self, tmp_path):
        assert report.latest_report_path(tmp_path / "missing") is None
        assert report.latest_report_path(tmp_path) is None
        old = tmp_path / "a.json"
        new = tmp_path / "b.json"
        old.write_text("{}")
        new.write_text("{}")
        import os
        os.utime(old, (1, 1))
        assert report.latest_report_path(tmp_path) == new


class TestFormat:
    def test_renders_all_sections(self):
        doc = _collected_report(duration_seconds=2.0)
        text = report.format_report(doc)
        assert "run report: fig6 [ok]" in text
        assert "duration: 2.00s" in text
        assert "spans:" in text and "fig6" in text
        assert "counters:" in text
        assert "spice.newton_solves: 7" in text
        assert "distributions:" in text
        assert "warnings:" in text

    def test_renders_error_and_empty_report(self):
        text = report.format_report(
            {"target": "x", "status": "error", "error": "boom"})
        assert "[error]" in text and "error: boom" in text
