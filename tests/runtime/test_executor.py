"""Parallel-map executor: ordering, error capture, worker resolution."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.errors import ConvergenceError
from repro.runtime import (TaskError, TaskResult, get_shared, parallel_map,
                           resolve_workers)


# Mapped functions must be module-level so they pickle by reference.

def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"bad task {x}")
    return x


def _shared_plus(x):
    return get_shared() + x


def _raise_convergence(x):
    raise ConvergenceError("no convergence", iterations=7,
                           residual=1e-3).with_context(cell="nand2", task=x)


# -- resolve_workers --------------------------------------------------------

def test_resolve_workers_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert resolve_workers(3) == 3


def test_resolve_workers_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers(None) == 4


def test_resolve_workers_default_serial(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1


def test_resolve_workers_zero_means_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert resolve_workers(None) == (os.cpu_count() or 1)


def test_resolve_workers_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    assert resolve_workers(None) == 1
    monkeypatch.setenv("REPRO_WORKERS", "-3")
    assert resolve_workers(None) == 1


# -- ordering and determinism ----------------------------------------------

@pytest.mark.parametrize("workers", [1, 3])
def test_results_in_task_order(workers):
    tasks = list(range(20))
    results = parallel_map(_square, tasks, workers=workers)
    assert [r.index for r in results] == tasks
    assert [r.value for r in results] == [x * x for x in tasks]
    assert all(r.ok for r in results)


def test_parallel_matches_serial():
    tasks = list(range(12))
    serial = parallel_map(_square, tasks, workers=1)
    pooled = parallel_map(_square, tasks, workers=4)
    assert [r.value for r in serial] == [r.value for r in pooled]


def test_labels():
    results = parallel_map(_square, [2, 5], labels=["a", "b"])
    assert [r.label for r in results] == ["a", "b"]
    with pytest.raises(ValueError):
        parallel_map(_square, [1, 2], labels=["only-one"])


# -- error handling ---------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_on_error_raise_names_task(workers):
    with pytest.raises(TaskError, match=r"t3 failed: bad task 3") as info:
        parallel_map(_fail_on_three, [1, 2, 3, 4], workers=workers,
                     labels=["t1", "t2", "t3", "t4"])
    assert isinstance(info.value.__cause__, ValueError)


@pytest.mark.parametrize("workers", [1, 2])
def test_on_error_capture_keeps_going(workers):
    results = parallel_map(_fail_on_three, [1, 3, 5], workers=workers,
                           on_error="capture")
    assert [r.ok for r in results] == [True, False, True]
    assert results[0].value == 1 and results[2].value == 5
    with pytest.raises(ValueError):
        results[1].unwrap()


def test_invalid_on_error():
    with pytest.raises(ValueError):
        parallel_map(_square, [1], on_error="ignore")


# -- serial fallback --------------------------------------------------------

def test_serial_fallback_warns_once(monkeypatch, caplog):
    """A dead process pool degrades to serial with ONE logged warning."""
    import logging

    import repro.runtime.executor as executor

    class _NoPool:
        def __init__(self, *a, **k):
            raise OSError("no semaphores in this sandbox")

    monkeypatch.setattr(executor, "ProcessPoolExecutor", _NoPool)
    monkeypatch.setattr(executor, "_fallback_warned", False)
    with caplog.at_level(logging.WARNING, logger="repro.runtime.executor"):
        first = parallel_map(_square, [1, 2, 3], workers=4)
        second = parallel_map(_square, [4, 5], workers=4)
    assert [r.value for r in first] == [1, 4, 9]   # correct, just serial
    assert [r.value for r in second] == [16, 25]
    warnings = [r for r in caplog.records
                if "falling back to serial" in r.message]
    assert len(warnings) == 1                      # once per process
    assert "no semaphores" in warnings[0].message


def test_serial_run_does_not_warn(monkeypatch, caplog):
    import logging

    import repro.runtime.executor as executor

    monkeypatch.setattr(executor, "_fallback_warned", False)
    with caplog.at_level(logging.WARNING, logger="repro.runtime.executor"):
        parallel_map(_square, [1, 2], workers=1)
    assert not [r for r in caplog.records
                if "falling back to serial" in r.message]


# -- shared payload ---------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_shared_payload(workers):
    results = parallel_map(_shared_plus, [1, 2, 3], workers=workers,
                           shared=100)
    assert [r.value for r in results] == [101, 102, 103]


def test_shared_restored_after_serial_map():
    parallel_map(_shared_plus, [1], workers=1, shared=7)
    assert get_shared() is None


# -- ConvergenceError context across process boundaries ---------------------

def test_convergence_error_pickles_with_context():
    exc = ConvergenceError("stuck", iterations=12, residual=2.5e-7)
    exc.with_context(cell="nor3", slew=1e-4)
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, ConvergenceError)
    assert clone.iterations == 12
    assert clone.residual == 2.5e-7
    assert clone.context == {"cell": "nor3", "slew": 1e-4}
    assert "cell='nor3'" in str(clone)


def test_with_context_does_not_overwrite():
    exc = ConvergenceError("x").with_context(cell="inv")
    exc.with_context(cell="nand2", load=1e-12)
    assert exc.context == {"cell": "inv", "load": 1e-12}


@pytest.mark.parametrize("workers", [1, 2])
def test_convergence_context_survives_worker(workers):
    results = parallel_map(_raise_convergence, ["a", "b"], workers=workers,
                           on_error="capture")
    for r, task in zip(results, ("a", "b")):
        assert not r.ok
        assert isinstance(r.error, ConvergenceError)
        assert r.error.context["cell"] == "nand2"
        assert r.error.context["task"] == task
        assert r.error.iterations == 7


def test_task_result_unwrap_ok():
    assert TaskResult(index=0, label="t", value=42).unwrap() == 42


def _crash_in_worker(task):
    value, parent_pid = task
    if value == 2 and os.getpid() != parent_pid:
        os._exit(41)  # simulate an OOM kill: no exception, no cleanup
    return value * 10


def test_worker_crash_falls_back_to_serial(caplog):
    # Regression: a worker dying mid-map used to propagate
    # BrokenProcessPool out of parallel_map (only pool-*creation*
    # failures degraded to serial).  The map must complete with every
    # task's result, in order, and warn about the degradation.
    tasks = [(v, os.getpid()) for v in range(5)]
    with caplog.at_level("WARNING", logger="repro"):
        results = parallel_map(_crash_in_worker, tasks, workers=2)
    assert [r.unwrap() for r in results] == [0, 10, 20, 30, 40]
    assert any("worker process died" in r.getMessage()
               for r in caplog.records)


# -- shared-payload lifecycle (thread isolation, nesting, exceptions) --------

def test_shared_isolated_between_threads():
    """Regression: the shared payload was a module global, so two
    threads running serial maps concurrently (the service scheduler's
    job slots) observed each other's payloads — silent wrong results."""
    import threading

    from repro.runtime import executor

    barrier = threading.Barrier(2)
    seen: dict[str, object] = {}
    failures: list[BaseException] = []

    def probe(tag):
        # Rendezvous so both maps are in-flight, then read the payload
        # while the other thread's map has already set its own.
        barrier.wait(timeout=10)
        seen[tag] = executor.get_shared()
        barrier.wait(timeout=10)
        return tag

    def run(tag):
        try:
            parallel_map(probe, [tag], workers=1, shared=f"payload-{tag}")
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=run, args=(t,)) for t in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not failures
    assert seen == {"a": "payload-a", "b": "payload-b"}
    assert get_shared() is None


def _outer_with_nested_map(x):
    inner = parallel_map(_shared_plus, [x], workers=1, shared=1000)
    return get_shared(), inner[0].value


def test_nested_serial_map_restores_outer_shared():
    results = parallel_map(_outer_with_nested_map, [5], workers=1, shared=7)
    outer_shared_after_inner, inner_value = results[0].value
    assert inner_value == 1005           # inner map saw its own payload
    assert outer_shared_after_inner == 7  # ...and restored the outer one
    assert get_shared() is None


def test_shared_restored_when_map_raises():
    with pytest.raises(TaskError):
        parallel_map(_fail_on_three, [3], workers=1, shared=13)
    assert get_shared() is None


def test_shared_restored_when_progress_begin_raises(monkeypatch):
    """Regression: progress.begin sat outside the serial path's
    try/finally, so an exception there skipped the payload restore."""
    from repro.runtime import progress

    monkeypatch.setattr(progress, "ENABLED", True)
    monkeypatch.setattr(progress, "begin",
                        lambda *a, **k: (_ for _ in ()).throw(
                            RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        parallel_map(_square, [1, 2], workers=1, shared=99)
    assert get_shared() is None


# -- persistent worker pools -------------------------------------------------

def _worker_pid(_task):
    return os.getpid()


class TestWorkerPool:
    def test_pooled_map_matches_serial(self):
        from repro.runtime import WorkerPool, use_pool

        with WorkerPool(2) as pool, use_pool(pool):
            pooled = parallel_map(_square, list(range(6)))
        assert [r.value for r in pooled] == [x * x for x in range(6)]

    def test_pool_reuses_worker_processes(self):
        from repro.runtime import WorkerPool, use_pool

        with WorkerPool(2) as pool, use_pool(pool):
            first = {r.value for r in parallel_map(_worker_pid, range(8))}
            executor_after_first = pool._executor
            second = {r.value for r in parallel_map(_worker_pid, range(8))}
        assert executor_after_first is not None
        assert pool._executor is None        # closed on exit
        assert second <= first               # same warm processes, no respawn
        assert os.getpid() not in first      # and they are real workers

    def test_shared_payload_via_spill(self):
        from repro.runtime import WorkerPool, use_pool

        with WorkerPool(2) as pool, use_pool(pool):
            results = parallel_map(_shared_plus, [1, 2, 3, 4], shared=100)
        assert [r.value for r in results] == [101, 102, 103, 104]

    def test_explicit_pool_argument(self):
        from repro.runtime import WorkerPool

        with WorkerPool(2) as pool:
            results = parallel_map(_square, [1, 2, 3], pool=pool)
        assert [r.value for r in results] == [1, 4, 9]

    def test_worker_crash_discards_pool_and_recovers(self, caplog):
        from repro.runtime import WorkerPool, use_pool

        tasks = [(v, os.getpid()) for v in range(4)]
        with WorkerPool(2) as pool, use_pool(pool):
            with caplog.at_level("WARNING", logger="repro"):
                results = parallel_map(_crash_in_worker, tasks)
            assert [r.unwrap() for r in results] == [0, 10, 20, 30]
            # The broken executor was discarded; the next map works.
            again = parallel_map(_square, [2, 3])
            assert [r.value for r in again] == [4, 9]
        assert any("worker process died" in r.getMessage()
                   for r in caplog.records)

    def test_ambient_pool_is_thread_local(self):
        import threading

        from repro.runtime import WorkerPool, active_pool, use_pool

        observed = []
        with WorkerPool(2) as pool, use_pool(pool):
            t = threading.Thread(
                target=lambda: observed.append(active_pool()))
            t.start()
            t.join(10)
            assert active_pool() is pool
        assert observed == [None]
