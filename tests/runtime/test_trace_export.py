"""Chrome Trace Event export: schema, determinism, and round-trips.

The exporter's contract (see :mod:`repro.runtime.trace_export`): every
span in a run report becomes one well-formed ``"X"`` event, worker-task
subtrees land on deterministic ``worker-K`` tracks reconstructed from
the task schedule, native/solver counters ride along as annotations,
and the **canonical** event sequence — timestamps, tracks, and worker
bookkeeping stripped — is bitwise identical between ``workers=1`` and
``workers=N`` runs of the same workload.
"""

from __future__ import annotations

import json

from repro.runtime import report as run_report
from repro.runtime import telemetry, trace_export
from repro.runtime.executor import parallel_map


def _traced_task(i: int) -> int:
    with telemetry.span("work", task=i):
        telemetry.count("ensemble.fake_units", i + 1)
        with telemetry.span("inner"):
            pass
    return i


def _report_for(workers: int) -> dict:
    telemetry.reset()
    telemetry.enable(True)
    try:
        with telemetry.span("map"):
            parallel_map(_traced_task, list(range(4)), workers=workers)
        return run_report.build_report("trace-test", argv=[])
    finally:
        telemetry.enable(False)
        telemetry.reset()


class TestSchema:
    def test_events_are_well_formed(self):
        report = _report_for(workers=1)
        doc = trace_export.chrome_trace(report)
        # Valid JSON end to end.
        doc = json.loads(json.dumps(doc))
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for event in events:
            assert isinstance(event["name"], str)
            assert event["pid"] == 0
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert "map" in names
        assert names.count("work") == 4
        assert names.count("inner") == 4

    def test_thread_metadata_names_main_and_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        report = _report_for(workers=2)
        assert report["env"]["workers"] == 2
        events = trace_export.trace_events(report)
        threads = {e["tid"]: e["args"]["name"] for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert threads[0] == "main"
        assert threads[1] == "worker-0"
        assert threads[2] == "worker-1"
        # Worker-task spans actually land on the worker tracks,
        # alternating by task index.
        work = [e for e in events if e["ph"] == "X"
                and e.get("args", {}).get("worker_task")]
        if work:                 # pool may degrade to serial in sandboxes
            assert {e["tid"] for e in work} == {1, 2}

    def test_counter_annotations_attached(self):
        report = _report_for(workers=1)
        doc = trace_export.chrome_trace(report)
        assert doc["otherData"]["counters"]["ensemble.fake_units"] == 10
        instants = [e for e in doc["traceEvents"]
                    if e["ph"] == "i" and e["name"] == "native-counters"]
        assert len(instants) == 1
        assert instants[0]["args"]["ensemble.fake_units"] == 10


class TestDeterminism:
    def test_workers_1_vs_n_identical_canonical_sequence(self):
        a = trace_export.trace_events(_report_for(workers=1),
                                      canonical=True)
        b = trace_export.trace_events(_report_for(workers=3),
                                      canonical=True)
        assert json.dumps(a, sort_keys=True) == json.dumps(b,
                                                           sort_keys=True)

    def test_same_report_exports_byte_identical_json(self, tmp_path):
        report = _report_for(workers=2)
        p1 = trace_export.write_trace(report, tmp_path / "a.trace.json")
        p2 = trace_export.write_trace(report, tmp_path / "b.trace.json")
        assert p1.read_bytes() == p2.read_bytes()


class TestRoundTrip:
    def test_trace_from_saved_report_matches_in_memory(self, tmp_path):
        report = _report_for(workers=2)
        path = run_report.write_report(report, tmp_path / "run.json")
        reloaded = json.loads(path.read_text())
        assert trace_export.trace_events(reloaded) == \
            trace_export.trace_events(report)

    def test_default_trace_path(self):
        assert trace_export.default_trace_path("runs/foo.json").name == \
            "foo.trace.json"

    def test_trace_cli_converts_saved_report(self, tmp_path, capsys):
        from repro.__main__ import main

        report = _report_for(workers=1)
        path = run_report.write_report(report, tmp_path / "run.json")
        rc = main(["trace", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        trace_path = tmp_path / "run.trace.json"
        assert trace_path.is_file()
        doc = json.loads(trace_path.read_text())
        assert any(e["name"] == "map" for e in doc["traceEvents"])

    def test_experiment_trace_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        report_path = tmp_path / "fig8.json"
        rc = main(["fig8", "--report", str(report_path), "--trace"])
        assert rc == 0
        trace_path = tmp_path / "fig8.trace.json"
        assert trace_path.is_file()
        doc = json.loads(trace_path.read_text())
        assert any(e["name"] == "fig8" for e in doc["traceEvents"])
