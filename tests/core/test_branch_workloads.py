"""Branch predictor and workload-generator tests."""

import pytest

from repro.core.branch import BimodalPredictor, GsharePredictor
from repro.core.isa import InstrClass
from repro.core.workloads import WORKLOADS, generate_trace
from repro.errors import ConfigError


class TestPredictors:
    def test_learns_constant_branch(self):
        p = GsharePredictor(10)
        correct = [p.predict_and_update(123, True) for _ in range(100)]
        assert all(correct[10:])

    def test_learns_loop_pattern(self):
        """A short loop pattern is near-perfect under global history."""
        p = GsharePredictor(12)
        pattern = [True, True, True, False]
        correct = []
        for i in range(400):
            correct.append(p.predict_and_update(55, pattern[i % 4]))
        assert sum(correct[100:]) > 0.95 * 300

    def test_random_branch_near_chance(self):
        import random
        rng = random.Random(0)
        p = GsharePredictor(12)
        correct = [p.predict_and_update(7, rng.random() < 0.5)
                   for _ in range(2000)]
        assert 0.35 < sum(correct[500:]) / 1500 < 0.65

    def test_bimodal_learns_bias(self):
        p = BimodalPredictor(10)
        correct = [p.predict_and_update(3, True) for _ in range(50)]
        assert all(correct[5:])

    def test_bad_index_bits(self):
        with pytest.raises(ConfigError):
            GsharePredictor(2)


class TestWorkloads:
    def test_all_seven_benchmarks_present(self):
        assert set(WORKLOADS) == {"dhrystone", "bzip", "gap", "gzip",
                                  "mcf", "parser", "vortex"}

    def test_mixes_sum_to_one(self):
        for spec in WORKLOADS.values():
            assert sum(spec.mix.values()) == pytest.approx(1.0)

    def test_trace_deterministic(self):
        a = generate_trace(WORKLOADS["gzip"], 2000, seed=5)
        b = generate_trace(WORKLOADS["gzip"], 2000, seed=5)
        assert [i.klass for i in a] == [i.klass for i in b]
        assert [i.taken for i in a] == [i.taken for i in b]

    def test_trace_length(self):
        t = generate_trace(WORKLOADS["mcf"], 1234)
        assert len(t) == 1234

    def test_class_mix_matches_spec(self):
        spec = WORKLOADS["dhrystone"]
        trace = generate_trace(spec, 40_000)
        mix = trace.class_mix()
        assert mix[InstrClass.ALU] == pytest.approx(spec.mix["alu"], abs=0.02)
        assert mix[InstrClass.BRANCH] == pytest.approx(spec.mix["branch"],
                                                       abs=0.02)

    def test_mcf_missier_than_dhrystone(self):
        mcf = generate_trace(WORKLOADS["mcf"], 30_000)
        dhry = generate_trace(WORKLOADS["dhrystone"], 30_000)
        misses = lambda t: sum(1 for i in t if i.is_miss)  # noqa: E731
        assert misses(mcf) > 20 * max(misses(dhry), 1)

    def test_stores_and_branches_have_no_dst(self):
        trace = generate_trace(WORKLOADS["vortex"], 10_000)
        for instr in trace:
            if instr.klass in (InstrClass.STORE, InstrClass.BRANCH):
                assert instr.dst == -1

    def test_bad_length(self):
        with pytest.raises(ConfigError):
            generate_trace(WORKLOADS["gap"], 0)
