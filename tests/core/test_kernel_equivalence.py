"""Cycle-exact equivalence: fast IPC kernels vs the reference oracle.

The fast path has three implementations of one recurrence — the compiled
C kernel (:mod:`repro.core.ipc_native`), the general pure-Python loop and
its width-1 specialisation (:mod:`repro.core.superscalar`).  Every one of
them must produce *identical* ``cycles``, ``mispredicts`` and
``l1_misses`` to the original instruction-object oracle
(:func:`repro.core.superscalar._simulate_reference`) on every config and
workload — the sweeps' figures are only trustworthy if the speedups
change nothing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ipc_native
from repro.core.config import CoreConfig, baseline_regions
from repro.core.superscalar import _simulate_reference, simulate
from repro.core.tradeoffs import make_traces

TRACE_LENGTH = 2_500

_BACKENDS = ["python", "native"]


@pytest.fixture(scope="module")
def traces():
    return make_traces(n_instructions=TRACE_LENGTH)


@pytest.fixture(params=_BACKENDS)
def fast_backend(request):
    """Run the fast kernel as pure Python or as the compiled backend.

    ``ipc_native.reset(None)`` pins the load state to "unavailable" so
    ``simulate`` takes the Python loops; plain ``reset()`` restores
    autodetection.  The native case is skipped where no C compiler
    exists — the Python case always runs.
    """
    ipc_native.reset()
    if request.param == "native":
        if not ipc_native.native_available():
            pytest.skip("no C compiler / compiled kernel unavailable")
    else:
        ipc_native.reset(None)
    yield request.param
    ipc_native.reset()


def _regions(**splits) -> dict[str, int]:
    regions = baseline_regions()
    regions.update(splits)
    return regions


# Depth axis: every region family gets split somewhere; width axis spans
# the Figure 13/14 grid corners including multi-ALU back ends; the last
# rows shrink the occupancy windows so the ring buffers actually wrap.
GRID_CONFIGS = [
    CoreConfig(),
    CoreConfig(name="front_heavy",
               regions=_regions(fetch=2, decode=2, rename=2, dispatch=2)),
    CoreConfig(name="sched_heavy", regions=_regions(issue=3, regread=2)),
    CoreConfig(name="exec_heavy", regions=_regions(execute=3)),
    CoreConfig(name="back_heavy", regions=_regions(writeback=2, retire=3)),
    CoreConfig(name="d18", regions={r: 2 for r in baseline_regions()}),
    CoreConfig().widened(2, 3),
    CoreConfig().widened(3, 5),
    CoreConfig().widened(6, 7),
    CoreConfig(name="tiny_windows", iq_size=4, rob_size=8, lsq_size=4),
    CoreConfig(name="small_pred", predictor_bits=4,
               l1_hit_latency=1, l1_miss_latency=40),
]


def _assert_equivalent(config, trace):
    fast = simulate(config, trace, kernel="fast")
    ref = _simulate_reference(config, trace)
    assert (fast.cycles, fast.mispredicts, fast.l1_misses) == \
        (ref.cycles, ref.mispredicts, ref.l1_misses), config.name
    assert fast.instructions == ref.instructions
    assert fast.branch_count == ref.branch_count
    assert fast.ipc == pytest.approx(ref.ipc)


@pytest.mark.parametrize("config", GRID_CONFIGS, ids=lambda c: c.name)
def test_grid_equivalence(config, traces, fast_backend):
    for trace in traces.values():
        _assert_equivalent(config, trace)


@settings(max_examples=25, deadline=None)
@given(
    front_width=st.integers(1, 6),
    back_width=st.integers(3, 8),
    fetch=st.integers(1, 3), decode=st.integers(1, 2),
    rename=st.integers(1, 2), dispatch=st.integers(1, 2),
    issue=st.integers(1, 3), regread=st.integers(1, 3),
    execute=st.integers(1, 4), writeback=st.integers(1, 2),
    retire=st.integers(1, 2),
    iq_size=st.integers(4, 48), rob_size=st.integers(4, 128),
    lsq_size=st.integers(4, 32),
    predictor_bits=st.integers(4, 14),
    l1_hit_latency=st.integers(1, 4), l1_miss_latency=st.integers(4, 40),
)
def test_randomized_configs(front_width, back_width, fetch, decode, rename,
                            dispatch, issue, regread, execute, writeback,
                            retire, iq_size, rob_size, lsq_size,
                            predictor_bits, l1_hit_latency, l1_miss_latency):
    """Hypothesis sweep of the config space, one mixed workload.

    Checks whichever fast backend is active by default *and* the pure-
    Python loops, so the compiled kernel can never drift from the Python
    implementation it transliterates.
    """
    config = CoreConfig(
        name="hyp", front_width=front_width, back_width=back_width,
        regions={"fetch": fetch, "decode": decode, "rename": rename,
                 "dispatch": dispatch, "issue": issue, "regread": regread,
                 "execute": execute, "writeback": writeback,
                 "retire": retire},
        iq_size=iq_size, rob_size=rob_size, lsq_size=lsq_size,
        predictor_bits=predictor_bits,
        l1_hit_latency=l1_hit_latency, l1_miss_latency=l1_miss_latency)
    trace = _HYP_TRACE
    ref = _simulate_reference(config, trace)

    ipc_native.reset()
    try:
        default = simulate(config, trace, kernel="fast")
        ipc_native.reset(None)                    # force the Python loops
        python = simulate(config, trace, kernel="fast")
    finally:
        ipc_native.reset()
    for fast in (default, python):
        assert (fast.cycles, fast.mispredicts, fast.l1_misses) == \
            (ref.cycles, ref.mispredicts, ref.l1_misses)


_HYP_TRACE = make_traces(workloads=["gzip"],
                         n_instructions=1_500)["gzip"]


def test_fetch_redirect_counter_parity(traces):
    """``ipc.fetch_redirects``: the C kernel and Python loops agree.

    The counter records *applied* redirects — mispredicted branches
    whose resolve cycle actually pushed the fetch cursor forward — so
    beyond cycle equality the kernels must agree on a piece of internal
    schedule state.  Checked on the general loop and the width-1
    specialisation, per workload, as exact integers.
    """
    from repro.runtime import telemetry

    def run(config, trace):
        telemetry.reset()
        telemetry.enable(True)
        try:
            result = simulate(config, trace, kernel="fast")
            metrics = telemetry.metrics_snapshot()
        finally:
            telemetry.enable(False)
            telemetry.reset()
        counters = metrics.get("counters", metrics)
        return result, counters.get("ipc.fetch_redirects", 0)

    ipc_native.reset()
    native_ok = ipc_native.native_available()
    try:
        for config in (CoreConfig(),
                       CoreConfig(name="w1", front_width=1)):
            ipc_native.reset(None)               # pure-Python loops
            python = {}
            for name, trace in traces.items():
                result, redirects = run(config, trace)
                assert 0 <= redirects <= result.mispredicts
                python[name] = (result.cycles, redirects)
            # Not every workload redirects, but the suite must exercise
            # the counter or the parity check below is vacuous.
            assert any(redirects for _, redirects in python.values())
            if not native_ok:
                continue
            ipc_native.reset()                   # compiled kernel
            for name, trace in traces.items():
                result, redirects = run(config, trace)
                assert (result.cycles, redirects) == python[name], \
                    (config.name, name)
    finally:
        ipc_native.reset()
    if not native_ok:
        pytest.skip("python loops self-consistent; no compiled kernel "
                    "to compare against")


def test_kernel_arg_selects_reference(traces):
    """``kernel='reference'`` and ``REPRO_IPC_KERNEL`` pick the oracle."""
    trace = next(iter(traces.values()))
    config = CoreConfig()
    via_arg = simulate(config, trace, kernel="reference")
    direct = _simulate_reference(config, trace)
    assert via_arg == direct


def test_unknown_kernel_rejected(traces):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        simulate(CoreConfig(), next(iter(traces.values())), kernel="turbo")
