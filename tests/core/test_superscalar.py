"""Out-of-order timing-model tests: limit cases and sensitivities."""

import pytest

from repro.core.config import CoreConfig
from repro.core.isa import Instruction, InstrClass
from repro.core.superscalar import simulate
from repro.core.trace import Trace
from repro.core.workloads import WORKLOADS, generate_trace
from repro.errors import SimulationError


def alu(dst, s0=-1, s1=-1):
    return Instruction(klass=InstrClass.ALU, srcs=(s0, s1), dst=dst)


def chain_trace(n):
    """Fully serial dependency chain."""
    return Trace("chain", [alu(dst=(i % 30) + 1, s0=((i - 1) % 30) + 1)
                           for i in range(n)])


def independent_trace(n):
    """No dependencies at all."""
    return Trace("indep", [alu(dst=(i % 15) + 1) for i in range(n)])


class TestLimitBehaviour:
    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            simulate(CoreConfig(), Trace("empty"))

    def test_serial_chain_ipc_near_one(self):
        """Back-to-back dependent single-cycle ops: IPC -> 1."""
        r = simulate(CoreConfig(front_width=4, back_width=5),
                     chain_trace(5000))
        assert r.ipc == pytest.approx(1.0, abs=0.05)

    def test_independent_ops_hit_width_limit(self):
        """Independent ALU ops: IPC limited by fetch width."""
        r1 = simulate(CoreConfig(front_width=1, back_width=5),
                      independent_trace(5000))
        r4 = simulate(CoreConfig(front_width=4, back_width=7),
                      independent_trace(5000))
        assert r1.ipc == pytest.approx(1.0, abs=0.05)
        assert r4.ipc > 2.5

    def test_alu_pipe_structural_limit(self):
        """With a wide front, ALU throughput caps at the pipe count."""
        r = simulate(CoreConfig(front_width=6, back_width=3),
                     independent_trace(5000))
        assert r.ipc == pytest.approx(1.0, abs=0.1)  # 1 ALU pipe

    def test_divider_serialises(self):
        divs = Trace("divs", [
            Instruction(klass=InstrClass.DIV, srcs=(-1, -1), dst=(i % 20) + 1)
            for i in range(500)])
        r = simulate(CoreConfig(front_width=4, back_width=4), divs)
        # Two non-pipelined 12-cycle dividers -> IPC ~ 2/12.
        assert r.ipc < 0.25

    def test_load_misses_hurt(self):
        hits = Trace("hits", [
            Instruction(klass=InstrClass.LOAD, srcs=(1, -1),
                        dst=(i % 20) + 2, is_miss=False)
            for i in range(2000)])
        misses = Trace("misses", [
            Instruction(klass=InstrClass.LOAD, srcs=(1, -1),
                        dst=(i % 20) + 2, is_miss=True)
            for i in range(2000)])
        cfg = CoreConfig()
        assert simulate(cfg, misses).ipc < simulate(cfg, hits).ipc


class TestDepthSensitivity:
    def test_deeper_frontend_lowers_ipc_on_branchy_code(self):
        trace = generate_trace(WORKLOADS["parser"], 20_000)
        base = CoreConfig()
        deep = base.with_regions({**base.regions, "fetch": 3, "decode": 2,
                                  "rename": 2})
        assert simulate(deep, trace).ipc < simulate(base, trace).ipc

    def test_deeper_issue_hurts_dependent_code(self):
        trace = chain_trace(5000)
        base = CoreConfig()
        deep = base.with_regions({**base.regions, "issue": 3})
        assert simulate(deep, trace).ipc < 0.7 * simulate(base, trace).ipc

    def test_mispredicts_counted(self):
        trace = generate_trace(WORKLOADS["gzip"], 20_000)
        r = simulate(CoreConfig(), trace)
        assert 0 < r.mispredicts < r.branch_count
        assert r.mispredict_rate == pytest.approx(
            r.mispredicts / r.branch_count)


class TestWorkloadOrdering:
    @pytest.fixture(scope="class")
    def ipcs(self):
        cfg = CoreConfig()
        return {name: simulate(cfg, generate_trace(spec, 25_000)).ipc
                for name, spec in WORKLOADS.items()}

    def test_dhrystone_fastest(self, ipcs):
        assert ipcs["dhrystone"] == max(ipcs.values())

    def test_mcf_slowest(self, ipcs):
        """Pointer-chasing mcf is the clear laggard (as on real cores)."""
        assert ipcs["mcf"] == min(ipcs.values())
        assert ipcs["mcf"] < 0.7 * ipcs["dhrystone"]

    def test_all_ipcs_plausible(self, ipcs):
        for name, ipc in ipcs.items():
            assert 0.1 < ipc <= 1.0, name
