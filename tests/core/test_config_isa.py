"""CoreConfig and ISA tests."""

import pytest

from repro.core.config import REGION_NAMES, CoreConfig
from repro.core.isa import EXEC_LATENCY, Instruction, InstrClass
from repro.errors import ConfigError


class TestCoreConfig:
    def test_baseline_is_nine_stages(self):
        assert CoreConfig().depth == 9

    def test_baseline_widths(self):
        cfg = CoreConfig()
        assert cfg.front_width == 1
        assert cfg.back_width == 3
        assert cfg.alu_pipes == 1

    def test_mispredict_penalty_grows_with_depth(self):
        base = CoreConfig()
        deep = base.with_regions({**base.regions, "fetch": 3, "issue": 2})
        assert deep.mispredict_penalty > base.mispredict_penalty

    def test_issue_to_execute_bubbles(self):
        base = CoreConfig()
        assert base.issue_to_execute == 0
        deep = base.with_regions({**base.regions, "issue": 3})
        assert deep.issue_to_execute == 2

    def test_region_validation(self):
        with pytest.raises(ConfigError):
            CoreConfig(regions={"fetch": 1})
        with pytest.raises(ConfigError):
            CoreConfig(regions={name: 0 for name in REGION_NAMES})

    def test_width_bounds(self):
        with pytest.raises(ConfigError):
            CoreConfig(front_width=0)
        with pytest.raises(ConfigError):
            CoreConfig(back_width=2)

    def test_widened(self):
        cfg = CoreConfig().widened(4, 6)
        assert cfg.front_width == 4 and cfg.back_width == 6
        assert cfg.alu_pipes == 4

    def test_structure_minimums(self):
        with pytest.raises(ConfigError):
            CoreConfig(iq_size=1)


class TestIsa:
    def test_register_bounds(self):
        with pytest.raises(ValueError):
            Instruction(klass=InstrClass.ALU, srcs=(40, -1), dst=0)
        with pytest.raises(ValueError):
            Instruction(klass=InstrClass.ALU, srcs=(0, -1), dst=99)

    def test_latency_table_complete(self):
        assert set(EXEC_LATENCY) == set(InstrClass)

    def test_divider_not_pipelined(self):
        latency, pipelined = EXEC_LATENCY[InstrClass.DIV]
        assert latency > 1 and not pipelined

    def test_multiplier_pipelined(self):
        latency, pipelined = EXEC_LATENCY[InstrClass.MUL]
        assert pipelined
