"""Trace container tests."""

from repro.core.isa import Instruction, InstrClass
from repro.core.trace import Trace


def test_class_mix_and_counts():
    instrs = [Instruction(klass=InstrClass.ALU, srcs=(-1, -1), dst=1),
              Instruction(klass=InstrClass.ALU, srcs=(-1, -1), dst=2),
              Instruction(klass=InstrClass.BRANCH, srcs=(1, -1), dst=-1,
                          taken=True, pattern_key=7),
              Instruction(klass=InstrClass.LOAD, srcs=(2, -1), dst=3)]
    t = Trace("t", instrs)
    assert len(t) == 4
    mix = t.class_mix()
    assert mix[InstrClass.ALU] == 0.5
    assert t.branch_count() == 1


def test_empty_trace_mix():
    assert Trace("e").class_mix() == {}


def test_iteration_order():
    instrs = [Instruction(klass=InstrClass.ALU, srcs=(-1, -1), dst=i)
              for i in range(5)]
    t = Trace("o", instrs)
    assert [i.dst for i in t] == [0, 1, 2, 3, 4]
