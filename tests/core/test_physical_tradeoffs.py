"""Physical core model and tradeoff-sweep tests (the Fig 11/13/14 claims)."""

import pytest

from repro.core.complexity import StructureModel
from repro.core.config import CoreConfig
from repro.core.physical import core_area, core_physical, region_logic_delays
from repro.core.tradeoffs import deepen_pipeline, make_traces
from repro.errors import ConfigError


class TestStructureModel:
    def test_array_delay_grows_with_entries(self, silicon_lib, silicon_wire):
        sm = StructureModel(silicon_lib, silicon_wire)
        assert sm.array_delay(128, 32, 4) > sm.array_delay(16, 32, 4)

    def test_array_delay_grows_with_ports(self, silicon_lib, silicon_wire):
        sm = StructureModel(silicon_lib, silicon_wire)
        assert sm.array_delay(64, 32, 10) > sm.array_delay(64, 32, 2)

    def test_bypass_wire_hits_silicon_harder(self, organic_lib, organic_wire,
                                             silicon_lib, silicon_wire):
        """The Figure 13 mechanism: bypass cost per pipe, in FO4 terms."""
        sm_org = StructureModel(organic_lib, organic_wire)
        sm_sil = StructureModel(silicon_lib, silicon_wire)
        def growth(sm):
            fo4 = sm.fo4
            return (sm.bypass_delay(7, 16) - sm.bypass_delay(3, 16)) / fo4
        assert growth(sm_sil) > 4 * max(growth(sm_org), 0.01)

    def test_rename_quadratic_in_width(self, organic_lib, organic_wire):
        sm = StructureModel(organic_lib, organic_wire)
        d2 = sm.rename_delay(2, 96) - sm.rename_delay(1, 96)
        d6 = sm.rename_delay(6, 96) - sm.rename_delay(5, 96)
        assert d6 > 2 * d2

    def test_area_scales_with_ports(self, organic_lib, organic_wire):
        sm = StructureModel(organic_lib, organic_wire)
        assert sm.array_area(32, 16, 8) > sm.array_area(32, 16, 2)


class TestCorePhysical:
    def test_baseline_frequencies_in_paper_range(self, organic_lib,
                                                 organic_wire, silicon_lib,
                                                 silicon_wire):
        """Paper Section 5.3: ~200 Hz organic, ~800 MHz silicon."""
        f_org = core_physical(CoreConfig(), organic_lib, organic_wire).frequency
        f_sil = core_physical(CoreConfig(), silicon_lib, silicon_wire).frequency
        assert 50 < f_org < 800
        assert 3e8 < f_sil < 4e9

    def test_region_map_complete(self, organic_lib, organic_wire):
        logic = region_logic_delays(CoreConfig(), organic_lib, organic_wire)
        assert set(logic) == set(CoreConfig().regions)
        assert all(v > 0 for v in logic.values())

    def test_deeper_pipeline_higher_frequency(self, organic_lib,
                                              organic_wire):
        base = CoreConfig()
        deep = base
        for _ in range(4):
            deep = deepen_pipeline(deep, organic_lib, organic_wire)
        assert (core_physical(deep, organic_lib, organic_wire).frequency
                > core_physical(base, organic_lib, organic_wire).frequency)

    def test_deepen_splits_critical_region(self, organic_lib, organic_wire):
        base = CoreConfig()
        nxt = deepen_pipeline(base, organic_lib, organic_wire)
        assert nxt.depth == base.depth + 1
        changed = [r for r in base.regions
                   if nxt.regions[r] != base.regions[r]]
        assert len(changed) == 1

    def test_area_grows_with_width(self, silicon_lib, silicon_wire):
        a_small = core_area(CoreConfig(), silicon_lib, silicon_wire)
        a_big = core_area(CoreConfig().widened(4, 6), silicon_lib,
                          silicon_wire)
        assert a_big > 1.3 * a_small

    def test_unknown_block_rejected(self, organic_lib, organic_wire):
        from repro.core.physical import _block_timing
        with pytest.raises(ConfigError):
            _block_timing("fpu", 16, organic_lib, organic_wire)

    def test_critical_region_identified(self, organic_lib, organic_wire):
        phys = core_physical(CoreConfig(), organic_lib, organic_wire)
        assert phys.critical_region in CoreConfig().regions
        assert phys.period == pytest.approx(
            max(phys.region_stage_delay.values()))


class TestTraces:
    def test_make_traces_default_seven(self):
        traces = make_traces(n_instructions=256)
        assert len(traces) == 7

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            make_traces(workloads=["quake"], n_instructions=256)
