"""Batched DSE driver: grid shape, determinism, and mode equivalence."""

from __future__ import annotations

import pytest

from repro.analysis.dse import (
    DATA_WIDTHS,
    MAX_DEPTH,
    MIN_DEPTH,
    WIDTH_PAIRS,
    DsePoint,
    DseResult,
    default_combos,
    dse_sweep,
)
from repro.characterization import organic_library
from repro.core.physical import reset_structure_caches
from repro.core.tradeoffs import make_traces
from repro.errors import ConfigError
from repro.synthesis import sta
from repro.synthesis.wires import organic_wire_model


@pytest.fixture(scope="module")
def tiny_traces():
    return make_traces(workloads=["gzip"], n_instructions=300)


def _tiny_sweep(combos, traces, **kw):
    return dse_sweep(combos=combos, widths=(8,), width_pairs=((2, 4),),
                     max_depth=12, traces=traces, **kw)


@pytest.fixture()
def _fresh_structures(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL_STA", "1")
    reset_structure_caches()
    yield
    reset_structure_caches()


def test_stock_grid_shape():
    """The frozen bench grid: 1008 points before any evaluation."""
    assert len(DATA_WIDTHS) == 7
    assert len(WIDTH_PAIRS) == 4
    assert MAX_DEPTH - MIN_DEPTH + 1 == 9
    combos = default_combos()
    assert [c[0] for c in combos] == [
        "organic", "organic_no_wire", "silicon", "silicon_no_wire"]
    assert len(DATA_WIDTHS) * len(WIDTH_PAIRS) * 9 * len(combos) == 1008


def test_tiny_sweep_points(tiny_traces, _fresh_structures):
    lib, wire = organic_library(), organic_wire_model()
    result = _tiny_sweep([("organic", lib, wire)], tiny_traces)
    assert result.combos == ("organic",)
    # Depth chain runs from the baseline depth up to max_depth inclusive.
    depths = [p.config.depth for p in result.points]
    assert depths == sorted(depths)
    assert depths[-1] == 12
    assert len(result) == len(depths) == len(set(depths))
    for p in result.points:
        assert isinstance(p, DsePoint)
        assert p.combo == "organic"
        assert p.config.data_width == 8
        assert p.physical.frequency > 0
        assert p.ipc["gzip"] > 0
        assert p.mean_performance() > 0


def test_combo_accessors(tiny_traces, _fresh_structures):
    lib, wire = organic_library(), organic_wire_model()
    combos = [("organic", lib, wire),
              ("organic_no_wire", lib, wire.scaled(0.0))]
    result = _tiny_sweep(combos, tiny_traces)
    assert set(result.combos) == {"organic", "organic_no_wire"}
    assert len(result.for_combo("organic")) + \
        len(result.for_combo("organic_no_wire")) == len(result)
    with pytest.raises(ConfigError):
        result.for_combo("germanium")
    best = result.best()
    assert best.mean_performance() == max(p.mean_performance()
                                          for p in result.points)
    best_org = result.best("organic")
    assert best_org.combo == "organic"
    # Zeroed wires never perform worse at the same design point.
    by_name = {(p.config.name, p.config.depth): p
               for p in result.for_combo("organic_no_wire")}
    for p in result.for_combo("organic"):
        assert by_name[(p.config.name, p.config.depth)].physical.frequency \
            >= p.physical.frequency


def test_incremental_matches_full_retime(tiny_traces, monkeypatch):
    """The whole tiny grid, bit-identical across the feature gate."""
    lib, wire = organic_library(), organic_wire_model()
    results = {}
    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_INCREMENTAL_STA", mode)
        reset_structure_caches()
        results[mode] = dse_sweep(
            combos=[("organic", lib, wire)], widths=(8, 12),
            width_pairs=((2, 4),), max_depth=12, traces=tiny_traces)
    reset_structure_caches()
    assert len(results["1"]) == len(results["0"])
    for p1, p0 in zip(results["1"].points, results["0"].points):
        assert p1.config == p0.config
        assert p1.physical.period == p0.physical.period
        assert p1.physical.area == p0.physical.area
        assert p1.physical.critical_region == p0.physical.critical_region
        assert p1.ipc == p0.ipc
        assert p1.performance == p0.performance


def test_determinism(tiny_traces, _fresh_structures):
    lib, wire = organic_library(), organic_wire_model()
    r1 = _tiny_sweep([("organic", lib, wire)], tiny_traces)
    reset_structure_caches()
    r2 = _tiny_sweep([("organic", lib, wire)], tiny_traces)
    assert [(p.config, p.physical.period, p.ipc, p.performance)
            for p in r1.points] == \
           [(p.config, p.physical.period, p.ipc, p.performance)
            for p in r2.points]


def test_sweep_shares_structures(tiny_traces, _fresh_structures,
                                 monkeypatch):
    """The grid actually exercises the incremental machinery."""
    from repro.runtime import telemetry
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_WORKERS", "1")     # keep counters in-process
    lib, wire = organic_library(), organic_wire_model()
    telemetry.enable(True)
    try:
        dse_sweep(combos=[("organic", lib, wire)], widths=(8, 12, 16),
                  width_pairs=((2, 4),), max_depth=13, traces=tiny_traces)
        counters = telemetry.counters()
    finally:
        telemetry.enable(False)
    # Delta re-times happened, and they touched fewer gates than a full
    # pass over the same netlists would have.
    assert counters.get("sta.incremental_runs", 0) > 0
    assert counters["sta.retimed_gates"] < counters["sta.gates"]


def test_dse_cli_quick(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_INCREMENTAL_STA", "1")
    reset_structure_caches()
    sta.reset_incremental()
    from repro.__main__ import main
    assert main(["dse", "--quick", "--no-report"]) == 0
    out = capsys.readouterr().out
    assert "dse" in out and "points" in out
    reset_structure_caches()


def test_empty_result_guards():
    result = DseResult(points=[], combos=("organic",))
    assert len(result) == 0
    assert result.for_combo("organic") == []
    with pytest.raises(ValueError):
        result.best()
