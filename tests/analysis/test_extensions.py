"""Tests for the Section-7 extension studies (energy, manycore, yield)."""

import numpy as np
import pytest

from repro.analysis.energy import (
    core_energy,
    energy_depth_sweep,
    leakage_density,
    switched_capacitance_density,
)
from repro.analysis.manycore import (
    amdahl_throughput,
    best_design,
    manycore_study,
)
from repro.analysis.yield_mc import (
    compare_styles,
    noise_margin_yield,
    perturb_cell,
    vss_recovery,
)
from repro.cells.topologies import pseudo_e_inverter
from repro.core.config import CoreConfig
from repro.core.tradeoffs import make_traces
from repro.devices import PENTACENE, VariationModel
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def short_trace():
    return make_traces(workloads=["gzip"], n_instructions=4000)["gzip"]


class TestEnergy:
    def test_densities_positive(self, organic_lib, silicon_lib):
        for lib in (organic_lib, silicon_lib):
            assert leakage_density(lib) > 0
            assert switched_capacitance_density(lib) > 0

    def test_organic_core_static_dominated(self, organic_lib, organic_wire,
                                           short_trace):
        """Ratioed pseudo-E logic: static power >> dynamic power."""
        report = core_energy(CoreConfig(), organic_lib, organic_wire,
                             short_trace)
        assert report.static_fraction > 0.9

    def test_energy_report_consistent(self, organic_lib, organic_wire,
                                      short_trace):
        report = core_energy(CoreConfig(), organic_lib, organic_wire,
                             short_trace)
        assert report.total_power == pytest.approx(
            report.static_power + report.dynamic_power)
        assert report.energy_per_instruction > 0

    def test_deeper_organic_pipeline_saves_energy(self, organic_lib,
                                                  organic_wire, short_trace):
        """Static-dominated logic: higher throughput amortises the burn."""
        reports = energy_depth_sweep(organic_lib, organic_wire,
                                     max_depth=14, trace=short_trace)
        assert (reports[-1].energy_per_instruction
                < reports[0].energy_per_instruction)


class TestManycore:
    def test_amdahl_limits(self):
        assert amdahl_throughput(100.0, 1, 0.1) == pytest.approx(100.0)
        assert amdahl_throughput(100.0, 10**6, 0.1) == pytest.approx(
            1000.0, rel=0.01)

    def test_amdahl_validation(self):
        with pytest.raises(ConfigError):
            amdahl_throughput(1.0, 0, 0.1)
        with pytest.raises(ConfigError):
            amdahl_throughput(1.0, 4, 1.5)

    def test_study_fills_budget(self, organic_lib, organic_wire,
                                short_trace):
        designs = manycore_study(organic_lib, organic_wire,
                                 area_budget_factor=6.0, trace=short_trace)
        base_area = designs[0].core_area
        for d in designs:
            assert d.total_area <= 6.0 * base_area * 1.001
            assert d.n_cores >= 1

    def test_parallel_beats_single_wide_core(self, organic_lib,
                                             organic_wire, short_trace):
        """With a mostly-parallel workload, many small organic cores out-
        run one wide core — the paper's 'massive parallelism' thesis."""
        designs = manycore_study(organic_lib, organic_wire,
                                 area_budget_factor=8.0,
                                 serial_fraction=0.05, trace=short_trace)
        winner = best_design(designs)
        assert winner.n_cores > 1

    def test_serial_workload_prefers_big_core(self, organic_lib,
                                              organic_wire, short_trace):
        designs = manycore_study(organic_lib, organic_wire,
                                 area_budget_factor=8.0,
                                 serial_fraction=0.9, trace=short_trace)
        winner = best_design(designs)
        assert winner.per_core_performance == max(
            d.per_core_performance for d in designs)


class TestYield:
    def test_perturbed_cell_has_distinct_devices(self):
        cell = pseudo_e_inverter(PENTACENE)
        rng = np.random.default_rng(0)
        inst = perturb_cell(cell, VariationModel(), rng)
        vts = {d.model.vt0 for d in inst.devices}
        assert len(vts) == len(inst.devices)

    def test_yield_result_fields(self):
        cell = pseudo_e_inverter(PENTACENE)
        res = noise_margin_yield(cell, n_samples=8, seed=2)
        assert res.n_samples == 8
        assert 0.0 <= res.yield_fraction <= 1.0
        assert len(res.noise_margins) == 8

    def test_pseudo_e_yields_better_than_diode(self):
        """The robustness argument for pseudo-E, quantified."""
        results = compare_styles(n_samples=12, seed=3)
        assert (results["pseudo_e"].yield_fraction
                >= results["diode_load"].yield_fraction)
        assert results["pseudo_e"].yield_fraction > 0.8

    def test_vss_recovery_moves_vm_toward_center(self):
        vm_nominal, best_vss = vss_recovery(vt_shift=0.25)
        # A positive VT shift pushes VM off-centre; the trim must respond
        # by choosing a different VSS than an unshifted device would need.
        assert -22.0 <= best_vss <= -8.0
        assert vm_nominal != pytest.approx(2.5, abs=0.05)
