"""Analysis-layer tests: calibration registry, tables, cheap figures."""

import numpy as np
import pytest

from repro.analysis.calibration import PAPER, paper_value
from repro.analysis.figures import (
    fig3_transfer_characteristics,
    fig4_model_fits,
    fig6_inverter_comparison,
    fig8_vss_tuning,
)
from repro.analysis.tables import format_matrix, format_series, format_table


class TestCalibration:
    def test_registry_covers_all_figures(self):
        figures = {e.figure for e in PAPER.values()}
        for fig in ("Fig 3", "Fig 6d", "Fig 7d", "Fig 8b", "Fig 11",
                    "Fig 12b", "Fig 13a", "Fig 13b", "Fig 14", "Fig 15b"):
            assert any(fig in f for f in figures), fig

    def test_paper_value_lookup(self):
        assert paper_value("mobility") == 0.16
        with pytest.raises(KeyError):
            paper_value("nonsense")

    def test_matrix_shapes(self):
        m = paper_value("fig13_si_matrix")
        assert len(m) == 5 and all(len(row) == 6 for row in m)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, 4.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_matrix(self):
        m = {(3, 1): 0.5, (3, 2): 1.0, (4, 1): 0.25, (4, 2): 0.75}
        text = format_matrix(m)
        assert "3" in text and "0.50" in text

    def test_format_series_bars(self):
        text = format_series([1, 2], [0.5, 1.0], title="S")
        assert text.count("#") > 3


class TestFastFigures:
    def test_fig3_matches_paper_shape(self):
        r = fig3_transfer_characteristics()
        assert r.report_vds1.mobility_cm2 == pytest.approx(0.16, rel=0.2)
        assert r.report_vds1.threshold_v < 0 < r.report_vds10.threshold_v

    def test_fig4_message(self):
        assert fig4_model_fits().level1_much_worse

    def test_fig6_runs(self):
        r = fig6_inverter_comparison()
        assert r.diode.vdd == 15.0

    def test_fig8_series_lengths(self):
        r = fig8_vss_tuning(vss_values=np.array([-18.0, -14.0, -10.0]))
        assert len(r.vss_values) == len(r.vm_values) == 3
