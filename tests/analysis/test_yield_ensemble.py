"""Batched Monte Carlo (VTC ensembles) vs the scalar per-sample path.

The sample set is drawn up front from the seeded generator and chunks
are sized by ``REPRO_ENSEMBLE_BATCH`` alone, so the yield numbers must
be independent of both the worker count and whether batching is on.
"""

import numpy as np
import pytest

from repro.analysis.yield_mc import noise_margin_yield, perturb_cell
from repro.cells.topologies import pseudo_e_inverter
from repro.cells.vtc import compute_vtc, compute_vtc_batch
from repro.devices.pentacene import PENTACENE
from repro.devices.variation import VariationModel


@pytest.fixture(scope="module")
def base_cell():
    return pseudo_e_inverter(PENTACENE, vdd=15.0, vss=-15.0,
                             w_drive=100e-6, w_shift_load=10e-6,
                             l_shift_load=100e-6, w_up=100e-6,
                             w_down=50e-6)


def test_vtc_batch_matches_scalar(base_cell):
    rng = np.random.default_rng(7)
    cells = [perturb_cell(base_cell, VariationModel(), rng)
             for _ in range(5)]
    curves = compute_vtc_batch(cells, n_points=41)
    for cell, curve in zip(cells, curves):
        assert curve is not None
        scalar = compute_vtc(cell, n_points=41)
        np.testing.assert_allclose(curve.vout, scalar.vout,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(curve.power, scalar.power,
                                   rtol=1e-9, atol=1e-18)


def test_yield_matches_scalar_path(base_cell, monkeypatch):
    monkeypatch.setenv("REPRO_ENSEMBLE", "0")
    scalar = noise_margin_yield(base_cell, n_samples=10, seed=3)
    monkeypatch.setenv("REPRO_ENSEMBLE", "1")
    batched = noise_margin_yield(base_cell, n_samples=10, seed=3)
    assert batched.n_converged == scalar.n_converged
    np.testing.assert_allclose(batched.noise_margins,
                               scalar.noise_margins, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(batched.vm_values, scalar.vm_values,
                               rtol=1e-9, atol=1e-12)


def test_yield_deterministic_across_worker_counts(base_cell, monkeypatch):
    monkeypatch.setenv("REPRO_ENSEMBLE_BATCH", "4")
    monkeypatch.setenv("REPRO_WORKERS", "1")
    serial = noise_margin_yield(base_cell, n_samples=12, seed=5)
    monkeypatch.setenv("REPRO_WORKERS", "3")
    fanned = noise_margin_yield(base_cell, n_samples=12, seed=5)
    np.testing.assert_array_equal(serial.noise_margins,
                                  fanned.noise_margins)
    np.testing.assert_array_equal(serial.vm_values, fanned.vm_values)
    assert serial.n_converged == fanned.n_converged
