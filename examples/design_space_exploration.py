#!/usr/bin/env python3
"""Reproduce the paper's headline result end to end.

Sweeps pipeline depth (Figure 11) and superscalar width (Figure 13) on
both the organic and the reduced-silicon process and prints the optima
side by side with the paper's:  organic favours deeper pipelines and
wider superscalar back-ends, because its wires are fast relative to its
gates.

Run:  python examples/design_space_exploration.py
(Expect a few minutes: 2 processes x 7 depths x 7 benchmarks plus the
30-point width grid, all through the cycle simulator.)
"""

from repro.analysis.figures import fig11_pipeline_depth, fig13_width_performance
from repro.analysis.tables import format_matrix, format_series


def main() -> None:
    print("Sweeping pipeline depth (9..15) on both processes...")
    fig11 = fig11_pipeline_depth(max_depth=15, n_instructions=15_000)
    for process in ("silicon", "organic"):
        perf = fig11.normalized_performance(process)
        depths = sorted(perf)
        means = [sum(perf[d].values()) / len(perf[d]) for d in depths]
        print()
        print(format_series(depths, means, title=f"{process}: mean "
                            f"normalised performance vs depth"))
    print(f"\noptimal depth: silicon {fig11.optimal_depth('silicon')} "
          f"(paper 10-11), organic {fig11.optimal_depth('organic')} "
          f"(paper 14-15)")

    print("\nSweeping the width grid (back-end 3-7 x front-end 1-6)...")
    fig13 = fig13_width_performance(n_instructions=12_000)
    for process, matrix in (("silicon", fig13.silicon),
                            ("organic", fig13.organic)):
        print()
        print(format_matrix(matrix,
                            title=f"{process}: normalised performance"))
    sil = fig13.optimum("silicon")
    org = fig13.optimum("organic")
    print(f"\noptima (back, front): silicon {sil} (paper (4,2)), "
          f"organic {org} (paper (7,2))")
    print(f"organic back-end is {org[0] - sil[0]} pipes wider "
          f"(paper: 'three execution pipes wider')")


if __name__ == "__main__":
    main()
