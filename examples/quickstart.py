#!/usr/bin/env python3
"""Quickstart: the full flow in one script, bottom to top.

1. Synthesise a probe-station measurement of a pentacene OTFT and extract
   its DC figures of merit (paper Figure 3).
2. Fit level 1 / level 61 device models (Figure 4).
3. Build a pseudo-E inverter and analyse its VTC (Figures 5-6).
4. Load the characterised organic + silicon libraries (Section 4.4).
5. Evaluate the baseline 9-stage core on both processes (Section 5.3).

Run:  python examples/quickstart.py
The first run characterises the cell libraries (a few minutes of
transistor-level transients); later runs load them from the disk cache.
"""

from repro.analysis.tables import format_table
from repro.cells.topologies import pseudo_e_inverter
from repro.cells.vtc import analyze_inverter
from repro.characterization import organic_library, silicon_library
from repro.core.config import CoreConfig
from repro.core.physical import core_physical
from repro.core.superscalar import simulate
from repro.core.workloads import WORKLOADS, generate_trace
from repro.devices import PENTACENE, measured_transfer_curve
from repro.devices.extraction import characterize_curve, fit_level1, fit_level61
from repro.devices.pentacene import PENTACENE_CI
from repro.synthesis.wires import organic_wire_model, silicon_wire_model
from repro.units import engineering


def main() -> None:
    # -- 1. Device measurement + extraction ---------------------------------
    print("=" * 72)
    print("1. Pentacene OTFT measurement (synthetic probe-station sweep)")
    curve = measured_transfer_curve(vds=-1.0)
    report = characterize_curve(curve, PENTACENE_CI)
    print(format_table(
        ["quantity", "measured", "paper"],
        [["linear mobility (cm^2/Vs)", f"{report.mobility_cm2:.3f}", 0.16],
         ["subthreshold slope (mV/dec)",
          f"{report.subthreshold_slope_mv_dec:.0f}", 350],
         ["on/off ratio", f"{report.on_off_ratio:.1e}", "1e6"],
         ["VT @ VDS=-1V (V)", f"{report.threshold_v:.2f}", -1.3]]))

    # -- 2. Device model fitting ---------------------------------------------
    print("\n2. SPICE model fits (level 1 vs level 61)")
    l1 = fit_level1(curve, PENTACENE_CI)
    l61 = fit_level61(curve, PENTACENE_CI)
    print(f"   level 1  RMS log-error: {l1.rms_log_error:.2f} decades "
          f"(misses subthreshold conduction and leakage)")
    print(f"   level 61 RMS log-error: {l61.rms_log_error:.3f} decades")

    # -- 3. Pseudo-E inverter --------------------------------------------------
    print("\n3. Pseudo-E inverter at the library point (VDD=5V, VSS=-15V)")
    inv = pseudo_e_inverter(PENTACENE)
    a = analyze_inverter(inv)
    print(f"   VM={a.vm:.2f} V  gain={a.max_gain:.2f}  "
          f"NM(MEC)={a.nm_mec:.2f} V  VOH={a.voh:.2f} V  "
          f"static power={a.static_power_low * 1e6:.1f} uW")

    # -- 4. Characterised libraries ---------------------------------------------
    print("\n4. Characterised 6-cell libraries")
    org, sil = organic_library(), silicon_library()
    for lib in (org, sil):
        print(f"   {lib.name:24s} FO4 = "
              f"{engineering(lib.inverter_fo4_delay(), 's'):>9s}   "
              f"DFF setup = {engineering(lib.dff.setup_time, 's')}")

    # -- 5. Baseline core on both processes ---------------------------------------
    print("\n5. Baseline 9-stage single-issue OOO core (AnyCore baseline)")
    config = CoreConfig()
    trace = generate_trace(WORKLOADS["dhrystone"], 20_000)
    rows = []
    for lib, wire in ((org, organic_wire_model()),
                      (sil, silicon_wire_model())):
        phys = core_physical(config, lib, wire)
        ipc = simulate(config, trace).ipc
        rows.append([lib.process, engineering(phys.frequency, "Hz"),
                     f"{ipc:.2f}",
                     engineering(ipc * phys.frequency, "inst/s"),
                     phys.critical_region])
    print(format_table(
        ["process", "frequency", "IPC (dhrystone)", "performance",
         "critical stage"], rows))
    print("\npaper reference: ~200 Hz organic, ~800 MHz silicon baseline")


if __name__ == "__main__":
    main()
