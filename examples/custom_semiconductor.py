#!/usr/bin/env python3
"""Retarget the whole flow to a different organic semiconductor.

The paper (Sections 5.3 and 6.2): "Opportunities also exist to improve
the performance of OTFTs by [...] using higher-performance organic
semiconductors such as DNTT, which has roughly 10x the mobility of the
archetypal pentacene used here", and the framework "can be generalized to
other organic semiconductors."

This script does exactly that: it swaps the device model for a DNTT-class
transistor, re-characterises the standard-cell library through the same
SPICE flow, and re-runs the core-level depth analysis to see which
architectural conclusions survive the material change (spoiler: the
deep-pipeline preference does — it comes from the wire/gate ratio, which
mobility scaling does not change).

Run:  python examples/custom_semiconductor.py
(First run characterises the DNTT library: a few minutes.)
"""

from repro.analysis.tables import format_table
from repro.characterization import organic_library
from repro.core.config import CoreConfig
from repro.core.physical import core_physical
from repro.core.superscalar import simulate
from repro.core.tradeoffs import depth_sweep, make_traces
from repro.devices.materials import dntt_model
from repro.synthesis.wires import organic_wire_model
from repro.units import engineering


def main() -> None:
    wire = organic_wire_model()
    traces = make_traces(workloads=["dhrystone", "gzip", "mcf"],
                         n_instructions=12_000)

    print("Characterising pentacene and DNTT libraries "
          "(cached after the first run)...")
    pentacene_lib = organic_library()
    dntt_lib = organic_library(model=dntt_model())

    rows = []
    for lib in (pentacene_lib, dntt_lib):
        phys = core_physical(CoreConfig(), lib, wire)
        rows.append([lib.name,
                     engineering(lib.inverter_fo4_delay(), "s"),
                     engineering(phys.frequency, "Hz")])
    print(format_table(["library", "FO4 delay", "baseline core frequency"],
                       rows, title="Material comparison"))

    speedup = (core_physical(CoreConfig(), dntt_lib, wire).frequency
               / core_physical(CoreConfig(), pentacene_lib, wire).frequency)
    print(f"\nDNTT baseline speedup over pentacene: {speedup:.1f}x "
          f"(paper cites ~10x mobility; circuit-level gain tracks the "
          f"drive-current gain)")

    print("\nDoes the deep-pipeline preference survive the material change?")
    for lib in (pentacene_lib, dntt_lib):
        points = depth_sweep(lib, wire, max_depth=15, traces=traces)
        base = points[0]
        def mean_rel(p):
            return sum(v / base.performance[k]
                       for k, v in p.performance.items()) / len(p.performance)
        best = max(points, key=mean_rel)
        print(f"   {lib.name:28s} optimal depth = {best.depth} "
              f"({mean_rel(best):.2f}x the 9-stage baseline)")
    print("\nBoth organic materials favour deep pipelines: the preference "
          "comes from the wire-to-gate delay ratio, not from absolute "
          "mobility.")


if __name__ == "__main__":
    main()
