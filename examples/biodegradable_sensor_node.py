#!/usr/bin/env python3
"""Design a processor for a biodegradable environmental sensor node.

The paper's motivating application (Sections 1-2): environmental sensors
that biodegrade instead of becoming e-waste.  This script plays the role
of the sensor-node architect: given a die-area budget and a duty-cycled
sensing workload, pick the organic core configuration that maximises
throughput per area — and check the battery maths (static power dominates
ratioed organic logic, so the energy story is as important as speed).

Run:  python examples/biodegradable_sensor_node.py
"""

from repro.analysis.energy import core_energy
from repro.analysis.tables import format_table
from repro.characterization import organic_library
from repro.core.config import CoreConfig
from repro.core.physical import core_physical
from repro.core.superscalar import simulate
from repro.core.tradeoffs import deepen_pipeline, make_traces
from repro.synthesis.wires import organic_wire_model
from repro.units import engineering

#: The sensor firmware looks like a small integer kernel: mostly ALU and
#: load/store with very predictable control — dhrystone is the stand-in.
WORKLOAD = "dhrystone"

#: Area budget: organic electronics are printed on large cheap foils —
#: that is the technology's point.  Budget: half of an A4-class
#: biodegradable sheet (croissant-sized cores are fine when the substrate
#: costs cents and composts afterwards).
AREA_BUDGET_M2 = 0.030


def candidate_configs(library, wire) -> list[CoreConfig]:
    """Design points a sensor architect would shortlist."""
    base = CoreConfig()
    deep = base
    for _ in range(5):
        deep = deepen_pipeline(deep, library, wire)
    wide = base.widened(2, 5)
    deep_wide = wide
    for _ in range(5):
        deep_wide = deepen_pipeline(deep_wide, library, wire)
    return [base, deep, wide, deep_wide]


def main() -> None:
    library = organic_library()
    wire = organic_wire_model()
    trace = make_traces(workloads=[WORKLOAD], n_instructions=20_000)[WORKLOAD]

    rows = []
    best = None
    for config in candidate_configs(library, wire):
        phys = core_physical(config, library, wire)
        if phys.area > AREA_BUDGET_M2:
            rows.append([config.name, config.depth,
                         f"{config.front_width}x{config.back_width}",
                         f"{phys.area * 1e6:.0f}", "over budget", "-", "-",
                         "-"])
            continue
        energy = core_energy(config, library, wire, trace)
        perf = energy.ipc * phys.frequency
        rows.append([
            config.name, config.depth,
            f"{config.front_width}x{config.back_width}",
            f"{phys.area * 1e6:.0f}",
            engineering(phys.frequency, "Hz"),
            f"{energy.ipc:.2f}",
            engineering(perf, "inst/s"),
            engineering(energy.energy_per_instruction, "J"),
        ])
        if best is None or perf > best[1]:
            best = (config, perf, energy)

    print(format_table(
        ["config", "depth", "width", "area (mm^2)", "freq", "IPC",
         "performance", "energy/inst"],
        rows,
        title=f"Sensor-node design points (budget "
              f"{AREA_BUDGET_M2 * 1e6:.0f} mm^2, workload {WORKLOAD})"))

    config, perf, energy = best
    print(f"\nSelected: {config.name} — {engineering(perf, 'inst/s')} at "
          f"{engineering(energy.total_power, 'W')} total power "
          f"({energy.static_fraction * 100:.0f}% static).")

    # Battery estimate: a printed biodegradable battery holds ~1 mAh at
    # ~1.5 V usable (paper-class transient batteries) ~ 5.4 J.
    battery_j = 5.4
    lifetime_s = battery_j / energy.total_power
    samples = lifetime_s * perf
    print(f"On a ~{battery_j:.1f} J printed biodegradable battery that buys "
          f"{engineering(lifetime_s, 's')} of continuous compute "
          f"(~{samples:.0f} instructions).  Because the power is ~100% "
          f"static, the real deployment knob is rail gating: at a 0.1% "
          f"sensing duty cycle the node lives "
          f"~{lifetime_s / 0.001 / 86400:.0f} days — and then composts.")


if __name__ == "__main__":
    main()
