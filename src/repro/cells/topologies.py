"""Transistor-level standard-cell topologies (paper Section 4.3).

Organic cells are unipolar p-type.  A p-type transistor conducts when its
gate is low relative to its source, so networks of p-FETs with sources
toward VDD form *inverting pull-up* logic; the three inverter styles differ
in how the pull-down side is realised:

- **diode-load** (Figure 5a): pull-down is a diode-connected p-FET to
  ground — simplest, but ratioed with gain barely above 1;
- **biased-load** (Figure 5b): pull-down gate is tied to a negative third
  rail VSS, adding a tuning knob for the switching threshold;
- **pseudo-E** (Figure 5c, pseudo-CMOS after Huang et al.): a two-stage
  design whose first stage level-shifts the input below ground so the
  output-stage pull-down is gated *by the input's complement*, letting the
  output reach full VDD and roughly tripling gain and noise margin.

Silicon cells use complementary CMOS topologies.  A NAND-based D-flip-flop
with preset and clear (the classic three-SR-latch 7474 network) is built
compositionally from the gate cells, so it exists for both processes.

Everything here produces *designs* (device lists + metadata), which the
characterisation harness instantiates into :class:`repro.spice.Circuit`
objects together with stimulus sources and loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CircuitError
from repro.spice.elements import Fet, FetModel
from repro.spice.netlist import Circuit

#: Default organic channel length: shadow-mask resolution limit, metres.
ORGANIC_L = 20e-6

#: Default silicon channel length (45 nm node), metres.
SILICON_L = 45e-9


@dataclass(frozen=True)
class DeviceSpec:
    """One transistor inside a cell: terminals are cell-local node names."""

    name: str
    drain: str
    gate: str
    source: str
    model: FetModel
    w: float
    l: float


@dataclass(frozen=True)
class CellDesign:
    """A flat transistor-level cell.

    ``rails`` maps rail node names to their supply voltages (e.g.
    ``{"vdd": 5.0, "vss": -15.0, "gnd": 0.0}``).  ``function`` is a Python
    boolean expression over the input pin names, used for logic-level
    evaluation and characterisation stimulus generation; sequential
    composite cells leave it empty.
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    devices: tuple[DeviceSpec, ...]
    rails: dict[str, float]
    style: str
    function: str = ""

    def instantiate(self, circuit: Circuit, node_map: dict[str, str],
                    prefix: str = "") -> None:
        """Add this cell's transistors to *circuit*.

        ``node_map`` maps cell-local pin/rail names to circuit node names;
        unmapped internal nodes are prefixed to stay unique.
        """
        def resolve(node: str) -> str:
            if node in node_map:
                return node_map[node]
            return f"{prefix}{self.name}.{node}"

        for dev in self.devices:
            circuit.add(Fet(f"{prefix}{self.name}.{dev.name}",
                            resolve(dev.drain), resolve(dev.gate),
                            resolve(dev.source), dev.model, dev.w, dev.l))

    def input_capacitance(self, pin: str) -> float:
        """Total gate capacitance presented at *pin* (fanout load model)."""
        if pin not in self.inputs:
            raise CircuitError(f"cell {self.name!r} has no input {pin!r}")
        return sum(d.model.gate_capacitance(d.w, d.l)
                   for d in self.devices if d.gate == pin)

    def evaluate(self, **values: bool) -> bool:
        """Logic value of the output for the given input values."""
        if not self.function:
            raise CircuitError(f"cell {self.name!r} has no combinational function")
        missing = set(self.inputs) - set(values)
        if missing:
            raise CircuitError(f"missing inputs for {self.name!r}: {sorted(missing)}")
        env = {k: bool(v) for k, v in values.items()}
        return bool(eval(self.function, {"__builtins__": {}}, env))  # noqa: S307

    @property
    def transistor_count(self) -> int:
        return len(self.devices)

    def total_gate_width(self) -> float:
        return sum(d.w for d in self.devices)


@dataclass(frozen=True)
class CompositeCell:
    """A cell built from sub-cells (the NAND-based flip-flop).

    ``subcells`` is a list of ``(instance_name, design, binding)`` where
    *binding* maps each sub-cell pin/rail to a composite-local node name.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    subcells: tuple[tuple[str, CellDesign, dict[str, str]], ...]
    rails: dict[str, float]
    style: str

    def instantiate(self, circuit: Circuit, node_map: dict[str, str],
                    prefix: str = "") -> None:
        for inst_name, design, binding in self.subcells:
            # Compose: sub-cell local -> composite local -> circuit node.
            resolved = {}
            for local, comp in binding.items():
                resolved[local] = node_map.get(
                    comp, f"{prefix}{self.name}.{comp}")
            design.instantiate(circuit, resolved,
                               prefix=f"{prefix}{self.name}.{inst_name}.")

    def input_capacitance(self, pin: str) -> float:
        if pin not in self.inputs:
            raise CircuitError(f"cell {self.name!r} has no input {pin!r}")
        total = 0.0
        for _, design, binding in self.subcells:
            for local, comp in binding.items():
                if comp == pin and local in design.inputs:
                    total += design.input_capacitance(local)
        return total

    @property
    def transistor_count(self) -> int:
        return sum(d.transistor_count for _, d, _ in self.subcells)

    def total_gate_width(self) -> float:
        return sum(d.total_gate_width() for _, d, _ in self.subcells)


# ---------------------------------------------------------------------------
# Organic (unipolar p-type) cells
# ---------------------------------------------------------------------------

def diode_load_inverter(model: FetModel, w_drive: float = 200e-6,
                        w_load: float = 30e-6, l: float = ORGANIC_L,
                        vdd: float = 15.0) -> CellDesign:
    """Figure 5(a): drive p-FET to VDD, diode-connected load to ground."""
    _require_ptype(model)
    return CellDesign(
        name="inv_diode",
        inputs=("a",),
        output="out",
        devices=(
            DeviceSpec("m_drive", "out", "a", "vdd", model, w_drive, l),
            DeviceSpec("m_load", "gnd", "gnd", "out", model, w_load, l),
        ),
        rails={"vdd": vdd, "gnd": 0.0},
        style="diode_load",
        function="not a",
    )


def biased_load_inverter(model: FetModel, w_drive: float = 200e-6,
                         w_load: float = 30e-6, l: float = ORGANIC_L,
                         vdd: float = 15.0, vss: float = -5.0) -> CellDesign:
    """Figure 5(b): the load gate is tied to a negative bias rail VSS."""
    _require_ptype(model)
    return CellDesign(
        name="inv_biased",
        inputs=("a",),
        output="out",
        devices=(
            DeviceSpec("m_drive", "out", "a", "vdd", model, w_drive, l),
            DeviceSpec("m_load", "gnd", "vss", "out", model, w_load, l),
        ),
        rails={"vdd": vdd, "gnd": 0.0, "vss": vss},
        style="biased_load",
        function="not a",
    )


def pseudo_e_inverter(model: FetModel, w_drive: float = 100e-6,
                      w_shift_load: float = 10e-6, w_up: float = 100e-6,
                      w_down: float = 50e-6, l: float = ORGANIC_L,
                      l_shift_load: float = 100e-6,
                      vdd: float = 5.0, vss: float = -15.0,
                      name: str = "inv") -> CellDesign:
    """Figure 5(c): pseudo-CMOS-E inverter.

    Stage 1 (m_shift_drive + m_shift_load) level-shifts: node x follows the
    input but swings down to VSS when the input is high.  Stage 2's
    pull-down (m_down) is gated by x, so it is driven hard on exactly when
    the pull-up (m_up) is off — the output reaches both rails.

    The shifter load must be very weak (W/L ~ 0.1); since shadow-mask
    patterning bounds the minimum width, weakness comes from a long
    channel ``l_shift_load`` rather than a narrow one.
    """
    _require_ptype(model)
    return CellDesign(
        name=name,
        inputs=("a",),
        output="out",
        devices=(
            DeviceSpec("m_shift_drive", "x", "a", "vdd", model, w_drive, l),
            DeviceSpec("m_shift_load", "vss", "vss", "x", model,
                       w_shift_load, l_shift_load),
            DeviceSpec("m_up", "out", "a", "vdd", model, w_up, l),
            DeviceSpec("m_down", "gnd", "x", "out", model, w_down, l),
        ),
        rails={"vdd": vdd, "gnd": 0.0, "vss": vss},
        style="pseudo_e",
        function="not a",
    )


_INPUT_NAMES = ("a", "b", "c", "d")


def pseudo_e_nand(model: FetModel, n_inputs: int = 2, w_drive: float = 100e-6,
                  w_shift_load: float = 10e-6, w_up: float = 100e-6,
                  w_down: float = 50e-6, l: float = ORGANIC_L,
                  l_shift_load: float = 100e-6,
                  vdd: float = 5.0, vss: float = -15.0) -> CellDesign:
    """Figure 9(a): pseudo-E NAND with parallel pull-up networks.

    Both the level-shifter stage and the output stage use one parallel
    p-FET per input; the shifter node x falls to VSS only when *all*
    inputs are high, turning on the output pull-down.
    """
    _require_ptype(model)
    inputs = _INPUT_NAMES[:n_inputs]
    if n_inputs < 2 or n_inputs > len(_INPUT_NAMES):
        raise CircuitError(f"pseudo-E NAND supports 2..4 inputs, got {n_inputs}")
    devices: list[DeviceSpec] = []
    for i, pin in enumerate(inputs):
        devices.append(DeviceSpec(f"m_shift_{pin}", "x", pin, "vdd",
                                  model, w_drive, l))
        devices.append(DeviceSpec(f"m_up_{pin}", "out", pin, "vdd",
                                  model, w_up, l))
    devices.append(DeviceSpec("m_shift_load", "vss", "vss", "x",
                              model, w_shift_load, l_shift_load))
    devices.append(DeviceSpec("m_down", "gnd", "x", "out", model, w_down, l))
    return CellDesign(
        name=f"nand{n_inputs}",
        inputs=inputs,
        output="out",
        devices=tuple(devices),
        rails={"vdd": vdd, "gnd": 0.0, "vss": vss},
        style="pseudo_e",
        function="not (" + " and ".join(inputs) + ")",
    )


def pseudo_e_nor(model: FetModel, n_inputs: int = 2, w_drive: float = 100e-6,
                 w_shift_load: float = 10e-6, w_up: float = 100e-6,
                 w_down: float = 50e-6, l: float = ORGANIC_L,
                 l_shift_load: float = 100e-6,
                 vdd: float = 5.0, vss: float = -15.0) -> CellDesign:
    """Figure 9(b): pseudo-E NOR with series pull-up networks.

    Series stacks are widened by the stack depth to keep drive strength
    comparable (standard practice, applied per-process by the sizing
    explorer).
    """
    _require_ptype(model)
    inputs = _INPUT_NAMES[:n_inputs]
    if n_inputs < 2 or n_inputs > len(_INPUT_NAMES):
        raise CircuitError(f"pseudo-E NOR supports 2..4 inputs, got {n_inputs}")
    w_drive_s = w_drive * n_inputs
    w_up_s = w_up * n_inputs
    devices: list[DeviceSpec] = []
    # Series chain for the shifter stage: vdd -> x through all inputs.
    prev = "vdd"
    for i, pin in enumerate(inputs):
        nxt = "x" if i == n_inputs - 1 else f"sx{i}"
        devices.append(DeviceSpec(f"m_shift_{pin}", nxt, pin, prev,
                                  model, w_drive_s, l))
        prev = nxt
    # Series chain for the output stage: vdd -> out.
    prev = "vdd"
    for i, pin in enumerate(inputs):
        nxt = "out" if i == n_inputs - 1 else f"sy{i}"
        devices.append(DeviceSpec(f"m_up_{pin}", nxt, pin, prev,
                                  model, w_up_s, l))
        prev = nxt
    devices.append(DeviceSpec("m_shift_load", "vss", "vss", "x",
                              model, w_shift_load, l_shift_load))
    devices.append(DeviceSpec("m_down", "gnd", "x", "out", model, w_down, l))
    return CellDesign(
        name=f"nor{n_inputs}",
        inputs=inputs,
        output="out",
        devices=tuple(devices),
        rails={"vdd": vdd, "gnd": 0.0, "vss": vss},
        style="pseudo_e",
        function="not (" + " or ".join(inputs) + ")",
    )


# ---------------------------------------------------------------------------
# Silicon (complementary CMOS) cells
# ---------------------------------------------------------------------------

def cmos_inverter(nmos: FetModel, pmos: FetModel, w_n: float = 0.5e-6,
                  w_p: float = 1.0e-6, l: float = SILICON_L,
                  vdd: float = 1.1, name: str = "inv") -> CellDesign:
    """Standard complementary inverter."""
    _require_ntype(nmos)
    _require_ptype(pmos)
    return CellDesign(
        name=name,
        inputs=("a",),
        output="out",
        devices=(
            DeviceSpec("m_p", "out", "a", "vdd", pmos, w_p, l),
            DeviceSpec("m_n", "out", "a", "gnd", nmos, w_n, l),
        ),
        rails={"vdd": vdd, "gnd": 0.0},
        style="cmos",
        function="not a",
    )


def cmos_nand(nmos: FetModel, pmos: FetModel, n_inputs: int = 2,
              w_n: float = 0.5e-6, w_p: float = 1.0e-6,
              l: float = SILICON_L, vdd: float = 1.1) -> CellDesign:
    """CMOS NAND: series NMOS (upsized by stack depth), parallel PMOS."""
    _require_ntype(nmos)
    _require_ptype(pmos)
    inputs = _INPUT_NAMES[:n_inputs]
    if n_inputs < 2 or n_inputs > len(_INPUT_NAMES):
        raise CircuitError(f"CMOS NAND supports 2..4 inputs, got {n_inputs}")
    devices: list[DeviceSpec] = []
    for pin in inputs:
        devices.append(DeviceSpec(f"m_p_{pin}", "out", pin, "vdd",
                                  pmos, w_p, l))
    prev = "out"
    w_n_s = w_n * n_inputs
    for i, pin in enumerate(inputs):
        nxt = "gnd" if i == n_inputs - 1 else f"sn{i}"
        devices.append(DeviceSpec(f"m_n_{pin}", prev, pin, nxt,
                                  nmos, w_n_s, l))
        prev = nxt
    return CellDesign(
        name=f"nand{n_inputs}",
        inputs=inputs,
        output="out",
        devices=tuple(devices),
        rails={"vdd": vdd, "gnd": 0.0},
        style="cmos",
        function="not (" + " and ".join(inputs) + ")",
    )


def cmos_nor(nmos: FetModel, pmos: FetModel, n_inputs: int = 2,
             w_n: float = 0.5e-6, w_p: float = 1.0e-6,
             l: float = SILICON_L, vdd: float = 1.1) -> CellDesign:
    """CMOS NOR: parallel NMOS, series PMOS (upsized by stack depth)."""
    _require_ntype(nmos)
    _require_ptype(pmos)
    inputs = _INPUT_NAMES[:n_inputs]
    if n_inputs < 2 or n_inputs > len(_INPUT_NAMES):
        raise CircuitError(f"CMOS NOR supports 2..4 inputs, got {n_inputs}")
    devices: list[DeviceSpec] = []
    prev = "vdd"
    w_p_s = w_p * n_inputs
    for i, pin in enumerate(inputs):
        nxt = "out" if i == n_inputs - 1 else f"sp{i}"
        devices.append(DeviceSpec(f"m_p_{pin}", nxt, pin, prev,
                                  pmos, w_p_s, l))
        prev = nxt
    for pin in inputs:
        devices.append(DeviceSpec(f"m_n_{pin}", "out", pin, "gnd",
                                  nmos, w_n, l))
    return CellDesign(
        name=f"nor{n_inputs}",
        inputs=inputs,
        output="out",
        devices=tuple(devices),
        rails={"vdd": vdd, "gnd": 0.0},
        style="cmos",
        function="not (" + " or ".join(inputs) + ")",
    )


# ---------------------------------------------------------------------------
# The NAND-based D-flip-flop with preset and clear (both processes)
# ---------------------------------------------------------------------------

def nand_dff(nand2: CellDesign, nand3: CellDesign, name: str = "dff"
             ) -> CompositeCell:
    """Positive-edge DFF with active-low preset/clear (7474 topology).

    Three cross-coupled SR latches built from the process's own NAND2 and
    NAND3 cells: two steering latches driven by clk/d and one output latch.
    Pin names: ``d``, ``clk``, ``pre_n``, ``clr_n`` -> ``q``, ``q_n``.
    """
    if nand2.rails != nand3.rails:
        raise CircuitError("dff sub-cells must share rail definitions")
    rails = dict(nand2.rails)
    rail_bind = {r: r for r in rails}

    def bind3(a: str, b: str, c: str, out: str) -> dict[str, str]:
        return {"a": a, "b": b, "c": c, "out": out, **rail_bind}

    subcells = (
        # Steering latches (classic 7474 gate network).
        ("g1", nand3, bind3("pre_n", "n4", "n2", "n1")),
        ("g2", nand3, bind3("n1", "clr_n", "clk", "n2")),
        ("g3", nand3, bind3("n2", "clk", "n4", "n3")),
        ("g4", nand3, bind3("n3", "clr_n", "d", "n4")),
        # Output latch.
        ("g5", nand3, bind3("pre_n", "n2", "q_n", "q")),
        ("g6", nand3, bind3("q", "n3", "clr_n", "q_n")),
    )
    return CompositeCell(
        name=name,
        inputs=("d", "clk", "pre_n", "clr_n"),
        outputs=("q", "q_n"),
        subcells=subcells,
        rails=rails,
        style=nand2.style,
    )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _require_ptype(model: FetModel) -> None:
    if model.polarity != -1:
        raise CircuitError("organic/pull-up cells require a p-type model")


def _require_ntype(model: FetModel) -> None:
    if model.polarity != +1:
        raise CircuitError("CMOS pull-down network requires an n-type model")


def build_dc_testbench(cell: CellDesign, input_values: dict[str, float],
                       load_cap: float = 0.0) -> Circuit:
    """Cell + DC input sources (+ optional load) ready for a DC solve.

    Input pins are driven by voltage sources named ``v_<pin>``; rails by
    sources named ``v_<rail>``.  The output node is ``out``.
    """
    from repro.spice.elements import Capacitor, VoltageSource

    ckt = Circuit(f"tb_{cell.name}")
    node_map = {pin: pin for pin in cell.inputs}
    node_map["out"] = "out"
    for rail, volts in cell.rails.items():
        if volts == 0.0:
            node_map[rail] = "0"
        else:
            node_map[rail] = rail
            ckt.add(VoltageSource(f"v_{rail}", rail, "0", volts))
    for pin in cell.inputs:
        ckt.add(VoltageSource(f"v_{pin}", pin, "0",
                              input_values.get(pin, 0.0)))
    cell.instantiate(ckt, node_map)
    if load_cap > 0.0:
        ckt.add(Capacitor("c_load", "out", "0", load_cap))
    return ckt
