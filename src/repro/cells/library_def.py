"""The 6-cell library definitions for both processes (paper Section 5.1).

"The proposed standard cell library consists of 6 basic logic cells which
can be used to cover all required logic functions" — INV, NAND2, NAND3,
NOR2, NOR3, and a D-flip-flop with preset and clear.  The silicon library
is "a trimmed 6 gate TSMC 45 nm standard cell library": here, CMOS cells
with the same six functions, so the comparison removes library-richness
effects exactly as the paper's reduction does.

Cell areas follow a simple layout model: per-transistor active area plus
routing/contact margins, times a style factor (the unipolar pseudo-E cells
route three power rails — VDD, GND and the negative VSS — which costs
extra track height, as in the paper's Figure 5 layouts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.topologies import (
    CellDesign,
    CompositeCell,
    ORGANIC_L,
    SILICON_L,
    cmos_inverter,
    cmos_nand,
    cmos_nor,
    nand_dff,
    pseudo_e_inverter,
    pseudo_e_nand,
    pseudo_e_nor,
)
from repro.devices.pentacene import ORGANIC_VDD, ORGANIC_VSS, PENTACENE
from repro.devices.silicon import SILICON_VDD, silicon_nmos_45, silicon_pmos_45
from repro.errors import LibraryError
from repro.spice.elements import FetModel

#: Organic pseudo-E sizes selected by repro.cells.sizing (utility-optimal
#: over the default grid; see tests/cells/test_sizing.py which re-derives
#: the preference ordering on a reduced grid).
ORGANIC_SIZES = {
    "w_drive": 100e-6,
    # Weak shifter load, W/L = 0.1, realised as a long channel because
    # shadow-mask patterning bounds the minimum width.
    "w_shift_load": 10e-6,
    "l_shift_load": 100e-6,
    "w_up": 100e-6,
    "w_down": 50e-6,
}

#: Silicon sizes: minimum-pitch NMOS with 2x PMOS (mobility ratio).
SILICON_SIZES = {
    "w_n": 0.5e-6,
    "w_p": 1.0e-6,
}


@dataclass(frozen=True)
class AreaModel:
    """Cell area from transistor geometry.

    ``area = overhead * sum((w + 2 margin) * (l + 2 margin))`` — margins
    cover contacts and routing pitch; *overhead* covers rails and spacing
    (higher for the three-rail unipolar style).
    """

    margin: float
    overhead: float

    def cell_area(self, cell: CellDesign | CompositeCell) -> float:
        if isinstance(cell, CompositeCell):
            return sum(self.cell_area(d) for _, d, _ in cell.subcells)
        return self.overhead * sum(
            (d.w + 2 * self.margin) * (d.l + 2 * self.margin)
            for d in cell.devices)


ORGANIC_AREA_MODEL = AreaModel(margin=20e-6, overhead=1.6)
SILICON_AREA_MODEL = AreaModel(margin=60e-9, overhead=1.3)


@dataclass(frozen=True)
class CellLibraryDefinition:
    """All six cell designs of one process plus shared metadata."""

    name: str
    process: str                 # 'organic' | 'silicon'
    vdd: float
    cells: dict[str, CellDesign]
    dff: CompositeCell
    area_model: AreaModel

    #: The canonical combinational cell names, in characterisation order.
    COMBINATIONAL = ("inv", "nand2", "nand3", "nor2", "nor3")

    def cell(self, name: str) -> CellDesign:
        try:
            return self.cells[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r} has no cell {name!r}; "
                f"available: {sorted(self.cells)}") from None

    def cell_area(self, name: str) -> float:
        if name == "dff":
            return self.area_model.cell_area(self.dff)
        return self.area_model.cell_area(self.cell(name))

    def input_capacitance(self, cell_name: str, pin: str) -> float:
        if cell_name == "dff":
            return self.dff.input_capacitance(pin)
        return self.cell(cell_name).input_capacitance(pin)


def organic_library_definition(model: FetModel = PENTACENE,
                               vdd: float = ORGANIC_VDD,
                               vss: float = ORGANIC_VSS,
                               sizes: dict[str, float] | None = None,
                               l: float = ORGANIC_L) -> CellLibraryDefinition:
    """The pentacene pseudo-E library at VDD = 5 V, VSS = -15 V.

    ``model`` can be swapped (e.g. :func:`repro.devices.materials.dntt_model`)
    to retarget the whole flow to another organic semiconductor.
    """
    s = dict(ORGANIC_SIZES)
    if sizes:
        s.update(sizes)
    inv = pseudo_e_inverter(model, vdd=vdd, vss=vss, l=l, **s)
    cells = {
        "inv": inv,
        "nand2": pseudo_e_nand(model, 2, vdd=vdd, vss=vss, l=l, **s),
        "nand3": pseudo_e_nand(model, 3, vdd=vdd, vss=vss, l=l, **s),
        "nor2": pseudo_e_nor(model, 2, vdd=vdd, vss=vss, l=l, **s),
        "nor3": pseudo_e_nor(model, 3, vdd=vdd, vss=vss, l=l, **s),
    }
    dff = nand_dff(cells["nand2"], cells["nand3"])
    return CellLibraryDefinition(
        name=f"organic_{getattr(model, 'name', 'otft')}",
        process="organic",
        vdd=vdd,
        cells=cells,
        dff=dff,
        area_model=ORGANIC_AREA_MODEL,
    )


def silicon_library_definition(vdd: float = SILICON_VDD,
                               sizes: dict[str, float] | None = None,
                               l: float = SILICON_L) -> CellLibraryDefinition:
    """The reduced 45 nm CMOS library (same six functions)."""
    nmos = silicon_nmos_45()
    pmos = silicon_pmos_45()
    s = dict(SILICON_SIZES)
    if sizes:
        s.update(sizes)
    cells = {
        "inv": cmos_inverter(nmos, pmos, vdd=vdd, l=l, **s),
        "nand2": cmos_nand(nmos, pmos, 2, vdd=vdd, l=l, **s),
        "nand3": cmos_nand(nmos, pmos, 3, vdd=vdd, l=l, **s),
        "nor2": cmos_nor(nmos, pmos, 2, vdd=vdd, l=l, **s),
        "nor3": cmos_nor(nmos, pmos, 3, vdd=vdd, l=l, **s),
    }
    dff = nand_dff(cells["nand2"], cells["nand3"])
    return CellLibraryDefinition(
        name="silicon_45nm_reduced",
        process="silicon",
        vdd=vdd,
        cells=cells,
        dff=dff,
        area_model=SILICON_AREA_MODEL,
    )
