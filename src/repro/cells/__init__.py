"""The organic (and reduced-silicon) standard-cell substrate.

Implements the paper's Section 4.3: transistor-level topologies for
diode-load, biased-load and pseudo-E inverters, pseudo-E NAND/NOR gates, a
NAND-based D-flip-flop with preset and clear, static (VTC) analysis with
max-equal-criterion noise margins, a sizing design-space explorer, and the
6-cell library definition used by characterisation and synthesis.
"""

from repro.cells.topologies import (
    CellDesign,
    CompositeCell,
    DeviceSpec,
    diode_load_inverter,
    biased_load_inverter,
    pseudo_e_inverter,
    pseudo_e_nand,
    pseudo_e_nor,
    cmos_inverter,
    cmos_nand,
    cmos_nor,
    nand_dff,
)
from repro.cells.vtc import VtcCurve, VtcAnalysis, compute_vtc, analyze_inverter
from repro.cells.sizing import SizingResult, optimize_inverter_sizing
from repro.cells.library_def import (
    CellLibraryDefinition,
    organic_library_definition,
    silicon_library_definition,
)

__all__ = [
    "CellDesign",
    "CompositeCell",
    "DeviceSpec",
    "diode_load_inverter",
    "biased_load_inverter",
    "pseudo_e_inverter",
    "pseudo_e_nand",
    "pseudo_e_nor",
    "cmos_inverter",
    "cmos_nand",
    "cmos_nor",
    "nand_dff",
    "VtcCurve",
    "VtcAnalysis",
    "compute_vtc",
    "analyze_inverter",
    "SizingResult",
    "optimize_inverter_sizing",
    "CellLibraryDefinition",
    "organic_library_definition",
    "silicon_library_definition",
]
