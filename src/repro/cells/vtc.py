"""Static (voltage-transfer-characteristic) analysis of inverting cells.

Implements the paper's Section 4.3.1 design criteria:

- the **switching threshold** ``VM`` is "extracted from the intersect by
  mirroring the VTC" — the fixed point ``f(VM) = VM``;
- the **maximum gain** is the largest magnitude of the VTC slope;
- the **noise margins** are "extracted from the max equal criterion (MEC)"
  (Hauser 1993): the side of the largest square inscribed in each eye of
  the butterfly diagram formed by the VTC and its mirror across ``y = x``.
  The upper-left eye gives the low-state margin NML, the lower-right eye
  the high-state margin NMH;
- **static power** is the total power delivered by all supply rails at a
  fixed input level (the ratioed organic styles burn static current in
  exactly one input state; pseudo-E burns it in both stages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cells.topologies import CellDesign, build_dc_testbench
from repro.errors import AnalysisError, CircuitError, ConvergenceError
from repro.runtime import ensemble_enabled
from repro.spice.dc import NewtonOptions, dc_sweep
from repro.spice.ensemble import ensemble_dc_sweep


@dataclass(frozen=True)
class VtcCurve:
    """Sampled voltage-transfer characteristic of an inverting cell."""

    vin: np.ndarray
    vout: np.ndarray
    #: Total static power drawn from the rails at each sweep point, watts.
    power: np.ndarray
    vdd: float

    def __len__(self) -> int:
        return len(self.vin)


@dataclass(frozen=True)
class VtcAnalysis:
    """DC parameters extracted from a VTC (paper Figures 6d, 7d).

    ``nmh``/``nml`` use the classical unity-gain-point criterion (these can
    be unequal, like the paper's 3.0 V / 3.5 V); ``nm_mec`` is Hauser's
    maximum-equal-criterion square, which is a single number because the
    butterfly of a VTC with its own mirror is symmetric across ``y = x``.
    """

    vm: float
    max_gain: float
    nmh: float
    nml: float
    nm_mec: float
    voh: float
    vol: float
    static_power_low: float    # input at 0 V
    static_power_high: float   # input at VDD
    vdd: float


def _vtc_testbench(cell: CellDesign, pin: str, tied_inputs: bool):
    """DC sweep testbench for one cell: swept source ``v_<pin>`` at 0 V."""
    vdd = cell.rails["vdd"]
    if pin not in cell.inputs:
        raise AnalysisError(f"cell {cell.name!r} has no input {pin!r}")

    if tied_inputs and len(cell.inputs) > 1:
        # All inputs share one node driven by the swept source — the
        # worst-case "all inputs switch together" curve.
        from repro.spice.elements import VoltageSource
        from repro.spice.netlist import Circuit

        ckt = Circuit(f"tb_{cell.name}")
        node_map = {p: "in" for p in cell.inputs}
        node_map["out"] = "out"
        for rail, volts in cell.rails.items():
            if volts == 0.0:
                node_map[rail] = "0"
            else:
                node_map[rail] = rail
                ckt.add(VoltageSource(f"v_{rail}", rail, "0", volts))
        ckt.add(VoltageSource(f"v_{pin}", "in", "0", 0.0))
        cell.instantiate(ckt, node_map)
    else:
        # Swept pin at 0; any other inputs held at VDD (non-controlling
        # for NAND) so the output still responds to the swept pin.
        initial = {p: vdd for p in cell.inputs}
        initial[pin] = 0.0
        ckt = build_dc_testbench(cell, initial)
    return ckt


def compute_vtc(cell: CellDesign, n_points: int = 101,
                input_pin: str | None = None,
                tied_inputs: bool = True,
                options: NewtonOptions | None = None) -> VtcCurve:
    """Sweep the cell input 0..VDD and record output and rail power.

    For multi-input gates the swept pin is *input_pin* (default: first
    input); remaining inputs are tied to the same sweep source when
    ``tied_inputs`` (the worst-case "all inputs switch" curve) or held at
    VDD otherwise.
    """
    vdd = cell.rails["vdd"]
    pin = input_pin or cell.inputs[0]
    options = options or NewtonOptions(max_step_v=max(1.0, vdd / 4.0))
    ckt = _vtc_testbench(cell, pin, tied_inputs)

    sweep_values = np.linspace(0.0, vdd, n_points)
    result = dc_sweep(ckt, f"v_{pin}", sweep_values, options=options)

    vout = result.voltage("out")
    power = np.zeros(n_points)
    for rail, volts in cell.rails.items():
        if volts == 0.0:
            continue
        # Branch current flows into the source's + terminal; power
        # delivered to the circuit is -V * I.
        power -= volts * result.source_current(f"v_{rail}")
    return VtcCurve(vin=sweep_values, vout=vout, power=power, vdd=vdd)


def compute_vtc_batch(cells: list[CellDesign], n_points: int = 101,
                      input_pin: str | None = None,
                      tied_inputs: bool = True,
                      options: NewtonOptions | None = None
                      ) -> list[VtcCurve | None]:
    """VTCs of structurally identical cells as one stacked DC sweep.

    All members advance through the 0..VDD continuation in lockstep
    (Monte-Carlo instances of one topology differ only in device
    parameters, so their Jacobians stack).  Members the batched solver and
    its per-point scalar retry both fail to converge come back as ``None``
    — the same instances the scalar path would abandon with
    :class:`~repro.errors.ConvergenceError`.  A structural mismatch (or an
    ensemble-level failure) falls back to per-cell scalar sweeps.
    """
    if not cells:
        return []
    first = cells[0]
    vdd = first.rails["vdd"]
    pin = input_pin or first.inputs[0]
    options = options or NewtonOptions(max_step_v=max(1.0, vdd / 4.0))

    def scalar_all() -> list[VtcCurve | None]:
        out: list[VtcCurve | None] = []
        for cell in cells:
            try:
                out.append(compute_vtc(cell, n_points=n_points,
                                       input_pin=input_pin,
                                       tied_inputs=tied_inputs,
                                       options=options))
            except ConvergenceError:
                out.append(None)
        return out

    # Members may differ in rail *values* (e.g. a VSS trim sweep) but the
    # sweep range and which rails are tied to ground must agree.
    nonzero = [r for r, v in first.rails.items() if v != 0.0]
    if not ensemble_enabled() or any(
            c.inputs != first.inputs
            or c.rails.get("vdd") != vdd
            or [r for r, v in c.rails.items() if v != 0.0] != nonzero
            for c in cells[1:]):
        return scalar_all()
    try:
        ckts = [_vtc_testbench(c, pin, tied_inputs) for c in cells]
        solutions, ok, es = ensemble_dc_sweep(
            ckts, f"v_{pin}", np.linspace(0.0, vdd, n_points),
            options=options)
    except (CircuitError, ConvergenceError):
        return scalar_all()

    sweep_values = np.linspace(0.0, vdd, n_points)
    out_slot = es.node_slot("out")
    branches = {rail: es.members[0].branch_index[f"v_{rail}"]
                for rail in nonzero}
    curves: list[VtcCurve | None] = []
    for m, cell in enumerate(cells):
        if not ok[m]:
            curves.append(None)
            continue
        power = np.zeros(n_points)
        for rail in nonzero:
            power -= cell.rails[rail] * solutions[:, m, branches[rail]]
        curves.append(VtcCurve(vin=sweep_values,
                               vout=solutions[:, m, out_slot].copy(),
                               power=power, vdd=vdd))
    return curves


def switching_threshold(curve: VtcCurve) -> float:
    """VM: the mirrored-VTC intersection, i.e. where ``vout == vin``."""
    diff = curve.vout - curve.vin
    sign_change = np.where(np.diff(np.sign(diff)) != 0)[0]
    if len(sign_change) == 0:
        raise AnalysisError("VTC never crosses vout = vin; not an inverter?")
    i = int(sign_change[0])
    frac = diff[i] / (diff[i] - diff[i + 1])
    return float(curve.vin[i] + frac * (curve.vin[i + 1] - curve.vin[i]))


def max_gain(curve: VtcCurve) -> float:
    """Largest |dVout/dVin| along the curve."""
    slope = np.gradient(curve.vout, curve.vin)
    return float(np.max(np.abs(slope)))


def _monotone_decreasing(vout: np.ndarray) -> np.ndarray:
    """Clamp tiny solver non-monotonicity so the curve is invertible."""
    return np.minimum.accumulate(vout)


def _mec_square(vin: np.ndarray, vout: np.ndarray, vm: float) -> float:
    """Side of the largest square in the upper-left butterfly eye.

    The square's lower-left corner lies on the mirrored curve ``x = f(y)``
    and its upper-right corner on the VTC ``y = f(x)``; for an anchor
    ``ya`` the side solves  ``ya + s = f(f(ya) + s)``.
    """
    f = _monotone_decreasing(vout)

    def feval(x: float) -> float:
        return float(np.interp(x, vin, f))

    v_hi = float(f[0])
    best = 0.0
    for ya in np.linspace(vm, v_hi, 60):
        xa = feval(ya)
        # g(s) decreasing in s; g(0) >= 0 inside the eye.
        def gap(s: float) -> float:
            return feval(xa + s) - (ya + s)
        if gap(0.0) <= 0.0:
            continue
        lo, hi = 0.0, v_hi - ya + 1e-9
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            if gap(mid) > 0.0:
                lo = mid
            else:
                hi = mid
        best = max(best, lo)
    return best


def noise_margin_mec(curve: VtcCurve) -> float:
    """Hauser's maximum-equal-criterion noise margin.

    The butterfly formed by the VTC and its mirror across ``y = x`` is
    symmetric under that reflection, which maps the upper-left eye onto the
    lower-right one — so the two maximal inscribed squares are congruent
    and MEC yields a single *equal* margin (hence the criterion's name).
    """
    vm = switching_threshold(curve)
    return _mec_square(curve.vin, curve.vout, vm)


def noise_margins_unity_gain(curve: VtcCurve) -> tuple[float, float]:
    """(NMH, NML) by the classical unity-gain-point criterion.

    Provided for comparison with MEC: NMH = VOH - VIH, NML = VIL - VOL.
    """
    slope = np.gradient(curve.vout, curve.vin)
    steep = np.where(slope <= -1.0)[0]
    if len(steep) == 0:
        return 0.0, 0.0
    vil = float(curve.vin[steep[0]])
    vih = float(curve.vin[steep[-1]])
    voh = float(curve.vout[0])
    vol = float(curve.vout[-1])
    return max(0.0, voh - vih), max(0.0, vil - vol)


def analyze_inverter(cell: CellDesign, n_points: int = 151,
                     options: NewtonOptions | None = None) -> VtcAnalysis:
    """Full Section 4.3.1 DC analysis of an inverting cell."""
    curve = compute_vtc(cell, n_points=n_points, options=options)
    vm = switching_threshold(curve)
    gain = max_gain(curve)
    nmh, nml = noise_margins_unity_gain(curve)
    nm_mec = noise_margin_mec(curve)
    return VtcAnalysis(
        vm=vm,
        max_gain=gain,
        nmh=nmh,
        nml=nml,
        nm_mec=nm_mec,
        voh=float(curve.vout[0]),
        vol=float(curve.vout[-1]),
        static_power_low=float(curve.power[0]),
        static_power_high=float(curve.power[-1]),
        vdd=curve.vdd,
    )
