"""Design-space exploration for cell sizing (paper Section 4.3.4).

"The fine-tuning of circuit sizing is crucial for creating a good logic
gate.  [...] we utilized a script to explore the design space and select
the best parameter sets for each gate.  The switching threshold, noise
margin, gate delay, and area are all taken into consideration when we
define the utility function."

This module is that script.  Candidates are evaluated with real DC solves
(VTC-derived VM / gain / noise margins) plus a current-over-capacitance
delay estimate, and ranked by a weighted utility.  The default library
sizes in :mod:`repro.cells.library_def` were selected with it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.cells.topologies import CellDesign, build_dc_testbench, pseudo_e_inverter
from repro.cells.vtc import VtcAnalysis, analyze_inverter
from repro.errors import AnalysisError, ConvergenceError
from repro.spice.dc import operating_point
from repro.spice.elements import FetModel


@dataclass(frozen=True)
class UtilityWeights:
    """Relative importance of each criterion in the sizing utility."""

    noise_margin: float = 3.0
    gain: float = 1.0
    vm_centering: float = 1.5
    delay: float = 1.5
    area: float = 0.5


@dataclass(frozen=True)
class CandidateScore:
    """One evaluated sizing candidate."""

    sizes: dict[str, float]
    analysis: VtcAnalysis
    delay_estimate: float
    area_estimate: float
    utility: float


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a sizing exploration, best candidate first."""

    best: CandidateScore
    candidates: tuple[CandidateScore, ...] = field(repr=False, default=())


def estimate_gate_delay(cell: CellDesign, load_cap: float) -> float:
    """First-order delay: average of rise/fall ``C * VDD/2 / I_switch``.

    Currents are taken from real DC operating points with the output held
    mid-rail — for the pseudo-E topology this captures the level-shifter's
    effect on the pull-down gate drive, which a hand formula would miss.
    """
    from repro.spice.elements import VoltageSource
    from repro.spice.ensemble import ensemble_operating_point

    vdd = cell.rails["vdd"]
    circuits = []
    for vin in (0.0, vdd):               # pull-up, then pull-down drive
        ckt = build_dc_testbench(cell, {p: vin for p in cell.inputs})
        # Pin the output mid-rail and measure the net charging current.
        ckt.add(VoltageSource("v_probe", "out", "0", vdd / 2.0))
        circuits.append(ckt)
    # The two bias points are structurally identical circuits — one
    # stacked DC solve instead of two scalar operating points.
    try:
        x, es = ensemble_operating_point(circuits)
    except ConvergenceError as exc:
        raise AnalysisError(
            f"delay estimate failed for {cell.name!r}: {exc}") from exc
    delays = []
    for lane in range(2):
        i_net = abs(float(x[lane, es.branch_index["v_probe"]]))
        if i_net <= 0:
            return float("inf")
        delays.append(load_cap * (vdd / 2.0) / i_net)
    return float(np.mean(delays))


def estimate_area(cell: CellDesign) -> float:
    """Active-area proxy: sum of W*L over all transistors, m^2."""
    return sum(d.w * d.l for d in cell.devices)


def _utility(analysis: VtcAnalysis, delay: float, area: float,
             delay_ref: float, area_ref: float,
             weights: UtilityWeights) -> float:
    vdd = analysis.vdd
    nm = min(analysis.nmh, analysis.nml) / vdd
    gain = min(analysis.max_gain, 5.0) / 5.0
    vm_center = 1.0 - abs(analysis.vm - vdd / 2.0) / (vdd / 2.0)
    delay_pen = delay / delay_ref
    area_pen = area / area_ref
    return (weights.noise_margin * nm
            + weights.gain * gain
            + weights.vm_centering * vm_center
            - weights.delay * delay_pen
            - weights.area * area_pen)


def optimize_inverter_sizing(model: FetModel,
                             vdd: float = 5.0, vss: float = -15.0,
                             w_drive_grid: tuple[float, ...] = (50e-6, 100e-6, 150e-6),
                             load_ratio_grid: tuple[float, ...] = (0.1, 0.15, 0.25),
                             down_ratio_grid: tuple[float, ...] = (1.0, 1.5, 2.0),
                             weights: UtilityWeights | None = None,
                             n_vtc_points: int = 61) -> SizingResult:
    """Explore pseudo-E inverter sizings and rank them by utility.

    The grid spans the drive width, the shifter-load-to-drive ratio, and
    the pull-down-to-pull-up ratio; the pull-up reuses the drive width (as
    in the paper's layouts, Figure 5c, where both input transistors match).
    """
    weights = weights or UtilityWeights()
    scored: list[CandidateScore] = []

    # Reference delay/area: the mid-grid candidate.
    ref_cell = pseudo_e_inverter(model, w_drive=w_drive_grid[len(w_drive_grid) // 2],
                                 vdd=vdd, vss=vss)
    ref_load = ref_cell.input_capacitance("a")
    delay_ref = max(estimate_gate_delay(ref_cell, ref_load), 1e-12)
    area_ref = max(estimate_area(ref_cell), 1e-18)

    for w_drive, load_ratio, down_ratio in itertools.product(
            w_drive_grid, load_ratio_grid, down_ratio_grid):
        sizes = {
            "w_drive": w_drive,
            "w_shift_load": w_drive * load_ratio,
            "w_up": w_drive,
            "w_down": w_drive * down_ratio,
        }
        cell = pseudo_e_inverter(model, vdd=vdd, vss=vss, **sizes)
        try:
            analysis = analyze_inverter(cell, n_points=n_vtc_points)
            load = cell.input_capacitance("a")
            delay = estimate_gate_delay(cell, load)
        except (AnalysisError, ConvergenceError):
            continue
        area = estimate_area(cell)
        utility = _utility(analysis, delay, area, delay_ref, area_ref, weights)
        scored.append(CandidateScore(sizes=sizes, analysis=analysis,
                                     delay_estimate=delay,
                                     area_estimate=area, utility=utility))

    if not scored:
        raise AnalysisError("no sizing candidate converged")
    scored.sort(key=lambda c: c.utility, reverse=True)
    return SizingResult(best=scored[0], candidates=tuple(scored))
