"""Process-variation yield extension (paper Sections 4.1 and 4.3.3).

The paper measures a VT spread "within 0.5 V" across a sample and argues
that the pseudo-E topology's VSS rail offers a recovery knob: "the
cross-sample variation of VM from process variation can be tuned by
applying a different VSS".  This module quantifies both statements with
Monte Carlo over per-transistor device variation:

- :func:`noise_margin_yield` — fraction of inverter instances whose MEC
  noise margin survives a threshold, per topology style,
- :func:`vss_recovery` — how much of the VM spread a global VSS trim can
  remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cells.topologies import (
    CellDesign,
    DeviceSpec,
    diode_load_inverter,
    pseudo_e_inverter,
)
from repro.cells.vtc import (
    VtcCurve,
    compute_vtc,
    compute_vtc_batch,
    noise_margin_mec,
    switching_threshold,
)
from repro.devices.tft_level61 import UnifiedTft
from repro.devices.variation import VariationModel
from repro.errors import AnalysisError, ConvergenceError
from repro.runtime import chunked, ensemble_batch, ensemble_enabled, parallel_map


def perturb_cell(cell: CellDesign, variation: VariationModel,
                 rng: np.random.Generator) -> CellDesign:
    """A copy of *cell* with every transistor's device independently drawn."""
    devices = []
    for d in cell.devices:
        if not isinstance(d.model, UnifiedTft):
            raise AnalysisError("variation sampling needs UnifiedTft models")
        devices.append(DeviceSpec(
            name=d.name, drain=d.drain, gate=d.gate, source=d.source,
            model=variation.sample(d.model, rng), w=d.w, l=d.l))
    return CellDesign(name=cell.name, inputs=cell.inputs, output=cell.output,
                      devices=tuple(devices), rails=dict(cell.rails),
                      style=cell.style, function=cell.function)


@dataclass(frozen=True)
class YieldResult:
    """Monte Carlo noise-margin yield of one inverter style."""

    style: str
    n_samples: int
    n_converged: int
    noise_margins: np.ndarray
    vm_values: np.ndarray
    nm_threshold: float

    @property
    def yield_fraction(self) -> float:
        """Fraction of *attempted* samples meeting the NM threshold."""
        passing = int(np.sum(self.noise_margins >= self.nm_threshold))
        return passing / self.n_samples

    @property
    def vm_spread(self) -> float:
        """95% spread of the switching threshold across instances."""
        if len(self.vm_values) < 2:
            return 0.0
        return float(np.percentile(self.vm_values, 97.5)
                     - np.percentile(self.vm_values, 2.5))


def _nm_sample_task(instance: CellDesign) -> tuple[float, float]:
    """Module-level (picklable) worker: one Monte Carlo instance's VTC."""
    try:
        curve = compute_vtc(instance, n_points=61)
    except ConvergenceError as exc:
        raise exc.with_context(cell=instance.name, style=instance.style)
    return switching_threshold(curve), noise_margin_mec(curve)


def _nm_chunk_task(instances: list[CellDesign]
                   ) -> list[tuple[float, float] | None]:
    """Picklable worker: a chunk of Monte Carlo instances as one ensemble.

    ``None`` marks an instance that failed to converge or whose VTC does
    not invert — the same samples the scalar path writes off as losses.
    """
    curves = compute_vtc_batch(instances, n_points=61)
    out: list[tuple[float, float] | None] = []
    for curve in curves:
        if curve is None:
            out.append(None)
            continue
        try:
            out.append((switching_threshold(curve), noise_margin_mec(curve)))
        except AnalysisError:
            out.append(None)
    return out


def noise_margin_yield(base_cell: CellDesign,
                       variation: VariationModel | None = None,
                       n_samples: int = 40,
                       nm_threshold_fraction: float = 0.05,
                       seed: int = 0,
                       workers: int | None = None) -> YieldResult:
    """Monte Carlo MEC-noise-margin yield for one inverter design.

    All instances are drawn from the seeded generator up front (so the
    sample set never depends on scheduling), then evaluated across worker
    processes when ``workers`` (or ``REPRO_WORKERS``) asks for it.
    """
    variation = variation or VariationModel()
    rng = np.random.default_rng(seed)
    vdd = base_cell.rails["vdd"]
    threshold = nm_threshold_fraction * vdd

    instances = [perturb_cell(base_cell, variation, rng)
                 for _ in range(n_samples)]
    margins: list[float] = []
    vms: list[float] = []
    converged = 0
    if ensemble_enabled():
        # Chunk size comes from REPRO_ENSEMBLE_BATCH alone (never the
        # worker count), so the sample outcomes are identical for any
        # REPRO_WORKERS; parallel_map shards whole chunks.
        chunks = chunked(instances, ensemble_batch())
        offsets = np.cumsum([0] + [len(c) for c in chunks])
        results = parallel_map(
            _nm_chunk_task, chunks, workers=workers,
            labels=[f"{base_cell.name} samples[{a}:{b}]"
                    for a, b in zip(offsets, offsets[1:])],
            on_error="capture",
            phase=f"yield[{base_cell.name}]")
        for chunk, result in zip(chunks, results):
            if result.ok:
                for sample in result.value:
                    if sample is None:
                        margins.append(0.0)  # non-inverting: a loss
                    else:
                        vm, margin = sample
                        vms.append(vm)
                        margins.append(margin)
                        converged += 1
            elif isinstance(result.error, (ConvergenceError, AnalysisError)):
                margins.extend([0.0] * len(chunk))
            else:
                raise result.error
    else:
        results = parallel_map(_nm_sample_task, instances, workers=workers,
                               labels=[f"{base_cell.name} sample[{i}]"
                                       for i in range(n_samples)],
                               on_error="capture",
                               phase=f"yield[{base_cell.name}]")
        for result in results:
            if result.ok:
                vm, margin = result.value
                vms.append(vm)
                margins.append(margin)
                converged += 1
            elif isinstance(result.error, (ConvergenceError, AnalysisError)):
                margins.append(0.0)     # a non-inverting instance is a loss
            else:
                raise result.error
    return YieldResult(
        style=base_cell.style,
        n_samples=n_samples,
        n_converged=converged,
        noise_margins=np.asarray(margins),
        vm_values=np.asarray(vms),
        nm_threshold=threshold,
    )


def compare_styles(variation: VariationModel | None = None,
                   n_samples: int = 30, seed: int = 1
                   ) -> dict[str, YieldResult]:
    """Diode-load vs pseudo-E yield under the paper's VT spread."""
    from repro.devices.pentacene import PENTACENE

    cells = {
        "diode_load": diode_load_inverter(PENTACENE, w_drive=100e-6,
                                          w_load=50e-6, vdd=15.0),
        "pseudo_e": pseudo_e_inverter(PENTACENE, vdd=15.0, vss=-15.0,
                                      w_drive=100e-6, w_shift_load=10e-6,
                                      l_shift_load=100e-6, w_up=100e-6,
                                      w_down=50e-6),
    }
    return {name: noise_margin_yield(cell, variation, n_samples, seed=seed)
            for name, cell in cells.items()}


def vss_recovery(vt_shift: float, vdd: float = 5.0,
                 vss_grid: np.ndarray | None = None) -> tuple[float, float]:
    """VM recovery by VSS trimming (the paper's Figure 8 use case).

    For a whole-sample VT shift, returns ``(vm_untrimmed, vss_best)``:
    the shifted inverter's VM at the nominal VSS, and the VSS value that
    brings VM back closest to VDD/2.
    """
    from repro.devices.pentacene import pentacene_model

    if vss_grid is None:
        vss_grid = np.arange(-22.0, -7.9, 1.0)
    model = pentacene_model(vt_shift=vt_shift)

    # All trim candidates share one topology (only the VSS rail value
    # changes), so the whole grid solves as a single stacked sweep.
    cells = [pseudo_e_inverter(model, vdd=vdd, vss=float(v))
             for v in [-15.0, *vss_grid]]
    curves = compute_vtc_batch(cells, n_points=61)

    def vm_of(curve: VtcCurve | None, cell: CellDesign) -> float:
        if curve is None:  # reproduce the scalar path's exception
            curve = compute_vtc(cell, n_points=61)
        return switching_threshold(curve)

    vm_nominal = vm_of(curves[0], cells[0])
    vms = [vm_of(c, cell) for c, cell in zip(curves[1:], cells[1:])]
    best = int(np.argmin([abs(vm - vdd / 2) for vm in vms]))
    return vm_nominal, float(vss_grid[best])
