"""Experiment harness: one runner per paper figure, plus reporting."""

from repro.analysis.calibration import PAPER, CalibrationEntry
from repro.analysis.figures import (
    fig3_transfer_characteristics,
    fig4_model_fits,
    fig6_inverter_comparison,
    fig7_vdd_scaling,
    fig8_vss_tuning,
    fig11_pipeline_depth,
    fig12_alu_depth,
    fig13_width_performance,
    fig14_width_area,
    fig15_wire_ablation,
)
from repro.analysis.tables import format_table, format_matrix
from repro.analysis.energy import EnergyReport, core_energy, energy_depth_sweep
from repro.analysis.manycore import ManycoreDesign, manycore_study, best_design
from repro.analysis.yield_mc import (
    YieldResult,
    compare_styles,
    noise_margin_yield,
    vss_recovery,
)

__all__ = [
    "EnergyReport",
    "core_energy",
    "energy_depth_sweep",
    "ManycoreDesign",
    "manycore_study",
    "best_design",
    "YieldResult",
    "compare_styles",
    "noise_margin_yield",
    "vss_recovery",
    "PAPER",
    "CalibrationEntry",
    "fig3_transfer_characteristics",
    "fig4_model_fits",
    "fig6_inverter_comparison",
    "fig7_vdd_scaling",
    "fig8_vss_tuning",
    "fig11_pipeline_depth",
    "fig12_alu_depth",
    "fig13_width_performance",
    "fig14_width_area",
    "fig15_wire_ablation",
    "format_table",
    "format_matrix",
]
