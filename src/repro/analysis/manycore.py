"""Parallelism extension (paper Sections 2 and 7).

"More advanced architectural techniques such as using massive parallelism
could even be harnessed to help close the fundamental organic-silicon
performance gap."  This module asks the concrete version of that question:
given a fixed die-area budget, is the budget better spent on one big
(wide/deep) organic core or on many small ones?

Throughput follows Amdahl's law over the per-core performance measured by
the real IPC simulator and physical model, so the answer inherits the
process-specific width/depth costs from the main experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.library import Library
from repro.core.config import CoreConfig
from repro.core.physical import core_physical
from repro.core.superscalar import simulate
from repro.core.trace import Trace
from repro.core.tradeoffs import make_traces
from repro.errors import ConfigError
from repro.synthesis.wires import WireModel


@dataclass(frozen=True)
class ManycoreDesign:
    """One point of the area-budgeted parallelism study."""

    config_name: str
    n_cores: int
    core_area: float
    total_area: float
    per_core_performance: float     # instructions/second
    throughput: float               # Amdahl-limited instructions/second

    @property
    def utilisation(self) -> float:
        return self.total_area and self.per_core_performance * self.n_cores


def amdahl_throughput(per_core: float, n_cores: int,
                      serial_fraction: float) -> float:
    """Attainable throughput of n cores on a partially serial workload."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ConfigError(f"serial_fraction must be in [0,1], "
                          f"got {serial_fraction}")
    if n_cores < 1:
        raise ConfigError("need at least one core")
    speedup = 1.0 / (serial_fraction + (1.0 - serial_fraction) / n_cores)
    return per_core * speedup


def manycore_study(library: Library, wire: WireModel,
                   area_budget_factor: float = 8.0,
                   serial_fraction: float = 0.05,
                   candidates: list[CoreConfig] | None = None,
                   trace: Trace | None = None) -> list[ManycoreDesign]:
    """Compare core configurations under a fixed total-area budget.

    ``area_budget_factor`` expresses the budget in multiples of the
    baseline core's area.  Candidates default to the baseline, a wide
    core, and a wide+deep core (the single-core alternatives the area
    could buy).
    """
    if trace is None:
        trace = make_traces(workloads=["gap"], n_instructions=15_000)["gap"]
    base = CoreConfig()
    if candidates is None:
        candidates = [
            base,
            base.widened(2, 4),
            base.widened(2, 7),
            base.widened(4, 7),
        ]

    budget = area_budget_factor * core_physical(base, library, wire).area
    designs = []
    for config in candidates:
        physical = core_physical(config, library, wire)
        n_cores = max(1, int(budget // physical.area))
        ipc = simulate(config, trace).ipc
        per_core = ipc * physical.frequency
        designs.append(ManycoreDesign(
            config_name=config.name,
            n_cores=n_cores,
            core_area=physical.area,
            total_area=n_cores * physical.area,
            per_core_performance=per_core,
            throughput=amdahl_throughput(per_core, n_cores, serial_fraction),
        ))
    return designs


def best_design(designs: list[ManycoreDesign]) -> ManycoreDesign:
    return max(designs, key=lambda d: d.throughput)
