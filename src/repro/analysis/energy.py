"""Energy analysis extension (paper Section 7: "energy optimization").

The pseudo-E style is *ratioed*: at least one branch of every gate conducts
statically in one input state, so organic cores are static-power dominated
(the paper's Figures 6d/7d report tens-to-hundreds of microwatts of static
power per inverter).  This module prices design points in energy terms:

- per-process leakage density from the characterised library,
- core static power from the physical area model,
- dynamic (CV^2 f) switching energy from the library's input capacitances
  and an activity factor,
- energy per instruction = power / (IPC x frequency),

and sweeps it across pipeline depths — answering the future-work question
"does the deeper organic pipeline also win on energy per instruction?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.library import Library
from repro.core.config import CoreConfig
from repro.core.physical import CorePhysical, core_physical
from repro.core.superscalar import simulate_cached
from repro.core.trace import Trace
from repro.core.tradeoffs import depth_sweep, make_traces
from repro.synthesis.wires import WireModel

#: Fraction of gates switching per cycle (typical synthesis assumption).
DEFAULT_ACTIVITY = 0.10


def leakage_density(library: Library) -> float:
    """Average static power per unit cell area, W/m^2.

    Weighted over the library's combinational cells plus the flop — the
    mix a synthesised core is built from.
    """
    total_power = library.dff.leakage
    total_area = library.dff.area
    for cell in library.cells.values():
        total_power += cell.leakage
        total_area += cell.area
    return total_power / total_area


def switched_capacitance_density(library: Library) -> float:
    """Average switchable input capacitance per unit cell area, F/m^2."""
    total_cap = sum(library.dff.input_caps.values())
    total_area = library.dff.area
    for cell in library.cells.values():
        total_cap += sum(cell.input_caps.values())
        total_area += cell.area
    return total_cap / total_area


@dataclass(frozen=True)
class EnergyReport:
    """Energy figures of one core design point."""

    config_name: str
    process: str
    frequency: float
    ipc: float
    area: float
    static_power: float          # watts
    dynamic_power: float         # watts
    energy_per_instruction: float  # joules

    @property
    def total_power(self) -> float:
        return self.static_power + self.dynamic_power

    @property
    def static_fraction(self) -> float:
        return self.static_power / self.total_power


def energy_from_physical(config: CoreConfig, library: Library,
                         physical: CorePhysical, ipc: float,
                         activity: float = DEFAULT_ACTIVITY) -> EnergyReport:
    """Price an already-evaluated design point in energy terms.

    Pure arithmetic over the physical figures and an IPC number, so
    sweep drivers that already ran :func:`repro.core.physical.
    core_physical` and the timing simulator (e.g. :func:`repro.core.
    tradeoffs.depth_sweep`) can re-price their points without repeating
    either.
    """
    p_static = leakage_density(library) * physical.area
    c_switched = switched_capacitance_density(library) * physical.area
    p_dynamic = (activity * c_switched * library.vdd ** 2
                 * physical.frequency)

    mips = ipc * physical.frequency
    return EnergyReport(
        config_name=config.name,
        process=library.process,
        frequency=physical.frequency,
        ipc=ipc,
        area=physical.area,
        static_power=p_static,
        dynamic_power=p_dynamic,
        energy_per_instruction=(p_static + p_dynamic) / mips,
    )


def core_energy(config: CoreConfig, library: Library, wire: WireModel,
                trace: Trace, activity: float = DEFAULT_ACTIVITY
                ) -> EnergyReport:
    """Static + dynamic power and energy/instruction for one design point."""
    physical = core_physical(config, library, wire)
    ipc = simulate_cached(config, trace).ipc
    return energy_from_physical(config, library, physical, ipc, activity)


def energy_depth_sweep(library: Library, wire: WireModel,
                       max_depth: int = 15,
                       trace: Trace | None = None,
                       activity: float = DEFAULT_ACTIVITY
                       ) -> list[EnergyReport]:
    """Energy per instruction across pipeline depths.

    Static-power-dominated logic rewards *finishing faster*: racing
    through the workload at a deeper pipeline's higher frequency amortises
    the static burn over more instructions — so the energy-optimal organic
    depth lands at (or beyond) the performance-optimal one, unlike
    dynamic-power-dominated silicon intuition.
    """
    if trace is None:
        trace = make_traces(workloads=["gzip"], n_instructions=20_000)["gzip"]
    # One shared sweep evaluates physical + IPC for every depth (with
    # fan-out and result caching); energy pricing is then arithmetic on
    # those points rather than a second, serial physical/simulate pass.
    points = depth_sweep(library, wire, max_depth=max_depth,
                         traces={"energy": trace})
    return [energy_from_physical(p.config, library, p.physical,
                                 p.ipc["energy"], activity)
            for p in points]
