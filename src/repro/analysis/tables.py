"""ASCII rendering of experiment results (the repo's 'plots')."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """A simple aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_matrix(matrix: dict[tuple[int, int], float],
                  row_label: str = "back", col_label: str = "front",
                  title: str = "", fmt: str = "{:5.2f}") -> str:
    """Render a (row, col) -> value dict as an aligned grid."""
    rows = sorted({k[0] for k in matrix})
    cols = sorted({k[1] for k in matrix})
    lines = []
    if title:
        lines.append(title)
    header = f"{row_label}\\{col_label} " + " ".join(f"{c:>5d}" for c in cols)
    lines.append(header)
    for r in rows:
        vals = " ".join(fmt.format(matrix[(r, c)]) for c in cols)
        lines.append(f"{r:>10d} {vals}")
    return "\n".join(lines)


def format_series(xs: Sequence, ys: Sequence, x_name: str = "x",
                  y_name: str = "y", width: int = 40,
                  title: str = "") -> str:
    """A horizontal ASCII bar chart for one series."""
    lines = []
    if title:
        lines.append(title)
    peak = max(abs(float(y)) for y in ys) or 1.0
    for x, y in zip(xs, ys):
        bar = "#" * max(1, round(width * float(y) / peak))
        lines.append(f"{x!s:>8} {float(y):10.4g} {bar}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-2:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
