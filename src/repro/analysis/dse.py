"""Batched design-space exploration across depth, width, wire and library.

The per-figure sweeps each walk one axis of the design space; this
driver evaluates the full cross product — pipeline depth x data width x
superscalar width pair x (library, wire-model) combo — in one batch, as
a DSE engine would.  What makes the grid affordable is structure
sharing underneath:

- generic block netlists are memoised per shape and the datapath adder
  grows by copy-on-extend (:func:`repro.core.physical._generic_block`),
- technology mapping is fingerprint-memoised and extends cached base
  mappings (:func:`repro.synthesis.mapping.map_cached`),
- STA re-times only the delta against a recorded session
  (``REPRO_INCREMENTAL_STA``, :mod:`repro.synthesis.sta`),
- block areas come from exact cell counting, never a mapped netlist
  (:func:`repro.core.physical._block_area`),
- IPC simulations go through the persistent result cache.

The stock grid (4 combos x 7 widths x 4 width pairs x depths 9..17,
1008 points) is the ``dse_sweep`` perf-bench row; run it from the shell
as ``python -m repro dse``.

The evaluation arithmetic is exactly the per-figure sweeps' — points
are evaluated by the same :func:`repro.core.tradeoffs._eval_config_task`
worker — so a grid point here is bit-identical to the corresponding
figure-sweep point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.characterization import organic_library, silicon_library
from repro.characterization.library import Library
from repro.core.config import CoreConfig
from repro.core.physical import CorePhysical
from repro.core.trace import Trace
from repro.core.tradeoffs import _eval_config_task, deepen_pipeline, make_traces
from repro.errors import ConfigError
from repro.runtime import parallel_map
from repro.synthesis.wires import WireModel, organic_wire_model, silicon_wire_model

#: The stock grid — frozen so the ``dse_sweep`` perf-bench row measures
#: a fixed workload.
DATA_WIDTHS = (8, 12, 16, 20, 24, 28, 32)
WIDTH_PAIRS = ((1, 3), (2, 4), (3, 5), (4, 6))
MIN_DEPTH = 9
MAX_DEPTH = 17
DSE_TRACE_LENGTH = 2_000


def default_combos() -> list[tuple[str, Library, WireModel]]:
    """The four stock (label, library, wire) combos.

    Both processes, each with its real wire model and with wires zeroed
    (the paper's wire-ablation axis, cf. Figure 15).
    """
    org_lib, sil_lib = organic_library(), silicon_library()
    org_wire, sil_wire = organic_wire_model(), silicon_wire_model()
    return [
        ("organic", org_lib, org_wire),
        ("organic_no_wire", org_lib, org_wire.scaled(0.0)),
        ("silicon", sil_lib, sil_wire),
        ("silicon_no_wire", sil_lib, sil_wire.scaled(0.0)),
    ]


@dataclass(frozen=True)
class DsePoint:
    """One evaluated grid point."""

    combo: str
    config: CoreConfig
    physical: CorePhysical
    ipc: dict[str, float]
    performance: dict[str, float] = field(default_factory=dict)

    def mean_performance(self) -> float:
        return sum(self.performance.values()) / len(self.performance)


@dataclass(frozen=True)
class DseResult:
    """All evaluated points plus grid bookkeeping."""

    points: list[DsePoint]
    combos: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.points)

    def for_combo(self, combo: str) -> list[DsePoint]:
        if combo not in self.combos:
            raise ConfigError(f"unknown combo {combo!r}; "
                              f"available: {list(self.combos)}")
        return [p for p in self.points if p.combo == combo]

    def best(self, combo: str | None = None) -> DsePoint:
        """Highest mean-performance point (optionally within a combo)."""
        pool = self.for_combo(combo) if combo else self.points
        return max(pool, key=DsePoint.mean_performance)


def _grid_configs(library: Library, wire: WireModel,
                  widths, width_pairs, min_depth: int,
                  max_depth: int) -> list[CoreConfig]:
    """Depth chains for every (data width, width pair) cell of the grid.

    Depth allocations are inherently serial (each cut starts from the
    previous allocation, and is process-specific), so the chains are
    derived up front; the expensive per-point evaluation then fans out.
    """
    configs: list[CoreConfig] = []
    for w in widths:
        for fw, bw in width_pairs:
            config = CoreConfig(name=f"dse_w{w}_f{fw}x{bw}",
                                front_width=fw, back_width=bw,
                                data_width=w)
            if config.depth < min_depth or config.depth > max_depth:
                raise ConfigError(
                    f"baseline depth {config.depth} outside grid depths "
                    f"[{min_depth}, {max_depth}]")
            while config.depth <= max_depth:
                configs.append(config)
                if config.depth == max_depth:
                    break
                config = deepen_pipeline(config, library, wire)
    return configs


def dse_sweep(combos: list[tuple[str, Library, WireModel]] | None = None,
              widths=DATA_WIDTHS,
              width_pairs=WIDTH_PAIRS,
              min_depth: int = MIN_DEPTH,
              max_depth: int = MAX_DEPTH,
              traces: dict[str, Trace] | None = None,
              workers: int | None = None) -> DseResult:
    """Evaluate the (depth x width x width-pair x combo) grid.

    Combos are processed sequentially (each pins a (library, wire) pair
    whose shared synthesis structures warm up once and then hit); the
    points inside a combo fan out across worker processes when
    ``workers`` (or ``REPRO_WORKERS``) asks for it.
    """
    if combos is None:
        combos = default_combos()
    if traces is None:
        traces = make_traces(workloads=["gzip"],
                             n_instructions=DSE_TRACE_LENGTH)

    points: list[DsePoint] = []
    for label, library, wire in combos:
        configs = _grid_configs(library, wire, widths, width_pairs,
                                min_depth, max_depth)
        results = parallel_map(
            _eval_config_task, configs, workers=workers,
            labels=[f"dse[{label}:{c.name}:d{c.depth}]" for c in configs],
            shared=(library, wire, traces),
            phase=f"dse[{label}]")
        for config, result in zip(configs, (r.value for r in results)):
            physical, ipc, perf = result
            points.append(DsePoint(combo=label, config=config,
                                   physical=physical, ipc=ipc,
                                   performance=perf))
    return DseResult(points=points,
                     combos=tuple(label for label, _, _ in combos))
