"""Per-figure experiment runners.

Every public function regenerates the data behind one figure or table of
the paper's evaluation and returns a small result object carrying both the
measured series and, where available, the paper-reported reference.  The
benchmark suite (``benchmarks/``) calls these and prints the same
rows/series the paper plots; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.calibration import paper_value
from repro.cells.topologies import (
    biased_load_inverter,
    diode_load_inverter,
    pseudo_e_inverter,
)
from repro.cells.vtc import VtcAnalysis, analyze_inverter, compute_vtc, switching_threshold
from repro.characterization import organic_library, silicon_library
from repro.characterization.library import Library
from repro.core.tradeoffs import (
    DepthSweepPoint,
    WidthSweepPoint,
    depth_sweep,
    make_traces,
    width_matrix,
    width_sweep,
)
from repro.devices import PENTACENE, measured_transfer_curve
from repro.devices.extraction import (
    DeviceReport,
    FitResult,
    characterize_curve,
    fit_level1,
    fit_level61,
)
from repro.devices.pentacene import PENTACENE_CI
from repro.synthesis.netlist import Netlist
from repro.synthesis.pipeline import PipelineResult, pipeline_sweep
from repro.synthesis.wires import WireModel, organic_wire_model, silicon_wire_model

#: Pseudo-E sizing used for the inverter figures — the library sizing
#: (weak W/L = 0.1 shifter load), so Figures 6-8 describe the same cell
#: the architecture experiments build with.
_FIG_PSEUDO_E_SIZES = dict(w_drive=100e-6, w_shift_load=10e-6,
                           l_shift_load=100e-6, w_up=100e-6, w_down=50e-6)


def load_libraries() -> tuple[Library, Library]:
    """(organic, silicon) characterised libraries (disk-cached)."""
    return organic_library(), silicon_library()


def wire_models() -> tuple[WireModel, WireModel]:
    return organic_wire_model(), silicon_wire_model()


# ---------------------------------------------------------------------------
# Figure 3 / Section 4.1
#
# Figures 3 and 4 are device-level (measured transfer curves and SPICE
# model fits); they build no gate netlists, so the shared-structure /
# incremental-STA machinery has nothing to reuse here — audited when the
# sweep path moved to block_netlist(), nothing to deduplicate.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig3Result:
    report_vds1: DeviceReport
    report_vds10: DeviceReport
    curve_vds1: object
    paper_mobility: float
    paper_ss: float
    paper_on_off: float
    paper_vt1: float
    paper_vt10: float


def fig3_transfer_characteristics(seed: int = 2017) -> Fig3Result:
    """Synthesise the ID-VGS measurement and extract Section 4.1's values."""
    curve1 = measured_transfer_curve(vds=-1.0, seed=seed)
    curve10 = measured_transfer_curve(vds=-10.0, seed=seed + 1)
    return Fig3Result(
        report_vds1=characterize_curve(curve1, PENTACENE_CI),
        report_vds10=characterize_curve(curve10, PENTACENE_CI),
        curve_vds1=curve1,
        paper_mobility=paper_value("mobility"),
        paper_ss=paper_value("subthreshold_slope"),
        paper_on_off=paper_value("on_off_ratio"),
        paper_vt1=paper_value("vt_vds1"),
        paper_vt10=paper_value("vt_vds10"),
    )


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4Result:
    level1: FitResult
    level61: FitResult

    @property
    def level1_much_worse(self) -> bool:
        """Figure 4's message: level 1 misses subthreshold/leakage."""
        return self.level1.rms_log_error > 10 * self.level61.rms_log_error


def fig4_model_fits(seed: int = 2017) -> Fig4Result:
    curve = measured_transfer_curve(vds=-1.0, seed=seed)
    return Fig4Result(level1=fit_level1(curve, PENTACENE_CI),
                      level61=fit_level61(curve, PENTACENE_CI))


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6Result:
    diode: VtcAnalysis
    biased: VtcAnalysis
    pseudo_e: VtcAnalysis

    def gains(self) -> tuple[float, float, float]:
        return (self.diode.max_gain, self.biased.max_gain,
                self.pseudo_e.max_gain)


def fig6_inverter_comparison(vdd: float = 15.0) -> Fig6Result:
    """Diode-load vs biased-load vs pseudo-E at VDD = 15 V (Figure 6d)."""
    diode = diode_load_inverter(PENTACENE, w_drive=100e-6, w_load=50e-6,
                                vdd=vdd)
    biased = biased_load_inverter(PENTACENE, w_drive=100e-6, w_load=20e-6,
                                  vdd=vdd, vss=-5.0)
    pseudo = pseudo_e_inverter(PENTACENE, vdd=vdd, vss=-15.0,
                               **_FIG_PSEUDO_E_SIZES)
    return Fig6Result(
        diode=analyze_inverter(diode),
        biased=analyze_inverter(biased),
        pseudo_e=analyze_inverter(pseudo),
    )


# ---------------------------------------------------------------------------
# Figure 7
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Result:
    analyses: dict[float, VtcAnalysis]     # keyed by VDD
    vss_used: dict[float, float]


def fig7_vdd_scaling() -> Fig7Result:
    """Pseudo-E at VDD = 5/10/15 V with the paper's VSS choices."""
    vss_by_vdd = dict(zip((5.0, 10.0, 15.0), paper_value("fig7_vss")))
    analyses = {}
    for vdd, vss in vss_by_vdd.items():
        cell = pseudo_e_inverter(PENTACENE, vdd=vdd, vss=vss,
                                 **_FIG_PSEUDO_E_SIZES)
        analyses[vdd] = analyze_inverter(cell)
    return Fig7Result(analyses=analyses, vss_used=vss_by_vdd)


# ---------------------------------------------------------------------------
# Figure 8
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Result:
    vss_values: np.ndarray
    vm_values: np.ndarray
    slope: float
    intercept: float
    paper_slope: float


def fig8_vss_tuning(vdd: float = 5.0,
                    vss_values: np.ndarray | None = None) -> Fig8Result:
    """VM versus VSS at VDD = 5 V and the linear fit (Figure 8b)."""
    if vss_values is None:
        vss_values = np.arange(-20.0, -9.9, 1.25)
    vms = []
    for vss in vss_values:
        cell = pseudo_e_inverter(PENTACENE, vdd=vdd, vss=float(vss),
                                 **_FIG_PSEUDO_E_SIZES)
        curve = compute_vtc(cell, n_points=101)
        vms.append(switching_threshold(curve))
    vms_arr = np.asarray(vms)
    slope, intercept = np.polyfit(vss_values, vms_arr, 1)
    return Fig8Result(vss_values=np.asarray(vss_values), vm_values=vms_arr,
                      slope=float(slope), intercept=float(intercept),
                      paper_slope=paper_value("fig8_slope"))


# ---------------------------------------------------------------------------
# Figures 11-15: architecture sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig11Result:
    organic: list[DepthSweepPoint]
    silicon: list[DepthSweepPoint]

    def optimal_depth(self, process: str) -> int:
        points = self.organic if process == "organic" else self.silicon
        base = points[0]
        def mean_rel(p):
            return sum(v / base.performance[k]
                       for k, v in p.performance.items()) / len(p.performance)
        return max(points, key=mean_rel).depth

    def normalized_performance(self, process: str) -> dict[int, dict[str, float]]:
        points = self.organic if process == "organic" else self.silicon
        base = points[0]
        return {p.depth: {k: v / base.performance[k]
                          for k, v in p.performance.items()}
                for p in points}

    def normalized_area(self, process: str) -> dict[int, float]:
        points = self.organic if process == "organic" else self.silicon
        base_area = points[0].physical.area
        return {p.depth: p.physical.area / base_area for p in points}


def fig11_pipeline_depth(max_depth: int = 15,
                         n_instructions: int = 25_000,
                         workers: int | None = None) -> Fig11Result:
    """Core performance/area versus pipeline depth for both processes."""
    org_lib, sil_lib = load_libraries()
    org_wire, sil_wire = wire_models()
    traces = make_traces(n_instructions=n_instructions)
    return Fig11Result(
        organic=depth_sweep(org_lib, org_wire, max_depth=max_depth,
                            traces=traces, workers=workers),
        silicon=depth_sweep(sil_lib, sil_wire, max_depth=max_depth,
                            traces=traces, workers=workers),
    )


@dataclass(frozen=True)
class Fig12Result:
    stage_counts: list[int]
    organic: list[PipelineResult]
    silicon: list[PipelineResult]

    def frequency_ratios(self, process: str) -> list[float]:
        points = self.organic if process == "organic" else self.silicon
        base = points[0].frequency
        return [p.frequency / base for p in points]

    def area_ratios(self, process: str) -> list[float]:
        points = self.organic if process == "organic" else self.silicon
        base = points[0].area
        return [p.area / base for p in points]

    def saturation_stage(self, process: str, tolerance: float = 0.03
                         ) -> int:
        """First requested stage count whose frequency is within
        *tolerance* of the best achieved — where the curve flattens."""
        ratios = self.frequency_ratios(process)
        best = max(ratios)
        for n, r in zip(self.stage_counts, ratios):
            if r >= best * (1.0 - tolerance):
                return n
        return self.stage_counts[-1]


def _alu_netlist(width: int) -> Netlist:
    # Shares the mapped complex-ALU slice with the core model's block
    # path (one generic netlist + one mapping per width, process-wide)
    # instead of keeping a private memo here.
    from repro.core.physical import block_netlist
    return block_netlist("complex", width)


def fig12_alu_depth(stage_counts: list[int] | None = None,
                    width: int = 16) -> Fig12Result:
    """Complex-ALU frequency and area versus pipeline stages."""
    stage_counts = stage_counts or [1, 2, 4, 6, 8, 10, 12, 14, 18, 22, 26, 30]
    netlist = _alu_netlist(width)
    org_lib, sil_lib = load_libraries()
    org_wire, sil_wire = wire_models()
    return Fig12Result(
        stage_counts=stage_counts,
        organic=pipeline_sweep(netlist, org_lib, org_wire, stage_counts),
        silicon=pipeline_sweep(netlist, sil_lib, sil_wire, stage_counts),
    )


@dataclass(frozen=True)
class Fig13Result:
    organic: dict[tuple[int, int], float]
    silicon: dict[tuple[int, int], float]
    paper_organic: tuple
    paper_silicon: tuple

    def optimum(self, process: str) -> tuple[int, int]:
        matrix = self.organic if process == "organic" else self.silicon
        return max(matrix, key=matrix.get)


def fig13_width_performance(n_instructions: int = 25_000,
                            workers: int | None = None) -> Fig13Result:
    """Normalised performance over the 30-point width grid."""
    org_lib, sil_lib = load_libraries()
    org_wire, sil_wire = wire_models()
    traces = make_traces(n_instructions=n_instructions)
    org_pts = width_sweep(org_lib, org_wire, traces=traces, workers=workers)
    sil_pts = width_sweep(sil_lib, sil_wire, traces=traces, workers=workers)
    return Fig13Result(
        organic=width_matrix(org_pts, "performance"),
        silicon=width_matrix(sil_pts, "performance"),
        paper_organic=paper_value("fig13_org_matrix"),
        paper_silicon=paper_value("fig13_si_matrix"),
    )


@dataclass(frozen=True)
class Fig14Result:
    organic: dict[tuple[int, int], float]
    silicon: dict[tuple[int, int], float]

    def max_process_difference(self) -> float:
        """Largest |organic - silicon| across the grid (paper: 'similar')."""
        return max(abs(self.organic[k] - self.silicon[k])
                   for k in self.organic)


def fig14_width_area(workers: int | None = None) -> Fig14Result:
    """Normalised area over the width grid (no simulation needed)."""
    org_lib, sil_lib = load_libraries()
    org_wire, sil_wire = wire_models()
    # IPC is irrelevant for area: reuse width_sweep with a tiny trace.
    traces = make_traces(workloads=["dhrystone"], n_instructions=512)
    org_pts = width_sweep(org_lib, org_wire, traces=traces, workers=workers)
    sil_pts = width_sweep(sil_lib, sil_wire, traces=traces, workers=workers)
    return Fig14Result(
        organic=width_matrix(org_pts, "area"),
        silicon=width_matrix(sil_pts, "area"),
    )


@dataclass(frozen=True)
class Fig15Result:
    alu_stage_counts: list[int]
    alu: dict[str, list[float]]           # 4 series of frequency ratios
    core_depths: list[int]
    core: dict[str, list[float]]

    SERIES = ("organic", "organic_no_wire", "silicon", "silicon_no_wire")


def fig15_wire_ablation(alu_stages: list[int] | None = None,
                        core_max_depth: int = 15,
                        width: int = 16) -> Fig15Result:
    """Frequency versus stages with and without wire delay (Figure 15)."""
    alu_stages = alu_stages or [1, 2, 4, 6, 8, 10, 14, 18, 22, 26, 30]
    netlist = _alu_netlist(width)
    org_lib, sil_lib = load_libraries()
    org_wire, sil_wire = wire_models()

    alu_series: dict[str, list[float]] = {}
    core_series: dict[str, list[float]] = {}
    core_depths = list(range(9, core_max_depth + 1))

    from repro.core.config import CoreConfig
    from repro.core.physical import core_physical
    from repro.core.tradeoffs import deepen_pipeline

    for label, lib, wire in (
            ("organic", org_lib, org_wire),
            ("organic_no_wire", org_lib, org_wire.scaled(0.0)),
            ("silicon", sil_lib, sil_wire),
            ("silicon_no_wire", sil_lib, sil_wire.scaled(0.0))):
        sweep = pipeline_sweep(netlist, lib, wire, alu_stages)
        base = sweep[0].frequency
        alu_series[label] = [p.frequency / base for p in sweep]

        config = CoreConfig()
        freqs = []
        while config.depth <= core_max_depth:
            freqs.append(core_physical(config, lib, wire).frequency)
            if config.depth == core_max_depth:
                break
            config = deepen_pipeline(config, lib, wire)
        core_series[label] = [f / freqs[0] for f in freqs]

    return Fig15Result(alu_stage_counts=alu_stages, alu=alu_series,
                       core_depths=core_depths, core=core_series)
