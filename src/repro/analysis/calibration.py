"""Paper-reported reference values for every reproduced figure.

Each entry records what the paper reports so that benchmarks, tests and
EXPERIMENTS.md can compare measured values against it without re-reading
the paper.  Comparisons check *shape* (orderings, factors, optima
locations), not absolute equality — our substrate is a from-scratch
simulator, not the authors' fab + EDA stack.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationEntry:
    """One paper-reported quantity."""

    figure: str
    quantity: str
    value: float | tuple
    unit: str = ""
    note: str = ""


PAPER: dict[str, CalibrationEntry] = {}


def _add(key: str, figure: str, quantity: str, value, unit: str = "",
         note: str = "") -> None:
    PAPER[key] = CalibrationEntry(figure=figure, quantity=quantity,
                                  value=value, unit=unit, note=note)


# --- Section 4.1 / Figure 3: device DC characteristics ----------------------
_add("mobility", "Fig 3", "linear mobility", 0.16, "cm^2/Vs")
_add("subthreshold_slope", "Fig 3", "subthreshold slope", 350.0, "mV/dec")
_add("on_off_ratio", "Fig 3", "on/off current ratio", 1e6)
_add("vt_vds1", "Fig 3", "VT at VDS=-1V (physical)", -1.3, "V")
_add("vt_vds10", "Fig 3", "VT at VDS=-10V (physical)", +1.3, "V")
_add("vt_spread", "Sec 4.1", "VT spread across sample", 0.5, "V")

# --- Figure 6: inverter style comparison at VDD = 15 V ----------------------
_add("fig6_vm", "Fig 6d", "VM (diode, biased, pseudo-E)", (8.1, 6.8, 7.7), "V")
_add("fig6_gain", "Fig 6d", "max gain (diode, biased, pseudo-E)",
     (1.2, 1.6, 3.0))
_add("fig6_nmh", "Fig 6d", "NMH (diode, biased, pseudo-E)", (0.3, 0.9, 3.0), "V")
_add("fig6_nml", "Fig 6d", "NML (diode, biased, pseudo-E)", (0.4, 1.2, 3.5), "V")
_add("fig6_power_low", "Fig 6d", "static power at VIN=0 (uW)",
     (109.0, 126.0, 215.0), "uW")
_add("fig6_power_high", "Fig 6d", "static power at VIN=10V (uW)",
     (0.01, 0.01, 0.83), "uW",
     note="first two reported as <0.01 uW")

# --- Figure 7: pseudo-E across VDD ------------------------------------------
_add("fig7_vm", "Fig 7d", "VM at VDD=5/10/15", (2.4, 4.6, 7.7), "V")
_add("fig7_gain", "Fig 7d", "gain at VDD=5/10/15", (3.2, 2.9, 3.0))
_add("fig7_power_low", "Fig 7d", "static power at VIN=0", (13.0, 98.0, 215.0),
     "uW")
_add("fig7_vss", "Fig 7d", "chosen VSS", (-15.0, -20.0, -15.0), "V")

# --- Figure 8: VM vs VSS ------------------------------------------------------
_add("fig8_slope", "Fig 8b", "dVM/dVSS", 0.22,
     note="VM = 0.22 VSS + 5.76; VM increases as VSS increases")
_add("fig8_vss_for_center", "Fig 8b", "VSS giving VM = VDD/2", -14.8, "V")

# --- Section 5.3 / Figures 11, 15: pipeline depth -----------------------------
_add("baseline_freq_organic", "Sec 5.3", "9-stage organic frequency", 200.0,
     "Hz", note="'approximately 200 Hz'")
_add("baseline_freq_silicon", "Sec 5.3", "9-stage silicon frequency", 800e6,
     "Hz")
_add("optimal_depth_silicon", "Fig 11", "optimal depth (silicon)", (10, 11),
     "stages")
_add("optimal_depth_organic", "Fig 11", "optimal depth (organic)", (14, 15),
     "stages")
_add("fig15_core_f14_organic", "Fig 15b", "organic 14-stage frequency ratio",
     2.0, note="'twice as high as its baseline frequency'")
_add("fig15_core_f14_silicon", "Fig 15b", "silicon 14-stage frequency ratio",
     1.5, note="'can only achieve 1.5x improvement'")

# --- Figure 12: ALU depth -------------------------------------------------------
_add("fig12_si_saturation", "Fig 12b", "silicon ALU frequency saturates near",
     8, "stages")
_add("fig12_org_top", "Fig 12b", "organic ALU frequency tops out near",
     22, "stages")

# --- Figures 13/14: width -----------------------------------------------------------
_add("fig13_si_optimum", "Fig 13a", "silicon optimum (back, front)", (4, 2))
_add("fig13_org_optimum", "Fig 13b", "organic optimum (back, front)", (7, 2))
_add("fig13_si_matrix", "Fig 13a", "silicon normalised performance",
     ((0.80, 0.97, 0.87, 0.78, 0.74, 0.69),
      (0.82, 1.00, 0.91, 0.87, 0.84, 0.77),
      (0.81, 0.96, 0.94, 0.91, 0.84, 0.78),
      (0.77, 0.97, 0.91, 0.88, 0.84, 0.80),
      (0.75, 0.95, 0.90, 0.87, 0.81, 0.79)),
     note="rows: back-end 3..7; cols: front-end 1..6")
_add("fig13_org_matrix", "Fig 13b", "organic normalised performance",
     ((0.81, 0.95, 0.86, 0.79, 0.80, 0.76),
      (0.81, 0.98, 0.91, 0.91, 0.92, 0.86),
      (0.81, 0.98, 0.96, 0.93, 0.90, 0.84),
      (0.79, 0.99, 0.96, 0.91, 0.91, 0.89),
      (0.79, 1.00, 0.95, 0.91, 0.89, 0.88)),
     note="rows: back-end 3..7; cols: front-end 1..6")
_add("fig14_area_range", "Fig 14", "normalised area range",
     (0.48, 1.00), note="similar for both processes")


def paper_value(key: str):
    """The paper-reported value for *key* (raises KeyError if unknown)."""
    return PAPER[key].value
