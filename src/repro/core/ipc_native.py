"""Optional compiled backend for the fast IPC timing kernel.

The fast kernel's recurrence (:func:`repro.core.superscalar._fast_cycles`)
is a few dozen integer operations per dynamic instruction; at sweep scale
(millions of instructions per figure) the CPython interpreter dominates
its runtime.  This module compiles the identical recurrence as a tiny C
function with whatever system compiler is already present (``cc`` /
``gcc`` / ``clang``) and calls it through :mod:`ctypes` on the trace's
packed arrays.

The backend is strictly optional and silently gated:

- no compiler, a failed compile, or ``REPRO_NATIVE=0`` -> the pure-Python
  fast loop runs instead (same results, just slower);
- the shared object is cached under ``REPRO_NATIVE_DIR`` (default
  ``~/.cache/repro/native``) keyed by a hash of the C source, so the
  compile cost is paid once per machine, not per run;
- the compiled kernel is covered by the same cycle-exactness suite as the
  Python loops (``tests/core/test_kernel_equivalence.py``).

Nothing is installed and no third-party build system is involved: the
source below is written to the cache directory and compiled with
``cc -O2 -shared -fPIC`` in one subprocess call.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.core.isa import (
    CODE_LOAD,
    CODE_BRANCH,
    EXEC_LATENCY_BY_CODE,
    PIPE_OCCUPANCY_BY_CODE,
)
from repro.runtime import telemetry
from repro.runtime.log import get_logger

logger = get_logger(__name__)

#: Set to ``0`` to force the pure-Python fast kernel.
NATIVE_ENV = "REPRO_NATIVE"

#: Override the directory where compiled kernels are cached.
NATIVE_DIR_ENV = "REPRO_NATIVE_DIR"

_C_SOURCE = """
#include <stdint.h>

/* Cycle count of the greedy out-of-order schedule; a line-for-line
 * transliteration of the general loop in repro/core/superscalar.py
 * (_fast_cycles).  Scratch rings are allocated (zeroed) by the caller.
 *
 * stats (nullable, written on return):
 *   [0] applied fetch redirects (mispredicted branches whose resolve
 *       actually moved the fetch cursor) — same counting as the
 *       Python loops' ipc.fetch_redirects.
 */
long long repro_ipc_cycles(
    long long n,
    const int8_t *codes, const int8_t *src0, const int8_t *src1,
    const int8_t *dst, const uint8_t *miss, const uint8_t *mflags,
    long long front_width, long long frontend_depth,
    long long rob_size, long long iq_size, long long lsq_size,
    long long n_alu, long long code_load, long long code_branch,
    const long long *comp_add, const long long *occ, long long miss_extra,
    long long *retire_ring, long long *issue_ring, long long *mem_ring,
    long long *alu_free, long long *stats)
{
    long long redirects = 0;
    long long reg_ready[32] = {0};
    long long mem_free = 0, branch_free = 0;
    long long rp = 0, qp = 0, mp = 0;
    long long fetch_cycle = 0, fetch_fill = 0;
    long long last_retire = 0, retire_fill = 0, retire_cycle = -1;
    long long branch_idx = 0;

    for (long long i = 0; i < n; i++) {
        long long code = codes[i];

        /* fetch / front end + occupancy windows */
        if (fetch_fill >= front_width) { fetch_cycle += 1; fetch_fill = 0; }
        fetch_fill += 1;
        long long dispatch = fetch_cycle + frontend_depth;
        long long t = retire_ring[rp] + 1;
        if (t > dispatch) dispatch = t;
        t = issue_ring[qp] + 1;
        if (t > dispatch) dispatch = t;

        /* source readiness */
        long long ready = dispatch;
        long long s = src0[i];
        if (s >= 0 && reg_ready[s] > ready) ready = reg_ready[s];
        s = src1[i];
        if (s >= 0 && reg_ready[s] > ready) ready = reg_ready[s];

        /* structural issue + completion */
        long long issue, completion;
        if (code < code_load) {                    /* ALU / MUL / DIV */
            long long best = 0, best_free = alu_free[0];
            for (long long p = 1; p < n_alu; p++)
                if (alu_free[p] < best_free) { best = p; best_free = alu_free[p]; }
            issue = ready >= best_free ? ready : best_free;
            alu_free[best] = issue + occ[code];
            completion = issue + comp_add[code];
        } else if (code < code_branch) {           /* LOAD / STORE */
            t = mem_ring[mp] + 1;
            if (t > ready) ready = t;
            issue = ready >= mem_free ? ready : mem_free;
            mem_free = issue + 1;
            mem_ring[mp] = issue;
            if (++mp == lsq_size) mp = 0;
            completion = issue + comp_add[code] + (miss[i] ? miss_extra : 0);
        } else {                                   /* BRANCH */
            issue = ready >= branch_free ? ready : branch_free;
            branch_free = issue + 1;
            completion = issue + comp_add[code_branch];
            if (mflags[branch_idx]) {
                long long redirect = completion + 1;
                if (redirect > fetch_cycle) {
                    fetch_cycle = redirect; fetch_fill = 0; redirects++;
                }
            }
            branch_idx += 1;
        }

        long long d = dst[i];
        if (d >= 0) reg_ready[d] = completion;

        /* in-order retirement */
        long long retire = completion + 1;
        if (retire < last_retire) retire = last_retire;
        if (retire == retire_cycle && retire_fill >= front_width) {
            retire += 1;
            retire_fill = 0;
        }
        if (retire != retire_cycle) { retire_cycle = retire; retire_fill = 0; }
        retire_fill += 1;
        last_retire = retire;

        retire_ring[rp] = retire;
        issue_ring[qp] = issue;
        if (++rp == rob_size) rp = 0;
        if (++qp == iq_size) qp = 0;
    }
    if (stats) stats[0] = redirects;
    return last_retire + 1;
}
"""

# Load state: "unset" until the first request, then the bound ctypes
# function or None (unavailable).  Never retried within a process.
_STATE: list = ["unset"]


def native_dir() -> Path:
    """Directory holding compiled kernel objects."""
    override = os.environ.get(NATIVE_DIR_ENV)
    if override:
        return Path(override)
    try:
        return Path.home() / ".cache" / "repro" / "native"
    except RuntimeError:                           # no resolvable home
        return Path(tempfile.gettempdir()) / "repro-native"


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile() -> Path | None:
    """Compile (or reuse) the kernel shared object; None on any failure."""
    tag = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    directory = native_dir()
    so_path = directory / f"ipc_kernel_{tag}.so"
    if so_path.exists():
        return so_path

    compiler = _find_compiler()
    if compiler is None:
        logger.warning(
            "no C compiler found; the IPC timing kernel runs as pure "
            "Python (correct, but several times slower)")
        return None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        src_path = directory / f"ipc_kernel_{tag}.c"
        src_path.write_text(_C_SOURCE)
        with tempfile.NamedTemporaryFile(
                dir=directory, suffix=".so", delete=False) as tmp:
            tmp_path = Path(tmp.name)
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(tmp_path),
             str(src_path)],
            capture_output=True, text=True, timeout=120)
        if result.returncode != 0:
            logger.warning(
                "IPC kernel compile failed (%s); falling back to the pure-"
                "Python kernel:\n%s", compiler, result.stderr.strip())
            tmp_path.unlink(missing_ok=True)
            return None
        os.replace(tmp_path, so_path)              # atomic publish
        return so_path
    except OSError as exc:
        logger.warning(
            "IPC kernel build unavailable (%s); falling back to the pure-"
            "Python kernel", exc)
        return None


def _bind(so_path: Path):
    lib = ctypes.CDLL(str(so_path))
    fn = lib.repro_ipc_cycles
    ll = ctypes.c_longlong
    p_i8 = ctypes.POINTER(ctypes.c_int8)
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    p_ll = ctypes.POINTER(ll)
    fn.restype = ll
    fn.argtypes = [ll, p_i8, p_i8, p_i8, p_i8, p_u8, p_u8,
                   ll, ll, ll, ll, ll, ll, ll, ll,
                   p_ll, p_ll, ll, p_ll, p_ll, p_ll, p_ll, p_ll]
    return fn


def load_kernel():
    """The bound C kernel, or None when disabled/unavailable (cached)."""
    if _STATE[0] != "unset":
        return _STATE[0]
    if os.environ.get(NATIVE_ENV, "1") == "0":
        _STATE[0] = None
        return None
    so_path = _compile()
    if so_path is None:
        _STATE[0] = None
        return None
    try:
        _STATE[0] = _bind(so_path)
    except OSError as exc:                         # stale/foreign object
        logger.warning(
            "IPC kernel load failed (%s); falling back to the pure-Python "
            "kernel", exc)
        _STATE[0] = None
    return _STATE[0]


def native_available() -> bool:
    """True when the compiled kernel is (or can be made) loadable."""
    return load_kernel() is not None


def reset(state: str = "unset") -> None:
    """Forget the cached load state (tests toggle REPRO_NATIVE around this)."""
    _STATE[0] = state


_P_I8 = ctypes.POINTER(ctypes.c_int8)
_P_U8 = ctypes.POINTER(ctypes.c_uint8)
_P_LL = ctypes.POINTER(ctypes.c_longlong)
_OCC = np.asarray(PIPE_OCCUPANCY_BY_CODE, dtype=np.int64)


def native_cycles(config, trace) -> int | None:
    """Cycle count via the compiled kernel, or None when unavailable.

    Takes the same inputs as the pure-Python fast loop: the trace's
    packed arrays and the mispredict flags precomputed per
    ``(trace, predictor_bits)``.  Scratch ring buffers for the
    ROB/IQ/LSQ occupancy windows are allocated zeroed here, matching
    the Python loops' warm-up-free ring initialisation.
    """
    kernel = load_kernel()
    if kernel is None:
        return None

    codes, src0, src1, dsts, miss = trace.packed_arrays()
    mflags = trace.mispredict_array(config.predictor_bits)

    base = config.issue_to_execute + config.execute_latency - 1
    comp_add = np.asarray(
        [base + lat for lat in EXEC_LATENCY_BY_CODE], dtype=np.int64)
    comp_add[CODE_LOAD] += config.l1_hit_latency
    miss_extra = config.l1_miss_latency - config.l1_hit_latency

    retire_ring = np.zeros(config.rob_size, dtype=np.int64)
    issue_ring = np.zeros(config.iq_size, dtype=np.int64)
    mem_ring = np.zeros(config.lsq_size, dtype=np.int64)
    alu_free = np.zeros(config.alu_pipes, dtype=np.int64)
    stats = np.zeros(1, dtype=np.int64)

    cycles = int(kernel(
        len(codes),
        codes.ctypes.data_as(_P_I8), src0.ctypes.data_as(_P_I8),
        src1.ctypes.data_as(_P_I8), dsts.ctypes.data_as(_P_I8),
        miss.ctypes.data_as(_P_U8), mflags.ctypes.data_as(_P_U8),
        config.front_width, config.frontend_depth,
        config.rob_size, config.iq_size, config.lsq_size,
        config.alu_pipes, CODE_LOAD, CODE_BRANCH,
        comp_add.ctypes.data_as(_P_LL), _OCC.ctypes.data_as(_P_LL),
        miss_extra,
        retire_ring.ctypes.data_as(_P_LL), issue_ring.ctypes.data_as(_P_LL),
        mem_ring.ctypes.data_as(_P_LL), alu_free.ctypes.data_as(_P_LL),
        stats.ctypes.data_as(_P_LL)))
    if telemetry.ENABLED and stats[0]:
        telemetry.count("ipc.fetch_redirects", int(stats[0]))
    return cycles
