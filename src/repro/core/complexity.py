"""Structure delay and area models (Palacharla-style), process-priced.

The width experiments hinge on "issue logic complexity that can have
significant overhead in cycle time and latency due to the higher gate and
interconnect delays" (Section 5.4).  Following Palacharla/Jouppi/Smith's
classic decomposition, each superscalar structure is modelled as

    delay = (logic part, in FO4 units)  +  (wire part, physical length)

where the FO4 unit and every wire penalty are evaluated through *this
process's* NLDM library and wire model.  The wire parts scale with
structure geometry (entries x storage-cell side, datapath heights, number
of pipes), so silicon pays several FO4 for the same structure the organic
process crosses almost for free — the mechanism behind Figure 13.

Storage arrays are flop-based (AnyCore/FabScalar synthesise them from
cells, and the organic library has no SRAM), so the storage-cell side
derives from the library's own DFF area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.characterization.library import Library
from repro.synthesis.pipeline import broadcast_penalty
from repro.synthesis.wires import WireModel


def _log2ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


@dataclass(frozen=True)
class StructureModel:
    """Shared geometry/pricing helpers bound to one process."""

    library: Library
    wire: WireModel

    @property
    def fo4(self) -> float:
        return self.library.inverter_fo4_delay()

    @property
    def cell_side(self) -> float:
        """Side of one storage bit-cell (a library flop plus mux)."""
        return math.sqrt(1.3 * self.library.dff.area)

    # -- generic flop array ------------------------------------------------------

    @staticmethod
    def _effective_rows(entries: int) -> float:
        """Bitline rows after banking: arrays beyond 32 entries are split
        into banks with a short per-bank bitline plus a bank-select mux
        trunk (standard hierarchical-bitline construction)."""
        if entries <= 32:
            return float(entries)
        return 32.0 + 0.25 * (entries - 32)

    @staticmethod
    def _port_scale(ports: int) -> float:
        return 1.0 + 0.12 * max(ports - 2, 0)

    def array_delay(self, entries: int, bits: int, ports: int) -> float:
        """Access time of a flop array: decode + wordline + bitline + mux."""
        side = self.cell_side * self._port_scale(ports)
        decode = (2.0 + 0.5 * _log2ceil(entries)) * self.fo4
        wordline = broadcast_penalty(self.library, self.wire, bits * side)
        bitline = broadcast_penalty(self.library, self.wire,
                                    self._effective_rows(entries) * side)
        sense = 2.0 * self.fo4
        return decode + wordline + bitline + sense

    def array_area(self, entries: int, bits: int, ports: int) -> float:
        scale = self._port_scale(ports)
        return entries * bits * 1.3 * self.library.dff.area * scale ** 2

    # -- named structures ----------------------------------------------------------

    def rename_delay(self, front_width: int, phys_regs: int) -> float:
        """Map-table read + intra-group dependency check.

        The dependency check compares every instruction's sources against
        every older instruction's destination in the rename group — a
        serial gate network quadratic in the front width (Palacharla's
        classic result), plus a cross-group wire that grows with the
        number of ways.
        """
        ports = 3 * front_width
        table = self.array_delay(32, _log2ceil(phys_regs), ports)
        check = (8.0 + 0.75 * front_width * front_width) * self.fo4
        group_wire = broadcast_penalty(
            self.library, self.wire,
            front_width * 24 * self.cell_side)
        return table + check + group_wire

    def wakeup_select_delay(self, iq_size: int, back_width: int,
                            front_width: int = 1) -> float:
        """Issue loop: tag broadcast across the IQ, match, select, grant.

        The select arbiter also steers the front end's dispatch group, so
        its tree gains levels with both widths.
        """
        tag_span = iq_size * self.cell_side * (1.0 + 0.15 * back_width)
        tag_drive = broadcast_penalty(self.library, self.wire, tag_span)
        match = 3.0 * self.fo4
        select = (1.5 * _log2ceil(iq_size)
                  * (1.0 + 0.08 * (front_width - 1))) * self.fo4
        grant = broadcast_penalty(self.library, self.wire,
                                  iq_size * self.cell_side)
        return tag_drive + match + select + grant

    def regfile_delay(self, phys_regs: int, data_width: int,
                      back_width: int) -> float:
        # Read ports are banked/replicated per pipe pair, so the critical
        # bit-cell sees 2 reads + the write ports.
        ports = 2 + back_width
        return self.array_delay(phys_regs, data_width, ports)

    def bypass_delay(self, back_width: int, data_width: int) -> float:
        """Result broadcast across all execution pipes plus operand mux.

        The wire spans every pipe's datapath height, so its length grows
        linearly with back-end width (and its RC quadratically) — the
        width-limiting wire Section 5.4/5.5 describes.
        """
        pipe_height = data_width * self.cell_side * 0.8
        span = back_width * pipe_height
        # Fanin-4 operand-select tree: its gate depth is flat across the
        # experiment's 3-7 pipes, so the width cost is carried by the
        # broadcast wire — i.e. paid chiefly by the wire-bound process.
        mux = (1.0 + 1.2 * math.ceil(math.log(back_width + 2, 4))) * self.fo4
        return broadcast_penalty(self.library, self.wire, span) + mux

    def btb_delay(self, front_width: int) -> float:
        return self.array_delay(64, 24, 1 + front_width // 2)

    def rob_delay(self, rob_size: int, front_width: int) -> float:
        return self.array_delay(rob_size, 40, 2 * front_width)

    def lsq_delay(self, lsq_size: int) -> float:
        cam_span = lsq_size * self.cell_side
        return (self.array_delay(lsq_size, 40, 2)
                + broadcast_penalty(self.library, self.wire, cam_span))
