"""Trace-driven out-of-order core timing model (the IPC source).

This is the repro stand-in for AnyCore's cycle-accurate C++ simulator.  It
is a greedy dataflow-scheduling model: each dynamic instruction's dispatch,
issue, completion and retirement times are computed in trace order from

- front-end bandwidth (``front_width`` per cycle) and depth (refill after
  branch mispredicts, detected by a gshare predictor),
- register dataflow (RAW dependences through renamed registers; full
  bypass, plus the extra wakeup-loop bubbles deeper issue/regread regions
  introduce),
- structural resources: per-type execution pipes (memory pipe, branch
  pipe, ``back_width - 2`` ALU pipes; the stallable divider blocks its
  pipe), issue-queue / ROB / LSQ occupancy windows, in-order retirement
  bandwidth,
- the data cache (hit/miss latencies; miss events come from the trace).

Greedy scheduling models of this form track cycle-accurate simulators
closely for IPC *trends* across depth/width sweeps, which is what the
paper's Figures 11 and 13 need.

Two kernels implement the same recurrence:

- the **fast** kernel (default) runs a tight scalar loop over the trace's
  packed arrays (:meth:`Trace.packed_lists`) with preallocated ring
  buffers for the occupancy windows and gshare mispredict flags
  precomputed once per ``(trace, predictor_bits)``
  (:meth:`Trace.mispredict_flags`) — the predictor stream never depends
  on core timing, so sweeps share it across every configuration; when a
  system C compiler is available the identical recurrence runs compiled
  (:mod:`repro.core.ipc_native`, opt out with ``REPRO_NATIVE=0``);
- the **reference** kernel is the original instruction-object loop with a
  live :class:`GsharePredictor`, kept as the cycle-exact oracle.

Select with ``REPRO_IPC_KERNEL=fast|reference`` (or the ``kernel=``
argument); both produce identical cycles, mispredicts and miss counts
(enforced by the equivalence test suite).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter

from repro.core import ipc_native
from repro.core.branch import GsharePredictor
from repro.core.config import CoreConfig
from repro.core.isa import (
    CODE_ALU,
    CODE_BRANCH,
    CODE_LOAD,
    EXEC_LATENCY,
    EXEC_LATENCY_BY_CODE,
    PIPE_OCCUPANCY_BY_CODE,
    InstrClass,
)
from repro.core.trace import Trace
from repro.errors import ConfigError, SimulationError
from repro.runtime import profiling, telemetry

#: Environment knob selecting the timing kernel.
KERNEL_ENV = "REPRO_IPC_KERNEL"
_KERNELS = ("fast", "reference")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one trace run on one configuration."""

    config_name: str
    trace_name: str
    instructions: int
    cycles: int
    ipc: float
    branch_count: int
    mispredicts: int
    l1_misses: int

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branch_count if self.branch_count else 0.0


def _resolve_kernel(kernel: str | None) -> str:
    kernel = kernel or os.environ.get(KERNEL_ENV) or "fast"
    if kernel not in _KERNELS:
        raise ConfigError(
            f"unknown IPC kernel {kernel!r}; choose one of {_KERNELS}")
    return kernel


def simulate(config: CoreConfig, trace: Trace,
             kernel: str | None = None) -> SimulationResult:
    """Run *trace* through the timing model; returns IPC and statistics.

    ``kernel`` (default: the ``REPRO_IPC_KERNEL`` environment variable,
    else ``'fast'``) picks the array kernel or the reference oracle.
    """
    if profiling.ENABLED:
        t0 = perf_counter()
        result = _simulate(config, trace, kernel)
        profiling.add("ipc", perf_counter() - t0)
        return result
    return _simulate(config, trace, kernel)


def _simulate(config: CoreConfig, trace: Trace,
              kernel: str | None = None) -> SimulationResult:
    if len(trace) == 0:
        raise SimulationError("empty trace")
    if _resolve_kernel(kernel) == "fast":
        cycles = _fast_cycles(config, trace)
        mispredicts = sum(trace.mispredict_flags(config.predictor_bits))
        if telemetry.ENABLED:
            _flush_simulation(len(trace), cycles)
        return SimulationResult(
            config_name=config.name,
            trace_name=trace.name,
            instructions=len(trace),
            cycles=cycles,
            ipc=len(trace) / cycles,
            branch_count=trace.branch_count(),
            mispredicts=mispredicts,
            l1_misses=trace.l1_miss_count(),
        )
    result = _simulate_reference(config, trace)
    if telemetry.ENABLED:
        telemetry.count("ipc.reference_kernel_runs")
        _flush_simulation(result.instructions, result.cycles)
    return result


def _flush_simulation(instructions: int, cycles: int) -> None:
    """One registry update per simulated trace (never per instruction)."""
    telemetry.count("ipc.simulations")
    telemetry.count("ipc.instructions", instructions)
    telemetry.count("ipc.cycles", cycles)
    telemetry.observe("ipc.cycles_per_simulation", cycles)


# ---------------------------------------------------------------------------
# Fast kernel: packed arrays, precomputed predictor stream, ring buffers
# ---------------------------------------------------------------------------

def _fast_cycles(config: CoreConfig, trace: Trace) -> int:
    """Total cycles of the greedy schedule, from the packed trace.

    Identical recurrence to :func:`_simulate_reference`; the loop body is
    arranged for CPython speed — everything is a local, the unbounded
    ``retire_times``/``issue_times``/``mem_issue_times`` lists are
    preallocated rings of exactly the window sizes (the recurrence only
    ever reads entry ``idx - window``, i.e. the slot about to be
    overwritten), and per-class constants are folded into six-entry
    tables indexed by the packed class code.

    The ``idx >= window`` warm-up guards of the reference are dropped:
    the rings start at 0, so an unwarmed slot reads as ``t = 1``, and
    ``dispatch >= frontend_depth >= 4`` (four front-end regions of at
    least one stage each) makes that comparison a provable no-op.

    A width-1 front end (the paper's baseline, and every depth-sweep
    point) additionally collapses the fetch-fill and retire-fill
    bookkeeping — one instruction per cycle in, one out — so that case
    runs in a dedicated loop.

    When a system C compiler is present the same recurrence runs as a
    compiled kernel instead (:mod:`repro.core.ipc_native`; disable with
    ``REPRO_NATIVE=0``) — the Python loops below are the always-available
    fallback and the first line of defence in the equivalence suite.
    """
    cycles = ipc_native.native_cycles(config, trace)
    if cycles is not None:
        if telemetry.ENABLED:
            telemetry.count("ipc.native_kernel_runs")
        return cycles
    if telemetry.ENABLED:
        telemetry.count("ipc.python_kernel_runs")
    if config.front_width == 1:
        return _fast_cycles_w1(config, trace)
    codes, src0, src1, dsts, load_miss = trace.packed_lists()
    mflags = trace.mispredict_flags(config.predictor_bits)

    front_width = config.front_width
    frontend_depth = config.frontend_depth
    rob_size = config.rob_size
    iq_size = config.iq_size
    lsq_size = config.lsq_size
    n_alu = config.alu_pipes
    single_alu = n_alu == 1

    # completion = issue + comp_add[code] (+ the extra miss penalty for
    # missing loads); pipe occupancy = occ[code].
    base = config.issue_to_execute + config.execute_latency - 1
    comp_add = [base + lat for lat in EXEC_LATENCY_BY_CODE]
    comp_add[CODE_LOAD] += config.l1_hit_latency
    miss_extra = config.l1_miss_latency - config.l1_hit_latency
    occ = PIPE_OCCUPANCY_BY_CODE

    alu_free = [0] * n_alu
    alu0 = 0
    mem_free = 0
    branch_free = 0
    reg_ready = [0] * 32

    retire_ring = [0] * rob_size
    issue_ring = [0] * iq_size
    mem_ring = [0] * lsq_size
    rp = qp = mp = 0        # ring cursors (idx mod window)

    fetch_cycle = 0
    fetch_fill = 0
    last_retire = 0
    retire_fill = 0
    retire_cycle = -1
    branch_idx = 0
    redirects = 0

    for code, s0, s1, d, miss in zip(codes, src0, src1, dsts, load_miss):
        # ---- fetch / front end + occupancy windows ---------------------------
        if fetch_fill >= front_width:
            fetch_cycle += 1
            fetch_fill = 0
        fetch_fill += 1
        dispatch = fetch_cycle + frontend_depth
        t = retire_ring[rp] + 1
        if t > dispatch:
            dispatch = t
        t = issue_ring[qp] + 1
        if t > dispatch:
            dispatch = t

        # ---- source readiness -------------------------------------------------
        ready = dispatch
        if s0 >= 0:
            t = reg_ready[s0]
            if t > ready:
                ready = t
        if s1 >= 0:
            t = reg_ready[s1]
            if t > ready:
                ready = t

        # ---- structural issue + completion -------------------------------------
        if code < CODE_LOAD:                       # ALU / MUL / DIV
            if single_alu:
                issue = ready if ready >= alu0 else alu0
                alu0 = issue + occ[code]
            else:
                best = 0
                best_free = alu_free[0]
                for p in range(1, n_alu):
                    v = alu_free[p]
                    if v < best_free:
                        best, best_free = p, v
                issue = ready if ready >= best_free else best_free
                alu_free[best] = issue + occ[code]
            completion = issue + comp_add[code]
        elif code < CODE_BRANCH:                   # LOAD / STORE
            t = mem_ring[mp] + 1
            if t > ready:
                ready = t
            issue = ready if ready >= mem_free else mem_free
            mem_free = issue + 1
            mem_ring[mp] = issue
            mp += 1
            if mp == lsq_size:
                mp = 0
            completion = issue + comp_add[code] + (miss_extra if miss else 0)
        else:                                      # BRANCH
            issue = ready if ready >= branch_free else branch_free
            branch_free = issue + 1
            completion = issue + comp_add[CODE_BRANCH]
            if mflags[branch_idx]:
                redirect = completion + 1
                if redirect > fetch_cycle:
                    fetch_cycle = redirect
                    fetch_fill = 0
                    redirects += 1
            branch_idx += 1

        if d >= 0:
            reg_ready[d] = completion

        # ---- in-order retirement -----------------------------------------------
        retire = completion + 1
        if retire < last_retire:
            retire = last_retire
        if retire == retire_cycle:
            if retire_fill >= front_width:
                retire += 1
                retire_fill = 0
        if retire != retire_cycle:
            retire_cycle = retire
            retire_fill = 0
        retire_fill += 1
        last_retire = retire

        retire_ring[rp] = retire
        issue_ring[qp] = issue
        rp += 1
        if rp == rob_size:
            rp = 0
        qp += 1
        if qp == iq_size:
            qp = 0

    if telemetry.ENABLED and redirects:
        telemetry.count("ipc.fetch_redirects", redirects)
    return last_retire + 1


def _fast_cycles_w1(config: CoreConfig, trace: Trace) -> int:
    """:func:`_fast_cycles` specialised for ``front_width == 1``.

    With one instruction fetched and one retired per cycle, the fill
    counters degenerate: fetch advances one cycle per instruction (reset
    by branch redirects), and the retire slot is simply
    ``max(completion + 1, last_retire + 1)``.  Covered by the same
    equivalence suite as the general loop (the config grids include
    width-1 points).
    """
    codes, src0, src1, dsts, load_miss = trace.packed_lists()
    mflags = trace.mispredict_flags(config.predictor_bits)

    frontend_depth = config.frontend_depth
    rob_size = config.rob_size
    iq_size = config.iq_size
    lsq_size = config.lsq_size
    n_alu = config.alu_pipes
    single_alu = n_alu == 1

    base = config.issue_to_execute + config.execute_latency - 1
    comp_add = [base + lat for lat in EXEC_LATENCY_BY_CODE]
    comp_add[CODE_LOAD] += config.l1_hit_latency
    miss_extra = config.l1_miss_latency - config.l1_hit_latency
    occ = PIPE_OCCUPANCY_BY_CODE

    alu_free = [0] * n_alu
    alu0 = 0
    mem_free = 0
    branch_free = 0
    reg_ready = [0] * 32

    retire_ring = [0] * rob_size
    issue_ring = [0] * iq_size
    mem_ring = [0] * lsq_size
    rp = qp = mp = 0

    fetch_cycle = 0
    fetched = False         # fetch_cycle already holds an instruction
    last_retire = 0
    branch_idx = 0
    redirects = 0

    for code, s0, s1, d, miss in zip(codes, src0, src1, dsts, load_miss):
        # ---- fetch / front end + occupancy windows ---------------------------
        if fetched:
            fetch_cycle += 1
        else:
            fetched = True
        dispatch = fetch_cycle + frontend_depth
        t = retire_ring[rp] + 1
        if t > dispatch:
            dispatch = t
        t = issue_ring[qp] + 1
        if t > dispatch:
            dispatch = t

        # ---- source readiness -------------------------------------------------
        ready = dispatch
        if s0 >= 0:
            t = reg_ready[s0]
            if t > ready:
                ready = t
        if s1 >= 0:
            t = reg_ready[s1]
            if t > ready:
                ready = t

        # ---- structural issue + completion -------------------------------------
        if code < CODE_LOAD:                       # ALU / MUL / DIV
            if single_alu:
                issue = ready if ready >= alu0 else alu0
                alu0 = issue + occ[code]
            else:
                best = 0
                best_free = alu_free[0]
                for p in range(1, n_alu):
                    v = alu_free[p]
                    if v < best_free:
                        best, best_free = p, v
                issue = ready if ready >= best_free else best_free
                alu_free[best] = issue + occ[code]
            completion = issue + comp_add[code]
        elif code < CODE_BRANCH:                   # LOAD / STORE
            t = mem_ring[mp] + 1
            if t > ready:
                ready = t
            issue = ready if ready >= mem_free else mem_free
            mem_free = issue + 1
            mem_ring[mp] = issue
            mp += 1
            if mp == lsq_size:
                mp = 0
            completion = issue + comp_add[code] + (miss_extra if miss else 0)
        else:                                      # BRANCH
            issue = ready if ready >= branch_free else branch_free
            branch_free = issue + 1
            completion = issue + comp_add[CODE_BRANCH]
            if mflags[branch_idx]:
                redirect = completion + 1
                if redirect > fetch_cycle:
                    fetch_cycle = redirect
                    fetched = False
                    redirects += 1
            branch_idx += 1

        if d >= 0:
            reg_ready[d] = completion

        # ---- in-order retirement (one slot per cycle) --------------------------
        retire = completion + 1
        t = last_retire + 1
        if retire < t:
            retire = t
        last_retire = retire

        retire_ring[rp] = retire
        issue_ring[qp] = issue
        rp += 1
        if rp == rob_size:
            rp = 0
        qp += 1
        if qp == iq_size:
            qp = 0

    if telemetry.ENABLED and redirects:
        telemetry.count("ipc.fetch_redirects", redirects)
    return last_retire + 1


# ---------------------------------------------------------------------------
# Reference kernel: the cycle-exact oracle
# ---------------------------------------------------------------------------

def _simulate_reference(config: CoreConfig, trace: Trace) -> SimulationResult:
    """The original instruction-object recurrence with a live predictor.

    Kept verbatim as the oracle the fast kernel is verified against
    (``tests/core/test_kernel_equivalence.py``); select it with
    ``REPRO_IPC_KERNEL=reference``.
    """
    predictor = GsharePredictor(config.predictor_bits)

    front_width = config.front_width
    frontend_depth = config.frontend_depth
    sched_bubble = config.issue_to_execute
    exec_depth = config.execute_latency
    hit_lat = config.l1_hit_latency
    miss_lat = config.l1_miss_latency

    # Per-pipe next-free cycle.  Pipe 0 = memory, pipe 1 = branch/control,
    # pipes 2.. = ALU pipes (paper: back-end width changes only ALU pipes).
    alu_free = [0] * config.alu_pipes
    mem_free = 0
    branch_free = 0

    # Renamed register file: architectural reg -> completion time of the
    # latest in-trace-order writer.
    reg_ready = [0] * 32

    # Occupancy windows.
    rob_size = config.rob_size
    iq_size = config.iq_size
    lsq_size = config.lsq_size
    retire_times: list[int] = []
    issue_times: list[int] = []
    mem_issue_times: list[int] = []

    # Front end: cycle currently being fetched into and its fill count.
    fetch_cycle = 0
    fetch_fill = 0

    last_retire = 0
    retire_fill = 0
    retire_cycle = -1

    mispredicts = 0
    l1_misses = 0
    n_branches = 0

    for idx, instr in enumerate(trace.instructions):
        # ---- fetch / front end -------------------------------------------------
        if fetch_fill >= front_width:
            fetch_cycle += 1
            fetch_fill = 0
        fetch_time = fetch_cycle
        fetch_fill += 1

        dispatch_time = fetch_time + frontend_depth

        # Occupancy windows (approximate in-order reclamation).
        if idx >= rob_size:
            dispatch_time = max(dispatch_time, retire_times[idx - rob_size] + 1)
        if idx >= iq_size:
            dispatch_time = max(dispatch_time, issue_times[idx - iq_size] + 1)

        # ---- source readiness ---------------------------------------------------
        ready = dispatch_time
        s0, s1 = instr.srcs
        if s0 >= 0 and reg_ready[s0] > ready:
            ready = reg_ready[s0]
        if s1 >= 0 and reg_ready[s1] > ready:
            ready = reg_ready[s1]

        # ---- structural issue ----------------------------------------------------
        klass = instr.klass
        if klass is InstrClass.LOAD or klass is InstrClass.STORE:
            n_mem = len(mem_issue_times)
            if n_mem >= lsq_size:
                ready = max(ready, mem_issue_times[n_mem - lsq_size] + 1)
            issue_time = max(ready, mem_free)
            mem_free = issue_time + 1
            mem_issue_times.append(issue_time)
        elif klass is InstrClass.BRANCH:
            issue_time = max(ready, branch_free)
            branch_free = issue_time + 1
        else:
            # Earliest-free ALU pipe.
            best = 0
            best_free = alu_free[0]
            for p in range(1, len(alu_free)):
                if alu_free[p] < best_free:
                    best, best_free = p, alu_free[p]
            issue_time = max(ready, best_free)
            latency, pipelined = EXEC_LATENCY[klass]
            alu_free[best] = issue_time + (1 if pipelined else latency)

        # ---- completion ------------------------------------------------------------
        latency, _pipelined = EXEC_LATENCY[klass]
        completion = issue_time + sched_bubble + exec_depth + (latency - 1)
        if klass is InstrClass.LOAD:
            completion += miss_lat if instr.is_miss else hit_lat
            if instr.is_miss:
                l1_misses += 1

        if instr.dst >= 0:
            reg_ready[instr.dst] = completion

        # ---- branches: resolve and maybe redirect ------------------------------------
        if klass is InstrClass.BRANCH:
            n_branches += 1
            correct = predictor.predict_and_update(instr.pattern_key,
                                                   instr.taken)
            if not correct:
                mispredicts += 1
                redirect = completion + 1
                if redirect > fetch_cycle:
                    fetch_cycle = redirect
                    fetch_fill = 0

        # ---- in-order retirement -------------------------------------------------------
        retire_ready = max(completion + 1, last_retire)
        if retire_ready == retire_cycle:
            if retire_fill >= front_width:
                retire_ready += 1
                retire_fill = 0
        if retire_ready != retire_cycle:
            retire_cycle = retire_ready
            retire_fill = 0
        retire_fill += 1
        last_retire = retire_ready

        retire_times.append(retire_ready)
        issue_times.append(issue_time)

    cycles = last_retire + 1
    return SimulationResult(
        config_name=config.name,
        trace_name=trace.name,
        instructions=len(trace),
        cycles=cycles,
        ipc=len(trace) / cycles,
        branch_count=n_branches,
        mispredicts=mispredicts,
        l1_misses=l1_misses,
    )


# ---------------------------------------------------------------------------
# Persistent memoisation
# ---------------------------------------------------------------------------

def _timing_signature(config: CoreConfig) -> dict:
    """The config fields the timing recurrence actually depends on.

    Configurations that differ only in fields the kernel never reads
    (name, datapath width, physical-register count) share cache entries.
    """
    return {
        "front_width": config.front_width,
        "alu_pipes": config.alu_pipes,
        "frontend_depth": config.frontend_depth,
        "issue_to_execute": config.issue_to_execute,
        "execute_latency": config.execute_latency,
        "iq_size": config.iq_size,
        "rob_size": config.rob_size,
        "lsq_size": config.lsq_size,
        "predictor_bits": config.predictor_bits,
        "l1_hit_latency": config.l1_hit_latency,
        "l1_miss_latency": config.l1_miss_latency,
    }


def simulate_cached(config: CoreConfig, trace: Trace,
                    cache=None) -> SimulationResult:
    """:func:`simulate` memoised through the persistent result cache.

    The key couples the config's timing signature with the trace's
    content fingerprint, so hits are exact: any change to the recurrence
    inputs — or to the trace stream itself — misses.  With caching
    disabled (``REPRO_CACHE=0`` or a cache constructed with
    ``enabled=False``) this is plain :func:`simulate`.
    """
    if cache is None:
        from repro.runtime.cache import default_cache
        cache = default_cache()
    if not cache.enabled:
        return simulate(config, trace)
    if profiling.ENABLED:
        t0 = perf_counter()
    key = cache.key({"schema": 1, "config": _timing_signature(config),
                     "trace": trace.fingerprint()})
    hit = cache.get("simulation", key)
    if profiling.ENABLED:
        profiling.add("cache", perf_counter() - t0)
    if hit is not None:
        return SimulationResult(
            config_name=config.name,
            trace_name=trace.name,
            instructions=int(hit["instructions"]),
            cycles=int(hit["cycles"]),
            ipc=int(hit["instructions"]) / int(hit["cycles"]),
            branch_count=int(hit["branch_count"]),
            mispredicts=int(hit["mispredicts"]),
            l1_misses=int(hit["l1_misses"]),
        )
    result = simulate(config, trace)
    if profiling.ENABLED:
        t0 = perf_counter()
    cache.put("simulation", key, {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "branch_count": result.branch_count,
        "mispredicts": result.mispredicts,
        "l1_misses": result.l1_misses,
    })
    if profiling.ENABLED:
        profiling.add("cache", perf_counter() - t0)
    return result
