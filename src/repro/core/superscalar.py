"""Trace-driven out-of-order core timing model (the IPC source).

This is the repro stand-in for AnyCore's cycle-accurate C++ simulator.  It
is a greedy dataflow-scheduling model: each dynamic instruction's dispatch,
issue, completion and retirement times are computed in trace order from

- front-end bandwidth (``front_width`` per cycle) and depth (refill after
  branch mispredicts, detected by a live gshare predictor),
- register dataflow (RAW dependences through renamed registers; full
  bypass, plus the extra wakeup-loop bubbles deeper issue/regread regions
  introduce),
- structural resources: per-type execution pipes (memory pipe, branch
  pipe, ``back_width - 2`` ALU pipes; the stallable divider blocks its
  pipe), issue-queue / ROB / LSQ occupancy windows, in-order retirement
  bandwidth,
- the data cache (hit/miss latencies; miss events come from the trace).

Greedy scheduling models of this form track cycle-accurate simulators
closely for IPC *trends* across depth/width sweeps, which is what the
paper's Figures 11 and 13 need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.branch import GsharePredictor
from repro.core.config import CoreConfig
from repro.core.isa import EXEC_LATENCY, InstrClass
from repro.core.trace import Trace
from repro.errors import SimulationError


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one trace run on one configuration."""

    config_name: str
    trace_name: str
    instructions: int
    cycles: int
    ipc: float
    branch_count: int
    mispredicts: int
    l1_misses: int

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branch_count if self.branch_count else 0.0


def simulate(config: CoreConfig, trace: Trace) -> SimulationResult:
    """Run *trace* through the timing model; returns IPC and statistics."""
    if len(trace) == 0:
        raise SimulationError("empty trace")

    predictor = GsharePredictor(config.predictor_bits)

    front_width = config.front_width
    frontend_depth = config.frontend_depth
    sched_bubble = config.issue_to_execute
    exec_depth = config.execute_latency
    hit_lat = config.l1_hit_latency
    miss_lat = config.l1_miss_latency

    # Per-pipe next-free cycle.  Pipe 0 = memory, pipe 1 = branch/control,
    # pipes 2.. = ALU pipes (paper: back-end width changes only ALU pipes).
    alu_free = [0] * config.alu_pipes
    mem_free = 0
    branch_free = 0

    # Renamed register file: architectural reg -> completion time of the
    # latest in-trace-order writer.
    reg_ready = [0] * 32

    # Ring buffers for occupancy windows.
    rob_size = config.rob_size
    iq_size = config.iq_size
    lsq_size = config.lsq_size
    retire_times: list[int] = []
    issue_times: list[int] = []
    mem_issue_times: list[int] = []

    # Front end: cycle currently being fetched into and its fill count.
    fetch_cycle = 0
    fetch_fill = 0

    last_retire = 0
    retire_fill = 0
    retire_cycle = -1

    mispredicts = 0
    l1_misses = 0
    n_branches = 0

    for idx, instr in enumerate(trace.instructions):
        # ---- fetch / front end -------------------------------------------------
        if fetch_fill >= front_width:
            fetch_cycle += 1
            fetch_fill = 0
        fetch_time = fetch_cycle
        fetch_fill += 1

        dispatch_time = fetch_time + frontend_depth

        # Occupancy windows (approximate in-order reclamation).
        if idx >= rob_size:
            dispatch_time = max(dispatch_time, retire_times[idx - rob_size] + 1)
        if idx >= iq_size:
            dispatch_time = max(dispatch_time, issue_times[idx - iq_size] + 1)

        # ---- source readiness ---------------------------------------------------
        ready = dispatch_time
        s0, s1 = instr.srcs
        if s0 >= 0 and reg_ready[s0] > ready:
            ready = reg_ready[s0]
        if s1 >= 0 and reg_ready[s1] > ready:
            ready = reg_ready[s1]

        # ---- structural issue ----------------------------------------------------
        klass = instr.klass
        if klass is InstrClass.LOAD or klass is InstrClass.STORE:
            n_mem = len(mem_issue_times)
            if n_mem >= lsq_size:
                ready = max(ready, mem_issue_times[n_mem - lsq_size] + 1)
            issue_time = max(ready, mem_free)
            mem_free = issue_time + 1
            mem_issue_times.append(issue_time)
        elif klass is InstrClass.BRANCH:
            issue_time = max(ready, branch_free)
            branch_free = issue_time + 1
        else:
            # Earliest-free ALU pipe.
            best = 0
            best_free = alu_free[0]
            for p in range(1, len(alu_free)):
                if alu_free[p] < best_free:
                    best, best_free = p, alu_free[p]
            issue_time = max(ready, best_free)
            latency, pipelined = EXEC_LATENCY[klass]
            alu_free[best] = issue_time + (1 if pipelined else latency)

        # ---- completion ------------------------------------------------------------
        latency, _pipelined = EXEC_LATENCY[klass]
        completion = issue_time + sched_bubble + exec_depth + (latency - 1)
        if klass is InstrClass.LOAD:
            completion += miss_lat if instr.is_miss else hit_lat
            if instr.is_miss:
                l1_misses += 1

        if instr.dst >= 0:
            reg_ready[instr.dst] = completion

        # ---- branches: resolve and maybe redirect ------------------------------------
        if klass is InstrClass.BRANCH:
            n_branches += 1
            correct = predictor.predict_and_update(instr.pattern_key,
                                                   instr.taken)
            if not correct:
                mispredicts += 1
                redirect = completion + 1
                if redirect > fetch_cycle:
                    fetch_cycle = redirect
                    fetch_fill = 0

        # ---- in-order retirement -------------------------------------------------------
        retire_ready = max(completion + 1, last_retire)
        if retire_ready == retire_cycle:
            if retire_fill >= front_width:
                retire_ready += 1
                retire_fill = 0
        if retire_ready != retire_cycle:
            retire_cycle = retire_ready
            retire_fill = 0
        retire_fill += 1
        last_retire = retire_ready

        retire_times.append(retire_ready)
        issue_times.append(issue_time)

    cycles = last_retire + 1
    return SimulationResult(
        config_name=config.name,
        trace_name=trace.name,
        instructions=len(trace),
        cycles=cycles,
        ipc=len(trace) / cycles,
        branch_count=n_branches,
        mispredicts=mispredicts,
        l1_misses=l1_misses,
    )
