"""Branch predictors.

The mispredict penalty is the depth experiment's central IPC mechanism
("higher branch mispredict penalties", Section 5.3), so branches are
predicted by a real predictor rather than a fixed rate: mispredict rates
emerge from each workload's branch-pattern structure meeting the
predictor's capacity.
"""

from __future__ import annotations

from repro.errors import ConfigError


class _CounterTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, index_bits: int) -> None:
        if not 4 <= index_bits <= 24:
            raise ConfigError(f"index_bits out of range: {index_bits}")
        self.index_bits = index_bits
        self.mask = (1 << index_bits) - 1
        self.table = bytearray([2] * (1 << index_bits))  # weakly taken

    def predict(self, index: int) -> bool:
        return self.table[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        c = self.table[i]
        if taken:
            if c < 3:
                self.table[i] = c + 1
        else:
            if c > 0:
                self.table[i] = c - 1


class BimodalPredictor:
    """PC-indexed 2-bit counters."""

    def __init__(self, index_bits: int = 12) -> None:
        self._table = _CounterTable(index_bits)

    def predict_and_update(self, pc_key: int, taken: bool) -> bool:
        """Returns True if the prediction was CORRECT."""
        pred = self._table.predict(pc_key)
        self._table.update(pc_key, taken)
        return pred == taken


class GsharePredictor:
    """Global-history XOR PC indexed 2-bit counters (McFarling gshare)."""

    def __init__(self, index_bits: int = 12) -> None:
        self._table = _CounterTable(index_bits)
        self._history = 0
        self._history_mask = (1 << index_bits) - 1

    def predict_and_update(self, pc_key: int, taken: bool) -> bool:
        """Returns True if the prediction was CORRECT; updates state."""
        index = (pc_key ^ self._history) & self._history_mask
        pred = self._table.predict(index)
        self._table.update(index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return pred == taken


def gshare_mispredict_flags(pattern_keys, taken, index_bits: int = 12
                            ) -> list[bool]:
    """Mispredict flag per branch for a whole branch stream, in order.

    The gshare outcome stream is a pure function of ``(pattern_keys,
    taken, index_bits)`` — core timing never feeds back into the
    predictor — so sweeps precompute it once per trace and reuse it
    across every configuration (see :meth:`repro.core.trace.Trace.
    mispredict_flags`).  Bit-identical to driving
    :class:`GsharePredictor` branch by branch.

    ``pattern_keys`` / ``taken`` accept any sequence (NumPy arrays
    included); returns a plain list for fast indexing from the timing
    kernel.
    """
    if not 4 <= index_bits <= 24:
        raise ConfigError(f"index_bits out of range: {index_bits}")
    mask = (1 << index_bits) - 1
    table = bytearray([2] * (1 << index_bits))  # weakly taken
    history = 0
    flags: list[bool] = []
    append = flags.append
    keys = pattern_keys.tolist() if hasattr(pattern_keys, "tolist") \
        else list(pattern_keys)
    outcomes = taken.tolist() if hasattr(taken, "tolist") else list(taken)
    for key, t in zip(keys, outcomes):
        index = (key ^ history) & mask
        counter = table[index]
        if t:
            if counter < 3:
                table[index] = counter + 1
            history = ((history << 1) | 1) & mask
            append(counter < 2)      # predicted not-taken -> mispredict
        else:
            if counter > 0:
                table[index] = counter - 1
            history = (history << 1) & mask
            append(counter >= 2)     # predicted taken -> mispredict
    return flags
