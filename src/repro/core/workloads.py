"""Synthetic workload generators: Dhrystone + six SPEC CPU2000 stand-ins.

The paper simulates "100 million instructions of the Dhrystone benchmark
and of SimPoints derived from six SPEC CPU2000 integer benchmarks" (bzip2,
gap, gzip, mcf, parser, vortex).  We cannot ship SPEC, so each benchmark
is replaced by a statistical trace generator whose parameters encode that
benchmark's published first-order behaviour:

- instruction-class mix (ALU/MUL/DIV/load/store/branch),
- register dependency distances (geometric; shorter = less ILP),
- branch-site population (loop sites with fixed trip counts, history-
  correlated sites, and near-random data-dependent sites) — mispredict
  rates then *emerge* from the gshare predictor meeting those patterns,
- L1 data-miss rate (mcf's pointer chasing vs dhrystone's tiny footprint).

These preserve the relative IPC ordering and depth/width sensitivity that
Figure 11's per-benchmark curves show, which is what the reproduction
needs (absolute SPEC IPCs are unreachable without SPEC itself).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.isa import NUM_ARCH_REGS, Instruction, InstrClass
from repro.core.trace import Trace
from repro.errors import ConfigError


@dataclass(frozen=True)
class BranchSite:
    """A static branch site with a behavioural pattern.

    ``kind`` is 'loop' (taken period-1 out of period executions),
    'biased' (random with the given taken probability) or 'correlated'
    (outcome = parity of the last two outcomes of the site — learnable by
    global history).
    """

    key: int
    kind: str
    period: int = 8
    bias: float = 0.9


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one benchmark."""

    name: str
    mix: dict[str, float]            # class name -> fraction
    dep_geometric_p: float           # P(next) for dependency distances
    loop_fraction: float             # share of branch executions from loops
    correlated_fraction: float
    random_bias: float               # taken-probability of the random sites
    n_branch_sites: int
    l1_miss_rate: float
    description: str = ""

    def __post_init__(self) -> None:
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"{self.name}: mix sums to {total}, not 1")
        if not 0.0 < self.dep_geometric_p <= 1.0:
            raise ConfigError(f"{self.name}: bad dep_geometric_p")
        if not 0.0 <= self.l1_miss_rate <= 1.0:
            raise ConfigError(f"{self.name}: bad l1_miss_rate")


_CLASS_BY_NAME = {
    "alu": InstrClass.ALU,
    "mul": InstrClass.MUL,
    "div": InstrClass.DIV,
    "load": InstrClass.LOAD,
    "store": InstrClass.STORE,
    "branch": InstrClass.BRANCH,
}


#: The seven workloads of Figure 11.  Mixes and miss rates follow the
#: well-known published characterisations of each benchmark.
WORKLOADS: dict[str, WorkloadSpec] = {
    "dhrystone": WorkloadSpec(
        name="dhrystone",
        mix={"alu": 0.52, "mul": 0.01, "div": 0.0, "load": 0.22,
             "store": 0.11, "branch": 0.14},
        dep_geometric_p=0.10,
        loop_fraction=0.80, correlated_fraction=0.15, random_bias=0.9,
        n_branch_sites=24,
        l1_miss_rate=0.001,
        description="tiny-footprint synthetic; very predictable branches",
    ),
    "bzip": WorkloadSpec(
        name="bzip",
        mix={"alu": 0.46, "mul": 0.01, "div": 0.0, "load": 0.28,
             "store": 0.12, "branch": 0.13},
        dep_geometric_p=0.14,
        loop_fraction=0.55, correlated_fraction=0.20, random_bias=0.75,
        n_branch_sites=160,
        l1_miss_rate=0.015,
        description="compression: data-dependent branches, streaming loads",
    ),
    "gap": WorkloadSpec(
        name="gap",
        mix={"alu": 0.45, "mul": 0.05, "div": 0.01, "load": 0.27,
             "store": 0.15, "branch": 0.07},
        dep_geometric_p=0.12,
        loop_fraction=0.65, correlated_fraction=0.20, random_bias=0.85,
        n_branch_sites=220,
        l1_miss_rate=0.010,
        description="group theory interpreter: arithmetic-heavy, few branches",
    ),
    "gzip": WorkloadSpec(
        name="gzip",
        mix={"alu": 0.47, "mul": 0.01, "div": 0.0, "load": 0.25,
             "store": 0.09, "branch": 0.18},
        dep_geometric_p=0.15,
        loop_fraction=0.50, correlated_fraction=0.25, random_bias=0.7,
        n_branch_sites=140,
        l1_miss_rate=0.020,
        description="compression: branchy match loops",
    ),
    "mcf": WorkloadSpec(
        name="mcf",
        mix={"alu": 0.35, "mul": 0.01, "div": 0.0, "load": 0.35,
             "store": 0.10, "branch": 0.19},
        dep_geometric_p=0.30,
        loop_fraction=0.40, correlated_fraction=0.20, random_bias=0.65,
        n_branch_sites=120,
        l1_miss_rate=0.120,
        description="network simplex: pointer chasing, cache-hostile",
    ),
    "parser": WorkloadSpec(
        name="parser",
        mix={"alu": 0.42, "mul": 0.01, "div": 0.0, "load": 0.28,
             "store": 0.10, "branch": 0.19},
        dep_geometric_p=0.20,
        loop_fraction=0.35, correlated_fraction=0.25, random_bias=0.65,
        n_branch_sites=320,
        l1_miss_rate=0.030,
        description="NL parser: many hard data-dependent branches",
    ),
    "vortex": WorkloadSpec(
        name="vortex",
        mix={"alu": 0.43, "mul": 0.01, "div": 0.0, "load": 0.28,
             "store": 0.15, "branch": 0.13},
        dep_geometric_p=0.15,
        loop_fraction=0.55, correlated_fraction=0.25, random_bias=0.8,
        n_branch_sites=400,
        l1_miss_rate=0.025,
        description="OO database: store-heavy, large code footprint",
    ),
}


def _make_sites(spec: WorkloadSpec, rng: random.Random) -> list[BranchSite]:
    sites: list[BranchSite] = []
    n = spec.n_branch_sites
    n_loop = max(1, round(n * spec.loop_fraction))
    n_corr = max(1, round(n * spec.correlated_fraction))
    for i in range(n):
        key = rng.randrange(1 << 20)
        if i < n_loop:
            sites.append(BranchSite(key=key, kind="loop",
                                    period=rng.choice((4, 8, 16, 32, 64))))
        elif i < n_loop + n_corr:
            sites.append(BranchSite(key=key, kind="correlated"))
        else:
            sites.append(BranchSite(key=key, kind="biased",
                                    bias=spec.random_bias))
    return sites


def generate_trace(spec: WorkloadSpec, n_instructions: int = 50_000,
                   seed: int = 0) -> Trace:
    """Generate a deterministic synthetic trace for one workload."""
    if n_instructions < 1:
        raise ConfigError("n_instructions must be positive")
    rng = random.Random((hash(spec.name) ^ seed) & 0xFFFFFFFF)
    sites = _make_sites(spec, rng)

    # Branch sites execute in a fixed cyclic "program order" (with short
    # contiguous runs for loop back-edges), not uniformly at random —
    # real control flow is what makes global history informative, and the
    # predictor's accuracy on each workload depends on it.
    site_sequence: list[BranchSite] = []
    for site in sites:
        run = 3 if site.kind == "loop" else 1
        site_sequence.extend([site] * run)
    rng.shuffle(sites)
    branch_counter = 0

    classes = list(spec.mix.keys())
    weights = list(spec.mix.values())

    # Per-site dynamic state.
    loop_counters: dict[int, int] = {}
    history2: dict[int, tuple[bool, bool]] = {}

    # Recent destination registers, newest last; sources pick from here
    # with a geometric lookback distance.
    recent: list[int] = list(range(8))
    next_dst = 8

    instructions: list[Instruction] = []
    for _ in range(n_instructions):
        cname = rng.choices(classes, weights)[0]
        klass = _CLASS_BY_NAME[cname]

        def pick_src() -> int:
            # Geometric lookback, clipped to the recent window.
            d = 1
            while d < len(recent) and rng.random() > spec.dep_geometric_p:
                d += 1
            return recent[-d]

        srcs = (pick_src(), pick_src() if rng.random() < 0.7 else -1)

        taken = False
        key = 0
        is_miss = False
        if klass is InstrClass.BRANCH:
            site = site_sequence[branch_counter % len(site_sequence)]
            branch_counter += 1
            key = site.key
            if site.kind == "loop":
                count = loop_counters.get(site.key, 0) + 1
                taken = count % site.period != 0
                loop_counters[site.key] = count
            elif site.kind == "correlated":
                h = history2.get(site.key, (False, True))
                taken = h[0] != h[1]
                history2[site.key] = (h[1], taken)
            else:
                taken = rng.random() < site.bias
            dst = -1
        elif klass is InstrClass.STORE:
            dst = -1
        else:
            dst = next_dst % NUM_ARCH_REGS
            next_dst += 1
            recent.append(dst)
            if len(recent) > 64:
                recent.pop(0)
            if klass is InstrClass.LOAD:
                is_miss = rng.random() < spec.l1_miss_rate

        instructions.append(Instruction(
            klass=klass, srcs=srcs, dst=dst, taken=taken,
            pattern_key=key, is_miss=is_miss))

    return Trace(name=spec.name, instructions=instructions)
