"""Synthetic workload generators: Dhrystone + six SPEC CPU2000 stand-ins.

The paper simulates "100 million instructions of the Dhrystone benchmark
and of SimPoints derived from six SPEC CPU2000 integer benchmarks" (bzip2,
gap, gzip, mcf, parser, vortex).  We cannot ship SPEC, so each benchmark
is replaced by a statistical trace generator whose parameters encode that
benchmark's published first-order behaviour:

- instruction-class mix (ALU/MUL/DIV/load/store/branch),
- register dependency distances (geometric; shorter = less ILP),
- branch-site population (loop sites with fixed trip counts, history-
  correlated sites, and near-random data-dependent sites) — mispredict
  rates then *emerge* from the gshare predictor meeting those patterns,
- L1 data-miss rate (mcf's pointer chasing vs dhrystone's tiny footprint).

These preserve the relative IPC ordering and depth/width sensitivity that
Figure 11's per-benchmark curves show, which is what the reproduction
needs (absolute SPEC IPCs are unreachable without SPEC itself).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

import numpy as np

from repro.core.isa import (
    CODE_BRANCH,
    CODE_DIV,
    CODE_LOAD,
    CODE_TO_CLASS,
    NUM_ARCH_REGS,
    InstrClass,
)
from repro.core.trace import Trace
from repro.errors import ConfigError


@dataclass(frozen=True)
class BranchSite:
    """A static branch site with a behavioural pattern.

    ``kind`` is 'loop' (taken period-1 out of period executions),
    'biased' (random with the given taken probability) or 'correlated'
    (outcome = parity of the last two outcomes of the site — learnable by
    global history).
    """

    key: int
    kind: str
    period: int = 8
    bias: float = 0.9


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one benchmark."""

    name: str
    mix: dict[str, float]            # class name -> fraction
    dep_geometric_p: float           # P(next) for dependency distances
    loop_fraction: float             # share of branch executions from loops
    correlated_fraction: float
    random_bias: float               # taken-probability of the random sites
    n_branch_sites: int
    l1_miss_rate: float
    description: str = ""

    def __post_init__(self) -> None:
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"{self.name}: mix sums to {total}, not 1")
        if not 0.0 < self.dep_geometric_p <= 1.0:
            raise ConfigError(f"{self.name}: bad dep_geometric_p")
        if not 0.0 <= self.l1_miss_rate <= 1.0:
            raise ConfigError(f"{self.name}: bad l1_miss_rate")


_CLASS_BY_NAME = {
    "alu": InstrClass.ALU,
    "mul": InstrClass.MUL,
    "div": InstrClass.DIV,
    "load": InstrClass.LOAD,
    "store": InstrClass.STORE,
    "branch": InstrClass.BRANCH,
}


#: The seven workloads of Figure 11.  Mixes and miss rates follow the
#: well-known published characterisations of each benchmark.
WORKLOADS: dict[str, WorkloadSpec] = {
    "dhrystone": WorkloadSpec(
        name="dhrystone",
        mix={"alu": 0.52, "mul": 0.01, "div": 0.0, "load": 0.22,
             "store": 0.11, "branch": 0.14},
        dep_geometric_p=0.10,
        loop_fraction=0.80, correlated_fraction=0.15, random_bias=0.9,
        n_branch_sites=24,
        l1_miss_rate=0.001,
        description="tiny-footprint synthetic; very predictable branches",
    ),
    "bzip": WorkloadSpec(
        name="bzip",
        mix={"alu": 0.46, "mul": 0.01, "div": 0.0, "load": 0.28,
             "store": 0.12, "branch": 0.13},
        dep_geometric_p=0.14,
        loop_fraction=0.55, correlated_fraction=0.20, random_bias=0.75,
        n_branch_sites=160,
        l1_miss_rate=0.015,
        description="compression: data-dependent branches, streaming loads",
    ),
    "gap": WorkloadSpec(
        name="gap",
        mix={"alu": 0.45, "mul": 0.05, "div": 0.01, "load": 0.27,
             "store": 0.15, "branch": 0.07},
        dep_geometric_p=0.12,
        loop_fraction=0.65, correlated_fraction=0.20, random_bias=0.85,
        n_branch_sites=220,
        l1_miss_rate=0.010,
        description="group theory interpreter: arithmetic-heavy, few branches",
    ),
    "gzip": WorkloadSpec(
        name="gzip",
        mix={"alu": 0.47, "mul": 0.01, "div": 0.0, "load": 0.25,
             "store": 0.09, "branch": 0.18},
        dep_geometric_p=0.15,
        loop_fraction=0.50, correlated_fraction=0.25, random_bias=0.7,
        n_branch_sites=140,
        l1_miss_rate=0.020,
        description="compression: branchy match loops",
    ),
    "mcf": WorkloadSpec(
        name="mcf",
        mix={"alu": 0.35, "mul": 0.01, "div": 0.0, "load": 0.35,
             "store": 0.10, "branch": 0.19},
        dep_geometric_p=0.30,
        loop_fraction=0.40, correlated_fraction=0.20, random_bias=0.65,
        n_branch_sites=120,
        l1_miss_rate=0.120,
        description="network simplex: pointer chasing, cache-hostile",
    ),
    "parser": WorkloadSpec(
        name="parser",
        mix={"alu": 0.42, "mul": 0.01, "div": 0.0, "load": 0.28,
             "store": 0.10, "branch": 0.19},
        dep_geometric_p=0.20,
        loop_fraction=0.35, correlated_fraction=0.25, random_bias=0.65,
        n_branch_sites=320,
        l1_miss_rate=0.030,
        description="NL parser: many hard data-dependent branches",
    ),
    "vortex": WorkloadSpec(
        name="vortex",
        mix={"alu": 0.43, "mul": 0.01, "div": 0.0, "load": 0.28,
             "store": 0.15, "branch": 0.13},
        dep_geometric_p=0.15,
        loop_fraction=0.55, correlated_fraction=0.25, random_bias=0.8,
        n_branch_sites=400,
        l1_miss_rate=0.025,
        description="OO database: store-heavy, large code footprint",
    ),
}


def _make_sites(spec: WorkloadSpec, rng: random.Random) -> list[BranchSite]:
    sites: list[BranchSite] = []
    n = spec.n_branch_sites
    n_loop = max(1, round(n * spec.loop_fraction))
    n_corr = max(1, round(n * spec.correlated_fraction))
    for i in range(n):
        key = rng.randrange(1 << 20)
        if i < n_loop:
            sites.append(BranchSite(key=key, kind="loop",
                                    period=rng.choice((4, 8, 16, 32, 64))))
        elif i < n_loop + n_corr:
            sites.append(BranchSite(key=key, kind="correlated"))
        else:
            sites.append(BranchSite(key=key, kind="biased",
                                    bias=spec.random_bias))
    return sites


#: Size of the recent-destination window sources are drawn from.
_RECENT_WINDOW = 64
#: Registers pre-seeded into the window (regs 0..7 "live in" at entry).
_WINDOW_WARMUP = 8
#: Probability that an instruction has a second source operand.
_SECOND_SRC_P = 0.7
#: The correlated-site outcome chain (h0 XOR h1 from (False, True)) is
#: periodic with period 3; this is one period.
_CORRELATED_PATTERN = (True, False, True)


def _trace_seed(name: str, seed: int, stream: str) -> int:
    """Stable 64-bit seed for one generator stream of one trace.

    Seed scheme v2: derived from SHA-256 of ``name``, ``seed`` and a
    stream tag, so traces are bit-identical across processes and Python
    versions (``hash(str)`` randomisation never enters).  Independent
    tags decouple the site-structure stream from the array draws.
    """
    digest = hashlib.sha256(f"{name}\x00{seed}\x00{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def generate_trace(spec: WorkloadSpec, n_instructions: int = 50_000,
                   seed: int = 0) -> Trace:
    """Generate a deterministic synthetic trace for one workload.

    The generator is vectorised: class selection, dependency lookbacks,
    second-operand presence and L1-miss flags are batched NumPy draws,
    and branch outcomes are computed per site as closed-form sequences
    (loop trip counts, the period-3 correlated chain) or batched
    Bernoulli draws.  A 30k-instruction trace builds in about a
    millisecond, which matters because every sweep regenerates its
    traces.

    Streams follow seed scheme v2 (see :func:`_trace_seed`): stable
    across processes, fingerprinted by :meth:`Trace.fingerprint` for the
    persistent result cache.  The per-instruction statistics match the
    historic scalar generator (same class mix, geometric lookback law,
    site population and per-site outcome sequences); the concrete
    pseudo-random streams differ.
    """
    if n_instructions < 1:
        raise ConfigError("n_instructions must be positive")
    n = n_instructions
    site_rng = random.Random(_trace_seed(spec.name, seed, "sites"))
    sites = _make_sites(spec, site_rng)
    rng = np.random.default_rng(_trace_seed(spec.name, seed, "arrays"))

    # ---- instruction classes -------------------------------------------------
    order = ("alu", "mul", "div", "load", "store", "branch")
    assert tuple(_CLASS_BY_NAME[o] for o in order) == CODE_TO_CLASS
    weights = np.array([spec.mix.get(name, 0.0) for name in order])
    codes = rng.choice(len(order), size=n,
                       p=weights / weights.sum()).astype(np.int8)

    # ---- destinations and the recent-register window -------------------------
    # Register-producing instructions take destinations round-robin; the
    # full destination history H (pre-seeded with regs 0..7) makes the
    # "window of the last 64 destinations" addressable by plain indexing.
    has_dst = (codes <= CODE_DIV) | (codes == CODE_LOAD)
    prior = np.cumsum(has_dst) - has_dst       # producers before each instr
    dst = np.where(
        has_dst, (_WINDOW_WARMUP + prior) % NUM_ARCH_REGS, -1).astype(np.int8)
    history = np.concatenate([
        np.arange(_WINDOW_WARMUP),
        (_WINDOW_WARMUP + np.arange(int(has_dst.sum()))) % NUM_ARCH_REGS,
    ])

    # ---- sources: geometric lookback into the window -------------------------
    # recent[-d] with d geometric, clipped to the window that exists at
    # that instruction: H[w - d] for w = warmup + producers-so-far.
    w = _WINDOW_WARMUP + prior
    limit = np.minimum(w, _RECENT_WINDOW)
    d0 = np.minimum(rng.geometric(spec.dep_geometric_p, size=n), limit)
    src0 = history[w - d0].astype(np.int8)
    d1 = np.minimum(rng.geometric(spec.dep_geometric_p, size=n), limit)
    src1 = np.where(rng.random(n) < _SECOND_SRC_P,
                    history[w - d1], -1).astype(np.int8)

    # ---- branch outcomes, per site -------------------------------------------
    # Branch sites execute in a fixed cyclic "program order" (with short
    # contiguous runs for loop back-edges), not uniformly at random —
    # real control flow is what makes global history informative, and the
    # predictor's accuracy on each workload depends on it.
    branch_mask = codes == CODE_BRANCH
    n_branches = int(branch_mask.sum())
    taken = np.zeros(n, dtype=bool)
    pattern_key = np.zeros(n, dtype=np.int64)
    if n_branches:
        seq_site = np.concatenate([
            np.full(3 if site.kind == "loop" else 1, i)
            for i, site in enumerate(sites)
        ])
        site_of_branch = seq_site[np.arange(n_branches) % len(seq_site)]
        site_keys = np.array([site.key for site in sites], dtype=np.int64)
        taken_b = np.zeros(n_branches, dtype=bool)
        pattern = np.array(_CORRELATED_PATTERN)
        for i, site in enumerate(sites):
            executions = site_of_branch == i
            m = int(executions.sum())
            if not m:
                continue
            if site.kind == "loop":
                taken_b[executions] = np.arange(1, m + 1) % site.period != 0
            elif site.kind == "correlated":
                taken_b[executions] = np.resize(pattern, m)
            else:
                taken_b[executions] = rng.random(m) < site.bias
        taken[branch_mask] = taken_b
        pattern_key[branch_mask] = site_keys[site_of_branch]

    # ---- L1 misses -----------------------------------------------------------
    is_miss = np.zeros(n, dtype=bool)
    load_mask = codes == CODE_LOAD
    n_loads = int(load_mask.sum())
    if n_loads:
        is_miss[load_mask] = rng.random(n_loads) < spec.l1_miss_rate

    return Trace.from_arrays(spec.name, klass=codes, src0=src0, src1=src1,
                             dst=dst, taken=taken, pattern_key=pattern_key,
                             is_miss=is_miss)
