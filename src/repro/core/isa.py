"""Micro-ISA for the trace-driven simulator.

Traces are sequences of dynamic :class:`Instruction` records — the level
AnyCore's cycle-accurate simulator consumes after fetch/decode.  The ISA
distinguishes only what the timing model needs: execution resource class,
register dependences, branch behaviour and memory locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: Number of architectural registers (RISC-style).
NUM_ARCH_REGS = 32


class InstrClass(Enum):
    """Execution resource classes."""

    ALU = "alu"          # single-cycle integer op, any ALU pipe
    MUL = "mul"          # pipelined multiplier in an ALU pipe
    DIV = "div"          # stallable divider in an ALU pipe
    LOAD = "load"        # memory pipe
    STORE = "store"      # memory pipe
    BRANCH = "branch"    # control pipe


#: Execution latency (cycles, on top of the execute-region depth) and
#: whether the unit is pipelined (can accept a new op every cycle).
EXEC_LATENCY: dict[InstrClass, tuple[int, bool]] = {
    InstrClass.ALU: (1, True),
    InstrClass.MUL: (3, True),      # pipelined multiplier
    InstrClass.DIV: (12, False),    # stallable divider occupies its pipe
    InstrClass.LOAD: (1, True),     # plus cache latency
    InstrClass.STORE: (1, True),
    InstrClass.BRANCH: (1, True),
}

# -- packed (structure-of-arrays) encoding -----------------------------------
#
# Traces store instruction classes as small integer codes so the timing
# kernel can run over flat arrays instead of dataclass instances.  The
# code order groups the classes the way the kernel dispatches on them:
# codes < CODE_LOAD use an ALU pipe, CODE_LOAD/CODE_STORE the memory
# pipe, CODE_BRANCH the control pipe.

CODE_ALU = 0
CODE_MUL = 1
CODE_DIV = 2
CODE_LOAD = 3
CODE_STORE = 4
CODE_BRANCH = 5

#: InstrClass -> packed code, and the inverse (indexed by code).
CLASS_CODES: dict[InstrClass, int] = {
    InstrClass.ALU: CODE_ALU,
    InstrClass.MUL: CODE_MUL,
    InstrClass.DIV: CODE_DIV,
    InstrClass.LOAD: CODE_LOAD,
    InstrClass.STORE: CODE_STORE,
    InstrClass.BRANCH: CODE_BRANCH,
}
CODE_TO_CLASS: tuple[InstrClass, ...] = tuple(
    sorted(CLASS_CODES, key=CLASS_CODES.get))

#: EXEC_LATENCY flattened by packed code: latency and pipe-occupancy
#: (1 for pipelined units, the full latency for the stallable divider).
EXEC_LATENCY_BY_CODE: tuple[int, ...] = tuple(
    EXEC_LATENCY[k][0] for k in CODE_TO_CLASS)
PIPE_OCCUPANCY_BY_CODE: tuple[int, ...] = tuple(
    1 if EXEC_LATENCY[k][1] else EXEC_LATENCY[k][0] for k in CODE_TO_CLASS)


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction.

    ``srcs`` hold architectural register numbers (or -1 for none);
    ``dst`` is -1 for instructions without a register result.  For
    branches, ``taken`` is the actual outcome and ``pattern_key``
    identifies the static branch site for the predictor.
    """

    klass: InstrClass
    srcs: tuple[int, int]
    dst: int
    taken: bool = False
    pattern_key: int = 0
    is_miss: bool = False      # loads: L1 miss

    def __post_init__(self) -> None:
        for s in self.srcs:
            if s < -1 or s >= NUM_ARCH_REGS:
                raise ValueError(f"bad source register {s}")
        if self.dst < -1 or self.dst >= NUM_ARCH_REGS:
            raise ValueError(f"bad destination register {self.dst}")
