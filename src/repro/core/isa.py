"""Micro-ISA for the trace-driven simulator.

Traces are sequences of dynamic :class:`Instruction` records — the level
AnyCore's cycle-accurate simulator consumes after fetch/decode.  The ISA
distinguishes only what the timing model needs: execution resource class,
register dependences, branch behaviour and memory locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: Number of architectural registers (RISC-style).
NUM_ARCH_REGS = 32


class InstrClass(Enum):
    """Execution resource classes."""

    ALU = "alu"          # single-cycle integer op, any ALU pipe
    MUL = "mul"          # pipelined multiplier in an ALU pipe
    DIV = "div"          # stallable divider in an ALU pipe
    LOAD = "load"        # memory pipe
    STORE = "store"      # memory pipe
    BRANCH = "branch"    # control pipe


#: Execution latency (cycles, on top of the execute-region depth) and
#: whether the unit is pipelined (can accept a new op every cycle).
EXEC_LATENCY: dict[InstrClass, tuple[int, bool]] = {
    InstrClass.ALU: (1, True),
    InstrClass.MUL: (3, True),      # pipelined multiplier
    InstrClass.DIV: (12, False),    # stallable divider occupies its pipe
    InstrClass.LOAD: (1, True),     # plus cache latency
    InstrClass.STORE: (1, True),
    InstrClass.BRANCH: (1, True),
}


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction.

    ``srcs`` hold architectural register numbers (or -1 for none);
    ``dst`` is -1 for instructions without a register result.  For
    branches, ``taken`` is the actual outcome and ``pattern_key``
    identifies the static branch site for the predictor.
    """

    klass: InstrClass
    srcs: tuple[int, int]
    dst: int
    taken: bool = False
    pattern_key: int = 0
    is_miss: bool = False      # loads: L1 miss

    def __post_init__(self) -> None:
        for s in self.srcs:
            if s < -1 or s >= NUM_ARCH_REGS:
                raise ValueError(f"bad source register {s}")
        if self.dst < -1 or self.dst >= NUM_ARCH_REGS:
            raise ValueError(f"bad destination register {self.dst}")
