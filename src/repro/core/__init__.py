"""The architecture-tradeoff layer: AnyCore-style parameterised cores.

This is the paper's primary contribution: given the characterised organic
and silicon libraries, evaluate processor design points across pipeline
depth (Figure 11), ALU depth (Figure 12), and superscalar width (Figures
13/14), combining

- **IPC** from a trace-driven out-of-order cycle simulator
  (:mod:`repro.core.superscalar`) running seven synthetic workloads
  (:mod:`repro.core.workloads` — Dhrystone plus six SPEC CPU2000 integer
  stand-ins), and
- **clock frequency and area** from the physical model
  (:mod:`repro.core.physical`), which prices each pipeline region with
  real mapped netlists plus Palacharla-style structure models, all
  expressed through the process's NLDM library and wire model.

``performance = IPC x frequency``, exactly as the paper computes it.
"""

from repro.core.config import CoreConfig, REGION_NAMES
from repro.core.isa import InstrClass, Instruction
from repro.core.trace import Trace
from repro.core.workloads import WORKLOADS, WorkloadSpec, generate_trace
from repro.core.branch import GsharePredictor, BimodalPredictor
from repro.core.superscalar import SimulationResult, simulate
from repro.core.physical import CorePhysical, core_physical
from repro.core.tradeoffs import (
    DepthSweepPoint,
    depth_sweep,
    WidthSweepPoint,
    width_sweep,
    deepen_pipeline,
)

__all__ = [
    "CoreConfig",
    "REGION_NAMES",
    "InstrClass",
    "Instruction",
    "Trace",
    "WORKLOADS",
    "WorkloadSpec",
    "generate_trace",
    "GsharePredictor",
    "BimodalPredictor",
    "SimulationResult",
    "simulate",
    "CorePhysical",
    "core_physical",
    "DepthSweepPoint",
    "depth_sweep",
    "WidthSweepPoint",
    "width_sweep",
    "deepen_pipeline",
]
