"""Instruction traces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.isa import Instruction, InstrClass


@dataclass
class Trace:
    """A dynamic instruction stream plus provenance metadata."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def class_mix(self) -> dict[InstrClass, float]:
        """Fraction of each instruction class (for trace validation)."""
        if not self.instructions:
            return {}
        counts: dict[InstrClass, int] = {}
        for instr in self.instructions:
            counts[instr.klass] = counts.get(instr.klass, 0) + 1
        total = len(self.instructions)
        return {k: v / total for k, v in counts.items()}

    def branch_count(self) -> int:
        return sum(1 for i in self.instructions
                   if i.klass is InstrClass.BRANCH)
