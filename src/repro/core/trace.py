"""Instruction traces, stored structure-of-arrays.

A :class:`Trace` is canonically a set of packed NumPy arrays (class
codes, source/destination registers, branch outcomes and pattern keys,
L1-miss flags).  The array form is what the fast timing kernel and the
branch-predictor precomputation consume; the classic list-of-
:class:`~repro.core.isa.Instruction` view is materialised lazily for the
cycle-exact reference oracle and for tests that build tiny traces by
hand.

Traces are content-addressed: :meth:`Trace.fingerprint` hashes the
packed arrays, and the persistent result cache
(:mod:`repro.runtime.cache`) keys simulation results on it, so a sweep
re-run with identical traces skips simulation entirely.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Sequence

import numpy as np

from repro.core.isa import (
    CLASS_CODES,
    CODE_BRANCH,
    CODE_LOAD,
    CODE_TO_CLASS,
    NUM_ARCH_REGS,
    Instruction,
    InstrClass,
)
from repro.errors import ConfigError


class Trace:
    """A dynamic instruction stream plus provenance metadata.

    Construct either from a list of :class:`Instruction` (the historic
    API, used by tests and hand-built micro-traces) or from packed
    arrays via :meth:`from_arrays` (the trace generator's path).  Both
    views stay available; whichever was not supplied is derived lazily.
    """

    __slots__ = ("name", "_n", "_klass", "_src0", "_src1", "_dst",
                 "_taken", "_pattern_key", "_is_miss", "_instructions",
                 "_class_mix", "_branch_count", "_l1_miss_count",
                 "_fingerprint", "_packed", "_packed_arrays",
                 "_branch_keys_taken", "_mispredict_flags",
                 "_mispredict_arrays")

    def __init__(self, name: str,
                 instructions: Sequence[Instruction] | None = None) -> None:
        self.name = name
        instructions = list(instructions) if instructions else []
        n = len(instructions)
        self._n = n
        self._instructions: list[Instruction] | None = instructions
        self._klass = np.fromiter(
            (CLASS_CODES[i.klass] for i in instructions),
            dtype=np.int8, count=n)
        self._src0 = np.fromiter((i.srcs[0] for i in instructions),
                                 dtype=np.int8, count=n)
        self._src1 = np.fromiter((i.srcs[1] for i in instructions),
                                 dtype=np.int8, count=n)
        self._dst = np.fromiter((i.dst for i in instructions),
                                dtype=np.int8, count=n)
        self._taken = np.fromiter((i.taken for i in instructions),
                                  dtype=bool, count=n)
        self._pattern_key = np.fromiter(
            (i.pattern_key for i in instructions), dtype=np.int64, count=n)
        self._is_miss = np.fromiter((i.is_miss for i in instructions),
                                    dtype=bool, count=n)
        self._init_caches()

    def _init_caches(self) -> None:
        self._class_mix: dict[InstrClass, float] | None = None
        self._branch_count: int | None = None
        self._l1_miss_count: int | None = None
        self._fingerprint: str | None = None
        self._packed: tuple | None = None
        self._packed_arrays: tuple | None = None
        self._branch_keys_taken: tuple[np.ndarray, np.ndarray] | None = None
        self._mispredict_flags: dict[int, list[bool]] = {}
        self._mispredict_arrays: dict[int, np.ndarray] = {}

    @classmethod
    def from_arrays(cls, name: str, *, klass: np.ndarray, src0: np.ndarray,
                    src1: np.ndarray, dst: np.ndarray, taken: np.ndarray,
                    pattern_key: np.ndarray, is_miss: np.ndarray) -> "Trace":
        """Build a trace directly from packed arrays (no Instruction list).

        Arrays must share one length; registers are validated against the
        architectural register file the way ``Instruction`` validates them.
        """
        trace = cls.__new__(cls)
        trace.name = name
        klass = np.asarray(klass, dtype=np.int8)
        n = len(klass)
        arrays = {
            "_src0": np.asarray(src0, dtype=np.int8),
            "_src1": np.asarray(src1, dtype=np.int8),
            "_dst": np.asarray(dst, dtype=np.int8),
            "_taken": np.asarray(taken, dtype=bool),
            "_pattern_key": np.asarray(pattern_key, dtype=np.int64),
            "_is_miss": np.asarray(is_miss, dtype=bool),
        }
        for attr, arr in arrays.items():
            if len(arr) != n:
                raise ConfigError(
                    f"trace {name!r}: array {attr[1:]!r} has length "
                    f"{len(arr)}, expected {n}")
        if n:
            if klass.min() < 0 or klass.max() >= len(CODE_TO_CLASS):
                raise ConfigError(f"trace {name!r}: bad class codes")
            for reg_attr in ("_src0", "_src1", "_dst"):
                arr = arrays[reg_attr]
                if arr.min() < -1 or arr.max() >= NUM_ARCH_REGS:
                    raise ConfigError(
                        f"trace {name!r}: register out of range in "
                        f"{reg_attr[1:]!r}")
        trace._n = n
        trace._klass = klass
        for attr, arr in arrays.items():
            setattr(trace, attr, arr)
        trace._instructions = None
        trace._init_caches()
        return trace

    # -- views ---------------------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        """The instruction-object view (materialised on first access)."""
        if self._instructions is None:
            self._instructions = [
                Instruction(klass=CODE_TO_CLASS[k],
                            srcs=(int(s0), int(s1)), dst=int(d),
                            taken=bool(t), pattern_key=int(pk),
                            is_miss=bool(m))
                for k, s0, s1, d, t, pk, m in zip(
                    self._klass.tolist(), self._src0.tolist(),
                    self._src1.tolist(), self._dst.tolist(),
                    self._taken.tolist(), self._pattern_key.tolist(),
                    self._is_miss.tolist())
            ]
        return self._instructions

    @property
    def klass_codes(self) -> np.ndarray:
        return self._klass

    @property
    def src0(self) -> np.ndarray:
        return self._src0

    @property
    def src1(self) -> np.ndarray:
        return self._src1

    @property
    def dst(self) -> np.ndarray:
        return self._dst

    @property
    def taken(self) -> np.ndarray:
        return self._taken

    @property
    def pattern_key(self) -> np.ndarray:
        return self._pattern_key

    @property
    def is_miss(self) -> np.ndarray:
        return self._is_miss

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # -- cached statistics ---------------------------------------------------

    def class_mix(self) -> dict[InstrClass, float]:
        """Fraction of each instruction class (for trace validation).

        O(n) on first call, cached afterwards — validation layers call
        this repeatedly on the same trace.
        """
        if self._class_mix is None:
            if self._n == 0:
                self._class_mix = {}
            else:
                counts = np.bincount(self._klass,
                                     minlength=len(CODE_TO_CLASS))
                self._class_mix = {
                    CODE_TO_CLASS[code]: int(c) / self._n
                    for code, c in enumerate(counts.tolist()) if c
                }
        return dict(self._class_mix)

    def branch_count(self) -> int:
        """Number of dynamic branches (cached)."""
        if self._branch_count is None:
            self._branch_count = int((self._klass == CODE_BRANCH).sum())
        return self._branch_count

    def l1_miss_count(self) -> int:
        """Number of load L1 misses (cached).

        Only loads can miss; a stray ``is_miss`` flag on a non-load (a
        hand-built trace) is ignored, matching the timing model.
        """
        if self._l1_miss_count is None:
            self._l1_miss_count = int(
                (self._is_miss & (self._klass == CODE_LOAD)).sum())
        return self._l1_miss_count

    # -- content addressing ---------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the packed arrays (hex, 16 chars).

        Identifies the dynamic instruction stream — not the trace's
        display name — so caches keyed on it survive renames and process
        restarts but never conflate different streams.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(str(self._n).encode())
            for arr in (self._klass, self._src0, self._src1, self._dst,
                        self._taken, self._pattern_key, self._is_miss):
                h.update(b"\x00")
                h.update(np.ascontiguousarray(arr).tobytes())
            self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint

    # -- kernel-facing packed views -------------------------------------------

    def packed_lists(self) -> tuple[list, list, list, list, list]:
        """(codes, src0, src1, dst, load_miss) as plain Python lists.

        Plain-list indexing is what the tight timing loop wants (scalar
        NumPy indexing is several times slower); the conversion happens
        once per trace and is shared by every config simulated on it.
        ``load_miss`` is pre-masked to loads.
        """
        if self._packed is None:
            load_miss = self._is_miss & (self._klass == CODE_LOAD)
            self._packed = (self._klass.tolist(), self._src0.tolist(),
                            self._src1.tolist(), self._dst.tolist(),
                            load_miss.tolist())
        return self._packed

    def packed_arrays(self) -> tuple[np.ndarray, ...]:
        """(codes, src0, src1, dst, load_miss) as contiguous arrays.

        The compiled timing kernel reads these buffers directly (int8
        registers/codes, uint8 miss flags); built once per trace, like
        :meth:`packed_lists`.  ``load_miss`` is pre-masked to loads.
        """
        if self._packed_arrays is None:
            load_miss = (self._is_miss & (self._klass == CODE_LOAD))
            self._packed_arrays = tuple(
                np.ascontiguousarray(a) for a in (
                    self._klass, self._src0, self._src1, self._dst,
                    load_miss.astype(np.uint8)))
        return self._packed_arrays

    def mispredict_array(self, index_bits: int) -> np.ndarray:
        """:meth:`mispredict_flags` as a contiguous uint8 array (cached)."""
        arr = self._mispredict_arrays.get(index_bits)
        if arr is None:
            arr = np.asarray(self.mispredict_flags(index_bits),
                             dtype=np.uint8)
            self._mispredict_arrays[index_bits] = arr
        return arr

    def branch_stream(self) -> tuple[np.ndarray, np.ndarray]:
        """(pattern_keys, taken) restricted to branches, in trace order."""
        if self._branch_keys_taken is None:
            mask = self._klass == CODE_BRANCH
            self._branch_keys_taken = (self._pattern_key[mask],
                                       self._taken[mask])
        return self._branch_keys_taken

    def mispredict_flags(self, index_bits: int) -> list[bool]:
        """Gshare mispredict flags per branch, cached per predictor size.

        The predictor's outcome stream depends only on the trace and the
        table size — never on core timing — so it is computed once per
        ``(trace, index_bits)`` and reused by every configuration of a
        sweep (see :func:`repro.core.branch.gshare_mispredict_flags`).
        """
        flags = self._mispredict_flags.get(index_bits)
        if flags is None:
            from repro.core.branch import gshare_mispredict_flags
            keys, taken = self.branch_stream()
            flags = gshare_mispredict_flags(keys, taken, index_bits)
            self._mispredict_flags[index_bits] = flags
        return flags
