"""Physical core model: configuration -> clock period and area.

Each of the nine pipeline regions gets a *logic delay* — real mapped
netlists (next-PC adder, simple ALU, the complex-ALU slice) timed by NLDM
STA where a netlist is natural, Palacharla-style structure models
(:mod:`repro.core.complexity`) where the structure is wire/array dominated
(rename, issue queue, register file, bypass, ROB, BTB).  A region with k
stages contributes ``logic/k`` (floored at a minimum stage quantum) plus
the per-stage sequencing overhead; the clock period is the worst region.

The per-stage overhead includes the cross-core feedback wire (stalls,
bypasses, branch redirect) whose length follows the core's own floorplan
span — this term is what separates the processes in Figures 11 and 15.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.characterization.library import Library
from repro.core.complexity import StructureModel
from repro.core.config import REGION_NAMES, CoreConfig
from repro.errors import ConfigError
from repro.runtime import profiling
from repro.runtime.cache import default_cache
from repro.synthesis import sta as _sta
from repro.synthesis.generators import (carry_select_adder, complex_alu_slice,
                                        extend_carry_select_adder, simple_alu)
from repro.synthesis.mapping import (map_cached, mapped_cell_counts,
                                     reset_map_cache)
from repro.synthesis.netlist import Netlist
from repro.synthesis.pipeline import broadcast_penalty
from repro.synthesis.sta import static_timing
from repro.synthesis.wires import WireModel

#: Smallest meaningful per-stage logic, in FO4 units (one mapped gate
#: level plus local routing — the granularity floor).
MIN_STAGE_LOGIC_FO4 = 1.5

#: Feedback-wire length model at core level, in core-span units.
CORE_FEEDBACK_BASE = 0.4
CORE_FEEDBACK_PER_STAGE = 0.06


@dataclass(frozen=True)
class CorePhysical:
    """Physical figures of one core design point."""

    config_name: str
    process: str
    period: float
    frequency: float
    area: float
    critical_region: str
    overhead: float
    region_logic: dict[str, float] = field(repr=False, default_factory=dict)
    region_stage_delay: dict[str, float] = field(repr=False,
                                                 default_factory=dict)


# Cached netlist timing/area per (library fingerprint, block, width,
# wire model) — in-process memo in front of the persistent result cache.
_BLOCK_CACHE: dict[tuple, tuple[float, float]] = {}

# Generic (pre-mapping) netlists per (block, width): sweeps revisit the
# same few block shapes for every (library, wire) combo, and the adder
# additionally grows by copy-on-extend from the widest cached instance.
_GENERIC_CACHE: dict[tuple[str, int], Netlist] = {}

# Counts-based block gate area per (library fingerprint, block, width) —
# wire-independent, unlike delay.
_AREA_CACHE: dict[tuple, float] = {}

#: Carry-select block size used by the datapath adder; an adder can only
#: be widened by extension when its base width is a multiple of this.
_CSA_BLOCK = 4


def reset_structure_caches() -> None:
    """Drop every in-process synthesis memo (tests, cache-control)."""
    _BLOCK_CACHE.clear()
    _GENERIC_CACHE.clear()
    _AREA_CACHE.clear()
    reset_map_cache()
    _sta.reset_incremental()


def _lib_key(library: Library) -> str:
    return str(library.metadata.get("fingerprint", library.name))


def _wire_key(wire: WireModel) -> tuple:
    return (wire.name, wire.c_per_m, wire.r_per_m, wire.pitch,
            wire.base_spans, wire.span_per_fanout)


def _generic_block(block: str, width: int) -> Netlist:
    """Generic netlist of a named datapath block, memoised per shape.

    Adders reuse structure across widths: when the incremental-STA
    feature gate is on and a narrower adder with a compatible block
    boundary is already cached, the wider one is built by
    :func:`extend_carry_select_adder`, sharing the base's gates so
    mapping and STA can skip the shared prefix.
    """
    key = (block, width)
    hit = _GENERIC_CACHE.get(key)
    if hit is not None:
        return hit

    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    if block == "alu":
        nl = simple_alu(width)
    elif block == "complex":
        nl = complex_alu_slice(width)
    elif block == "adder":
        base = None
        base_w = 0
        if _sta.incremental_enabled():
            for (blk, w0), cand in _GENERIC_CACHE.items():
                if (blk == "adder" and base_w < w0 < width
                        and w0 % _CSA_BLOCK == 0):
                    base, base_w = cand, w0
        if base is not None:
            nl = extend_carry_select_adder(base, width)
        else:
            nl = carry_select_adder(width)
    else:
        raise ConfigError(f"unknown physical block {block!r}")
    if profiling.ENABLED:
        profiling.add("netlist", time.perf_counter() - t0)
    _GENERIC_CACHE[key] = nl
    return nl


def block_netlist(block: str, width: int) -> Netlist:
    """Mapped netlist of a named datapath block (structure-shared).

    The single construction path for ``adder`` / ``alu`` / ``complex``
    blocks: generic generation is memoised per shape
    (:func:`_generic_block`) and mapping goes through
    :func:`repro.synthesis.mapping.map_cached`, so repeated callers —
    sweeps, figures, the DSE driver — share one netlist object per
    shape instead of re-synthesising it per (library, wire) combo.
    """
    return map_cached(_generic_block(block, width))


def _block_area(block: str, width: int, library: Library) -> float:
    """Mapped gate area of a named block, by cell counting.

    Mapping is an exact per-cell integer transform
    (:func:`repro.synthesis.mapping.mapped_cell_counts`), so area needs
    neither the mapped netlist nor a wire model; summing in sorted cell
    order keeps the float total deterministic.  Memoised in-process and
    in the persistent cache (category ``block_area``).
    """
    key = (_lib_key(library), block, width)
    hit = _AREA_CACHE.get(key)
    if hit is not None:
        return hit

    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    cache = default_cache()
    cache_key = cache.key({
        "schema": 1,
        "library": _lib_key(library),
        "block": block,
        "width": width,
    })
    payload = cache.get("block_area", cache_key)
    if profiling.ENABLED:
        profiling.add("cache", time.perf_counter() - t0)
    if payload is not None:
        area = float(payload["area"])
        _AREA_CACHE[key] = area
        return area

    nl = _generic_block(block, width)
    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    counts = mapped_cell_counts(nl)
    area = sum(library.cell(cell).area * n
               for cell, n in sorted(counts.items()))
    if profiling.ENABLED:
        profiling.add("mapping", time.perf_counter() - t0)
        t0 = time.perf_counter()
    cache.put("block_area", cache_key, {"area": area})
    if profiling.ENABLED:
        profiling.add("cache", time.perf_counter() - t0)
    _AREA_CACHE[key] = area
    return area


def _block_timing(block: str, width: int, library: Library,
                  wire: WireModel) -> tuple[float, float]:
    """(critical delay, gate area) of a named mapped block, cached.

    Synthesising and timing the wide datapath blocks is the expensive
    first step of any sweep, so results are memoised both in-process and
    in the persistent result cache (category ``block_timing``; disable
    with ``REPRO_CACHE=0``).  Schema 2: area switched to the
    counts-based :func:`_block_area` value (deterministic summation
    order), so schema-1 entries are never reused.
    """
    key = (_lib_key(library), block, width, _wire_key(wire))
    hit = _BLOCK_CACHE.get(key)
    if hit is not None:
        return hit

    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    cache = default_cache()
    cache_key = cache.key({
        "schema": 2,
        "library": _lib_key(library),
        "block": block,
        "width": width,
        "wire": _wire_key(wire),
    })
    payload = cache.get("block_timing", cache_key)
    if profiling.ENABLED:
        profiling.add("cache", time.perf_counter() - t0)
    if payload is not None:
        result = (float(payload["delay"]), float(payload["area"]))
        _BLOCK_CACHE[key] = result
        return result

    netlist = block_netlist(block, width)
    report = static_timing(netlist, library, wire)
    result = (report.max_delay, _block_area(block, width, library))
    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    cache.put("block_timing", cache_key,
              {"delay": result[0], "area": result[1]})
    if profiling.ENABLED:
        profiling.add("cache", time.perf_counter() - t0)
    _BLOCK_CACHE[key] = result
    return result


def region_logic_delays(config: CoreConfig, library: Library,
                        wire: WireModel) -> dict[str, float]:
    """Single-stage (unsplit) logic delay of each pipeline region."""
    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    sm = StructureModel(library, wire)
    fo4 = sm.fo4
    if profiling.ENABLED:
        profiling.add("structures", time.perf_counter() - t0)
    w = config.data_width

    # Block synthesis/timing books its own netlist/mapping/sta/cache
    # stages; only the structure-model arithmetic around it is timed
    # here, so the two never double-count.
    adder_delay, _ = _block_timing("adder", w, library, wire)
    alu_delay, _ = _block_timing("alu", w, library, wire)

    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    mux_fanin = 1.0 + math.log2(max(config.front_width, 2))
    delays = {
        # Next-PC add and BTB lookup are parallel paths into the PC mux.
        "fetch": max(sm.btb_delay(config.front_width), adder_delay)
                 + mux_fanin * fo4,
        "decode": (6.0 + 0.8 * (config.front_width - 1)) * fo4,
        "rename": sm.rename_delay(config.front_width, config.phys_regs),
        "dispatch": sm.array_delay(config.iq_size, 32,
                                   max(config.front_width, 2)),
        "issue": sm.wakeup_select_delay(config.iq_size, config.back_width,
                                        config.front_width),
        "regread": sm.regfile_delay(config.phys_regs, w, config.back_width),
        "execute": alu_delay + sm.bypass_delay(config.back_width, w),
        "writeback": sm.rob_delay(config.rob_size, config.front_width),
        "retire": sm.rob_delay(config.rob_size, config.front_width)
                  + 2.0 * fo4,
    }
    if profiling.ENABLED:
        profiling.add("structures", time.perf_counter() - t0)
    return delays


def core_area(config: CoreConfig, library: Library,
              wire: WireModel) -> float:
    """Total core area from structure and datapath components."""
    w = config.data_width
    fw, bw = config.front_width, config.back_width

    # Areas come from the counts-based path: the complex block in
    # particular is never mapped or timed (its delay is unused — the
    # pipeliner owns complex-ALU staging), which drops the single most
    # expensive synthesis in a cold sweep.  Block construction books
    # its own stages; the array-model arithmetic below is "structures".
    alu_area = _block_area("alu", w, library)
    adder_area = _block_area("adder", w, library)
    complex_area = _block_area("complex", w, library)

    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    sm = StructureModel(library, wire)
    nand_area = library.cell("nand2").area

    area = 0.0
    # Front end: BTB, per-way decode logic, next-PC.
    area += sm.array_area(256, 24, 1 + fw // 2)
    area += 350 * nand_area * fw
    area += adder_area
    # Rename: map table + free list.
    tag_bits = max(1, math.ceil(math.log2(config.phys_regs)))
    area += sm.array_area(32, tag_bits, 3 * fw)
    area += sm.array_area(config.phys_regs, tag_bits, fw)
    # Issue queue (payload + source tags, CAM-ported by the back end).
    area += sm.array_area(config.iq_size, 32 + 2 * tag_bits, fw + bw)
    # Register file.
    area += sm.array_area(config.phys_regs, w, 3 * bw)
    # Execution pipes: ALU per plain pipe; complex unit on one pipe;
    # memory pipe (AGU + LSQ); branch pipe.
    area += alu_area * config.alu_pipes + complex_area
    area += adder_area + sm.array_area(config.lsq_size, 40, 2)   # mem pipe
    area += alu_area                                              # branch
    # ROB.
    area += sm.array_area(config.rob_size, 40, 2 * fw)
    # Extra pipeline registers beyond the 9-stage baseline: one datapath-
    # wide latch bank per added stage per active way.
    extra_stages = max(config.depth - len(REGION_NAMES), 0)
    area += extra_stages * (fw + bw) * w * library.dff.area
    if profiling.ENABLED:
        profiling.add("structures", time.perf_counter() - t0)
    return area


def core_physical(config: CoreConfig, library: Library, wire: WireModel,
                  skew_fo4: float = 0.5) -> CorePhysical:
    """Clock period, frequency and area of one design point."""
    logic = region_logic_delays(config, library, wire)
    area = core_area(config, library, wire)
    t0 = time.perf_counter() if profiling.ENABLED else 0.0
    fo4 = library.inverter_fo4_delay()

    span = math.sqrt(area)
    feedback_length = span * (CORE_FEEDBACK_BASE
                              + CORE_FEEDBACK_PER_STAGE * config.depth)
    overhead = (library.register_overhead()
                + skew_fo4 * fo4
                + broadcast_penalty(library, wire, feedback_length))

    floor = MIN_STAGE_LOGIC_FO4 * fo4
    stage_delay: dict[str, float] = {}
    for region, delay in logic.items():
        k = config.regions[region]
        stage_delay[region] = max(delay / k, floor) + overhead

    critical_region = max(stage_delay, key=stage_delay.get)
    period = stage_delay[critical_region]
    if profiling.ENABLED:
        profiling.add("structures", time.perf_counter() - t0)
    return CorePhysical(
        config_name=config.name,
        process=library.process,
        period=period,
        frequency=1.0 / period,
        area=area,
        critical_region=critical_region,
        overhead=overhead,
        region_logic=logic,
        region_stage_delay=stage_delay,
    )
