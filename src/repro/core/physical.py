"""Physical core model: configuration -> clock period and area.

Each of the nine pipeline regions gets a *logic delay* — real mapped
netlists (next-PC adder, simple ALU, the complex-ALU slice) timed by NLDM
STA where a netlist is natural, Palacharla-style structure models
(:mod:`repro.core.complexity`) where the structure is wire/array dominated
(rename, issue queue, register file, bypass, ROB, BTB).  A region with k
stages contributes ``logic/k`` (floored at a minimum stage quantum) plus
the per-stage sequencing overhead; the clock period is the worst region.

The per-stage overhead includes the cross-core feedback wire (stalls,
bypasses, branch redirect) whose length follows the core's own floorplan
span — this term is what separates the processes in Figures 11 and 15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.characterization.library import Library
from repro.core.complexity import StructureModel
from repro.core.config import REGION_NAMES, CoreConfig
from repro.errors import ConfigError
from repro.runtime.cache import default_cache
from repro.synthesis.generators import carry_select_adder, complex_alu_slice, simple_alu
from repro.synthesis.mapping import technology_map
from repro.synthesis.pipeline import broadcast_penalty
from repro.synthesis.sta import static_timing
from repro.synthesis.wires import WireModel

#: Smallest meaningful per-stage logic, in FO4 units (one mapped gate
#: level plus local routing — the granularity floor).
MIN_STAGE_LOGIC_FO4 = 1.5

#: Feedback-wire length model at core level, in core-span units.
CORE_FEEDBACK_BASE = 0.4
CORE_FEEDBACK_PER_STAGE = 0.06


@dataclass(frozen=True)
class CorePhysical:
    """Physical figures of one core design point."""

    config_name: str
    process: str
    period: float
    frequency: float
    area: float
    critical_region: str
    overhead: float
    region_logic: dict[str, float] = field(repr=False, default_factory=dict)
    region_stage_delay: dict[str, float] = field(repr=False,
                                                 default_factory=dict)


# Cached netlist timing/area per (library fingerprint, block, width,
# wire model) — in-process memo in front of the persistent result cache.
_BLOCK_CACHE: dict[tuple, tuple[float, float]] = {}


def _lib_key(library: Library) -> str:
    return str(library.metadata.get("fingerprint", library.name))


def _wire_key(wire: WireModel) -> tuple:
    return (wire.name, wire.c_per_m, wire.r_per_m, wire.pitch,
            wire.base_spans, wire.span_per_fanout)


def _block_timing(block: str, width: int, library: Library,
                  wire: WireModel) -> tuple[float, float]:
    """(critical delay, gate area) of a named mapped block, cached.

    Synthesising and timing the wide datapath blocks (the complex-ALU
    slice is ~20k gates) is the expensive first step of any sweep, so
    results are memoised both in-process and in the persistent result
    cache (category ``block_timing``; disable with ``REPRO_CACHE=0``).
    """
    key = (_lib_key(library), block, width, _wire_key(wire))
    hit = _BLOCK_CACHE.get(key)
    if hit is not None:
        return hit

    cache = default_cache()
    cache_key = cache.key({
        "schema": 1,
        "library": _lib_key(library),
        "block": block,
        "width": width,
        "wire": _wire_key(wire),
    })
    payload = cache.get("block_timing", cache_key)
    if payload is not None:
        result = (float(payload["delay"]), float(payload["area"]))
        _BLOCK_CACHE[key] = result
        return result

    if block == "alu":
        netlist = technology_map(simple_alu(width))
    elif block == "adder":
        netlist = technology_map(carry_select_adder(width))
    elif block == "complex":
        netlist = technology_map(complex_alu_slice(width))
    else:
        raise ConfigError(f"unknown physical block {block!r}")
    report = static_timing(netlist, library, wire)
    area = sum(library.cell(g.cell).area for g in netlist.gates.values())
    result = (report.max_delay, area)
    cache.put("block_timing", cache_key,
              {"delay": report.max_delay, "area": area})
    _BLOCK_CACHE[key] = result
    return result


def region_logic_delays(config: CoreConfig, library: Library,
                        wire: WireModel) -> dict[str, float]:
    """Single-stage (unsplit) logic delay of each pipeline region."""
    sm = StructureModel(library, wire)
    fo4 = sm.fo4
    w = config.data_width

    adder_delay, _ = _block_timing("adder", w, library, wire)
    alu_delay, _ = _block_timing("alu", w, library, wire)

    mux_fanin = 1.0 + math.log2(max(config.front_width, 2))
    return {
        # Next-PC add and BTB lookup are parallel paths into the PC mux.
        "fetch": max(sm.btb_delay(config.front_width), adder_delay)
                 + mux_fanin * fo4,
        "decode": (6.0 + 0.8 * (config.front_width - 1)) * fo4,
        "rename": sm.rename_delay(config.front_width, config.phys_regs),
        "dispatch": sm.array_delay(config.iq_size, 32,
                                   max(config.front_width, 2)),
        "issue": sm.wakeup_select_delay(config.iq_size, config.back_width,
                                        config.front_width),
        "regread": sm.regfile_delay(config.phys_regs, w, config.back_width),
        "execute": alu_delay + sm.bypass_delay(config.back_width, w),
        "writeback": sm.rob_delay(config.rob_size, config.front_width),
        "retire": sm.rob_delay(config.rob_size, config.front_width)
                  + 2.0 * fo4,
    }


def core_area(config: CoreConfig, library: Library,
              wire: WireModel) -> float:
    """Total core area from structure and datapath components."""
    sm = StructureModel(library, wire)
    w = config.data_width
    fw, bw = config.front_width, config.back_width

    _, alu_area = _block_timing("alu", w, library, wire)
    _, adder_area = _block_timing("adder", w, library, wire)
    _, complex_area = _block_timing("complex", w, library, wire)
    nand_area = library.cell("nand2").area

    area = 0.0
    # Front end: BTB, per-way decode logic, next-PC.
    area += sm.array_area(256, 24, 1 + fw // 2)
    area += 350 * nand_area * fw
    area += adder_area
    # Rename: map table + free list.
    tag_bits = max(1, math.ceil(math.log2(config.phys_regs)))
    area += sm.array_area(32, tag_bits, 3 * fw)
    area += sm.array_area(config.phys_regs, tag_bits, fw)
    # Issue queue (payload + source tags, CAM-ported by the back end).
    area += sm.array_area(config.iq_size, 32 + 2 * tag_bits, fw + bw)
    # Register file.
    area += sm.array_area(config.phys_regs, w, 3 * bw)
    # Execution pipes: ALU per plain pipe; complex unit on one pipe;
    # memory pipe (AGU + LSQ); branch pipe.
    area += alu_area * config.alu_pipes + complex_area
    area += adder_area + sm.array_area(config.lsq_size, 40, 2)   # mem pipe
    area += alu_area                                              # branch
    # ROB.
    area += sm.array_area(config.rob_size, 40, 2 * fw)
    # Extra pipeline registers beyond the 9-stage baseline: one datapath-
    # wide latch bank per added stage per active way.
    extra_stages = max(config.depth - len(REGION_NAMES), 0)
    area += extra_stages * (fw + bw) * w * library.dff.area
    return area


def core_physical(config: CoreConfig, library: Library, wire: WireModel,
                  skew_fo4: float = 0.5) -> CorePhysical:
    """Clock period, frequency and area of one design point."""
    logic = region_logic_delays(config, library, wire)
    area = core_area(config, library, wire)
    fo4 = library.inverter_fo4_delay()

    span = math.sqrt(area)
    feedback_length = span * (CORE_FEEDBACK_BASE
                              + CORE_FEEDBACK_PER_STAGE * config.depth)
    overhead = (library.register_overhead()
                + skew_fo4 * fo4
                + broadcast_penalty(library, wire, feedback_length))

    floor = MIN_STAGE_LOGIC_FO4 * fo4
    stage_delay: dict[str, float] = {}
    for region, delay in logic.items():
        k = config.regions[region]
        stage_delay[region] = max(delay / k, floor) + overhead

    critical_region = max(stage_delay, key=stage_delay.get)
    period = stage_delay[critical_region]
    return CorePhysical(
        config_name=config.name,
        process=library.process,
        period=period,
        frequency=1.0 / period,
        area=area,
        critical_region=critical_region,
        overhead=overhead,
        region_logic=logic,
        region_stage_delay=stage_delay,
    )
