"""Design-space sweep drivers: pipeline depth and superscalar width.

These functions orchestrate the paper's Section 5.3/5.4 experiments:
per-process frequency and area from :mod:`repro.core.physical`, IPC from
:mod:`repro.core.superscalar`, and ``performance = IPC x frequency``.

Depth is grown the way the paper grows it: "we synthesize the baseline
design and cut the stage which is on the critical path" — so the stage
allocation (and therefore the IPC penalty profile) genuinely depends on
which process is being targeted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.characterization.library import Library
from repro.core.config import CoreConfig
from repro.core.physical import (
    MIN_STAGE_LOGIC_FO4,
    CorePhysical,
    core_physical,
    region_logic_delays,
)
from repro.core.superscalar import simulate_cached
from repro.core.trace import Trace
from repro.core.workloads import WORKLOADS, generate_trace
from repro.errors import ConfigError
from repro.runtime import get_shared, parallel_map, telemetry
from repro.synthesis.wires import WireModel

#: Default dynamic instruction count per workload for the sweeps.  The
#: synthetic traces are statistically stationary, so this converges to
#: the same IPC as a much longer run (checked in the test suite).
DEFAULT_TRACE_LENGTH = 30_000


def make_traces(workloads: list[str] | None = None,
                n_instructions: int = DEFAULT_TRACE_LENGTH,
                seed: int = 0) -> dict[str, Trace]:
    """Generate (deterministically) the benchmark traces for a sweep."""
    names = workloads or list(WORKLOADS)
    traces = {}
    for name in names:
        if name not in WORKLOADS:
            raise ConfigError(f"unknown workload {name!r}; "
                              f"available: {sorted(WORKLOADS)}")
        traces[name] = generate_trace(WORKLOADS[name], n_instructions, seed)
    return traces


# ---------------------------------------------------------------------------
# Pipeline depth (Figure 11)
# ---------------------------------------------------------------------------

def deepen_pipeline(config: CoreConfig, library: Library,
                    wire: WireModel) -> CoreConfig:
    """Split the stage currently on the critical path (paper Section 5.1).

    Chooses the region with the largest per-stage *logic* among those that
    can still be usefully split (above the granularity floor); a region at
    the floor cannot be improved by cutting, so the next-worst splittable
    region is cut instead.
    """
    logic = region_logic_delays(config, library, wire)
    fo4 = library.inverter_fo4_delay()
    floor = MIN_STAGE_LOGIC_FO4 * fo4

    candidates = sorted(logic, key=lambda r: logic[r] / config.regions[r],
                        reverse=True)
    for region in candidates:
        if logic[region] / config.regions[region] > floor:
            regions = dict(config.regions)
            regions[region] += 1
            return config.with_regions(
                regions, name=f"d{config.depth + 1}_{library.process}")
    # Everything is at the floor: deepen the nominal critical region
    # anyway (matches the paper's observation that this only hurts IPC).
    regions = dict(config.regions)
    regions[candidates[0]] += 1
    return config.with_regions(
        regions, name=f"d{config.depth + 1}_{library.process}")


@dataclass(frozen=True)
class DepthSweepPoint:
    """One pipeline depth evaluated on one process."""

    depth: int
    config: CoreConfig
    physical: CorePhysical
    ipc: dict[str, float]
    performance: dict[str, float] = field(default_factory=dict)

    def mean_performance(self) -> float:
        return sum(self.performance.values()) / len(self.performance)


def _eval_config_task(config: CoreConfig):
    """Module-level (picklable) worker: physical + IPC of one config.

    The (library, wire, traces) invariants ride along via the runtime's
    shared-object channel, so they are shipped once per worker process
    rather than once per sweep point.  Simulations go through the
    persistent result cache (config timing signature x trace
    fingerprint), so re-running a sweep on unchanged traces skips the
    timing kernel entirely; disable with ``REPRO_CACHE=0``.
    """
    library, wire, traces = get_shared()
    # One span per sweep point: serial runs record it inline, pooled
    # runs ship it back in the worker snapshot, so the trace exporter
    # can lay sweep points out on per-worker tracks.
    with telemetry.span("point", config=config.name):
        physical = core_physical(config, library, wire)
        ipc = {name: simulate_cached(config, trace).ipc
               for name, trace in traces.items()}
        perf = {name: v * physical.frequency for name, v in ipc.items()}
    return physical, ipc, perf


def depth_sweep(library: Library, wire: WireModel,
                max_depth: int = 15,
                baseline: CoreConfig | None = None,
                traces: dict[str, Trace] | None = None,
                workers: int | None = None
                ) -> list[DepthSweepPoint]:
    """Evaluate pipeline depths from the baseline up to *max_depth*.

    Mirrors the paper: seven configurations (9..15 stages), each obtained
    by repeatedly cutting the process-specific critical stage; IPC from
    all seven benchmarks; performance = IPC x frequency.

    Deriving each depth's stage allocation is cheap and inherently serial
    (every cut starts from the previous allocation); evaluating the points
    is the expensive part and fans out across worker processes when
    ``workers`` (or ``REPRO_WORKERS``) asks for it.
    """
    config = baseline or CoreConfig()
    if traces is None:
        traces = make_traces()

    configs: list[CoreConfig] = []
    while config.depth <= max_depth:
        configs.append(config)
        if config.depth == max_depth:
            break
        config = deepen_pipeline(config, library, wire)

    results = parallel_map(_eval_config_task, configs, workers=workers,
                           labels=[f"depth[{c.depth}]" for c in configs],
                           shared=(library, wire, traces))
    return [DepthSweepPoint(depth=c.depth, config=c, physical=physical,
                            ipc=ipc, performance=perf)
            for c, (physical, ipc, perf)
            in zip(configs, (r.value for r in results))]


# ---------------------------------------------------------------------------
# Superscalar width (Figures 13/14)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WidthSweepPoint:
    """One (front width, back width) design point on one process."""

    front_width: int
    back_width: int
    config: CoreConfig
    physical: CorePhysical
    ipc: dict[str, float]
    performance: dict[str, float]

    def mean_performance(self) -> float:
        return sum(self.performance.values()) / len(self.performance)


def width_sweep(library: Library, wire: WireModel,
                front_widths: range | list[int] = range(1, 7),
                back_widths: range | list[int] = range(3, 8),
                baseline: CoreConfig | None = None,
                traces: dict[str, Trace] | None = None,
                workers: int | None = None
                ) -> list[WidthSweepPoint]:
    """Evaluate the 30-point width grid of Figures 13/14.

    Grid points are independent and fan out across worker processes when
    ``workers`` (or ``REPRO_WORKERS``) asks for it.
    """
    base = baseline or CoreConfig()
    if traces is None:
        traces = make_traces()

    pairs = [(fw, bw) for bw in back_widths for fw in front_widths]
    configs = [base.widened(fw, bw) for fw, bw in pairs]
    results = parallel_map(_eval_config_task, configs, workers=workers,
                           labels=[f"width[fw={fw},bw={bw}]"
                                   for fw, bw in pairs],
                           shared=(library, wire, traces))
    return [WidthSweepPoint(front_width=fw, back_width=bw, config=config,
                            physical=physical, ipc=ipc, performance=perf)
            for (fw, bw), config, (physical, ipc, perf)
            in zip(pairs, configs, (r.value for r in results))]


def width_matrix(points: list[WidthSweepPoint],
                 quantity: str = "performance") -> dict[tuple[int, int], float]:
    """(back_width, front_width) -> normalised quantity, max = 1.0.

    ``quantity`` is 'performance' (mean over workloads) or 'area'.
    """
    raw: dict[tuple[int, int], float] = {}
    for p in points:
        if quantity == "performance":
            raw[(p.back_width, p.front_width)] = p.mean_performance()
        elif quantity == "area":
            raw[(p.back_width, p.front_width)] = p.physical.area
        else:
            raise ConfigError(f"unknown quantity {quantity!r}")
    peak = max(raw.values())
    return {k: v / peak for k, v in raw.items()}
