"""Core configuration: AnyCore's parameterised design space.

The baseline (Section 5.3) is "a nine stage superscalar core which has a
front-end width of one along with three execution pipes handling different
types of instructions" — one memory pipe, one control (branch) pipe, one
ALU pipe.  The width experiments vary the front-end width (1-6) and the
back-end width (3-7 pipes, where "the back-end width only changes the
number of ALU pipes").

Pipeline depth is expressed as a per-region stage map; the baseline gives
each of the nine canonical regions one stage, and the deepening procedure
(:func:`repro.core.tradeoffs.deepen_pipeline`) splits whichever region is
on the critical path, mirroring the paper's "cut the stage which is on the
critical path manually".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

#: The nine canonical pipeline regions of the baseline core, front to back.
REGION_NAMES = (
    "fetch", "decode", "rename", "dispatch", "issue",
    "regread", "execute", "writeback", "retire",
)


def baseline_regions() -> dict[str, int]:
    return {name: 1 for name in REGION_NAMES}


@dataclass(frozen=True)
class CoreConfig:
    """One design point of the parameterised superscalar core."""

    name: str = "baseline"
    front_width: int = 1        # fetch/decode/dispatch width
    back_width: int = 3         # execution pipes incl. 1 mem + 1 branch
    regions: dict[str, int] = field(default_factory=baseline_regions)
    iq_size: int = 32
    rob_size: int = 96
    lsq_size: int = 24
    phys_regs: int = 96
    data_width: int = 16        # datapath width of the synthesized blocks
    predictor_bits: int = 12    # gshare global-history/table index bits
    l1_hit_latency: int = 2
    l1_miss_latency: int = 24

    def __post_init__(self) -> None:
        if self.front_width < 1 or self.front_width > 8:
            raise ConfigError(f"front_width out of range: {self.front_width}")
        if self.back_width < 3 or self.back_width > 10:
            raise ConfigError(
                f"back_width must be >= 3 (1 mem + 1 branch + >= 1 ALU pipe)"
                f", got {self.back_width}")
        unknown = set(self.regions) - set(REGION_NAMES)
        if unknown:
            raise ConfigError(f"unknown pipeline regions: {sorted(unknown)}")
        missing = set(REGION_NAMES) - set(self.regions)
        if missing:
            raise ConfigError(f"missing pipeline regions: {sorted(missing)}")
        if any(v < 1 for v in self.regions.values()):
            raise ConfigError("every region needs at least one stage")
        for fld in ("iq_size", "rob_size", "lsq_size", "phys_regs"):
            if getattr(self, fld) < 4:
                raise ConfigError(f"{fld} unreasonably small")

    # -- derived quantities -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Total pipeline stages."""
        return sum(self.regions.values())

    @property
    def alu_pipes(self) -> int:
        """Execution pipes available to plain ALU instructions."""
        return self.back_width - 2

    @property
    def frontend_depth(self) -> int:
        """Stages from fetch through dispatch (the refill distance)."""
        return sum(self.regions[r] for r in
                   ("fetch", "decode", "rename", "dispatch"))

    @property
    def mispredict_penalty(self) -> int:
        """Cycles from a mispredicted branch's execution back to useful
        dispatch: the branch resolves at the end of execute and the
        front-end must refill."""
        to_execute = sum(self.regions[r] for r in
                         ("issue", "regread", "execute"))
        return self.frontend_depth + to_execute

    @property
    def issue_to_execute(self) -> int:
        """Scheduling-loop length: extra cycles between dependent issues.

        With a single-cycle issue region, dependent instructions can issue
        back-to-back; each extra issue/regread stage adds a bubble into
        the wakeup loop.
        """
        return (self.regions["issue"] - 1) + (self.regions["regread"] - 1)

    @property
    def execute_latency(self) -> int:
        """Cycles a simple ALU op spends in execution."""
        return self.regions["execute"]

    def widened(self, front_width: int, back_width: int) -> "CoreConfig":
        return replace(self, front_width=front_width, back_width=back_width,
                       name=f"w{front_width}x{back_width}")

    def with_regions(self, regions: dict[str, int],
                     name: str | None = None) -> "CoreConfig":
        return replace(self, regions=dict(regions),
                       name=name or f"d{sum(regions.values())}")
