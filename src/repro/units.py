"""Unit constants and helpers.

All internal quantities are SI (volts, amperes, seconds, farads, metres).
These constants make device/cell code read like the paper, e.g.
``50 * NANO`` metres of pentacene or a ``350 * MILLI`` V/decade subthreshold
slope.
"""

from __future__ import annotations

import math

# SI prefixes ---------------------------------------------------------------
TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# Physical constants --------------------------------------------------------
BOLTZMANN = 1.380649e-23     # J/K
ELEMENTARY_CHARGE = 1.602176634e-19   # C
VACUUM_PERMITTIVITY = 8.8541878128e-12  # F/m
THERMAL_VOLTAGE_300K = 0.025852        # kT/q at 300 K, volts

# Relative permittivities used by the device models
EPS_R_AL2O3 = 9.0        # ALD alumina gate dielectric (paper Section 3.3)
EPS_R_SIO2 = 3.9

# Unit conversions ----------------------------------------------------------
CM2_PER_M2 = 1e4


def mobility_cm2_to_m2(mu_cm2: float) -> float:
    """Convert a mobility from cm^2/(V*s) (paper units) to m^2/(V*s)."""
    return mu_cm2 / CM2_PER_M2


def mobility_m2_to_cm2(mu_m2: float) -> float:
    """Convert a mobility from m^2/(V*s) to cm^2/(V*s) (paper units)."""
    return mu_m2 * CM2_PER_M2


def oxide_capacitance_per_area(eps_r: float, thickness_m: float) -> float:
    """Gate-dielectric capacitance per unit area in F/m^2."""
    if thickness_m <= 0:
        raise ValueError(f"dielectric thickness must be positive, got {thickness_m}")
    return eps_r * VACUUM_PERMITTIVITY / thickness_m


def decades(ratio: float) -> float:
    """Number of decades spanned by a positive ratio (e.g. on/off current)."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return math.log10(ratio)


def engineering(value: float, unit: str = "") -> str:
    """Format a value with an engineering SI prefix, e.g. 2.2e-5 -> '22 u'.

    Used by reports and example scripts; the numeric core never parses these
    strings back.
    """
    if value == 0:
        return f"0 {unit}".strip()
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.3g} {prefix}{unit}".strip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.3g} {prefix}{unit}".strip()
