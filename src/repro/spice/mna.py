"""Modified-nodal-analysis system assembly.

:class:`MnaSystem` binds a :class:`~repro.spice.netlist.Circuit` to a
concrete unknown ordering (node voltages, then branch currents of voltage
sources), precomputes the constant linear Jacobian, and provides the
per-iteration residual/Jacobian assembly used by the DC and transient
solvers.

Splitting constant stamps (resistors, source incidence) from per-iteration
stamps (transistors) keeps the Newton inner loop cheap: only nonlinear
elements are re-stamped each iteration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CircuitError
from repro.spice.netlist import Circuit


class MnaSystem:
    """Bound MNA system for one circuit.

    Parameters
    ----------
    circuit:
        The netlist to bind.  The circuit must contain at least one element
        and at least one non-ground node.
    """

    def __init__(self, circuit: Circuit) -> None:
        if len(circuit) == 0:
            raise CircuitError(f"circuit {circuit.name!r} has no elements")
        node_names = sorted(circuit.nodes)
        if not node_names:
            raise CircuitError(f"circuit {circuit.name!r} has no non-ground nodes")

        self.circuit = circuit
        self.node_names = node_names
        self.node_index = {name: i for i, name in enumerate(node_names)}
        self.n_nodes = len(node_names)

        branch = self.n_nodes
        self.branch_index: dict[str, int] = {}
        for element in circuit.elements:
            element.bind(self.node_index, branch if element.n_branches else -1)
            if element.n_branches:
                self.branch_index[element.name] = branch
                branch += element.n_branches
        self.size = branch

        self._nonlinear = tuple(e for e in circuit.elements if e.is_nonlinear)
        self._linear = tuple(e for e in circuit.elements if not e.is_nonlinear)

        # Constant Jacobian entries (resistors, source rows); FET channel
        # stamps are per-iteration, FET capacitances are dynamic.
        self._G_static = np.zeros((self.size, self.size))
        for element in circuit.elements:
            element.stamp_static(self._G_static)

    # -- assembly -------------------------------------------------------------

    def linear_jacobian(self, dt: float | None = None) -> np.ndarray:
        """Constant Jacobian: static stamps plus storage companions for *dt*.

        With ``dt=None`` (DC analysis) capacitors are open circuits.
        """
        G = self._G_static.copy()
        if dt is not None:
            for element in self.circuit.elements:
                element.stamp_dynamic(G, dt)
        return G

    def rhs(self, t: float, x_prev: np.ndarray | None = None,
            dt: float | None = None) -> np.ndarray:
        """Right-hand side at time *t* (source values + storage history)."""
        b = np.zeros(self.size)
        for element in self.circuit.elements:
            element.stamp_rhs(b, t, x_prev, dt)
        return b

    def residual_and_jacobian(self, x: np.ndarray, G_lin: np.ndarray,
                              b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full Newton residual ``F(x)`` and Jacobian ``J(x)``.

        ``F = G_lin @ x - b + F_nl(x)`` and ``J = G_lin + J_nl(x)``.
        """
        J = G_lin.copy()
        F = G_lin @ x - b
        for element in self._nonlinear:
            element.stamp_nonlinear(J, F, x)
        return F, J

    # -- solution access -------------------------------------------------------

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Voltage of *node* in solution vector *x* (ground is 0 V)."""
        if node in self.node_index:
            return float(x[self.node_index[node]])
        if node in ("0", "gnd", "GND", "ground"):
            return 0.0
        raise CircuitError(f"unknown node {node!r}")

    def source_current(self, x: np.ndarray, source_name: str) -> float:
        """Branch current through voltage source *source_name* (pos -> neg)."""
        try:
            k = self.branch_index[source_name]
        except KeyError:
            raise CircuitError(
                f"{source_name!r} is not a voltage source in this circuit"
            ) from None
        return float(x[k])
