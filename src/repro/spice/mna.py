"""Modified-nodal-analysis system assembly.

:class:`MnaSystem` binds a :class:`~repro.spice.netlist.Circuit` to a
concrete unknown ordering (node voltages, then branch currents of voltage
sources), precomputes the constant linear Jacobian, and provides the
per-iteration residual/Jacobian assembly used by the DC and transient
solvers.

Splitting constant stamps (resistors, source incidence) from per-iteration
stamps (transistors) keeps the Newton inner loop cheap: only nonlinear
elements are re-stamped each iteration.

Two structures are cached once per system rather than rebuilt per call:

- the unit capacitance matrix ``C`` (all ``stamp_dynamic`` contributions at
  ``dt = 1``), so the transient Jacobian is ``G_static + C/dt`` and the
  storage-history right-hand side is ``(C @ x_prev)/dt`` — no per-element
  Python loop in either;
- per-model FET index batches (drain/gate/source solver indices, widths,
  lengths, and the six Jacobian scatter positions in both drain/source
  orientations), so one Newton iteration evaluates *all* transistors of a
  circuit in a single array-valued ``ids_array`` call and two fancy-indexed
  scatters.

Because NumPy carries a fixed per-operation cost (~0.5 us), batched
stamping only pays off once a model's FET group is large enough — measured
crossover is around ten devices.  By default batches smaller than
:data:`VECTORIZE_MIN_FETS` use the scalar per-element path; the cutoff can
be tuned with the ``REPRO_VECTORIZE_MIN_FETS`` environment variable.  Set
``REPRO_VECTORIZED=0`` to force the scalar path everywhere (used by the
equivalence regression tests) or ``REPRO_VECTORIZED=1`` to force batching
regardless of size.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from repro.errors import CircuitError
from repro.runtime import profiling
from repro.spice.elements import FET_GMIN, Element, Fet
from repro.spice.netlist import Circuit

#: Minimum FETs sharing one model before batched stamping beats the scalar
#: loop (NumPy fixed overhead amortises at roughly this size).
VECTORIZE_MIN_FETS = 10


def bypass_eta(newton_options) -> float:
    """Stamp-bypass freeze threshold in volts (0 disables the bypass).

    ``REPRO_BYPASS`` scales the threshold as a fraction of the Newton
    voltage tolerance ``abstol_v`` (default ``1``: freeze while no
    nonlinear device terminal moved beyond the tolerance between
    accepted steps — the solver cannot distinguish such states anyway).
    ``REPRO_BYPASS=0`` disables stamp bypassing entirely.
    """
    try:
        frac = float(os.environ.get("REPRO_BYPASS", "1"))
    except ValueError:
        frac = 1.0
    return frac * newton_options.abstol_v if frac > 0.0 else 0.0


class StampCache:
    """Accepted-state nonlinear stamps, reused while the state is frozen.

    The transient engines re-evaluate and re-stamp every nonlinear
    device each Newton iteration even when the circuit is sitting in a
    settled region and no device terminal has moved measurably between
    accepted steps.  This cache holds the nonlinear-only Jacobian and
    residual contributions (``J - G_lin``, ``F - (G_lin x - b)``)
    captured at the last converged, freshly-stamped solve; while the
    accepted state stays within ``eta`` volts of the captured state on
    every nonlinear terminal (:meth:`refresh`), assembly degenerates to
    two dense adds.  All engines (scalar, NumPy ensemble, native kernel)
    apply the identical rule so backend equivalence is preserved.
    """

    __slots__ = ("eta", "slots", "valid", "frozen", "x_stamp", "J_nl",
                 "F_nl", "hits", "misses")

    def __init__(self, eta: float, slots: np.ndarray, size: int) -> None:
        self.eta = eta
        self.slots = slots
        self.valid = False
        self.frozen = False
        self.x_stamp = np.zeros(size)
        self.J_nl = np.zeros((size, size))
        self.F_nl = np.zeros(size)
        self.hits = 0
        self.misses = 0

    def refresh(self, x_accepted: np.ndarray) -> None:
        """Recompute the freeze flag against the accepted state."""
        self.frozen = self.valid and float(np.max(np.abs(
            x_accepted[self.slots] - self.x_stamp[self.slots]))) <= self.eta
        if self.frozen:
            self.hits += 1
        else:
            self.misses += 1

    def update(self, J_nl: np.ndarray, F_nl: np.ndarray,
               x: np.ndarray) -> None:
        """Capture stamps evaluated at (pre-update) state *x*."""
        self.J_nl[...] = J_nl
        self.F_nl[...] = F_nl
        self.x_stamp[...] = x
        self.valid = True


class _FetBatch:
    """All FETs of one circuit that share a device model, as index arrays.

    The batch evaluates the model once for every device (vectorized) and
    scatters currents/conductances into an *extended* residual vector and
    flattened Jacobian: index ``n`` (one past the real unknowns) is a trash
    slot that absorbs ground contributions, mirroring the scalar stamps'
    ground-drop behaviour without branching.

    Drain/source swapping (symmetric devices) is handled arithmetically:
    the swapped-orientation scatter indices are precomputed as deltas from
    the normal orientation, so selecting an orientation per device is two
    integer ops instead of six ``np.where`` calls.
    """

    __slots__ = ("pol", "d", "g", "s", "_eval",
                 "_sd_delta", "_flat_normal", "_flat_delta")

    def __init__(self, model, fets: list[Fet], n: int) -> None:
        self.pol = float(model.polarity)

        def solver_index(i: int) -> int:
            return i if i >= 0 else n

        self.d = np.array([solver_index(f._idx[0]) for f in fets])
        self.g = np.array([solver_index(f._idx[1]) for f in fets])
        self.s = np.array([solver_index(f._idx[2]) for f in fets])
        w = np.array([f.w for f in fets])
        l = np.array([f.l for f in fets])
        if hasattr(model, "batch_evaluator"):
            self._eval = model.batch_evaluator(w, l)
        else:
            self._eval = lambda vgs, vds: model.ids_array(vgs, vds, w, l)

        # Jacobian scatter templates.  With effective drain a / source b,
        # the six entries are (a,a) (a,g) (a,b) (b,a) (b,g) (b,b); the
        # normal template has a=d, b=s, and the delta flips orientation.
        ext = n + 1
        d, g, s = self.d, self.g, self.s
        self._sd_delta = s - d
        rows_n = np.stack([d, d, d, s, s, s])
        cols_n = np.stack([d, g, s, d, g, s])
        self._flat_normal = rows_n * ext + cols_n
        rows_s = np.stack([s, s, s, d, d, d])
        cols_s = np.stack([s, g, d, s, g, d])
        self._flat_delta = rows_s * ext + cols_s - self._flat_normal

    def stamp(self, J_flat: np.ndarray, F_ext: np.ndarray,
              x_ext: np.ndarray) -> None:
        p = self.pol
        dv = x_ext[self.d] - x_ext[self.s]
        swapped = (dv < 0.0) if p > 0 else (dv > 0.0)
        shift = swapped * self._sd_delta
        a = self.d + shift
        b = self.s - shift
        vb = x_ext[b]
        vg = x_ext[self.g]
        # In the n-type frame vds is |vd - vs| by construction of the swap.
        vds_n = np.abs(dv)
        vgs_n = (vg - vb) if p > 0 else (vb - vg)
        if profiling.ENABLED:
            t0 = perf_counter()
            ids, gm, gds = self._eval(vgs_n, vds_n)
            profiling.add("device_eval", perf_counter() - t0)
        else:
            ids, gm, gds = self._eval(vgs_n, vds_n)

        # Physical current leaving effective-drain node a is p * ids, and
        # va - vb = p * vds_n, so i_phys = p * (ids + GMIN * vds_n).
        i_phys = ids + FET_GMIN * vds_n
        if p < 0:
            i_phys = -i_phys
        np.add.at(F_ext, a, i_phys)
        np.add.at(F_ext, b, -i_phys)

        g_ds = gds + FET_GMIN
        gsum = gm + g_ds
        vals = np.concatenate([g_ds, gm, -gsum, -g_ds, -gm, gsum])
        flat = self._flat_normal + swapped * self._flat_delta
        np.add.at(J_flat, flat.ravel(), vals)


class MnaSystem:
    """Bound MNA system for one circuit.

    Parameters
    ----------
    circuit:
        The netlist to bind.  The circuit must contain at least one element
        and at least one non-ground node.
    vectorized:
        ``True`` forces batched FET stamping for every model group,
        ``False`` forces the scalar per-element path, and ``None`` (the
        default) batches only groups of at least :data:`VECTORIZE_MIN_FETS`
        devices.  The ``REPRO_VECTORIZED`` environment variable (``0`` /
        ``1``) overrides the default, and ``REPRO_VECTORIZE_MIN_FETS``
        tunes the auto cutoff.
    """

    def __init__(self, circuit: Circuit,
                 vectorized: bool | None = None) -> None:
        if len(circuit) == 0:
            raise CircuitError(f"circuit {circuit.name!r} has no elements")
        node_names = sorted(circuit.nodes)
        if not node_names:
            raise CircuitError(f"circuit {circuit.name!r} has no non-ground nodes")

        self.circuit = circuit
        self.node_names = node_names
        self.node_index = {name: i for i, name in enumerate(node_names)}
        self.n_nodes = len(node_names)

        branch = self.n_nodes
        self.branch_index: dict[str, int] = {}
        for element in circuit.elements:
            element.bind(self.node_index, branch if element.n_branches else -1)
            if element.n_branches:
                self.branch_index[element.name] = branch
                branch += element.n_branches
        self.size = branch

        self._nonlinear = tuple(e for e in circuit.elements if e.is_nonlinear)
        self._linear = tuple(e for e in circuit.elements if not e.is_nonlinear)

        # Constant Jacobian entries (resistors, source rows); FET channel
        # stamps are per-iteration, FET capacitances are dynamic.
        self._G_static = np.zeros((self.size, self.size))
        for element in circuit.elements:
            element.stamp_static(self._G_static)

        # Unit capacitance matrix: all storage companions at dt = 1, so
        # the transient Jacobian is G_static + C/dt and the storage part
        # of the rhs is (C @ x_prev)/dt.
        self._C_unit = np.zeros((self.size, self.size))
        for element in circuit.elements:
            element.stamp_dynamic(self._C_unit, 1.0)

        # Elements with a genuinely time-dependent rhs (sources).  Storage
        # elements flag themselves with ``rhs_is_storage``; their history
        # term is the C @ x_prev product above.  Elements that never
        # override stamp_rhs are skipped outright.
        self._rhs_time = tuple(
            e for e in circuit.elements
            if not e.rhs_is_storage
            and type(e).stamp_rhs is not Element.stamp_rhs)

        if vectorized is None:
            env = os.environ.get("REPRO_VECTORIZED", "")
            if env == "0":
                vectorized = False
            elif env == "1":
                vectorized = True
        self._batches: list[_FetBatch] = []
        fallback = list(self._nonlinear)
        if vectorized is not False:
            if vectorized:
                min_fets = 1
            else:
                min_fets = int(os.environ.get("REPRO_VECTORIZE_MIN_FETS",
                                              VECTORIZE_MIN_FETS))
            groups: dict[int, list[Fet]] = {}
            for e in self._nonlinear:
                if isinstance(e, Fet) and hasattr(e.model, "ids_array"):
                    groups.setdefault(id(e.model), []).append(e)
            for fets in groups.values():
                if len(fets) >= min_fets:
                    self._batches.append(_FetBatch(fets[0].model, fets,
                                                   self.size))
                    for f in fets:
                        fallback.remove(f)
        self._nl_fallback = tuple(fallback)

        if self._batches:
            ext = self.size + 1
            self._J_ext = np.zeros((ext, ext))
            self._F_ext = np.zeros(ext)
            self._x_ext = np.zeros(ext)

        self._nl_slots: np.ndarray | None | str = "unset"

    @property
    def nl_slots(self) -> np.ndarray:
        """Solver indices any nonlinear element stamps (sorted, unique).

        Elements whose terminal bindings cannot be introspected widen
        the set to every unknown — conservative, never wrong, for the
        stamp-bypass freeze test.
        """
        if isinstance(self._nl_slots, str):
            slots: set[int] = set()
            for e in self._nonlinear:
                idx = getattr(e, "_idx", None)
                if idx is None:
                    slots = set(range(self.size))
                    break
                slots.update(i for i in idx if i >= 0)
            self._nl_slots = np.array(sorted(slots), dtype=np.intp)
        return self._nl_slots

    def make_stamp_cache(self, eta: float) -> StampCache | None:
        """A :class:`StampCache` for this system, or None when pointless
        (bypass disabled, or nothing nonlinear to cache)."""
        if eta <= 0.0 or not self._nonlinear:
            return None
        return StampCache(eta, self.nl_slots, self.size)

    # -- assembly -------------------------------------------------------------

    def linear_jacobian(self, dt: float | None = None) -> np.ndarray:
        """Constant Jacobian: static stamps plus storage companions for *dt*.

        With ``dt=None`` (DC analysis) capacitors are open circuits.
        """
        if dt is None:
            return self._G_static.copy()
        return self._G_static + self._C_unit / dt

    def rhs(self, t: float, x_prev: np.ndarray | None = None,
            dt: float | None = None) -> np.ndarray:
        """Right-hand side at time *t* (source values + storage history)."""
        b = np.zeros(self.size)
        for element in self._rhs_time:
            element.stamp_rhs(b, t, x_prev, dt)
        if x_prev is not None and dt is not None:
            b += self._C_unit @ x_prev / dt
        return b

    def residual_and_jacobian(self, x: np.ndarray, G_lin: np.ndarray,
                              b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full Newton residual ``F(x)`` and Jacobian ``J(x)``.

        ``F = G_lin @ x - b + F_nl(x)`` and ``J = G_lin + J_nl(x)``.

        On the vectorized path the returned arrays are views into buffers
        owned by this system: they stay valid until the next call.
        """
        if profiling.ENABLED:
            t0 = perf_counter()
            result = self._residual_and_jacobian(x, G_lin, b)
            profiling.add("stamp", perf_counter() - t0)
            return result
        return self._residual_and_jacobian(x, G_lin, b)

    def residual_and_jacobian_frozen(
            self, x: np.ndarray, G_lin: np.ndarray, b: np.ndarray,
            cache: StampCache) -> tuple[np.ndarray, np.ndarray]:
        """Assembly from cached nonlinear stamps (stamp-bypassed step)."""
        if profiling.ENABLED:
            t0 = perf_counter()
        J = G_lin + cache.J_nl
        F = G_lin @ x - b + cache.F_nl
        if profiling.ENABLED:
            profiling.add("stamp", perf_counter() - t0)
        return F, J

    def _residual_and_jacobian(self, x: np.ndarray, G_lin: np.ndarray,
                               b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not self._batches:
            J = G_lin.copy()
            F = G_lin @ x - b
            for element in self._nl_fallback:
                element.stamp_nonlinear(J, F, x)
            return F, J

        n = self.size
        J_ext = self._J_ext
        J_ext[:n, :n] = G_lin
        J_ext[n, :] = 0.0
        J_ext[:n, n] = 0.0
        F_ext = self._F_ext
        np.dot(G_lin, x, out=F_ext[:n])
        F_ext[:n] -= b
        F_ext[n] = 0.0
        x_ext = self._x_ext
        x_ext[:n] = x

        J_flat = J_ext.reshape(-1)
        for batch in self._batches:
            batch.stamp(J_flat, F_ext, x_ext)

        F = F_ext[:n]
        J = J_ext[:n, :n]
        for element in self._nl_fallback:
            element.stamp_nonlinear(J, F, x)
        return F, J

    # -- solution access -------------------------------------------------------

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Voltage of *node* in solution vector *x* (ground is 0 V)."""
        if node in self.node_index:
            return float(x[self.node_index[node]])
        if node in ("0", "gnd", "GND", "ground"):
            return 0.0
        raise CircuitError(f"unknown node {node!r}")

    def source_current(self, x: np.ndarray, source_name: str) -> float:
        """Branch current through voltage source *source_name* (pos -> neg)."""
        try:
            k = self.branch_index[source_name]
        except KeyError:
            raise CircuitError(
                f"{source_name!r} is not a voltage source in this circuit"
            ) from None
        return float(x[k])
