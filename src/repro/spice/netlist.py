"""Circuit container and node bookkeeping for the MNA simulator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import CircuitError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spice.elements import Element

#: Canonical name of the reference (ground) node.
GROUND = "0"

_GROUND_ALIASES = frozenset({"0", "gnd", "GND", "ground"})


def is_ground(node: str) -> bool:
    """True if *node* names the reference node."""
    return node in _GROUND_ALIASES


class Circuit:
    """A flat netlist of elements connected by named nodes.

    Nodes are created implicitly when elements reference them.  The ground
    node (``"0"``/``"gnd"``) is always present and is the voltage reference.

    >>> from repro.spice import Circuit, Resistor, VoltageSource
    >>> ckt = Circuit("divider")
    >>> _ = ckt.add(VoltageSource("vin", "in", "0", 1.0))
    >>> _ = ckt.add(Resistor("r1", "in", "mid", 1e3))
    >>> _ = ckt.add(Resistor("r2", "mid", "0", 1e3))
    >>> sorted(ckt.nodes)
    ['in', 'mid']
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._elements: dict[str, "Element"] = {}
        self._nodes: set[str] = set()

    # -- construction -------------------------------------------------------

    def add(self, element: "Element") -> "Element":
        """Add *element*, returning it for chaining.

        Raises :class:`CircuitError` on a duplicate element name.
        """
        if element.name in self._elements:
            raise CircuitError(
                f"duplicate element name {element.name!r} in circuit {self.name!r}"
            )
        self._elements[element.name] = element
        for node in element.nodes:
            if not is_ground(node):
                self._nodes.add(node)
        return element

    def extend(self, elements: Iterator["Element"] | list["Element"]) -> None:
        """Add several elements."""
        for element in elements:
            self.add(element)

    # -- queries -------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        """Non-ground node names."""
        return frozenset(self._nodes)

    @property
    def elements(self) -> tuple["Element", ...]:
        return tuple(self._elements.values())

    def element(self, name: str) -> "Element":
        try:
            return self._elements[name]
        except KeyError:
            raise CircuitError(
                f"no element named {name!r} in circuit {self.name!r}"
            ) from None

    def has_element(self, name: str) -> bool:
        return name in self._elements

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, elements={len(self._elements)}, "
            f"nodes={len(self._nodes)})"
        )
