"""Circuit elements and their modified-nodal-analysis stamps.

Stamp conventions
-----------------
The solver uses a residual Newton formulation.  For unknown vector ``x``
(node voltages followed by branch currents of voltage sources), elements
contribute to:

- ``G`` — constant (linear) Jacobian entries, via :meth:`Element.stamp_static`,
- ``G`` (transient only) — companion conductances of storage elements,
  via :meth:`Element.stamp_dynamic`,
- ``b`` — right-hand side: source values and storage history, via
  :meth:`Element.stamp_rhs`,
- ``J, F`` — per-Newton-iteration Jacobian and residual of nonlinear
  elements, via :meth:`Element.stamp_nonlinear`.

Residuals follow the convention ``F[node] = sum of currents leaving the
node``; the linear part of the residual is ``G @ x - b``.

Transistors (:class:`Fet`) delegate their I-V behaviour to a device-model
object satisfying :class:`FetModel` (see :mod:`repro.devices`); the element
handles terminal polarity and drain/source swapping, so a single model
implementation serves both n-type and p-type devices.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import CircuitError

#: Index used for the ground node: stamps targeting it are dropped.
_GROUND_INDEX = -1

#: Minimum drain-source conductance added to every FET for matrix
#: conditioning (prevents floating internal nodes in stacked gates).
FET_GMIN = 1e-12

SourceValue = float | Callable[[float], float]


class RampValue:
    """Piecewise-linear source value: hold ``v0``, ramp to ``v1``, hold.

    A plain callable works as a source value everywhere; this class
    additionally exposes its breakpoints as attributes so batched engines
    (:mod:`repro.spice.ensemble`) can evaluate a whole ensemble's ramps
    as one array expression instead of B Python calls per timestep.
    """

    __slots__ = ("v0", "v1", "t_start", "duration")

    def __init__(self, v0: float, v1: float, t_start: float,
                 duration: float) -> None:
        self.v0 = float(v0)
        self.v1 = float(v1)
        self.t_start = float(t_start)
        self.duration = float(duration)

    def __call__(self, t: float) -> float:
        if t <= self.t_start:
            return self.v0
        if t >= self.t_start + self.duration:
            return self.v1
        frac = (t - self.t_start) / self.duration
        return self.v0 + (self.v1 - self.v0) * frac

    def __repr__(self) -> str:
        return (f"RampValue({self.v0:g} -> {self.v1:g}, "
                f"t_start={self.t_start:g}, duration={self.duration:g})")


@runtime_checkable
class FetModel(Protocol):
    """Device-model interface consumed by :class:`Fet`.

    Implementations live in :mod:`repro.devices`.  All voltages passed to
    :meth:`ids` are *normalised to the n-type frame*: ``vds >= 0`` and a
    more positive ``vgs`` turns the device on harder.  The element performs
    the polarity flip for p-type devices.
    """

    #: +1 for n-type (electron) devices, -1 for p-type (hole) devices.
    polarity: int

    def ids(self, vgs: float, vds: float, w: float, l: float) -> tuple[float, float, float]:
        """Return ``(id, gm, gds)`` for normalised terminal voltages.

        ``id`` is the drain-to-source channel current (>= 0 in normal
        operation), ``gm = d id/d vgs`` and ``gds = d id/d vds``.
        """
        ...

    def capacitances(self, w: float, l: float) -> tuple[float, float, float]:
        """Return small-signal ``(cgs, cgd, cds)`` in farads."""
        ...


class Element:
    """Base class for circuit elements."""

    #: Number of extra branch-current unknowns this element introduces.
    n_branches = 0

    #: True when this element's ``stamp_rhs`` is purely the backward-Euler
    #: storage history ``(C @ x_prev)/dt`` of its ``stamp_dynamic`` entries.
    #: :class:`~repro.spice.mna.MnaSystem` then covers it with the cached
    #: capacitance matrix instead of a per-element Python call.
    rhs_is_storage = False

    def __init__(self, name: str, nodes: tuple[str, ...]) -> None:
        if not name:
            raise CircuitError("element name must be non-empty")
        self.name = name
        self.nodes = nodes
        self._idx: tuple[int, ...] = ()
        self._branch: int = -1

    # -- binding -------------------------------------------------------------

    def bind(self, node_index: dict[str, int], branch_index: int) -> None:
        """Resolve node names to solver indices (ground maps to -1)."""
        self._idx = tuple(node_index.get(n, _GROUND_INDEX) for n in self.nodes)
        self._branch = branch_index

    # -- stamps (default: no contribution) ------------------------------------

    def stamp_static(self, G: np.ndarray) -> None:
        """Constant Jacobian entries (resistances, source incidence rows)."""

    def stamp_dynamic(self, G: np.ndarray, dt: float) -> None:
        """Transient companion conductances (storage elements)."""

    def stamp_rhs(self, b: np.ndarray, t: float, x_prev: np.ndarray | None,
                  dt: float | None) -> None:
        """Right-hand-side contributions at time *t* (sources, history)."""

    def stamp_nonlinear(self, J: np.ndarray, F: np.ndarray, x: np.ndarray) -> None:
        """Per-iteration Jacobian/residual of nonlinear elements."""

    @property
    def is_nonlinear(self) -> bool:
        return False

    def __repr__(self) -> str:
        pins = ",".join(self.nodes)
        return f"{type(self).__name__}({self.name!r}, {pins})"


def _add(mat: np.ndarray, i: int, j: int, val: float) -> None:
    if i != _GROUND_INDEX and j != _GROUND_INDEX:
        mat[i, j] += val


def _addb(vec: np.ndarray, i: int, val: float) -> None:
    if i != _GROUND_INDEX:
        vec[i] += val


def _volt(x: np.ndarray, i: int) -> float:
    return 0.0 if i == _GROUND_INDEX else float(x[i])


class Resistor(Element):
    """Linear resistor between two nodes."""

    def __init__(self, name: str, n1: str, n2: str, resistance: float) -> None:
        if resistance <= 0:
            raise CircuitError(f"resistor {name!r}: resistance must be > 0")
        super().__init__(name, (n1, n2))
        self.resistance = resistance

    def stamp_static(self, G: np.ndarray) -> None:
        g = 1.0 / self.resistance
        i, j = self._idx
        _add(G, i, i, g)
        _add(G, j, j, g)
        _add(G, i, j, -g)
        _add(G, j, i, -g)


class Capacitor(Element):
    """Linear capacitor; open in DC, backward-Euler companion in transient."""

    rhs_is_storage = True

    def __init__(self, name: str, n1: str, n2: str, capacitance: float) -> None:
        if capacitance < 0:
            raise CircuitError(f"capacitor {name!r}: capacitance must be >= 0")
        super().__init__(name, (n1, n2))
        self.capacitance = capacitance

    def stamp_dynamic(self, G: np.ndarray, dt: float) -> None:
        g = self.capacitance / dt
        i, j = self._idx
        _add(G, i, i, g)
        _add(G, j, j, g)
        _add(G, i, j, -g)
        _add(G, j, i, -g)

    def stamp_rhs(self, b: np.ndarray, t: float, x_prev: np.ndarray | None,
                  dt: float | None) -> None:
        if x_prev is None or dt is None:
            return
        i, j = self._idx
        v_prev = _volt(x_prev, i) - _volt(x_prev, j)
        g = self.capacitance / dt
        _addb(b, i, g * v_prev)
        _addb(b, j, -g * v_prev)


class VoltageSource(Element):
    """Ideal voltage source; ``value`` may be a float or a callable of time."""

    n_branches = 1

    def __init__(self, name: str, npos: str, nneg: str, value: SourceValue) -> None:
        super().__init__(name, (npos, nneg))
        self.value = value

    def value_at(self, t: float) -> float:
        return self.value(t) if callable(self.value) else self.value

    def stamp_static(self, G: np.ndarray) -> None:
        i, j = self._idx
        k = self._branch
        # Branch current leaves npos, enters nneg.
        _add(G, i, k, 1.0)
        _add(G, j, k, -1.0)
        # Constraint row: v(npos) - v(nneg) = value.
        _add(G, k, i, 1.0)
        _add(G, k, j, -1.0)

    def stamp_rhs(self, b: np.ndarray, t: float, x_prev: np.ndarray | None,
                  dt: float | None) -> None:
        _addb(b, self._branch, self.value_at(t))


class CurrentSource(Element):
    """Ideal current source; current flows from npos through the source to nneg."""

    def __init__(self, name: str, npos: str, nneg: str, value: SourceValue) -> None:
        super().__init__(name, (npos, nneg))
        self.value = value

    def value_at(self, t: float) -> float:
        return self.value(t) if callable(self.value) else self.value

    def stamp_rhs(self, b: np.ndarray, t: float, x_prev: np.ndarray | None,
                  dt: float | None) -> None:
        i, j = self._idx
        val = self.value_at(t)
        # Current *leaving* npos is +val; rhs holds negated residual terms.
        _addb(b, i, -val)
        _addb(b, j, val)


class Fet(Element):
    """Three-terminal field-effect transistor (drain, gate, source).

    The I-V behaviour comes from *model* (a :class:`FetModel`).  The element:

    - flips voltages into the n-type frame for p-type models,
    - swaps drain/source when the wired drain is biased below the wired
      source (symmetric device),
    - adds constant gate/junction capacitances from the model,
    - adds :data:`FET_GMIN` across the channel for conditioning.
    """

    rhs_is_storage = True

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 model: FetModel, w: float, l: float) -> None:
        if w <= 0 or l <= 0:
            raise CircuitError(f"fet {name!r}: W and L must be positive")
        super().__init__(name, (drain, gate, source))
        self.model = model
        self.w = w
        self.l = l
        self.cgs, self.cgd, self.cds = model.capacitances(w, l)

    @property
    def is_nonlinear(self) -> bool:
        return True

    # Capacitances are linear: stamp them like fixed capacitors.
    def stamp_dynamic(self, G: np.ndarray, dt: float) -> None:
        d, g, s = self._idx
        for (i, j, c) in ((g, s, self.cgs), (g, d, self.cgd), (d, s, self.cds)):
            gc = c / dt
            _add(G, i, i, gc)
            _add(G, j, j, gc)
            _add(G, i, j, -gc)
            _add(G, j, i, -gc)

    def stamp_rhs(self, b: np.ndarray, t: float, x_prev: np.ndarray | None,
                  dt: float | None) -> None:
        if x_prev is None or dt is None:
            return
        d, g, s = self._idx
        for (i, j, c) in ((g, s, self.cgs), (g, d, self.cgd), (d, s, self.cds)):
            gc = c / dt
            v_prev = _volt(x_prev, i) - _volt(x_prev, j)
            _addb(b, i, gc * v_prev)
            _addb(b, j, -gc * v_prev)

    def operating_point(self, x: np.ndarray) -> tuple[float, float, float]:
        """Return ``(id_phys, gm, gds)`` at solution *x*.

        ``id_phys`` is the physical current flowing *into the wired drain
        terminal* and out of the wired source terminal; ``gm``/``gds`` are
        the normalised small-signal parameters at the operating point.
        """
        d_i, g_i, s_i = self._idx
        p = self.model.polarity
        vd, vg, vs = _volt(x, d_i), _volt(x, g_i), _volt(x, s_i)
        swapped = p * (vd - vs) < 0.0
        if swapped:
            va, vb = vs, vd
        else:
            va, vb = vd, vs
        vgs_n = p * (vg - vb)
        vds_n = p * (va - vb)
        ids, gm, gds = self.model.ids(vgs_n, vds_n, self.w, self.l)
        # Current leaving the effective drain node a into the channel is
        # p * ids; "into the wired drain" flips sign when roles swapped.
        id_phys = (p * ids) if not swapped else (-p * ids)
        return id_phys, gm, gds

    def stamp_nonlinear(self, J: np.ndarray, F: np.ndarray, x: np.ndarray) -> None:
        d_i, g_i, s_i = self._idx
        p = self.model.polarity
        vd, vg, vs = _volt(x, d_i), _volt(x, g_i), _volt(x, s_i)

        # Effective drain (a) / source (b) in the n-type frame.
        if p * (vd - vs) < 0.0:
            a, b_node = s_i, d_i
            va, vb = vs, vd
        else:
            a, b_node = d_i, s_i
            va, vb = vd, vs

        vgs_n = p * (vg - vb)
        vds_n = p * (va - vb)
        ids, gm, gds = self.model.ids(vgs_n, vds_n, self.w, self.l)

        # Physical current leaving effective-drain node a is p * ids; the
        # polarity factors cancel in the Jacobian entries below.
        i_phys = p * ids + FET_GMIN * (va - vb)
        _addb(F, a, i_phys)
        _addb(F, b_node, -i_phys)

        g_ds = gds + FET_GMIN
        _add(J, a, a, g_ds)
        _add(J, a, g_i, gm)
        _add(J, a, b_node, -(gm + g_ds))
        _add(J, b_node, a, -g_ds)
        _add(J, b_node, g_i, -gm)
        _add(J, b_node, b_node, gm + g_ds)
