"""DC operating-point and sweep analyses.

The solver is a damped Newton-Raphson on the MNA residual with two
fallback continuation strategies (mirroring what production SPICE engines
do):

1. **gmin stepping** — a conductance from every node to ground is ramped
   down from a large value to (effectively) zero, dragging the solution
   from a trivially solvable system to the true one.
2. **source stepping** — all independent sources are ramped from 0 to
   their nominal values.

These make the ratioed unipolar organic gates (which have very flat
I-V regions) solve reliably from a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter

import numpy as np

from repro.errors import ConvergenceError
from repro.runtime import profiling, telemetry
from repro.spice.backends import get_backend
from repro.spice.mna import MnaSystem, StampCache
from repro.spice.netlist import Circuit


@dataclass(frozen=True)
class NewtonOptions:
    """Newton-Raphson solver tuning knobs.

    ``max_step_v`` damps the update: no unknown moves more than this many
    volts per iteration, which keeps exponential subthreshold models from
    overflowing.  Scale it with the circuit's supply voltage (the organic
    cells run at 5-15 V, silicon at ~1 V).
    """

    max_iterations: int = 150
    abstol_v: float = 1e-6
    abstol_i: float = 1e-9
    max_step_v: float = 2.0
    gmin_steps: tuple[float, ...] = (1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 0.0)
    source_steps: int = 10


def _worst_residual_node(sys: MnaSystem, F: np.ndarray | None) -> str | None:
    """Name of the node with the largest residual magnitude, if known."""
    if F is None or sys.n_nodes == 0:
        return None
    return sys.node_names[int(np.argmax(np.abs(F[:sys.n_nodes])))]


def _newton(sys: MnaSystem, G_lin: np.ndarray, b: np.ndarray,
            x0: np.ndarray, options: NewtonOptions,
            gmin: float = 0.0,
            cache: StampCache | None = None) -> np.ndarray:
    """Damped Newton iteration; raises ConvergenceError on failure.

    With a :class:`~repro.spice.mna.StampCache` whose freeze flag is set
    (transient stamp bypass), assembly reuses the cached nonlinear
    stamps; a fresh converged solve writes the cache back.
    """
    x = x0.copy()
    backend = get_backend()
    n_nodes = sys.n_nodes
    last_residual = np.inf
    F = None
    diag = np.arange(n_nodes)
    frozen = cache is not None and cache.frozen
    track = cache is not None and not cache.frozen and gmin == 0.0
    for iteration in range(options.max_iterations):
        if frozen:
            F, J = sys.residual_and_jacobian_frozen(x, G_lin, b, cache)
        else:
            F, J = sys.residual_and_jacobian(x, G_lin, b)
        if gmin > 0.0:
            J[diag, diag] += gmin
            F[:n_nodes] += gmin * x[:n_nodes]
        if profiling.ENABLED:
            t_solve = perf_counter()
        delta, solve_ok = backend.solve(J, F)
        if profiling.ENABLED:
            profiling.add("solve", perf_counter() - t_solve)
        if not solve_ok:
            if telemetry.ENABLED:
                _flush_newton(iteration, converged=False)
            raise ConvergenceError(
                f"singular Jacobian in circuit {sys.circuit.name!r}",
                iterations=iteration,
            ).add_event("newton", iterations=iteration,
                        reason="singular_jacobian",
                        node=_worst_residual_node(sys, F))
        # Damp the step so exponential device models stay in range.
        max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
        if max_delta > options.max_step_v:
            delta *= options.max_step_v / max_delta
        last_residual = float(np.max(np.abs(F[:n_nodes]))) if n_nodes else 0.0
        done = (max_delta < options.abstol_v
                and last_residual < options.abstol_i)
        if done and track:
            # Capture the stamps evaluated at the pre-update state.
            cache.update(J - G_lin, F - (G_lin @ x - b), x)
        x += delta
        if done:
            if telemetry.ENABLED:
                _flush_newton(iteration + 1, converged=True)
            return x
    if telemetry.ENABLED:
        _flush_newton(options.max_iterations, converged=False)
    raise ConvergenceError(
        f"Newton failed to converge in circuit {sys.circuit.name!r} "
        f"after {options.max_iterations} iterations",
        iterations=options.max_iterations,
        residual=last_residual,
    ).add_event("newton", iterations=options.max_iterations,
                residual=last_residual,
                node=_worst_residual_node(sys, F))


def _flush_newton(iterations: int, converged: bool) -> None:
    """One guarded registry update per Newton call (never per iteration)."""
    telemetry.count("spice.newton_solves")
    telemetry.count("spice.newton_iterations", iterations)
    if not converged:
        telemetry.count("spice.newton_failures")


def solve_operating_point(sys: MnaSystem, x0: np.ndarray | None = None,
                          options: NewtonOptions | None = None) -> np.ndarray:
    """DC operating point of a bound system, with continuation fallbacks."""
    options = options or NewtonOptions()
    G_lin = sys.linear_jacobian(dt=None)
    b = sys.rhs(t=0.0)
    x = np.zeros(sys.size) if x0 is None else x0.copy()

    # The event trail of everything tried before the current attempt: each
    # failed stage contributes its entries, so the error finally raised
    # tells the whole continuation story.
    trail: list[dict] = []

    try:
        return _newton(sys, G_lin, b, x, options)
    except ConvergenceError as exc:
        trail.extend(exc.events)

    # Fallback 1: gmin stepping.
    if telemetry.ENABLED:
        telemetry.count("spice.gmin_fallbacks")
    gmin = options.gmin_steps[0] if options.gmin_steps else 0.0
    try:
        xg = x.copy()
        for gmin in options.gmin_steps:
            xg = _newton(sys, G_lin, b, xg, options, gmin=gmin)
        return xg
    except ConvergenceError as exc:
        trail.append({"stage": "gmin", "last_gmin": gmin})
        trail.extend(exc.events)

    # Fallback 2: source stepping (DC rhs is purely source-driven).
    if telemetry.ENABLED:
        telemetry.count("spice.source_step_fallbacks")
    xs = np.zeros(sys.size)
    relaxed = replace(options, max_iterations=options.max_iterations * 2)
    alpha = 0.0
    try:
        for alpha in np.linspace(1.0 / options.source_steps, 1.0,
                                 options.source_steps):
            xs = _newton(sys, G_lin, alpha * b, xs, relaxed)
    except ConvergenceError as exc:
        trail.append({"stage": "source", "last_alpha": float(alpha)})
        trail.extend(exc.events)
        exc.events = trail
        raise
    return xs


def operating_point(circuit: Circuit, x0: np.ndarray | None = None,
                    options: NewtonOptions | None = None
                    ) -> tuple[np.ndarray, MnaSystem]:
    """Solve the DC operating point of *circuit*.

    Returns the solution vector and the bound :class:`MnaSystem` (use
    ``sys.voltage(x, node)`` / ``sys.source_current(x, name)`` to read it).
    """
    sys = MnaSystem(circuit)
    x = solve_operating_point(sys, x0=x0, options=options)
    return x, sys


class SweepResult:
    """Result of a DC sweep: one solved operating point per sweep value."""

    def __init__(self, sys: MnaSystem, values: np.ndarray,
                 solutions: np.ndarray) -> None:
        self.sys = sys
        self.values = values
        self.solutions = solutions

    def voltage(self, node: str) -> np.ndarray:
        """Array of node voltages across the sweep."""
        if node in ("0", "gnd", "GND", "ground"):
            return np.zeros(len(self.values))
        idx = self.sys.node_index[node]
        return self.solutions[:, idx].copy()

    def source_current(self, source_name: str) -> np.ndarray:
        """Array of branch currents through a voltage source."""
        idx = self.sys.branch_index[source_name]
        return self.solutions[:, idx].copy()

    def __len__(self) -> int:
        return len(self.values)


def dc_sweep(circuit: Circuit, source_name: str, values: np.ndarray | list[float],
             options: NewtonOptions | None = None) -> SweepResult:
    """Sweep the value of a voltage/current source and solve each point.

    Uses the previous point's solution as the next initial guess
    (continuation), which is what makes the flat regions of ratioed organic
    VTCs tractable.
    """
    values = np.asarray(values, dtype=float)
    sys = MnaSystem(circuit)
    source = circuit.element(source_name)
    if not hasattr(source, "value"):
        raise ConvergenceError(f"element {source_name!r} is not a source")

    solutions = np.empty((len(values), sys.size))
    x_prev: np.ndarray | None = None
    original = source.value
    try:
        for i, value in enumerate(values):
            source.value = float(value)
            x_prev = solve_operating_point(sys, x0=x_prev, options=options)
            solutions[i] = x_prev
    finally:
        source.value = original
    return SweepResult(sys, values, solutions)
