"""Waveform measurements for characterisation.

A :class:`Waveform` is a piecewise-linear sampled signal.  The NLDM
characterisation harness uses three measurements:

- :meth:`Waveform.crossing_time` — when the signal crosses a threshold,
- ``delay`` between two waveforms' 50% crossings,
- :meth:`Waveform.transition_time` — slew between e.g. 20% and 80% of the
  swing (the paper's library uses standard NLDM input-transition indexing).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import AnalysisError
from repro.runtime.log import get_logger

Direction = Literal["rise", "fall", "any"]

_logger = get_logger(__name__)


class Waveform:
    """A sampled signal with linear interpolation between samples."""

    def __init__(self, times: np.ndarray | list[float],
                 values: np.ndarray | list[float]) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise AnalysisError("times and values must be 1-D arrays of equal length")
        if len(times) < 2:
            raise AnalysisError("waveform needs at least two samples")
        if np.any(np.diff(times) <= 0):
            raise AnalysisError("times must be strictly increasing")
        self.times = times
        self.values = values

    # -- basic access ----------------------------------------------------------

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    @property
    def initial_value(self) -> float:
        return float(self.values[0])

    @property
    def final_value(self) -> float:
        return float(self.values[-1])

    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time *t* (clamped to the ends)."""
        return float(np.interp(t, self.times, self.values))

    # -- measurements -----------------------------------------------------------

    def crossing_times(self, level: float, direction: Direction = "any"
                       ) -> np.ndarray:
        """All times where the waveform crosses *level* in *direction*.

        Samples lying exactly on *level* belong to the crossing they are
        part of: a sign sequence like ``-, 0, +`` is **one** rising
        crossing (at the on-level sample), not two, and a run of
        consecutive on-level samples collapses to a single instant — the
        first time the signal reaches the level.  A *touch* — the signal
        reaching the level and returning to the same side (``-, 0, -``)
        — is not a crossing.  A waveform that starts or ends exactly on
        the level counts the departure/arrival as one crossing, matching
        the interpolated behaviour in the limit.  Crossing instants are
        strictly increasing and deduplicated.
        """
        v = self.values - level
        sign = np.sign(v)
        times = self.times
        crossings: list[float] = []

        def emit(t: float, rising: bool) -> None:
            if direction == "rise" and not rising:
                return
            if direction == "fall" and rising:
                return
            if crossings and t <= crossings[-1]:
                return                       # dedupe identical instants
            crossings.append(t)

        prev_sign = sign[0]
        zero_start = 0 if prev_sign == 0 else None
        for i in range(1, len(sign)):
            s = sign[i]
            if s == 0:
                if zero_start is None:
                    zero_start = i
                continue
            if zero_start is not None:
                # A run of exact-on-level samples just ended.  It is one
                # crossing if the signal left on the other side (or the
                # waveform started on the level); a same-side touch is
                # not a crossing.
                if prev_sign == 0 or prev_sign != s:
                    emit(float(times[zero_start]), rising=s > 0)
                zero_start = None
            elif prev_sign != s:
                # Ordinary sign change inside one segment: interpolate.
                frac = -v[i - 1] / (v[i] - v[i - 1])
                emit(float(times[i - 1]
                           + frac * (times[i] - times[i - 1])),
                     rising=s > 0)
            prev_sign = s
        if zero_start is not None and prev_sign != 0:
            # The waveform ends exactly on the level: it reached it once.
            emit(float(times[zero_start]), rising=prev_sign < 0)
        return np.asarray(crossings)

    def crossing_time(self, level: float, direction: Direction = "any",
                      occurrence: int = 0) -> float:
        """Time of the *occurrence*-th crossing of *level*.

        Raises :class:`AnalysisError` if the crossing never happens — the
        characterisation harness treats that as "the gate did not switch".
        """
        crossings = self.crossing_times(level, direction)
        if len(crossings) <= occurrence:
            raise AnalysisError(
                f"waveform never crosses {level:g} ({direction}) "
                f"{occurrence + 1} time(s); range is "
                f"[{self.values.min():g}, {self.values.max():g}]"
            )
        return float(crossings[occurrence])

    def transition_time(self, low: float, high: float,
                        low_frac: float = 0.2, high_frac: float = 0.8) -> float:
        """Slew between *low_frac* and *high_frac* of the (low, high) swing.

        Works for both rising and falling transitions; returns the absolute
        time difference between the two fractional crossings of the final
        transition direction.

        Both fractional crossings are anchored to the **last** monotone
        transition: on a glitchy output whose early edge pokes past the
        lower threshold before the signal settles back and makes its real
        transition, the measurement uses the final edge only — the edge
        that actually delivers the settled value — never a mix of a
        glitch edge and the settling edge.
        """
        if high <= low:
            raise AnalysisError("transition_time needs high > low")
        swing = high - low
        v_lo = low + low_frac * swing
        v_hi = low + high_frac * swing
        rising = self.final_value > self.initial_value
        direction: Direction = "rise" if rising else "fall"
        lo_crossings = self.crossing_times(v_lo, direction)
        hi_crossings = self.crossing_times(v_hi, direction)
        if len(lo_crossings) == 0 or len(hi_crossings) == 0:
            missing = v_lo if len(lo_crossings) == 0 else v_hi
            raise AnalysisError(
                f"waveform never crosses {missing:g} ({direction}); range "
                f"is [{self.values.min():g}, {self.values.max():g}]")
        # The final transition finishes at the threshold it reaches last
        # (the high one when rising, the low one when falling); the other
        # threshold's crossing is the latest one at or before it.
        if rising:
            t_second = float(hi_crossings[-1])
            first = lo_crossings[lo_crossings <= t_second]
            v_first = v_lo
        else:
            t_second = float(lo_crossings[-1])
            first = hi_crossings[hi_crossings <= t_second]
            v_first = v_hi
        if len(first) == 0:
            raise AnalysisError(
                f"waveform never crosses {v_first:g} ({direction}) before "
                f"its final transition completes at t={t_second:g}")
        return abs(t_second - float(first[-1]))

    def settled(self, target: float, tolerance: float) -> bool:
        """True if the final sample is within *tolerance* of *target*."""
        return abs(self.final_value - target) <= tolerance

    def __repr__(self) -> str:
        return (f"Waveform(n={len(self.times)}, t=[{self.t_start:g}, "
                f"{self.t_stop:g}], v=[{self.values.min():g}, "
                f"{self.values.max():g}])")


def resolve_effect_delay(t_cause: float, effect_crossings: np.ndarray,
                         *, context: str | None = None,
                         on_negative: str = "clamp") -> float:
    """Delay from *t_cause* to the matching effect crossing, with policy.

    The effect crossing used is the first one at or after *t_cause*.
    When every effect crossing *precedes* the cause crossing (an output
    coupled forward by heavy input loading can switch slightly before the
    measured input threshold), the raw difference would be negative.  The
    documented policy:

    - ``on_negative="clamp"`` (default): log a WARNING through
      :mod:`repro.runtime.log` naming *context* (cell/arc and bias) and
      return ``0.0`` — a negative value can therefore never enter a
      characterised NLDM table unnoticed, and run reports capture the
      degradation;
    - ``on_negative="raise"``: raise :class:`AnalysisError` instead,
      for callers that must not paper over the anomaly.

    Raises :class:`AnalysisError` when there is no effect crossing at all.
    Shared by :func:`delay_between` and the ensemble harness's online
    crossing replay, so both measurement paths apply one policy.
    """
    if on_negative not in ("clamp", "raise"):
        raise ValueError(
            f"on_negative must be 'clamp' or 'raise', got {on_negative!r}")
    after = effect_crossings[effect_crossings >= t_cause]
    if len(after):
        return float(after[0] - t_cause)
    if len(effect_crossings) == 0:
        raise AnalysisError(
            f"effect waveform never crosses its threshold after "
            f"t={t_cause:g}")
    delay = float(effect_crossings[-1] - t_cause)
    if delay >= 0.0:                               # pragma: no cover - guard
        return delay
    where = f" [{context}]" if context else ""
    if on_negative == "raise":
        raise AnalysisError(
            f"effect crossing precedes cause crossing by {-delay:g}s"
            f"{where}")
    _logger.warning(
        "negative propagation delay %.3gs (effect crossing precedes the "
        "cause crossing)%s; clamping to 0 per the documented policy",
        delay, where)
    return 0.0


def delay_between(cause: Waveform, effect: Waveform, cause_level: float,
                  effect_level: float, cause_direction: Direction = "any",
                  effect_direction: Direction = "any",
                  context: str | None = None,
                  on_negative: str = "clamp") -> float:
    """Propagation delay: effect's threshold crossing minus cause's.

    The effect crossing searched is the first one *after* the cause
    crossing, which handles gates whose outputs glitch before settling.
    When the effect crossing precedes the cause crossing (heavy input
    loading), :func:`resolve_effect_delay`'s documented negative-delay
    policy applies: clamp to zero with a logged warning naming *context*,
    or raise when ``on_negative="raise"``.
    """
    t_cause = cause.crossing_time(cause_level, cause_direction)
    candidates = effect.crossing_times(effect_level, effect_direction)
    if len(candidates) == 0:
        raise AnalysisError(
            f"effect waveform never crosses {effect_level:g} "
            f"({effect_direction}) after t={t_cause:g}"
        )
    return resolve_effect_delay(t_cause, candidates, context=context,
                                on_negative=on_negative)
