"""Waveform measurements for characterisation.

A :class:`Waveform` is a piecewise-linear sampled signal.  The NLDM
characterisation harness uses three measurements:

- :meth:`Waveform.crossing_time` — when the signal crosses a threshold,
- ``delay`` between two waveforms' 50% crossings,
- :meth:`Waveform.transition_time` — slew between e.g. 20% and 80% of the
  swing (the paper's library uses standard NLDM input-transition indexing).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import AnalysisError

Direction = Literal["rise", "fall", "any"]


class Waveform:
    """A sampled signal with linear interpolation between samples."""

    def __init__(self, times: np.ndarray | list[float],
                 values: np.ndarray | list[float]) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise AnalysisError("times and values must be 1-D arrays of equal length")
        if len(times) < 2:
            raise AnalysisError("waveform needs at least two samples")
        if np.any(np.diff(times) <= 0):
            raise AnalysisError("times must be strictly increasing")
        self.times = times
        self.values = values

    # -- basic access ----------------------------------------------------------

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    @property
    def initial_value(self) -> float:
        return float(self.values[0])

    @property
    def final_value(self) -> float:
        return float(self.values[-1])

    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time *t* (clamped to the ends)."""
        return float(np.interp(t, self.times, self.values))

    # -- measurements -----------------------------------------------------------

    def crossing_times(self, level: float, direction: Direction = "any"
                       ) -> np.ndarray:
        """All times where the waveform crosses *level* in *direction*."""
        v = self.values - level
        crossings: list[float] = []
        sign = np.sign(v)
        for i in range(len(v) - 1):
            s0, s1 = sign[i], sign[i + 1]
            if s0 == s1 or s1 == 0 and s0 == 0:
                continue
            rising = v[i + 1] > v[i]
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and rising:
                continue
            # Linear interpolation for the crossing instant.
            frac = -v[i] / (v[i + 1] - v[i])
            crossings.append(float(self.times[i] + frac * (self.times[i + 1] - self.times[i])))
        return np.asarray(crossings)

    def crossing_time(self, level: float, direction: Direction = "any",
                      occurrence: int = 0) -> float:
        """Time of the *occurrence*-th crossing of *level*.

        Raises :class:`AnalysisError` if the crossing never happens — the
        characterisation harness treats that as "the gate did not switch".
        """
        crossings = self.crossing_times(level, direction)
        if len(crossings) <= occurrence:
            raise AnalysisError(
                f"waveform never crosses {level:g} ({direction}) "
                f"{occurrence + 1} time(s); range is "
                f"[{self.values.min():g}, {self.values.max():g}]"
            )
        return float(crossings[occurrence])

    def transition_time(self, low: float, high: float,
                        low_frac: float = 0.2, high_frac: float = 0.8) -> float:
        """Slew between *low_frac* and *high_frac* of the (low, high) swing.

        Works for both rising and falling transitions; returns the absolute
        time difference between the two fractional crossings of the final
        transition direction.
        """
        if high <= low:
            raise AnalysisError("transition_time needs high > low")
        swing = high - low
        v_lo = low + low_frac * swing
        v_hi = low + high_frac * swing
        rising = self.final_value > self.initial_value
        direction: Direction = "rise" if rising else "fall"
        t_lo = self.crossing_time(v_lo, direction)
        t_hi = self.crossing_time(v_hi, direction)
        return abs(t_hi - t_lo)

    def settled(self, target: float, tolerance: float) -> bool:
        """True if the final sample is within *tolerance* of *target*."""
        return abs(self.final_value - target) <= tolerance

    def __repr__(self) -> str:
        return (f"Waveform(n={len(self.times)}, t=[{self.t_start:g}, "
                f"{self.t_stop:g}], v=[{self.values.min():g}, "
                f"{self.values.max():g}])")


def delay_between(cause: Waveform, effect: Waveform, cause_level: float,
                  effect_level: float, cause_direction: Direction = "any",
                  effect_direction: Direction = "any") -> float:
    """Propagation delay: effect's threshold crossing minus cause's.

    The effect crossing searched is the first one *after* the cause
    crossing, which handles gates whose outputs glitch before settling.
    """
    t_cause = cause.crossing_time(cause_level, cause_direction)
    candidates = effect.crossing_times(effect_level, effect_direction)
    after = candidates[candidates >= t_cause]
    if len(after) == 0:
        if len(candidates):
            # Output switched slightly before the measured input crossing
            # (heavy input loading); fall back to the closest crossing.
            return float(candidates[-1] - t_cause)
        raise AnalysisError(
            f"effect waveform never crosses {effect_level:g} "
            f"({effect_direction}) after t={t_cause:g}"
        )
    return float(after[0] - t_cause)
