"""Batched ensemble DC/transient engine: many bindings, one stacked solve.

Characterisation and Monte-Carlo workloads integrate *the same circuit
topology* hundreds of times with different parameter bindings — source
slews, load capacitances, per-device W/L/VT perturbations.  Run as
independent scalar solves they pay Python loop overhead, repeated
Jacobian-structure analysis, and NumPy's fixed per-op cost once per
member per Newton iteration.  This module runs a whole *ensemble* of
such members in lockstep instead:

- state is a stacked ``(B, S)`` array and the Jacobian a stacked
  ``(B, S, S)`` array, solved with one batched ``numpy.linalg.solve``;
- all members' transistors are evaluated by **one** array-valued device
  kernel per Newton iteration (heterogeneous per-member models included,
  via :class:`repro.devices.tft_level61.StackedTftParams`);
- every member keeps its **own** adaptive timestep, Newton damping
  schedule and stop time; a masked *active set* drops members out of the
  stacked solve as they converge, finish, or need a private retry at a
  smaller step, so a fast member can never perturb a slow one;
- delay/slew events are extracted online (threshold crossings between
  accepted states, linearly interpolated — the same arithmetic
  :class:`repro.spice.waveform.Waveform` applies to sampled data), so no
  full waveforms are materialised.

Per-member trajectories follow exactly the scalar controllers in
:mod:`repro.spice.transient` and :mod:`repro.spice.dc` (warm-start
prediction, LTE growth/rejection, dt halving, gmin/source-stepping DC
fallbacks), so results agree with scalar runs to solver tolerance; the
equivalence test suite pins this down.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

import numpy as np

from repro.devices.tft_level61 import StackedTftParams, UnifiedTft
from repro.errors import CircuitError, ConvergenceError
from repro.runtime import profiling, telemetry
from repro.spice.backends import (
    EnsembleNewtonRequest,
    JacobianStructure,
    get_backend,
)
from repro.spice.dc import NewtonOptions, solve_operating_point
from repro.spice.elements import (
    FET_GMIN,
    CurrentSource,
    Element,
    Fet,
    RampValue,
    VoltageSource,
)
from repro.spice.mna import MnaSystem, bypass_eta
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientOptions

__all__ = ["EnsembleSystem", "EnsembleTransient", "Probe",
           "ensemble_dc_sweep", "ensemble_operating_point"]


class _StackedFetBatch:
    """All stackable FETs of all members, as flat index/parameter arrays.

    Mirrors :class:`repro.spice.mna._FetBatch` with two extensions: the
    polarity is a per-device array (one batch covers n- and p-type and
    per-member model perturbations), and member offsets place each
    device's stamps into its member's slice of the flattened extended
    state/Jacobian.  ``gather`` re-narrows all arrays to an active
    member subset — the index arithmetic the masked active set runs on.
    """

    def __init__(self, fets_per_member: list[list[Fet]], size: int) -> None:
        ext = size + 1
        self.ext = ext

        def loc(i: int) -> int:
            return i if i >= 0 else size

        member_id: list[int] = []
        fets: list[Fet] = []
        for b, member_fets in enumerate(fets_per_member):
            member_id.extend([b] * len(member_fets))
            fets.extend(member_fets)
        self.member_id = np.asarray(member_id, dtype=np.intp)
        self.d_loc = np.array([loc(f._idx[0]) for f in fets], dtype=np.intp)
        self.g_loc = np.array([loc(f._idx[1]) for f in fets], dtype=np.intp)
        self.s_loc = np.array([loc(f._idx[2]) for f in fets], dtype=np.intp)
        self.pol = np.array([float(f.model.polarity) for f in fets])
        self.params = StackedTftParams([f.model for f in fets],
                                       np.array([f.w for f in fets]),
                                       np.array([f.l for f in fets]))

        d, g, s = self.d_loc, self.g_loc, self.s_loc
        self.sd_delta = s - d
        rows_n = np.stack([d, d, d, s, s, s])
        cols_n = np.stack([d, g, s, d, g, s])
        self.flat_normal = rows_n * ext + cols_n
        rows_s = np.stack([s, s, s, d, d, d])
        cols_s = np.stack([s, g, d, s, g, d])
        self.flat_delta = rows_s * ext + cols_s - self.flat_normal

    def gather(self, mem_idx: np.ndarray) -> "_GatheredFets | None":
        """Index/parameter arrays narrowed to the members in *mem_idx*."""
        if len(self.member_id) == 0:
            return None
        n_members = int(self.member_id.max(initial=-1)) + 1
        pos = np.full(n_members, -1, dtype=np.intp)
        pos[mem_idx] = np.arange(len(mem_idx))
        sel = pos[self.member_id] >= 0
        if not sel.any():
            return None
        lane = pos[self.member_id[sel]]
        vec_off = lane * self.ext
        jac_off = lane * (self.ext * self.ext)
        return _GatheredFets(
            d=self.d_loc[sel] + vec_off,
            g=self.g_loc[sel] + vec_off,
            s=self.s_loc[sel] + vec_off,
            pol=self.pol[sel],
            sd_delta=self.sd_delta[sel],
            flat_normal=self.flat_normal[:, sel] + jac_off,
            flat_delta=self.flat_delta[:, sel],
            params=self.params.subset(sel),
            lane=lane,
        )


class _GatheredFets:
    """A :class:`_StackedFetBatch` narrowed to one active member subset."""

    __slots__ = ("d", "g", "s", "pol", "sd_delta", "flat_normal",
                 "flat_delta", "params", "lane")

    def __init__(self, **arrays) -> None:
        for name, value in arrays.items():
            setattr(self, name, value)

    def subset(self, keep_lanes: np.ndarray) -> "_GatheredFets | None":
        """Devices of the lanes flagged in the boolean *keep_lanes* mask
        (stamp-bypassed lanes drop their devices from the evaluation)."""
        sel = keep_lanes[self.lane]
        if sel.all():
            return self
        if not sel.any():
            return None
        return _GatheredFets(
            d=self.d[sel], g=self.g[sel], s=self.s[sel],
            pol=self.pol[sel], sd_delta=self.sd_delta[sel],
            flat_normal=self.flat_normal[:, sel],
            flat_delta=self.flat_delta[:, sel],
            params=self.params.subset(sel),
            lane=self.lane[sel],
        )

    def stamp(self, J_flat: np.ndarray, F_flat: np.ndarray,
              x_flat: np.ndarray) -> None:
        dv = x_flat[self.d] - x_flat[self.s]
        swapped = (self.pol * dv) < 0.0
        shift = swapped * self.sd_delta
        a = self.d + shift
        b = self.s - shift
        vb = x_flat[b]
        vg = x_flat[self.g]
        vds_n = np.abs(dv)
        vgs_n = self.pol * (vg - vb)
        if profiling.ENABLED:
            t0 = perf_counter()
            ids, gm, gds = self.params.evaluate(vgs_n, vds_n)
            profiling.add("device_eval", perf_counter() - t0)
        else:
            ids, gm, gds = self.params.evaluate(vgs_n, vds_n)

        i_phys = self.pol * (ids + FET_GMIN * vds_n)
        np.add.at(F_flat, a, i_phys)
        np.add.at(F_flat, b, -i_phys)

        g_ds = gds + FET_GMIN
        gsum = gm + g_ds
        vals = np.concatenate([g_ds, gm, -gsum, -g_ds, -gm, gsum])
        flat = self.flat_normal + swapped * self.flat_delta
        np.add.at(J_flat, flat.ravel(), vals)


def _describe(element: Element) -> tuple:
    return (element.name, type(element).__name__, element.nodes,
            element.n_branches)


class EnsembleSystem:
    """A batch of structurally identical circuits bound to one ordering.

    All members must share node names, element names/types/terminals and
    branch layout; element *values* (resistances, capacitances, source
    values, FET W/L and model parameters) are free to differ — those are
    the ensemble's parameter bindings.  Transistors whose models are
    :class:`~repro.devices.tft_level61.UnifiedTft` across every member
    are stacked into one cross-member device batch; any other nonlinear
    element falls back to per-member scalar stamping (still correct,
    just not batched).
    """

    def __init__(self, circuits: Sequence[Circuit]) -> None:
        if not circuits:
            raise CircuitError("ensemble needs at least one member circuit")
        self.members = [MnaSystem(c, vectorized=False) for c in circuits]
        ref = self.members[0]
        signature = [_describe(e) for e in ref.circuit.elements]
        for m in self.members[1:]:
            if (m.node_names != ref.node_names
                    or [_describe(e) for e in m.circuit.elements] != signature):
                raise CircuitError(
                    f"ensemble members are not structurally identical: "
                    f"{m.circuit.name!r} differs from {ref.circuit.name!r}")

        self.B = len(self.members)
        self.size = ref.size
        self.n_nodes = ref.n_nodes
        self.node_index = ref.node_index
        self.branch_index = ref.branch_index

        self.G_static = np.stack([m._G_static for m in self.members])
        self.C_unit = np.stack([m._C_unit for m in self.members])

        # Nonlinear elements, position-wise: a position is stackable when
        # every member's element there is a UnifiedTft FET.
        nl_positions = [i for i, e in enumerate(ref.circuit.elements)
                        if e.is_nonlinear]
        stackable: list[int] = []
        fallback_pos: list[int] = []
        for i in nl_positions:
            if all(isinstance(m.circuit.elements[i], Fet)
                   and isinstance(m.circuit.elements[i].model, UnifiedTft)
                   for m in self.members):
                stackable.append(i)
            else:
                fallback_pos.append(i)
        self.fet_batch = _StackedFetBatch(
            [[m.circuit.elements[i] for i in stackable]
             for m in self.members], self.size)
        self._fallback = [
            tuple(m.circuit.elements[i] for i in fallback_pos)
            for m in self.members]
        self._any_fallback = bool(fallback_pos)

        # Time-dependent rhs elements, position-wise: constant sources
        # fold into a precomputed per-member vector, RampValue voltage
        # sources take a vectorised fast path, anything else loops.
        rhs_positions = [
            i for i, e in enumerate(ref.circuit.elements)
            if not e.rhs_is_storage
            and type(e).stamp_rhs is not Element.stamp_rhs]
        self._b_const = np.zeros((self.B, self.size))
        self._ramps: list[tuple[int, np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]] = []
        generic_pos: list[int] = []
        for i in rhs_positions:
            elems = [m.circuit.elements[i] for m in self.members]
            if all(isinstance(e, (VoltageSource, CurrentSource))
                   and not callable(e.value) for e in elems):
                for b, e in enumerate(elems):
                    e.stamp_rhs(self._b_const[b], 0.0, None, None)
            elif (all(isinstance(e, VoltageSource)
                      and isinstance(e.value, RampValue) for e in elems)
                  and all(e.value.duration > 0.0 for e in elems)):
                row = elems[0]._branch
                self._ramps.append((
                    row,
                    np.array([e.value.v0 for e in elems]),
                    np.array([e.value.v1 - e.value.v0 for e in elems]),
                    np.array([e.value.t_start for e in elems]),
                    np.array([1.0 / e.value.duration for e in elems]),
                ))
            else:
                generic_pos.append(i)
        self._generic_rhs = [
            tuple(m.circuit.elements[i] for i in generic_pos)
            for m in self.members]
        self._any_generic_rhs = bool(generic_pos)

        # Active-set compositions repeat for long stretches of a run (they
        # only change when members finish or retry), so gathered FET
        # subsets are memoised by member-index signature.
        self._gather_cache: dict[bytes, _GatheredFets | None] = {}
        self._structure: JacobianStructure | None | str = "unset"
        self._nl_slots: np.ndarray | str = "unset"

    @property
    def structure(self) -> JacobianStructure | None:
        """Shared Jacobian sparsity pattern, or None when unknowable
        (per-member fallback elements stamp unpredictably)."""
        if isinstance(self._structure, str):
            if any(len(fb) for fb in self._fallback):
                self._structure = None
            else:
                S = self.size
                pattern = (self.G_static != 0.0).any(axis=0) \
                    | (self.C_unit != 0.0).any(axis=0)
                diag = np.arange(self.n_nodes)
                pattern[diag, diag] = True        # gmin conditioning
                locs = np.stack([self.fet_batch.d_loc,
                                 self.fet_batch.g_loc,
                                 self.fet_batch.s_loc])
                for i in range(3):
                    for j in range(3):
                        r, c = locs[i], locs[j]
                        keep = (r < S) & (c < S)
                        pattern[r[keep], c[keep]] = True
                self._structure = JacobianStructure(pattern, self.n_nodes)
        return self._structure

    @property
    def nl_slots(self) -> np.ndarray:
        """Solver slots any nonlinear element of any member stamps."""
        if isinstance(self._nl_slots, str):
            if any(len(fb) for fb in self._fallback):
                # Conservative: fallback elements' reach is unknown.
                self._nl_slots = np.arange(self.size, dtype=np.intp)
            else:
                locs = np.concatenate([self.fet_batch.d_loc,
                                       self.fet_batch.g_loc,
                                       self.fet_batch.s_loc])
                self._nl_slots = np.unique(locs[locs < self.size])
        return self._nl_slots

    def gather_cached(self, mem_idx: np.ndarray) -> "_GatheredFets | None":
        key = mem_idx.tobytes()
        try:
            return self._gather_cache[key]
        except KeyError:
            gathered = self.fet_batch.gather(mem_idx)
            self._gather_cache[key] = gathered
            return gathered

    # -- right-hand sides ---------------------------------------------------

    def rhs_batch(self, mem_idx: np.ndarray, t: np.ndarray,
                  x_prev: np.ndarray | None = None,
                  dt: np.ndarray | None = None) -> np.ndarray:
        """Stacked right-hand sides at per-member times ``t``.

        Constant sources come from the precomputed template, ramps are
        evaluated vectorised across members, other time-dependent
        elements loop per member; the storage history term is one
        batched matmul.  **Not** valid while source values are being
        mutated externally (the DC sweep uses :meth:`rhs_fresh`).
        """
        b = self._b_const[mem_idx].copy()
        for row, v0, dv, t_start, inv_dur in self._ramps:
            frac = np.clip((t - t_start[mem_idx]) * inv_dur[mem_idx],
                           0.0, 1.0)
            b[:, row] += v0[mem_idx] + dv[mem_idx] * frac
        if self._any_generic_rhs:
            for i, m in enumerate(mem_idx):
                elems = self._generic_rhs[m]
                if elems:
                    ti = float(t[i])
                    for e in elems:
                        e.stamp_rhs(b[i], ti, None, None)
        if x_prev is not None and dt is not None:
            b += np.einsum("aij,aj->ai", self.C_unit[mem_idx],
                           x_prev) / dt[:, None]
        return b

    def rhs_fresh(self, mem_idx: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Per-member rhs via the element loop (honours mutated values)."""
        b = np.zeros((len(mem_idx), self.size))
        for i, m in enumerate(mem_idx):
            for e in self.members[m]._rhs_time:
                e.stamp_rhs(b[i], t, None, None)
        return b

    # -- stacked Newton ------------------------------------------------------

    def assemble(self, mem_idx: np.ndarray, gathered: "_GatheredFets | None",
                 G_lin: np.ndarray, b: np.ndarray, x: np.ndarray,
                 frozen: np.ndarray | None = None,
                 bypass: "_EnsembleBypass | None" = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked residual ``F(x)`` and Jacobian ``J(x)`` for a subset.

        *gathered* must already exclude the devices of lanes flagged in
        the boolean *frozen* mask — those lanes get their nonlinear
        stamps from the *bypass* cache instead of device evaluation.
        """
        if profiling.ENABLED:
            t0 = perf_counter()
        A = len(mem_idx)
        S = self.size
        ext = S + 1
        J_ext = np.zeros((A, ext, ext))
        J_ext[:, :S, :S] = G_lin
        F_ext = np.zeros((A, ext))
        F_ext[:, :S] = np.einsum("aij,aj->ai", G_lin, x) - b
        x_ext = np.zeros((A, ext))
        x_ext[:, :S] = x
        if gathered is not None:
            gathered.stamp(J_ext.reshape(-1), F_ext.reshape(-1),
                           x_ext.reshape(-1))
        if frozen is not None and frozen.any():
            mf = mem_idx[frozen]
            J_ext[frozen, :S, :S] += bypass.J_nl[mf]
            F_ext[frozen, :S] += bypass.F_nl[mf]
        for i, m in enumerate(mem_idx):
            for e in self._fallback[m]:
                e.stamp_nonlinear(J_ext[i, :S, :S], F_ext[i, :S], x[i])
        if profiling.ENABLED:
            profiling.add("stamp", perf_counter() - t0)
        return F_ext[:, :S], J_ext[:, :S, :S]

    def newton_batch(self, mem_idx: np.ndarray, G_lin: np.ndarray | None,
                     b: np.ndarray, x0: np.ndarray,
                     options: NewtonOptions,
                     max_step_v: np.ndarray | None = None,
                     max_iterations: np.ndarray | None = None,
                     gmin: float = 0.0,
                     gathered: "_GatheredFets | None" = None,
                     inv_dt: np.ndarray | None = None,
                     x_prev: np.ndarray | None = None,
                     add_storage: bool = False,
                     bypass: "_EnsembleBypass | None" = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Damped Newton on a member subset; returns ``(x, converged)``.

        Per-lane damping and iteration budgets follow the scalar
        :func:`repro.spice.dc._newton` exactly; a lane that converges is
        frozen (its state no longer updated) while the remaining lanes
        keep iterating, and a lane whose Jacobian goes singular or whose
        iteration budget runs out is reported unconverged rather than
        aborting the batch.

        The whole solve is first offered to the process backend's
        :meth:`~repro.spice.backends.base.SolverBackend.ensemble_newton`
        hook (the compiled kernel); ``G_lin=None`` with *inv_dt* set is
        the transient fast path where the backend composes
        ``G_static + C_unit/dt`` itself and (with *add_storage*) adds
        the storage history to *b* — Python never materialises either.
        Backends that decline fall through to the reference loop here.
        """
        if profiling.ENABLED:
            t0 = perf_counter()
        A = len(mem_idx)
        backend = get_backend()
        if max_step_v is None:
            max_step_v = np.full(A, options.max_step_v)
        if max_iterations is None:
            max_iterations = np.full(A, options.max_iterations,
                                     dtype=np.int64)
        x = x0.copy()

        request = EnsembleNewtonRequest(
            self, mem_idx, G_lin, inv_dt, b, x, x_prev, add_storage,
            options, max_step_v, max_iterations,
            gmin, bypass if gmin == 0.0 else None)
        result = backend.ensemble_newton(request)
        if profiling.ENABLED and result is not None:
            # The kernel fuses stamping, device eval and the solve; the
            # whole call (marshalling included) lands in the solve bucket.
            profiling.add("solve", perf_counter() - t0)
        if result is not None:
            x, converged, iteration = result
            self._flush_newton_batch(A, iteration, converged)
            return x, converged

        # Reference loop.  A declined transient fast path first needs
        # the arrays the backend would have composed internally.
        if G_lin is None:
            G_lin = self.G_static[mem_idx] \
                + self.C_unit[mem_idx] * inv_dt[:, None, None]
            if add_storage:
                b = b + np.einsum("aij,aj->ai", self.C_unit[mem_idx],
                                  x_prev) * inv_dt[:, None]
        if gathered is None:
            gathered = self.gather_cached(mem_idx)

        frozen = None
        if bypass is not None and x_prev is not None and gmin == 0.0:
            frozen = bypass.frozen_lanes(mem_idx, x_prev)
            if frozen.any():
                if gathered is not None:
                    gathered = gathered.subset(~frozen)
            else:
                frozen = None
        track = bypass is not None and gmin == 0.0

        # A fully-frozen batch (every lane reuses its cached stamps, no
        # per-member fallback elements) iterates against an
        # iteration-invariant Jacobian: assemble it once, rebuild only
        # the cheap residual afterwards, and — where the backend offers
        # a reusable factorisation (the blocked static LU above its
        # refactor threshold) — factor it once and back-substitute per
        # iteration instead of re-solving.  The residual arithmetic is
        # the exact op sequence of :meth:`assemble`, so results stay
        # bitwise identical to the plain loop.
        frozen_all = (frozen is not None and bool(frozen.all())
                      and not self._any_fallback)
        J_frozen = None
        factor = None

        n = self.n_nodes
        diag = np.arange(n)
        active = np.ones(A, dtype=bool)
        converged = np.zeros(A, dtype=bool)
        iteration = 0
        lane_iters = 0
        budget = int(max_iterations.max())
        structure = self.structure
        while active.any() and iteration < budget:
            if J_frozen is None:
                F, J = self.assemble(mem_idx, gathered, G_lin, b, x,
                                     frozen=frozen, bypass=bypass)
                if frozen_all:
                    J_frozen = J
                    factor = backend.factor_stacked(J, structure)
            else:
                if profiling.ENABLED:
                    t0 = perf_counter()
                J = J_frozen
                F = np.einsum("aij,aj->ai", G_lin, x) - b
                F += bypass.F_nl[mem_idx]
                if profiling.ENABLED:
                    profiling.add("stamp", perf_counter() - t0)
            if gmin > 0.0:
                J[:, diag, diag] += gmin
                F[:, :n] += gmin * x[:, :n]
            act_idx = np.flatnonzero(active)
            if profiling.ENABLED:
                t0 = perf_counter()
            if factor is not None and len(act_idx) == A:
                delta, solve_ok = factor.solve(F)
            else:
                delta, solve_ok = backend.solve_stacked(J[act_idx],
                                                        F[act_idx],
                                                        structure)
            if profiling.ENABLED:
                profiling.add("solve", perf_counter() - t0)
            if not solve_ok.all():
                # Singular lanes are deactivated (reported unconverged,
                # routed to the caller's scalar-retry path), never fatal.
                active[act_idx[~solve_ok]] = False
                act_idx = act_idx[solve_ok]
                delta = delta[solve_ok]
            if len(act_idx) == 0:
                break
            max_delta = np.max(np.abs(delta), axis=1) if delta.size \
                else np.zeros(len(act_idx))
            scale = np.minimum(1.0, max_step_v[act_idx]
                               / np.maximum(max_delta, 1e-300))
            residual = np.max(np.abs(F[act_idx][:, :n]), axis=1) if n \
                else np.zeros(len(act_idx))
            done = (max_delta < options.abstol_v) \
                & (residual < options.abstol_i)
            new_done = act_idx[done]
            if track and len(new_done):
                # Write back fresh stamps at the pre-update state for
                # lanes that just converged without the bypass.
                nd = new_done if frozen is None \
                    else new_done[~frozen[new_done]]
                if len(nd):
                    m = mem_idx[nd]
                    lin = np.einsum("aij,aj->ai", G_lin[nd], x[nd]) - b[nd]
                    bypass.J_nl[m] = J[nd] - G_lin[nd]
                    bypass.F_nl[m] = F[nd] - lin
                    bypass.x_stamp[m] = x[nd]
                    bypass.valid[m] = 1
            x[act_idx] += delta * scale[:, None]
            converged[new_done] = True
            active[new_done] = False
            iteration += 1
            lane_iters += len(act_idx)
            out_of_budget = active & (iteration >= max_iterations)
            active &= ~out_of_budget
        self._flush_newton_batch(A, iteration, converged, lane_iters)
        return x, converged

    @staticmethod
    def _flush_newton_batch(A: int, iteration: int, converged: np.ndarray,
                            lane_iterations: int | None = None) -> None:
        """One registry update per batched call; `iteration` is the
        number of stacked assemble/solve rounds the batch took.

        *lane_iterations* is the per-lane Newton iteration total (each
        round counts only the lanes still active after singular trim),
        the counter the native kernels mirror bit-for-bit; ``None``
        means the backend hook already flushed it."""
        if not telemetry.ENABLED:
            return
        telemetry.count("ensemble.newton_batches")
        telemetry.count("ensemble.newton_iterations", iteration)
        telemetry.observe("ensemble.batch_occupancy", A)
        if lane_iterations is not None:
            telemetry.count("ensemble.newton_lane_iterations",
                            lane_iterations)
        unconverged = int(A - int(converged.sum()))
        if unconverged:
            telemetry.count("ensemble.newton_lane_failures", unconverged)

    # -- DC -----------------------------------------------------------------

    def solve_dc(self, mem_idx: np.ndarray | None = None,
                 x0: np.ndarray | None = None,
                 options: NewtonOptions | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked DC operating points with the scalar fallback chain.

        Returns ``(x, ok)`` over the requested member subset.  Lanes
        failing plain Newton go through gmin stepping, then source
        stepping — each on the still-failing subset only — mirroring
        :func:`repro.spice.dc.solve_operating_point` lane by lane.
        """
        options = options or NewtonOptions()
        if mem_idx is None:
            mem_idx = np.arange(self.B)
        mem_idx = np.asarray(mem_idx, dtype=np.intp)
        A = len(mem_idx)
        G_lin = self.G_static[mem_idx].copy()
        b = self.rhs_fresh(mem_idx)
        x = np.zeros((A, self.size)) if x0 is None else x0.copy()

        x_out, ok = self.newton_batch(mem_idx, G_lin, b, x, options)
        if ok.all():
            return x_out, ok

        # Fallback 1: gmin stepping on the failing subset.
        retry = np.flatnonzero(~ok)
        if telemetry.ENABLED:
            telemetry.count("ensemble.gmin_fallback_lanes", len(retry))
        xg = x[retry].copy()
        g_ok = np.ones(len(retry), dtype=bool)
        sub = mem_idx[retry]
        for gmin in options.gmin_steps:
            alive = np.flatnonzero(g_ok)
            if len(alive) == 0:
                break
            xg_new, step_ok = self.newton_batch(
                sub[alive], G_lin[retry[alive]], b[retry[alive]],
                xg[alive], options, gmin=float(gmin))
            xg[alive] = np.where(step_ok[:, None], xg_new, xg[alive])
            g_ok[alive[~step_ok]] = False
        recovered = np.flatnonzero(g_ok)
        x_out[retry[recovered]] = xg[recovered]
        ok[retry[recovered]] = True
        if ok.all():
            return x_out, ok

        # Fallback 2: source stepping on whatever still fails.
        retry = np.flatnonzero(~ok)
        if telemetry.ENABLED:
            telemetry.count("ensemble.source_fallback_lanes", len(retry))
        sub = mem_idx[retry]
        xs = np.zeros((len(retry), self.size))
        s_ok = np.ones(len(retry), dtype=bool)
        relaxed_iter = np.full(len(retry), options.max_iterations * 2,
                               dtype=int)
        for alpha in np.linspace(1.0 / options.source_steps, 1.0,
                                 options.source_steps):
            alive = np.flatnonzero(s_ok)
            if len(alive) == 0:
                break
            xs_new, step_ok = self.newton_batch(
                sub[alive], G_lin[retry[alive]], alpha * b[retry[alive]],
                xs[alive], options, max_iterations=relaxed_iter[alive])
            xs[alive] = np.where(step_ok[:, None], xs_new, xs[alive])
            s_ok[alive[~step_ok]] = False
        recovered = np.flatnonzero(s_ok)
        x_out[retry[recovered]] = xs[recovered]
        ok[retry[recovered]] = True
        return x_out, ok

    # -- solution access -----------------------------------------------------

    def node_slot(self, node: str) -> int:
        """Solver index of *node* (ground aliases are rejected: probe a
        real node)."""
        try:
            return self.node_index[node]
        except KeyError:
            raise CircuitError(f"unknown ensemble node {node!r}") from None


def ensemble_operating_point(circuits: Sequence[Circuit],
                             options: NewtonOptions | None = None
                             ) -> tuple[np.ndarray, EnsembleSystem]:
    """Stacked DC operating points of structurally identical circuits.

    Lanes the batched fallback chain cannot converge are retried with the
    scalar solver (which raises :class:`ConvergenceError` on failure, as
    the per-circuit path would).
    """
    es = EnsembleSystem(circuits)
    x, ok = es.solve_dc(options=options)
    for lane in np.flatnonzero(~ok):
        if telemetry.ENABLED:
            telemetry.count("ensemble.scalar_retries")
        x[lane] = solve_operating_point(es.members[lane], options=options)
    return x, es


def ensemble_dc_sweep(circuits: Sequence[Circuit], source_name: str,
                      values: np.ndarray | list[float],
                      options: NewtonOptions | None = None
                      ) -> tuple[np.ndarray, np.ndarray, EnsembleSystem]:
    """Sweep one source across all members in lockstep.

    Returns ``(solutions, ok, system)`` where ``solutions`` has shape
    ``(n_values, B, size)`` (NaN for failed lanes from the first point
    they fail) and ``ok`` flags members that converged at every point.
    Continuation warm-starts each point from the previous solution, as
    the scalar :func:`repro.spice.dc.dc_sweep` does.
    """
    values = np.asarray(values, dtype=float)
    es = EnsembleSystem(circuits)
    sources = [m.circuit.element(source_name) for m in es.members]
    for s in sources:
        if not hasattr(s, "value"):
            raise ConvergenceError(f"element {source_name!r} is not a source")
    solutions = np.full((len(values), es.B, es.size), np.nan)
    ok = np.ones(es.B, dtype=bool)
    x_prev: np.ndarray | None = None
    originals = [s.value for s in sources]
    try:
        for i, value in enumerate(values):
            for s in sources:
                s.value = float(value)
            alive = np.flatnonzero(ok)
            if len(alive) == 0:
                break
            x0 = x_prev[alive] if x_prev is not None else None
            x, point_ok = es.solve_dc(mem_idx=alive, x0=x0, options=options)
            # Lanes the batch cannot converge get one scalar retry before
            # being written off (matches per-circuit robustness).
            for k in np.flatnonzero(~point_ok):
                if telemetry.ENABLED:
                    telemetry.count("ensemble.scalar_retries")
                try:
                    x[k] = solve_operating_point(
                        es.members[alive[k]],
                        x0=None if x0 is None else x0[k], options=options)
                    point_ok[k] = True
                except (ConvergenceError, np.linalg.LinAlgError):
                    # A lane whose scalar retry is singular/unconverged
                    # is written off; it must never kill the sweep.
                    pass
            ok[alive[~point_ok]] = False
            good = alive[point_ok]
            solutions[i, good] = x[point_ok]
            if x_prev is None:
                x_prev = np.zeros((es.B, es.size))
            x_prev[good] = x[point_ok]
    finally:
        for s, original in zip(sources, originals):
            s.value = original
    return solutions, ok, es


# ---------------------------------------------------------------------------
# Transient
# ---------------------------------------------------------------------------

class _EnsembleBypass:
    """Per-member stamp cache for the ensemble transient bypass.

    The batched twin of :class:`repro.spice.mna.StampCache`: one slot
    per ensemble member, indexed by member id so lanes keep their cache
    across active-set recompositions.  Layouts are exactly what the
    native kernel reads/writes (`valid` as uint8, stamps without the
    trash slot), and the NumPy reference path uses the same arrays, so
    freeze decisions agree across backends.
    """

    __slots__ = ("eta", "slots", "valid", "x_stamp", "J_nl", "F_nl",
                 "addrs")

    def __init__(self, eta: float, slots: np.ndarray, B: int,
                 size: int) -> None:
        self.eta = eta
        self.slots = slots
        self.valid = np.zeros(B, dtype=np.uint8)
        self.x_stamp = np.zeros((B, size))
        self.J_nl = np.zeros((B, size, size))
        self.F_nl = np.zeros((B, size))
        # Raw data addresses for the native kernel: the arrays above are
        # allocated once and only ever mutated in place.
        self.addrs = (self.valid.ctypes.data, self.x_stamp.ctypes.data,
                      self.J_nl.ctypes.data, self.F_nl.ctypes.data)

    def frozen_lanes(self, mem_idx: np.ndarray,
                     x_accepted: np.ndarray) -> np.ndarray:
        """Boolean lane mask: cached stamps still usable at *x_accepted*."""
        dist = np.max(np.abs(x_accepted[:, self.slots]
                             - self.x_stamp[mem_idx][:, self.slots]), axis=1)
        return (self.valid[mem_idx] != 0) & (dist <= self.eta)


class Probe:
    """A threshold-crossing watchpoint: one node, one level per member.

    ``levels`` may be a scalar (shared by every member) or a length-B
    sequence.  Crossing instants are linearly interpolated between
    accepted integration states — the same arithmetic
    :meth:`repro.spice.waveform.Waveform.crossing_times` applies to a
    sampled waveform of the identical trajectory.
    """

    def __init__(self, node: str, levels) -> None:
        self.node = node
        self.levels = levels


class EnsembleTransient:
    """Lockstep transient integration of one ensemble.

    Each member runs the exact per-member controller of
    :func:`repro.spice.transient.transient` — nominal step ``dt``,
    halving on Newton failure, warm-start prediction, LTE-steered growth
    up to ``dt_max`` — but the Newton iterations of all members still
    stepping are assembled and solved as one stacked batch.  Members
    whose step fails or whose LTE estimate rejects an oversized step
    simply sit out the accept phase and retry at their reduced step on
    the next sweep of the active set; members that reach their ``t_stop``
    leave the batch entirely.  :meth:`extend` pushes selected members'
    stop times out and resumes them, which is how the characterisation
    harness grows observation windows for unsettled outputs without
    re-integrating from scratch.
    """

    def __init__(self, circuits: Sequence[Circuit],
                 options: Sequence[TransientOptions],
                 probes: Sequence[Probe] = (),
                 x0: np.ndarray | None = None) -> None:
        if len(options) != len(circuits):
            raise CircuitError("need one TransientOptions per member")
        self.es = EnsembleSystem(circuits)
        es = self.es
        B = es.B
        newton = options[0].newton
        if any(o.newton != newton for o in options):
            raise CircuitError("ensemble members must share NewtonOptions")
        self.newton = newton

        self.dt_nom = np.array([o.dt for o in options])
        self.t_stop = np.array([o.t_stop for o in options])
        self.dt_min = np.array([o.dt / (2 ** o.max_halvings)
                                for o in options])
        self.dt_cap = np.array([o.dt_max if o.dt_max is not None else o.dt
                                for o in options])
        self.lte_tol = np.array([o.lte_tol if o.lte_tol is not None
                                 else np.inf for o in options])
        self.growth = np.array([o.growth for o in options])
        self._damped_step_v = newton.max_step_v / 8.0
        self._damped_iter = newton.max_iterations * 3
        # Undamped per-lane limits, sliced per sweep (read-only), and a
        # reusable prediction-error buffer.
        self._step_v_full = np.full(B, newton.max_step_v)
        self._iter_full = np.full(B, newton.max_iterations, dtype=np.int64)
        self._pred_buf = np.empty(B)
        self._lte4 = 4.0 * self.lte_tol
        # Controller parameters stacked for a single per-sweep gather:
        # rows are lte_tol, dt_nom, dt_cap, growth.
        self._ctrl = np.stack([self.lte_tol, self.dt_nom,
                               self.dt_cap, self.growth])

        if x0 is None:
            x, ok = es.solve_dc(options=newton)
            for lane in np.flatnonzero(~ok):
                x[lane] = solve_operating_point(es.members[lane],
                                                options=newton)
        else:
            x = x0.copy()
        self.x = x
        self.x_init = x.copy()
        self.t = np.zeros(B)
        self.dt = self.dt_nom.copy()
        self.x_last = np.zeros_like(x)
        self.dt_last = np.zeros(B)
        self.has_hist = np.zeros(B, dtype=bool)
        self.steps = np.zeros(B, dtype=np.int64)

        eta = bypass_eta(newton)
        self._bypass = None
        if eta > 0.0 and (len(es.fet_batch.member_id)
                          or any(len(fb) for fb in es._fallback)):
            self._bypass = _EnsembleBypass(eta, es.nl_slots, B, es.size)

        self.probes = list(probes)
        self._probe_slots = [es.node_slot(p.node) for p in self.probes]
        self._probe_levels = [np.broadcast_to(
            np.asarray(p.levels, dtype=float), (B,)).copy()
            for p in self.probes]
        # Stacked (P,) slots and (P, B) levels so crossing detection is
        # one vectorised compare over all probes per accepted sweep.
        self._probe_slot_arr = np.asarray(self._probe_slots, dtype=np.int64)
        self._levels_mat = (np.stack(self._probe_levels)
                            if self.probes else np.zeros((0, B)))
        #: crossings[probe][member] -> list of (time, rising) tuples.
        self.crossings: list[list[list[tuple[float, bool]]]] = [
            [[] for _ in range(B)] for _ in self.probes]

    # -- integration ---------------------------------------------------------

    def run(self) -> "EnsembleTransient":
        """Integrate every member to its ``t_stop``; returns self.

        The linear transient Jacobian ``G_static + C_unit/dt`` and the
        storage history term are *not* built here: :meth:`newton_batch`
        passes ``inv_dt`` through to the backend, which composes them
        per lane (inside the compiled kernel on the native backend,
        vectorised in NumPy otherwise).
        """
        es = self.es
        profiled = profiling.ENABLED
        # Telemetry accumulates in locals across the whole run and
        # flushes once on return (or on the failure path below).
        n_accepted = 0
        n_halvings = 0
        n_lte_rejections = 0
        # Offer the entire run to the backend's whole-timestep hook
        # first (the compiled kernel integrates each lane to completion
        # with the bit-exact step schedule of the sweep loop below).
        # Backends without the hook decline; lanes the kernel could not
        # finish (dt underflow, crossing-buffer overflow) are simply
        # still short of t_stop, so the sweep loop resumes them — and
        # raises the reference ConvergenceError when the failure is
        # real.  The hook fuses rhs/predict/solve/step-control, so its
        # whole runtime lands in the solve bucket like the per-iteration
        # kernel's.
        if profiled:
            t0 = perf_counter()
        native = get_backend().ensemble_timestep(self)
        if native is not None:
            if profiled:
                profiling.add("solve", perf_counter() - t0)
            n_accepted = native["accepted"]
            n_halvings = native["halvings"]
            n_lte_rejections = native["lte_rejections"]
        while True:
            if profiled:
                t0 = perf_counter()
            act = np.flatnonzero((self.t_stop - self.t) > self.dt_min)
            if len(act) == 0:
                if telemetry.ENABLED:
                    self._flush_run(n_accepted, n_halvings, n_lte_rejections)
                return self
            dt_step = np.minimum(self.dt[act], self.t_stop[act] - self.t[act])
            damped = dt_step <= 8.0 * self.dt_min[act]
            if damped.any():
                max_step_v = np.where(damped, self._damped_step_v,
                                      self.newton.max_step_v)
                max_iter = np.where(damped, self._damped_iter,
                                    self.newton.max_iterations)
            else:
                # The common sweep has no damped lane: share the
                # preallocated constant arrays instead of two np.where.
                max_step_v = self._step_v_full[:len(act)]
                max_iter = self._iter_full[:len(act)]
            if profiled:
                profiling.add("step_control", perf_counter() - t0)
                t0 = perf_counter()
            x_prev = self.x[act]
            hist = self.has_hist[act]
            hist_all = bool(hist.all())
            if hist_all:
                ratio = dt_step / self.dt_last[act]
                x_start = x_prev + (x_prev - self.x_last[act]) \
                    * ratio[:, None]
            else:
                x_start = x_prev.copy()
                if hist.any():
                    ratio = dt_step[hist] / self.dt_last[act][hist]
                    x_start[hist] = x_prev[hist] + (
                        x_prev[hist] - self.x_last[act][hist]) * ratio[:, None]
            if profiled:
                profiling.add("predict", perf_counter() - t0)
                t0 = perf_counter()
            b = es.rhs_batch(act, self.t[act] + dt_step)
            if profiled:
                profiling.add("rhs", perf_counter() - t0)
            inv_dt = 1.0 / dt_step
            x_new, conv = es.newton_batch(
                act, None, b, x_start, self.newton,
                max_step_v=max_step_v, max_iterations=max_iter,
                inv_dt=inv_dt, x_prev=x_prev, add_storage=True,
                bypass=self._bypass)
            if profiled:
                t0 = perf_counter()
            all_conv = bool(conv.all())
            pred_err = self._pred_buf[:len(act)]
            pred_err.fill(np.nan)
            if hist_all and all_conv:
                np.max(np.abs(x_new - x_start), axis=1, out=pred_err)
                if profiled:
                    profiling.add("predict", perf_counter() - t0)
            else:
                warm = hist & conv
                if warm.any():
                    pred_err[warm] = np.max(
                        np.abs(x_new[warm] - x_start[warm]), axis=1)

                # Bad predictions (e.g. across a source edge): retry
                # those lanes from the previous accepted state, like the
                # scalar controller's inner fallback.
                retry = hist & ~conv
                if profiled:
                    profiling.add("predict", perf_counter() - t0)
                if retry.any():
                    r = np.flatnonzero(retry)
                    x_r, conv_r = es.newton_batch(
                        act[r], None, b[r], x_prev[r], self.newton,
                        max_step_v=max_step_v[r], max_iterations=max_iter[r],
                        inv_dt=inv_dt[r], x_prev=x_prev[r], add_storage=True,
                        bypass=self._bypass)
                    x_new[r] = x_r
                    conv[r] = conv_r

            if profiled:
                t0 = perf_counter()
            # Newton failures: halve the member's step and let it retry
            # on the next active-set sweep.
            if not conv.all():
                failed = np.flatnonzero(~conv)
                n_halvings += len(failed)
                for k in failed:
                    lane = act[k]
                    new_dt = dt_step[k] / 2.0
                    if new_dt < self.dt_min[lane]:
                        if telemetry.ENABLED:
                            self._flush_run(n_accepted, n_halvings,
                                            n_lte_rejections, failed=True)
                        raise ConvergenceError(
                            f"transient step failed at t={self.t[lane]:g}s "
                            f"in circuit "
                            f"{es.members[lane].circuit.name!r} even at "
                            f"minimum step {self.dt_min[lane]:g}s",
                            events=[{"stage": "ensemble_transient",
                                     "t": float(self.t[lane]),
                                     "member": int(lane),
                                     "dt_min": float(self.dt_min[lane])}])
                    self.dt[lane] = new_dt

            # LTE rejection of oversized steps whose estimate blew up.
            rejected = conv & (dt_step > self.dt_nom[act]) \
                & (pred_err > self._lte4[act])
            n_rej = int(np.count_nonzero(rejected))
            if n_rej:
                n_lte_rejections += n_rej
                for k in np.flatnonzero(rejected):
                    lane = act[k]
                    self.dt[lane] = max(dt_step[k] / 2.0, self.dt_nom[lane])
            if profiled:
                profiling.add("retry", perf_counter() - t0)

            accepted = conv & ~rejected
            if accepted.all():
                # Common sweep: everything accepted, skip the gathers.
                lanes = act
                xp_acc, xn_acc = x_prev, x_new
                dt_acc, err = dt_step, pred_err
            elif accepted.any():
                acc = np.flatnonzero(accepted)
                lanes = act[acc]
                xp_acc, xn_acc = x_prev[acc], x_new[acc]
                dt_acc, err = dt_step[acc], pred_err[acc]
            else:
                continue
            n_accepted += len(lanes)
            if profiled:
                t0 = perf_counter()
            self._record_crossings(lanes, xp_acc, xn_acc,
                                   self.t[lanes], dt_acc)
            if profiled:
                profiling.add("probe", perf_counter() - t0)
                t0 = perf_counter()
            self.x_last[lanes] = xp_acc
            self.dt_last[lanes] = dt_acc
            self.has_hist[lanes] = True
            self.x[lanes] = xn_acc
            self.t[lanes] += dt_acc
            self.steps[lanes] += 1

            # Step-size update, scalar growth rules per lane.  Lanes
            # without a prediction have err = NaN: both comparisons are
            # False, so they hold their step — same as the masked form.
            tol, dt_nom_l, dt_cap_l, growth_l = self._ctrl[:, lanes]
            self.dt[lanes] = np.where(
                dt_acc >= dt_nom_l,
                np.where(err < 0.25 * tol,
                         np.minimum(2.0 * dt_acc, dt_cap_l),
                         np.where(err > tol,
                                  np.maximum(dt_acc / 2.0, dt_nom_l),
                                  dt_acc)),
                np.minimum(dt_nom_l, dt_acc * growth_l))
            if profiled:
                profiling.add("step_control", perf_counter() - t0)

    @staticmethod
    def _flush_run(accepted: int, halvings: int, lte_rejections: int,
                   failed: bool = False) -> None:
        """One registry update per :meth:`run` call (never per step)."""
        telemetry.count("ensemble.transient_runs")
        telemetry.count("ensemble.transient_steps", accepted)
        if halvings:
            telemetry.count("ensemble.transient_halvings", halvings)
        if lte_rejections:
            telemetry.count("ensemble.lte_rejections", lte_rejections)
        if failed:
            telemetry.count("ensemble.transient_failures")

    def extend(self, members: np.ndarray | list[int],
               new_t_stop: np.ndarray | list[float]) -> None:
        """Push selected members' stop times out (then call :meth:`run`)."""
        members = np.asarray(members, dtype=np.intp)
        self.t_stop[members] = np.maximum(self.t_stop[members],
                                          np.asarray(new_t_stop, dtype=float))

    def _record_crossings(self, lanes: np.ndarray, x_prev: np.ndarray,
                          x_new: np.ndarray, t0: np.ndarray,
                          dt: np.ndarray) -> None:
        if not self.probes:
            return
        lv = self._levels_mat[:, lanes]                # (P, A)
        v0 = x_prev[:, self._probe_slot_arr].T - lv
        v1 = x_new[:, self._probe_slot_arr].T - lv
        crossed = np.sign(v0) != np.sign(v1)
        if not crossed.any():
            return
        if telemetry.ENABLED:
            telemetry.count("ensemble.probe_crossings",
                            int(crossed.sum()))
        for p, k in zip(*np.nonzero(crossed)):
            a, c = v0[p, k], v1[p, k]
            frac = -a / (c - a)
            self.crossings[p][lanes[k]].append(
                (float(t0[k] + frac * dt[k]), bool(c > a)))

    # -- measurements --------------------------------------------------------

    def crossing_times(self, probe_index: int, member: int,
                       direction: str = "any") -> np.ndarray:
        """Crossing instants of one probe for one member, oldest first."""
        events = self.crossings[probe_index][member]
        if direction == "rise":
            events = [e for e in events if e[1]]
        elif direction == "fall":
            events = [e for e in events if not e[1]]
        return np.asarray([e[0] for e in events])

    def final_value(self, node: str) -> np.ndarray:
        """Final node voltage of every member."""
        return self.x[:, self.es.node_slot(node)].copy()

    def initial_value(self, node: str) -> np.ndarray:
        """Node voltage of every member at the DC initial condition."""
        return self.x_init[:, self.es.node_slot(node)].copy()

    def final_time(self) -> np.ndarray:
        return self.t.copy()
