"""Transient analysis with backward-Euler integration.

Backward Euler is L-stable, which suits the stiff ratioed organic gates
(microsecond channel time constants driving millisecond logic transitions).
The step controller is simple and robust: a nominal step, halved locally on
Newton failure and gently re-grown on easy convergence.  Delay/slew
measurements (the only consumers of these waveforms) are insensitive to the
first-order accuracy as long as the step is well below the transition time,
which the characterisation harness guarantees.

This module is the *semantic reference* for the step controller: the
ensemble sweep loop (:mod:`repro.spice.ensemble`) batches it lane-wise,
and the native whole-timestep kernel
(:mod:`repro.spice.backends.native`) replicates it in C with a
bit-exact per-lane step schedule (see DESIGN.md §7g).  Any change to
the halving/growth/LTE rules here must be mirrored in both.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConvergenceError
from repro.runtime import telemetry
from repro.spice.dc import NewtonOptions, _newton, solve_operating_point
from repro.spice.mna import MnaSystem, bypass_eta
from repro.spice.netlist import Circuit
from repro.spice.waveform import Waveform


@dataclass(frozen=True)
class TransientOptions:
    """Transient analysis knobs.

    ``dt`` is the nominal step; the controller may locally reduce it by up
    to a factor ``2**max_halvings`` to get through sharp source edges.

    Setting ``dt_max > dt`` (together with ``lte_tol``) additionally lets
    the controller *grow* the step beyond nominal through smooth waveform
    regions: the warm-start predictor's miss ``|x_new - x_pred|`` is a free
    second-difference local-error estimate, and steps only stay enlarged
    while it is below ``lte_tol`` volts.  Oversized steps whose estimate is
    bad are rejected and refined back to the nominal step, so accuracy at
    edges and crossings matches the fixed-step controller.  Growth is
    quantized to powers of two so the per-``dt`` Jacobian cache stays
    small.  The default (``dt_max=None``) keeps fixed-cap behaviour.
    """

    dt: float
    t_stop: float
    max_halvings: int = 12
    growth: float = 1.25
    newton: NewtonOptions = NewtonOptions()
    dt_max: float | None = None
    lte_tol: float | None = None

    def __post_init__(self) -> None:
        if self.dt <= 0 or self.t_stop <= 0:
            raise ValueError("dt and t_stop must be positive")
        if self.dt > self.t_stop:
            raise ValueError("dt must not exceed t_stop")
        if self.dt_max is not None and self.dt_max < self.dt:
            raise ValueError("dt_max must be >= dt")
        if self.dt_max is not None and self.dt_max > self.dt \
                and (self.lte_tol is None or self.lte_tol <= 0):
            raise ValueError("adaptive growth (dt_max > dt) needs lte_tol > 0")


class TransientResult:
    """Sampled node voltages over time."""

    def __init__(self, sys: MnaSystem, times: np.ndarray,
                 solutions: np.ndarray) -> None:
        self.sys = sys
        self.times = times
        self.solutions = solutions

    def voltage(self, node: str) -> np.ndarray:
        if node in ("0", "gnd", "GND", "ground"):
            return np.zeros(len(self.times))
        idx = self.sys.node_index[node]
        return self.solutions[:, idx].copy()

    def waveform(self, node: str) -> Waveform:
        """Waveform of *node* for measurement post-processing."""
        return Waveform(self.times, self.voltage(node))

    def source_current(self, source_name: str) -> np.ndarray:
        idx = self.sys.branch_index[source_name]
        return self.solutions[:, idx].copy()

    def __len__(self) -> int:
        return len(self.times)


def transient(circuit: Circuit, options: TransientOptions,
              x0: np.ndarray | None = None) -> TransientResult:
    """Integrate *circuit* from a DC initial condition to ``t_stop``.

    If *x0* is not given, the initial state is the DC operating point with
    all sources evaluated at ``t = 0``.
    """
    sys = MnaSystem(circuit)
    if x0 is None:
        x = solve_operating_point(sys, options=options.newton)
    else:
        x = x0.copy()

    times = [0.0]
    states = [x.copy()]

    t = 0.0
    dt = options.dt
    dt_min = options.dt / (2 ** options.max_halvings)
    # Damped retry options for states where full-step Newton oscillates.
    damped = replace(options.newton,
                     max_step_v=options.newton.max_step_v / 8.0,
                     max_iterations=options.newton.max_iterations * 3)
    # Cache the linear Jacobian per dt value: rebuilding it is the main
    # per-step cost and dt rarely changes.
    jac_cache: dict[float, np.ndarray] = {}

    # Stamp bypass: while no nonlinear device terminal has moved beyond
    # the Newton tolerance between accepted steps, reuse the nonlinear
    # stamps captured at the last freshly-stamped converged solve
    # instead of re-evaluating every device (see StampCache).
    cache = sys.make_stamp_cache(bypass_eta(options.newton))

    # Warm-start state: linear extrapolation through the last two accepted
    # points predicts the next solution well on smooth waveform segments,
    # cutting the average Newton iteration count roughly in half.  With
    # adaptive growth enabled the prediction miss doubles as the local
    # error estimate steering the step size.
    x_last: np.ndarray | None = None
    dt_last = 0.0
    dt_cap = options.dt_max if options.dt_max is not None else options.dt
    lte_tol = options.lte_tol if options.lte_tol is not None else np.inf

    # Telemetry accumulates in these locals and flushes once per run; the
    # step loop itself stays guard-free.
    n_steps = 0
    n_halvings = 0
    n_lte_rejections = 0

    # Stop when the remaining interval is below the minimum step — a
    # sub-dt_min remainder (float round-off) is not worth integrating and
    # its huge C/dt companion conductances only invite trouble.
    while options.t_stop - t > dt_min:
        dt_step = min(dt, options.t_stop - t)
        accepted = False
        while not accepted:
            G_lin = jac_cache.get(dt_step)
            if G_lin is None:
                G_lin = sys.linear_jacobian(dt=dt_step)
                jac_cache[dt_step] = G_lin
            b = sys.rhs(t + dt_step, x_prev=x, dt=dt_step)
            newton_opts = (options.newton if dt_step > 8 * dt_min
                           else damped)
            if cache is not None:
                cache.refresh(x)
            pred_err = None
            try:
                if x_last is not None and dt_last > 0.0:
                    x_pred = x + (x - x_last) * (dt_step / dt_last)
                    try:
                        x_new = _newton(sys, G_lin, b, x_pred, newton_opts,
                                        cache=cache)
                        pred_err = float(np.max(np.abs(x_new - x_pred)))
                    except ConvergenceError:
                        # Bad prediction (e.g. across a source edge):
                        # fall back to the previous accepted state.
                        x_new = _newton(sys, G_lin, b, x, newton_opts,
                                        cache=cache)
                else:
                    x_new = _newton(sys, G_lin, b, x, newton_opts,
                                    cache=cache)
            except ConvergenceError as exc:
                n_halvings += 1
                dt_step /= 2.0
                if dt_step < dt_min:
                    if telemetry.ENABLED:
                        _flush_transient(n_steps, n_halvings, n_lte_rejections,
                                         failed=True)
                    raise ConvergenceError(
                        f"transient step failed at t={t:g}s in circuit "
                        f"{circuit.name!r} even at minimum step {dt_min:g}s",
                        events=[{"stage": "transient", "t": float(t),
                                 "halvings": n_halvings,
                                 "dt_min": float(dt_min)}, *exc.events],
                    ) from None
                continue
            # Reject oversized steps whose error estimate blew up (an edge
            # arrived); refine back toward the nominal step, where steps
            # are always accepted — the fixed-step accuracy baseline.
            if (dt_step > options.dt and pred_err is not None
                    and pred_err > 4.0 * lte_tol):
                n_lte_rejections += 1
                dt_step = max(dt_step / 2.0, options.dt)
                continue
            accepted = True
        t += dt_step
        n_steps += 1
        x_last = x
        dt_last = dt_step
        x = x_new
        times.append(t)
        states.append(x.copy())
        if dt_step >= options.dt:
            # At or above nominal: grow through smooth regions (quantized
            # to powers of two), retreat when the estimate degrades.
            if pred_err is not None and pred_err < 0.25 * lte_tol:
                dt = min(2.0 * dt_step, dt_cap)
            elif pred_err is not None and pred_err > lte_tol:
                dt = max(dt_step / 2.0, options.dt)
            else:
                dt = dt_step
        else:
            # Below nominal after Newton halvings: re-grow gently.
            dt = min(options.dt, dt_step * options.growth)

    if telemetry.ENABLED:
        _flush_transient(n_steps, n_halvings, n_lte_rejections)
    return TransientResult(sys, np.asarray(times), np.vstack(states))


def _flush_transient(steps: int, halvings: int, lte_rejections: int,
                     failed: bool = False) -> None:
    """One registry update per transient run (never per step)."""
    telemetry.count("spice.transient_runs")
    telemetry.count("spice.transient_steps", steps)
    if halvings:
        telemetry.count("spice.transient_halvings", halvings)
    if lte_rejections:
        telemetry.count("spice.lte_rejections", lte_rejections)
    if failed:
        telemetry.count("spice.transient_failures")
