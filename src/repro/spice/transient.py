"""Transient analysis with backward-Euler integration.

Backward Euler is L-stable, which suits the stiff ratioed organic gates
(microsecond channel time constants driving millisecond logic transitions).
The step controller is simple and robust: a nominal step, halved locally on
Newton failure and gently re-grown on easy convergence.  Delay/slew
measurements (the only consumers of these waveforms) are insensitive to the
first-order accuracy as long as the step is well below the transition time,
which the characterisation harness guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.dc import NewtonOptions, _newton, solve_operating_point
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit
from repro.spice.waveform import Waveform


@dataclass(frozen=True)
class TransientOptions:
    """Transient analysis knobs.

    ``dt`` is the nominal step; the controller may locally reduce it by up
    to a factor ``2**max_halvings`` to get through sharp source edges.
    """

    dt: float
    t_stop: float
    max_halvings: int = 12
    growth: float = 1.25
    newton: NewtonOptions = NewtonOptions()

    def __post_init__(self) -> None:
        if self.dt <= 0 or self.t_stop <= 0:
            raise ValueError("dt and t_stop must be positive")
        if self.dt > self.t_stop:
            raise ValueError("dt must not exceed t_stop")


class TransientResult:
    """Sampled node voltages over time."""

    def __init__(self, sys: MnaSystem, times: np.ndarray,
                 solutions: np.ndarray) -> None:
        self.sys = sys
        self.times = times
        self.solutions = solutions

    def voltage(self, node: str) -> np.ndarray:
        if node in ("0", "gnd", "GND", "ground"):
            return np.zeros(len(self.times))
        idx = self.sys.node_index[node]
        return self.solutions[:, idx].copy()

    def waveform(self, node: str) -> Waveform:
        """Waveform of *node* for measurement post-processing."""
        return Waveform(self.times, self.voltage(node))

    def source_current(self, source_name: str) -> np.ndarray:
        idx = self.sys.branch_index[source_name]
        return self.solutions[:, idx].copy()

    def __len__(self) -> int:
        return len(self.times)


def transient(circuit: Circuit, options: TransientOptions,
              x0: np.ndarray | None = None) -> TransientResult:
    """Integrate *circuit* from a DC initial condition to ``t_stop``.

    If *x0* is not given, the initial state is the DC operating point with
    all sources evaluated at ``t = 0``.
    """
    sys = MnaSystem(circuit)
    if x0 is None:
        x = solve_operating_point(sys, options=options.newton)
    else:
        x = x0.copy()

    times = [0.0]
    states = [x.copy()]

    t = 0.0
    dt = options.dt
    dt_min = options.dt / (2 ** options.max_halvings)
    # Damped retry options for states where full-step Newton oscillates.
    damped = replace(options.newton,
                     max_step_v=options.newton.max_step_v / 8.0,
                     max_iterations=options.newton.max_iterations * 3)
    # Cache the linear Jacobian per dt value: rebuilding it is the main
    # per-step cost and dt rarely changes.
    jac_cache: dict[float, np.ndarray] = {}

    # Stop when the remaining interval is below the minimum step — a
    # sub-dt_min remainder (float round-off) is not worth integrating and
    # its huge C/dt companion conductances only invite trouble.
    while options.t_stop - t > dt_min:
        dt_step = min(dt, options.t_stop - t)
        accepted = False
        while not accepted:
            G_lin = jac_cache.get(dt_step)
            if G_lin is None:
                G_lin = sys.linear_jacobian(dt=dt_step)
                jac_cache[dt_step] = G_lin
            b = sys.rhs(t + dt_step, x_prev=x, dt=dt_step)
            try:
                newton_opts = (options.newton if dt_step > 8 * dt_min
                               else damped)
                x_new = _newton(sys, G_lin, b, x, newton_opts)
                accepted = True
            except ConvergenceError:
                dt_step /= 2.0
                if dt_step < dt_min:
                    raise ConvergenceError(
                        f"transient step failed at t={t:g}s in circuit "
                        f"{circuit.name!r} even at minimum step {dt_min:g}s"
                    ) from None
        t += dt_step
        x = x_new
        times.append(t)
        states.append(x.copy())
        # Re-grow toward the nominal step after local halvings.
        if dt_step >= dt:
            dt = min(options.dt, dt * options.growth)
        else:
            dt = min(options.dt, dt_step * options.growth)

    return TransientResult(sys, np.asarray(times), np.vstack(states))
