"""Compiled C backend: ensemble Newton — and whole transient timesteps.

The profile of a characterisation run is dominated not by LAPACK flops
but by the Python orchestration *around* them: per-iteration stacked
assembly, fancy-indexed device scatters, ``np.linalg.solve`` dispatch,
and the active-set mask arithmetic — each a handful of microseconds,
tens of thousands of times.  This backend moves the complete
stamp-residual-solve-update loop over a masked lane set into one C call
per timestep, following the proven :mod:`repro.core.ipc_native` recipe:
compile with whatever system compiler exists (``cc``/``gcc``/``clang``),
cache the shared object by source hash, bind through :mod:`ctypes`, and
degrade silently to the pure-NumPy reference when any of that fails.

Two entry points share one set of per-lane C helpers:

- ``repro_ensemble_newton`` — one damped Newton solve over a masked
  lane set (the PR-6 kernel, still used for DC operating points and as
  the per-iteration fallback of the transient engine);
- ``repro_ensemble_timestep`` — the **entire transient timestep loop**
  per lane: predictor extrapolation, BE companion RHS assembly (constant
  sources + vectorised ramps + storage history), Newton with stamp
  bypass, the per-lane LTE step controller (accept/reject, dt
  halving/growth), and probe threshold-crossing detection.  Python is
  re-entered only at chunk boundaries, for scalar retries, and for
  telemetry flushes.  Because every lane is integrated independently to
  completion, the per-lane step schedule is *bit-exact* regardless of
  batch composition — the determinism contract the
  ``REPRO_ENSEMBLE_BATCH`` equivalence suite pins down.  A lane the
  kernel cannot finish (dt underflow, crossing-buffer overflow) is left
  at its exact pre-step state and flagged; the Python sweep loop then
  replays it with identical arithmetic (and raises the context-rich
  ``ConvergenceError`` itself when the failure is real).

The C kernels are transliterations of the reference semantics:

- per-lane damped Newton exactly as
  :meth:`repro.spice.ensemble.EnsembleSystem.newton_batch` /
  :func:`repro.spice.dc._newton` (damping scale, freeze-on-converge,
  per-lane iteration budgets, gmin conditioning, exact-zero-pivot
  singularity semantics — a singular lane is deactivated, never fatal);
- the :class:`~repro.devices.tft_level61.StackedTftParams` device
  equations, same branch structure as the NumPy kernel (branch-free
  softplus, ``log u > 60`` deep-triode asymptote, tanh/cosh leakage);
- the transient fast path composes ``G_static[m] + C_unit[m]/dt`` and
  the storage history term per lane *inside* the kernel, so Python
  never materialises gathered ``(A, S, S)`` arrays at all;
- the stamp-bypass protocol (see :mod:`repro.spice.transient`): frozen
  lanes reuse the cached nonlinear stamps, fresh converged lanes write
  the per-member cache back — the same decision rule, same cache
  layout, as the scalar and NumPy-ensemble engines;
- the timestep controller of
  :meth:`repro.spice.ensemble.EnsembleTransient.run` (itself the
  batched twin of the scalar :func:`repro.spice.transient.transient`
  controller), operation for operation.  The kernel is compiled with
  ``-ffp-contract=off`` so the controller arithmetic stays IEEE-faithful
  to the NumPy orchestration — the whole-timestep and per-iteration
  native paths produce identical step schedules.

Scalar and small-batch solves inherit the NumPy reference paths; only
the ensemble hooks are native.  Results agree with the reference to
solver/rounding tolerance (libm vs NumPy transcendentals differ in the
last ulp), which the backend-equivalence suite pins down.  Setting
``REPRO_NATIVE_TIMESTEP=0`` disables only the whole-timestep entry
(every step still uses the per-iteration kernel) — the configuration
the backend-agreement validation check compares against.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.devices.tft_level61 import StackedTftParams
from repro.runtime import telemetry
from repro.runtime.log import get_logger
from repro.spice.backends.base import EnsembleNewtonRequest
from repro.spice.backends.numpy_ref import NumpyBackend
from repro.spice.elements import FET_GMIN

logger = get_logger(__name__)

#: Per-(probe, lane) crossing-buffer capacity of the whole-timestep
#: kernel.  A real timing arc produces a handful of crossings per probe;
#: a lane that would overflow bails back to the Python sweep loop, which
#: records into unbounded lists.
CROSS_CAP = 32

_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Batched SPICE kernels: a damped Newton solve over a masked lane set
 * (repro_ensemble_newton) and the whole per-lane transient timestep
 * loop (repro_ensemble_timestep).  Both are transliterations of
 * EnsembleSystem.newton_batch / EnsembleTransient.run; see the Python
 * module docstring for the exact correspondence.  They share the lane
 * helpers below, so a Newton solve is the same arithmetic whichever
 * entry point reaches it.
 */

#define PF 15  /* parameter fields per device, StackedTftParams order */

static void eval_tft(const double *pr, double vgs, double vds,
                     double *ids, double *gm, double *gds)
{
    double k_z = pr[0], k_zd = pr[1], z0 = pr[2], nvth = pr[3];
    double beta = pr[4], p = pr[5], beta_p = pr[6], alpha = pr[7];
    double k_vsat = pr[8], m = pr[9], e_pow = pr[10], lam = pr[11];
    double vt_dibl = pr[12], leak_i = pr[13], leak_g = pr[14];

    double z = vgs * k_z - vds * k_zd - z0;
    double sp = fmax(z, 0.0) + log1p(exp(-fabs(z)));
    if (sp < 1e-300) sp = 1e-300;
    double sig = exp(z - sp);
    double vgte = nvth * sp;
    double vsat = k_vsat * sp;

    double log_u = m * log(vds / vsat);   /* vds==0 -> -inf -> u=0 */
    double vdse, dvdse_dvsat, base_pow;
    if (log_u > 60.0) {                   /* deep-triode asymptote */
        vdse = vsat;
        dvdse_dvsat = 1.0;
        base_pow = 0.0;
    } else {
        double u = exp(log_u);
        double t = 1.0 + u;
        base_pow = pow(t, e_pow);
        vdse = vds * (base_pow * t);
        dvdse_dvsat = (vds * (base_pow * u)) / vsat;
    }

    double clm = 1.0 + lam * vds;
    double vgte_p = pow(vgte, p);
    double i0 = (beta * clm) * vgte_p;
    double i_ch = i0 * vdse;
    double di_dvgte = (beta_p * clm) * (vgte_p / vgte) * vdse;

    double g_m = (di_dvgte + i0 * (dvdse_dvsat * alpha)) * sig;
    double dvgte_dvds = sig * (-vt_dibl);
    double g_ds = di_dvgte * dvgte_dvds
        + i0 * (base_pow + (dvdse_dvsat * alpha) * dvgte_dvds)
        + i_ch * (lam / clm);

    if (leak_i > 0.0) {
        double x_leak = vds * 10.0;       /* 1 / V_LEAK, V_LEAK = 0.1 */
        i_ch += leak_i * tanh(x_leak);
        double ch = cosh(x_leak);         /* overflow -> inf -> g += 0 */
        g_ds += leak_g / (ch * ch);
    }
    *ids = i_ch; *gm = g_m; *gds = g_ds;
}

/* Partial-pivot LU solve of J delta = rhs, in place; J is S x S with
 * row stride `stride`.  Returns 0, or 1 on an exactly-zero pivot (the
 * LAPACK dgesv singularity condition). */
static int lu_solve(double *J, long stride, double *rhs, long S)
{
    for (long k = 0; k < S; k++) {
        long p = k;
        double best = fabs(J[k * stride + k]);
        for (long i = k + 1; i < S; i++) {
            double v = fabs(J[i * stride + k]);
            if (v > best) { best = v; p = i; }
        }
        if (J[p * stride + k] == 0.0) return 1;
        if (p != k) {
            for (long j = k; j < S; j++) {
                double t = J[k * stride + j];
                J[k * stride + j] = J[p * stride + j];
                J[p * stride + j] = t;
            }
            double t = rhs[k]; rhs[k] = rhs[p]; rhs[p] = t;
        }
        double piv = J[k * stride + k];
        for (long i = k + 1; i < S; i++) {
            double f = J[i * stride + k] / piv;
            J[i * stride + k] = f;
            for (long j = k + 1; j < S; j++)
                J[i * stride + j] -= f * J[k * stride + j];
            rhs[i] -= f * rhs[k];
        }
    }
    for (long k = S - 1; k >= 0; k--) {
        double t = rhs[k];
        for (long j = k + 1; j < S; j++)
            t -= J[k * stride + j] * rhs[j];
        rhs[k] = t / J[k * stride + k];
    }
    return 0;
}

/* Everything a single-lane Newton solve needs that does not change
 * between steps: system shape, device tables, tolerances, the bypass
 * cache, and the scratch buffers (owned by the entry points). */
typedef struct {
    long S, n_nodes;
    const int64_t *dev_off, *d_loc, *g_loc, *s_loc;
    const double *pol, *par;
    double fet_gmin, abstol_v, abstol_i;
    long bypass_on;
    long n_slots;
    const int64_t *slots;
    double eta;
    uint8_t *cache_valid;
    double *cache_x, *cache_jnl, *cache_fnl;
    double *jmat, *jnl, *fnl, *xext, *fvec, *rhs;
} lane_ctx;

/* Cached stamps still usable at the accepted state xp?  Mirrors
 * _EnsembleBypass.frozen_lanes for one member. */
static long lane_frozen(const lane_ctx *c, long m, const double *xp)
{
    if (!c->bypass_on || !c->cache_valid[m])
        return 0;
    const double *cx = c->cache_x + (size_t)m * c->S;
    double mv = 0.0;
    for (long si = 0; si < c->n_slots; si++) {
        long sl = c->slots[si];
        double d = fabs(xp[sl] - cx[sl]);
        if (d > mv) mv = d;
    }
    return mv <= c->eta;
}

/* Damped Newton to completion for one lane: assemble (linear base G +
 * TFT stamps or cached bypass stamps), partial-pivot LU, damp, update.
 * xl is updated in place (partial iterate on non-convergence, like the
 * reference).  Returns the iteration count; *ok_out is 1 on
 * convergence, 0 on budget exhaustion or a singular Jacobian. */
static long lane_newton(const lane_ctx *c, long m, const double *G,
                        const double *beff, double *xl, long frozen,
                        long budget, double step_cap, double gmin,
                        long *ok_out)
{
    long S = c->S, n_nodes = c->n_nodes, ext = S + 1;
    double *jmat = c->jmat, *jnl = c->jnl, *fnl = c->fnl;
    double *xext = c->xext, *fvec = c->fvec, *rhs = c->rhs;
    long iter = 0;
    long ok = 0;
    while (iter < budget) {
        /* Nonlinear stamps: cached (frozen) or fresh. */
        if (frozen) {
            const double *cj = c->cache_jnl + (size_t)m * S * S;
            const double *cf = c->cache_fnl + (size_t)m * S;
            for (long i = 0; i < S; i++)
                for (long j = 0; j < S; j++)
                    jmat[i * S + j] = G[i * S + j] + cj[i * S + j];
            for (long i = 0; i < S; i++) {
                double acc = 0.0;
                for (long j = 0; j < S; j++)
                    acc += G[i * S + j] * xl[j];
                fvec[i] = acc - beff[i] + cf[i];
            }
        } else {
            memset(jnl, 0, (size_t)(ext * ext) * sizeof(double));
            memset(fnl, 0, (size_t)ext * sizeof(double));
            memcpy(xext, xl, (size_t)S * sizeof(double));
            xext[S] = 0.0;
            for (long dev = c->dev_off[m]; dev < c->dev_off[m + 1]; dev++) {
                long d = c->d_loc[dev], g = c->g_loc[dev], s = c->s_loc[dev];
                double pl = c->pol[dev];
                double dv = xext[d] - xext[s];
                long a_n = d, b_n = s;
                if (pl * dv < 0.0) { a_n = s; b_n = d; }
                double vds_n = fabs(dv);
                double vgs_n = pl * (xext[g] - xext[b_n]);
                double ids, gmv, gdsv;
                eval_tft(c->par + (size_t)dev * PF, vgs_n, vds_n,
                         &ids, &gmv, &gdsv);
                double i_phys = pl * (ids + c->fet_gmin * vds_n);
                fnl[a_n] += i_phys;
                fnl[b_n] -= i_phys;
                double g_ds = gdsv + c->fet_gmin;
                double gsum = gmv + g_ds;
                jnl[a_n * ext + a_n] += g_ds;
                jnl[a_n * ext + g]   += gmv;
                jnl[a_n * ext + b_n] -= gsum;
                jnl[b_n * ext + a_n] -= g_ds;
                jnl[b_n * ext + g]   -= gmv;
                jnl[b_n * ext + b_n] += gsum;
            }
            for (long i = 0; i < S; i++)
                for (long j = 0; j < S; j++)
                    jmat[i * S + j] = G[i * S + j] + jnl[i * ext + j];
            for (long i = 0; i < S; i++) {
                double acc = 0.0;
                for (long j = 0; j < S; j++)
                    acc += G[i * S + j] * xl[j];
                fvec[i] = acc - beff[i] + fnl[i];
            }
        }
        if (gmin > 0.0) {
            for (long i = 0; i < n_nodes; i++) {
                jmat[i * S + i] += gmin;
                fvec[i] += gmin * xl[i];
            }
        }
        double residual = 0.0;
        for (long i = 0; i < n_nodes; i++) {
            double v = fabs(fvec[i]);
            if (v > residual) residual = v;
        }
        for (long i = 0; i < S; i++)
            rhs[i] = -fvec[i];
        if (lu_solve(jmat, S, rhs, S)) {
            ok = 0;          /* singular lane: deactivate, not fatal */
            break;
        }
        double max_delta = 0.0;
        for (long i = 0; i < S; i++) {
            double v = fabs(rhs[i]);
            if (v > max_delta) max_delta = v;
        }
        double scale = 1.0;
        if (max_delta > step_cap)
            scale = step_cap / max_delta;
        long done_now = (max_delta < c->abstol_v) && (residual < c->abstol_i);
        if (done_now && !frozen && c->bypass_on) {
            /* Export the stamps evaluated at the pre-update state. */
            double *cj = c->cache_jnl + (size_t)m * S * S;
            double *cf = c->cache_fnl + (size_t)m * S;
            double *cx = c->cache_x + (size_t)m * S;
            for (long i = 0; i < S; i++)
                for (long j = 0; j < S; j++)
                    cj[i * S + j] = jnl[i * ext + j];
            for (long i = 0; i < S; i++) cf[i] = fnl[i];
            memcpy(cx, xl, (size_t)S * sizeof(double));
            c->cache_valid[m] = 1;
        }
        for (long i = 0; i < S; i++)
            xl[i] += rhs[i] * scale;
        iter++;
        if (done_now) { ok = 1; break; }
    }
    *ok_out = ok;
    return iter;
}

long repro_ensemble_newton(
    long A, long S, long n_nodes,
    const int64_t *mem,
    long compose_g,
    const double *G_lin,        /* A*S*S when compose_g == 0 */
    const double *G_static,     /* member-indexed, compose mode */
    const double *C_unit,       /* member-indexed, compose/storage */
    const double *inv_dt,       /* per lane */
    const double *b,            /* A*S */
    long add_storage,
    const double *x_prev,       /* A*S; accepted state (storage, bypass) */
    const int64_t *dev_off,     /* member -> device range */
    const int64_t *d_loc, const int64_t *g_loc, const int64_t *s_loc,
    const double *pol,
    const double *par,          /* n_dev x PF, field-minor */
    double fet_gmin,
    double abstol_v, double abstol_i,
    const double *max_step_v,   /* per lane */
    const int64_t *max_iter,    /* per lane */
    double gmin,
    long bypass_on, double eta,
    long n_slots, const int64_t *slots,
    uint8_t *cache_valid,       /* member-indexed bypass cache */
    double *cache_x, double *cache_jnl, double *cache_fnl,
    double *x,                  /* A*S, in/out */
    uint8_t *conv,              /* A, out */
    int64_t *stats)             /* [0] frozen lane-steps, [1] total lane
                                 * iterations, [2] singular lanes, out */
{
    long ext = S + 1;
    double *gbase = malloc((size_t)(S * S) * sizeof(double));
    double *jmat  = malloc((size_t)(S * S) * sizeof(double));
    double *jnl   = malloc((size_t)(ext * ext) * sizeof(double));
    double *fnl   = malloc((size_t)ext * sizeof(double));
    double *xext  = malloc((size_t)ext * sizeof(double));
    double *beff  = malloc((size_t)S * sizeof(double));
    double *fvec  = malloc((size_t)S * sizeof(double));
    double *rhs   = malloc((size_t)S * sizeof(double));
    long iters_max = 0;
    long frozen_steps = 0;
    int64_t total_iters = 0, singular_n = 0;
    if (!gbase || !jmat || !jnl || !fnl || !xext || !beff || !fvec || !rhs) {
        iters_max = -1;
        goto done;
    }
    lane_ctx c = { S, n_nodes, dev_off, d_loc, g_loc, s_loc, pol, par,
                   fet_gmin, abstol_v, abstol_i, bypass_on,
                   n_slots, slots, eta,
                   cache_valid, cache_x, cache_jnl, cache_fnl,
                   jmat, jnl, fnl, xext, fvec, rhs };

    for (long lane = 0; lane < A; lane++) {
        long m = mem[lane];
        double *xl = x + lane * S;
        const double *bl = b + lane * S;
        const double *xp = x_prev ? x_prev + lane * S : 0;

        /* Linear base: gathered G_lin, or G_static[m] + C_unit[m]/dt. */
        const double *G;
        if (compose_g) {
            const double *gs = G_static + (size_t)m * S * S;
            const double *cu = C_unit + (size_t)m * S * S;
            double idt = inv_dt[lane];
            for (long i = 0; i < S * S; i++)
                gbase[i] = gs[i] + cu[i] * idt;
            G = gbase;
        } else {
            G = G_lin + (size_t)lane * S * S;
        }

        /* Effective rhs: b plus the storage history C x_prev / dt. */
        if (add_storage) {
            const double *cu = C_unit + (size_t)m * S * S;
            double idt = inv_dt[lane];
            for (long i = 0; i < S; i++) {
                double acc = 0.0;
                for (long j = 0; j < S; j++)
                    acc += cu[i * S + j] * xp[j];
                beff[i] = bl[i] + acc * idt;
            }
        } else {
            memcpy(beff, bl, (size_t)S * sizeof(double));
        }

        /* Stamp bypass: reuse cached nonlinear stamps while no device
         * terminal has drifted beyond eta from the cached state. */
        long frozen = xp ? lane_frozen(&c, m, xp) : 0;
        if (frozen) frozen_steps++;

        long ok;
        long iter = lane_newton(&c, m, G, beff, xl, frozen,
                                max_iter[lane], max_step_v[lane], gmin, &ok);
        conv[lane] = (uint8_t)ok;
        total_iters += iter;
        /* A lane that stopped short of its budget unconverged hit the
         * exact-zero-pivot break: that is the singular count. */
        if (!ok && iter < max_iter[lane]) singular_n++;
        if (iter > iters_max) iters_max = iter;
    }

done:
    free(gbase); free(jmat); free(jnl); free(fnl);
    free(xext); free(beff); free(fvec); free(rhs);
    if (stats) {
        stats[0] = frozen_steps;
        stats[1] = total_iters;
        stats[2] = singular_n;
    }
    return iters_max;
}

/* The whole transient timestep loop, per lane to completion — the
 * controller of EnsembleTransient.run (itself the batched scalar
 * controller of repro.spice.transient), operation for operation:
 *
 *   while t_stop - t > dt_min:
 *     dt_step = min(dt, t_stop - t); damped if dt_step <= 8 dt_min
 *     predict x_start from history; assemble rhs at t + dt_step
 *     Newton from the prediction; on miss retry from the accepted state
 *     failure  -> dt /= 2 (below dt_min: leave the lane untouched and
 *                 flag it — Python replays the step and raises)
 *     LTE blowup on an oversized step -> reject, dt = max(dt/2, dt_nom)
 *     accept   -> record probe crossings, shift history, grow/hold dt
 *
 * Each lane runs independently, so its step schedule is bit-identical
 * whatever the batch composition.  status[m]: 0 done, 1 bailed (dt
 * underflow or crossing-buffer overflow; state is at the last accepted
 * step).  stats: [0] accepted steps, [1] halvings, [2] LTE rejections,
 * [3] frozen (bypassed) lane-steps, [4] bailed lanes, [5] total lane
 * Newton iterations (prediction + retry attempts, same counting as the
 * per-lane reference), [6] probe crossings recorded.  Returns 0, or
 * -1 when scratch allocation fails (no state touched). */
long repro_ensemble_timestep(
    long B, long S, long n_nodes,
    const double *G_static, const double *C_unit,   /* B*S*S each */
    const double *b_const,                          /* B*S */
    long n_ramps, const int64_t *ramp_row,
    const double *ramp_v0, const double *ramp_dv,   /* n_ramps*B each */
    const double *ramp_t0, const double *ramp_inv_dur,
    const int64_t *dev_off,
    const int64_t *d_loc, const int64_t *g_loc, const int64_t *s_loc,
    const double *pol, const double *par,
    double fet_gmin, double abstol_v, double abstol_i,
    double max_step_v, long max_iter,
    double damped_step_v, long damped_iter,
    long bypass_on, double eta,
    long n_slots, const int64_t *slots,
    uint8_t *cache_valid,
    double *cache_x, double *cache_jnl, double *cache_fnl,
    double *x,                  /* B*S, in/out: accepted state */
    double *t, double *dt,      /* B, in/out */
    double *x_last,             /* B*S, in/out: previous accepted state */
    double *dt_last, uint8_t *has_hist, int64_t *steps,   /* B, in/out */
    const double *t_stop, const double *dt_min, const double *dt_nom,
    const double *dt_cap, const double *lte_tol, const double *growth,
    long n_probes, const int64_t *probe_slot,
    const double *probe_level,  /* n_probes*B */
    long cross_cap,
    double *cross_t,            /* n_probes*B*cross_cap, out */
    uint8_t *cross_rise,        /* n_probes*B*cross_cap, out */
    int64_t *cross_n,           /* n_probes*B, out */
    uint8_t *status,            /* B, out */
    int64_t *stats)             /* [5], out */
{
    long ext = S + 1;
    double *gbase = malloc((size_t)(S * S) * sizeof(double));
    double *jmat  = malloc((size_t)(S * S) * sizeof(double));
    double *jnl   = malloc((size_t)(ext * ext) * sizeof(double));
    double *fnl   = malloc((size_t)ext * sizeof(double));
    double *xext  = malloc((size_t)ext * sizeof(double));
    double *beff  = malloc((size_t)S * sizeof(double));
    double *fvec  = malloc((size_t)S * sizeof(double));
    double *rhs   = malloc((size_t)S * sizeof(double));
    double *xpred = malloc((size_t)S * sizeof(double));
    double *xn    = malloc((size_t)S * sizeof(double));
    if (!gbase || !jmat || !jnl || !fnl || !xext
            || !beff || !fvec || !rhs || !xpred || !xn) {
        free(gbase); free(jmat); free(jnl); free(fnl); free(xext);
        free(beff); free(fvec); free(rhs); free(xpred); free(xn);
        return -1;
    }
    lane_ctx c = { S, n_nodes, dev_off, d_loc, g_loc, s_loc, pol, par,
                   fet_gmin, abstol_v, abstol_i, bypass_on,
                   n_slots, slots, eta,
                   cache_valid, cache_x, cache_jnl, cache_fnl,
                   jmat, jnl, fnl, xext, fvec, rhs };
    int64_t acc_n = 0, halv_n = 0, lte_n = 0, frozen_n = 0, bail_n = 0;
    int64_t iter_n = 0, cross_count = 0;

    for (long m = 0; m < B; m++) {
        double *xl  = x + (size_t)m * S;
        double *xls = x_last + (size_t)m * S;
        const double *gs = G_static + (size_t)m * S * S;
        const double *cu = C_unit + (size_t)m * S * S;
        const double *bc = b_const + (size_t)m * S;
        double lane_t = t[m], lane_dt = dt[m];
        double stop = t_stop[m], dmin = dt_min[m], dnom = dt_nom[m];
        double dcap = dt_cap[m], tol = lte_tol[m], grow = growth[m];
        status[m] = 0;

        while (stop - lane_t > dmin) {
            double rem = stop - lane_t;
            double dt_step = fmin(lane_dt, rem);
            long damped = dt_step <= 8.0 * dmin;
            double step_cap = damped ? damped_step_v : max_step_v;
            long budget = damped ? damped_iter : max_iter;
            double idt = 1.0 / dt_step;
            double t_next = lane_t + dt_step;

            /* Linear base and effective rhs for this step: constant
             * sources + vectorised ramps + the storage history term —
             * the same arithmetic order as rhs_batch + the kernel's
             * storage add, so values are bitwise the reference. */
            for (long i = 0; i < S * S; i++)
                gbase[i] = gs[i] + cu[i] * idt;
            memcpy(beff, bc, (size_t)S * sizeof(double));
            for (long r = 0; r < n_ramps; r++) {
                double frac = (t_next - ramp_t0[r * B + m])
                    * ramp_inv_dur[r * B + m];
                if (frac < 0.0) frac = 0.0;
                if (frac > 1.0) frac = 1.0;
                beff[ramp_row[r]] += ramp_v0[r * B + m]
                    + ramp_dv[r * B + m] * frac;
            }
            for (long i = 0; i < S; i++) {
                double acc = 0.0;
                for (long j = 0; j < S; j++)
                    acc += cu[i * S + j] * xl[j];
                beff[i] = beff[i] + acc * idt;
            }

            /* Warm-start prediction from the integration history. */
            long hist = has_hist[m];
            if (hist) {
                double ratio = dt_step / dt_last[m];
                for (long i = 0; i < S; i++)
                    xpred[i] = xl[i] + (xl[i] - xls[i]) * ratio;
            } else {
                memcpy(xpred, xl, (size_t)S * sizeof(double));
            }

            long frozen = lane_frozen(&c, m, xl);
            if (frozen) frozen_n++;

            /* Newton from the prediction; on a miss, retry once from
             * the accepted state (the scalar controller's fallback).
             * pred_err is only defined when the *predicted* start
             * converged — a retried lane holds its step (NaN). */
            memcpy(xn, xpred, (size_t)S * sizeof(double));
            long ok;
            iter_n += lane_newton(&c, m, gbase, beff, xn, frozen,
                                  budget, step_cap, 0.0, &ok);
            double pred_err = NAN;
            if (ok && hist) {
                double mv = 0.0;
                for (long i = 0; i < S; i++) {
                    double v = fabs(xn[i] - xpred[i]);
                    if (v > mv) mv = v;
                }
                pred_err = mv;
            } else if (!ok && hist) {
                memcpy(xn, xl, (size_t)S * sizeof(double));
                iter_n += lane_newton(&c, m, gbase, beff, xn, frozen,
                                      budget, step_cap, 0.0, &ok);
            }

            if (!ok) {
                halv_n++;
                double new_dt = dt_step / 2.0;
                if (new_dt < dmin) {
                    /* Leave the lane at its pre-step state with the
                     * failing dt: the Python sweep loop replays the
                     * identical step and raises the context-rich
                     * ConvergenceError itself. */
                    status[m] = 1;
                    bail_n++;
                    break;
                }
                lane_dt = new_dt;
                continue;
            }

            /* LTE rejection of oversized steps whose estimate blew up
             * (NaN pred_err compares false: never rejected). */
            if (dt_step > dnom && pred_err > 4.0 * tol) {
                lte_n++;
                lane_dt = fmax(dt_step / 2.0, dnom);
                continue;
            }

            /* Probe crossings between the accepted states.  Capacity is
             * checked for the whole step before anything is recorded so
             * a bailed lane never holds a partial step. */
            long overflow = 0;
            for (long p = 0; p < n_probes; p++) {
                long sl = probe_slot[p];
                double lv = probe_level[p * B + m];
                double v0 = xl[sl] - lv, v1 = xn[sl] - lv;
                int s0 = (v0 > 0.0) - (v0 < 0.0);
                int s1 = (v1 > 0.0) - (v1 < 0.0);
                if (s0 != s1 && cross_n[p * B + m] >= cross_cap)
                    overflow = 1;
            }
            if (overflow) {
                status[m] = 1;
                bail_n++;
                break;
            }
            for (long p = 0; p < n_probes; p++) {
                long sl = probe_slot[p];
                double lv = probe_level[p * B + m];
                double v0 = xl[sl] - lv, v1 = xn[sl] - lv;
                int s0 = (v0 > 0.0) - (v0 < 0.0);
                int s1 = (v1 > 0.0) - (v1 < 0.0);
                if (s0 != s1) {
                    long k = cross_n[p * B + m]++;
                    double frac = -v0 / (v1 - v0);
                    size_t at = ((size_t)p * B + m) * cross_cap + k;
                    cross_t[at] = lane_t + frac * dt_step;
                    cross_rise[at] = v1 > v0;
                    cross_count++;
                }
            }

            /* Accept: shift history, advance, grow/hold the step. */
            memcpy(xls, xl, (size_t)S * sizeof(double));
            dt_last[m] = dt_step;
            has_hist[m] = 1;
            memcpy(xl, xn, (size_t)S * sizeof(double));
            lane_t += dt_step;
            steps[m]++;
            acc_n++;
            if (dt_step >= dnom) {
                if (pred_err < 0.25 * tol)
                    lane_dt = fmin(2.0 * dt_step, dcap);
                else if (pred_err > tol)
                    lane_dt = fmax(dt_step / 2.0, dnom);
                else
                    lane_dt = dt_step;
            } else {
                lane_dt = fmin(dnom, dt_step * grow);
            }
        }
        t[m] = lane_t;
        dt[m] = lane_dt;
    }

    free(gbase); free(jmat); free(jnl); free(fnl); free(xext);
    free(beff); free(fvec); free(rhs); free(xpred); free(xn);
    stats[0] = acc_n; stats[1] = halv_n; stats[2] = lte_n;
    stats[3] = frozen_n; stats[4] = bail_n;
    stats[5] = iter_n; stats[6] = cross_count;
    return 0;
}
"""

# Load state: "unset" until the first request, then the bound _Kernel
# or None (unavailable).  Never retried within a process.
_STATE: list = ["unset"]

#: (bypass_on, eta, n_slots, slots, valid, x_stamp, J_nl, F_nl) when the
#: stamp bypass is off — None maps to NULL under the void* argtypes.
_NO_BYPASS = (0, 0.0, 0, None, None, None, None, None)


class _Kernel:
    """The bound C entry points (one shared object, two functions)."""

    __slots__ = ("newton", "timestep")

    def __init__(self, newton, timestep) -> None:
        self.newton = newton
        self.timestep = timestep


# Same conventions as repro.core.ipc_native (not imported: repro.core's
# package __init__ drags in the characterization stack and would make
# the solver import cyclic).
def native_dir() -> Path:
    """Directory for compiled kernels (override: REPRO_NATIVE_DIR)."""
    override = os.environ.get("REPRO_NATIVE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "native"


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile() -> Path | None:
    """Compile (or reuse) the solver kernel; None on any failure."""
    # The cache key covers source AND flags: a flag change (e.g. a new
    # optimisation level) must not silently reuse a stale binary.
    tag = hashlib.sha256(
        (_C_SOURCE + "|O3-native-v1").encode()).hexdigest()[:16]
    directory = native_dir()
    so_path = directory / f"spice_kernel_{tag}.so"
    if so_path.exists():
        return so_path

    compiler = _find_compiler()
    if compiler is None:
        logger.warning(
            "no C compiler found; the spice solver runs on the pure-NumPy "
            "backend (correct, but slower)")
        return None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        src_path = directory / f"spice_kernel_{tag}.c"
        src_path.write_text(_C_SOURCE)
        with tempfile.NamedTemporaryFile(
                dir=directory, suffix=".so", delete=False) as tmp:
            tmp_path = Path(tmp.name)
        # -ffp-contract=off: no fused multiply-adds, so the controller
        # arithmetic in the whole-timestep loop is bit-identical to the
        # NumPy orchestration it transliterates (-O3/-march=native keep
        # IEEE evaluation order; only contraction would diverge).
        result = subprocess.run(
            [compiler, "-O3", "-march=native", "-ffp-contract=off",
             "-shared", "-fPIC",
             "-o", str(tmp_path), str(src_path), "-lm"],
            capture_output=True, text=True, timeout=120)
        if result.returncode != 0:
            # Cross-compilers and exotic hosts may lack -march=native;
            # retry portable before giving up.
            result = subprocess.run(
                [compiler, "-O3", "-ffp-contract=off", "-shared", "-fPIC",
                 "-o", str(tmp_path), str(src_path), "-lm"],
                capture_output=True, text=True, timeout=120)
        if result.returncode != 0:
            logger.warning(
                "spice kernel compile failed (%s); falling back to the "
                "pure-NumPy backend:\n%s", compiler, result.stderr.strip())
            tmp_path.unlink(missing_ok=True)
            return None
        os.replace(tmp_path, so_path)              # atomic publish
        return so_path
    except OSError as exc:
        logger.warning(
            "spice kernel build unavailable (%s); falling back to the "
            "pure-NumPy backend", exc)
        return None


def _bind(so_path: Path) -> _Kernel:
    lib = ctypes.CDLL(str(so_path))
    L, D = ctypes.c_long, ctypes.c_double
    # All pointer parameters are declared void* and fed raw integer
    # addresses (``ndarray.ctypes.data`` / precomputed ints): the hooks
    # run ~1e4 times per characterisation and typed ``data_as`` casts
    # were their single largest cost.  The caller keeps every array
    # alive across the call and guarantees dtype/contiguity.
    P = ctypes.c_void_p

    newton = lib.repro_ensemble_newton
    newton.restype = L
    newton.argtypes = [
        L, L, L,                    # A, S, n_nodes
        P,                          # mem
        L, P, P, P, P,              # compose_g, G_lin, G_static, C_unit, inv_dt
        P, L, P,                    # b, add_storage, x_prev
        P, P, P, P, P, P,           # dev_off, d/g/s, pol, par
        D, D, D,                    # fet_gmin, abstol_v, abstol_i
        P, P, D,                    # max_step_v, max_iter, gmin
        L, D, L, P,                 # bypass_on, eta, n_slots, slots
        P, P, P, P,                 # cache_valid, cache_x, cache_jnl, cache_fnl
        P, P, P,                    # x, conv, stats
    ]

    timestep = lib.repro_ensemble_timestep
    timestep.restype = L
    timestep.argtypes = [
        L, L, L,                    # B, S, n_nodes
        P, P, P,                    # G_static, C_unit, b_const
        L, P, P, P, P, P,           # n_ramps, row, v0, dv, t0, inv_dur
        P, P, P, P, P, P,           # dev_off, d/g/s, pol, par
        D, D, D,                    # fet_gmin, abstol_v, abstol_i
        D, L, D, L,                 # max_step_v, max_iter, damped pair
        L, D, L, P,                 # bypass_on, eta, n_slots, slots
        P, P, P, P,                 # cache_valid, cache_x, cache_jnl, cache_fnl
        P, P, P, P, P, P, P,        # x, t, dt, x_last, dt_last, has_hist, steps
        P, P, P, P, P, P,           # t_stop, dt_min, dt_nom, dt_cap, lte, growth
        L, P, P,                    # n_probes, probe_slot, probe_level
        L, P, P, P,                 # cross_cap, cross_t, cross_rise, cross_n
        P, P,                       # status, stats
    ]
    return _Kernel(newton, timestep)


def load_kernel() -> _Kernel | None:
    """The bound C kernel, or None when disabled/unavailable (cached)."""
    if _STATE[0] != "unset":
        return _STATE[0]
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        _STATE[0] = None
        return None
    so_path = _compile()
    if so_path is None:
        _STATE[0] = None
        return None
    try:
        _STATE[0] = _bind(so_path)
    except OSError as exc:                         # stale/foreign object
        logger.warning(
            "spice kernel load failed (%s); falling back to the pure-NumPy "
            "backend", exc)
        _STATE[0] = None
    return _STATE[0]


def reset(state: str = "unset") -> None:
    """Forget the cached load state (tests toggle REPRO_NATIVE around this)."""
    _STATE[0] = state


class _NativePrep:
    """Per-EnsembleSystem arrays the kernel call needs, computed once.

    Besides the member-contiguous device tables this caches the raw data
    addresses of every call-invariant array (the tables themselves plus
    the system's ``G_static``/``C_unit``), so the per-call hook only has
    to marshal the handful of arrays that change between calls.  The
    arrays are kept referenced here — addresses alone would not keep
    them alive.
    """

    __slots__ = ("ok", "dev_off", "d_loc", "g_loc", "s_loc", "pol", "par",
                 "slots", "static_args")

    def __init__(self, es) -> None:
        # Any non-stackable nonlinear element means the Python assembly
        # must run; decline and let the reference path handle it.
        self.ok = all(len(fb) == 0 for fb in es._fallback)
        if not self.ok:
            return
        batch = es.fet_batch
        member_id = batch.member_id
        self.dev_off = np.searchsorted(
            member_id, np.arange(es.B + 1)).astype(np.int64)
        self.d_loc = np.ascontiguousarray(batch.d_loc, dtype=np.int64)
        self.g_loc = np.ascontiguousarray(batch.g_loc, dtype=np.int64)
        self.s_loc = np.ascontiguousarray(batch.s_loc, dtype=np.int64)
        self.pol = np.ascontiguousarray(batch.pol, dtype=np.float64)
        self.par = np.ascontiguousarray(np.stack(
            [getattr(batch.params, f) for f in StackedTftParams._FIELDS],
            axis=1), dtype=np.float64)
        locs = np.concatenate([self.d_loc, self.g_loc, self.s_loc])
        self.slots = np.unique(locs[locs < es.size]).astype(np.int64)
        # (S, n_nodes, G_static*, C_unit*, dev_off*, d*, g*, s*, pol*,
        #  par*, n_slots, slots*) — everything below is immutable for
        # the lifetime of the EnsembleSystem.
        self.static_args = (
            es.size, es.n_nodes,
            es.G_static.ctypes.data, es.C_unit.ctypes.data,
            self.dev_off.ctypes.data, self.d_loc.ctypes.data,
            self.g_loc.ctypes.data, self.s_loc.ctypes.data,
            self.pol.ctypes.data, self.par.ctypes.data,
            len(self.slots), self.slots.ctypes.data,
        )


def _prep(es) -> _NativePrep:
    prep = getattr(es, "_native_prep", None)
    if prep is None:
        prep = _NativePrep(es)
        es._native_prep = prep
    return prep


class _TimestepPrep:
    """Per-EnsembleSystem rhs tables for the whole-timestep kernel.

    The kernel evaluates the right-hand side itself, so the ensemble's
    ramp descriptions are packed once into ``(R,)`` rows + ``(R, B)``
    parameter planes; any generic time-dependent element forces the
    Python ``rhs_batch`` loop and declines the whole-timestep path.
    """

    __slots__ = ("ok", "n_ramps", "rows", "v0", "dv", "t0", "inv_dur")

    def __init__(self, es) -> None:
        self.ok = not es._any_generic_rhs
        if not self.ok:
            return
        ramps = es._ramps
        self.n_ramps = len(ramps)
        self.rows = np.array([r[0] for r in ramps], dtype=np.int64)

        def plane(i: int) -> np.ndarray:
            if not ramps:
                return np.zeros((0, es.B))
            return np.ascontiguousarray(
                np.stack([r[i] for r in ramps]), dtype=np.float64)

        self.v0 = plane(1)
        self.dv = plane(2)
        self.t0 = plane(3)
        self.inv_dur = plane(4)


def _ts_prep(es) -> _TimestepPrep:
    prep = getattr(es, "_native_ts_prep", None)
    if prep is None:
        prep = _TimestepPrep(es)
        es._native_ts_prep = prep
    return prep


class NativeBackend(NumpyBackend):
    """NumPy reference solves plus the compiled ensemble kernels."""

    name = "native"

    def available(self) -> bool:
        return load_kernel() is not None

    def ensemble_newton(self, request: EnsembleNewtonRequest
                        ) -> tuple[np.ndarray, np.ndarray, int] | None:
        kernel = load_kernel()
        if kernel is None:
            return None
        es = request.es
        prep = _prep(es)
        if not prep.ok:
            return None

        # Pointer arguments travel as raw addresses (void* argtypes, see
        # _bind); every array passed here is a C-contiguous float64 /
        # int64 / uint8 ndarray kept alive by the request or prep.
        mem = request.mem_idx
        if mem.dtype != np.int64 or not mem.flags.c_contiguous:
            mem = np.ascontiguousarray(mem, dtype=np.int64)
        max_iter = request.max_iterations
        if max_iter.dtype != np.int64 or not max_iter.flags.c_contiguous:
            max_iter = np.ascontiguousarray(max_iter, dtype=np.int64)
        A = len(mem)
        x = request.x
        G_lin = request.G_lin
        options = request.options
        conv = np.zeros(A, dtype=np.uint8)
        stats = np.zeros(3, dtype=np.int64)
        bypass = request.bypass
        (S, n_nodes, g_static_a, c_unit_a, dev_off_a, d_a, g_a, s_a,
         pol_a, par_a, n_slots, slots_a) = prep.static_args
        if bypass is not None:
            bypass_args = (1, bypass.eta, n_slots, slots_a, *bypass.addrs)
        else:
            bypass_args = _NO_BYPASS

        iters = kernel.newton(
            A, S, n_nodes,
            mem.ctypes.data,
            1 if G_lin is None else 0,
            None if G_lin is None else G_lin.ctypes.data,
            g_static_a, c_unit_a,
            None if request.inv_dt is None else request.inv_dt.ctypes.data,
            request.b.ctypes.data, 1 if request.add_storage else 0,
            None if request.x_prev is None else request.x_prev.ctypes.data,
            dev_off_a, d_a, g_a, s_a, pol_a, par_a,
            FET_GMIN, options.abstol_v, options.abstol_i,
            request.max_step_v.ctypes.data,
            max_iter.ctypes.data,
            request.gmin,
            *bypass_args,
            x.ctypes.data, conv.ctypes.data, stats.ctypes.data)
        if iters < 0:                              # scratch allocation failed
            return None
        if telemetry.ENABLED:
            telemetry.count("backend.native.kernel_calls")
            telemetry.count("backend.native.lanes_solved", A)
            if stats[0]:
                telemetry.count("backend.native.bypassed_lane_steps",
                                int(stats[0]))
            # Parity counter with the NumPy reference loop: total
            # per-lane Newton iterations (equal where the schedule is
            # bit-identical; the counter-parity test pins this down).
            telemetry.count("ensemble.newton_lane_iterations",
                            int(stats[1]))
            if stats[2]:
                telemetry.count("backend.native.singular_lanes",
                                int(stats[2]))
        return x, conv.view(np.bool_), int(iters)

    def ensemble_timestep(self, et) -> dict | None:
        """Integrate every lane of *et* to completion in one C call.

        Declines (``None``) when the kernel is unavailable, disabled via
        ``REPRO_NATIVE_TIMESTEP=0``, or the system needs Python assembly
        (fallback nonlinear elements, generic time-dependent sources) —
        the caller then runs the reference sweep loop, which also mops
        up any lane the kernel flagged as bailed.
        """
        kernel = load_kernel()
        if kernel is None:
            return None
        if os.environ.get("REPRO_NATIVE_TIMESTEP", "1") == "0":
            return None
        es = et.es
        prep = _prep(es)
        if not prep.ok:
            return None
        ts = _ts_prep(es)
        if not ts.ok:
            return None

        B = es.B
        (S, n_nodes, g_static_a, c_unit_a, dev_off_a, d_a, g_a, s_a,
         pol_a, par_a, n_slots, slots_a) = prep.static_args
        bypass = et._bypass
        if bypass is not None:
            bypass_args = (1, bypass.eta, n_slots, slots_a, *bypass.addrs)
        else:
            bypass_args = _NO_BYPASS
        newton = et.newton
        n_probes = len(et.probes)
        cross_t = np.zeros((n_probes, B, CROSS_CAP))
        cross_rise = np.zeros((n_probes, B, CROSS_CAP), dtype=np.uint8)
        cross_n = np.zeros((n_probes, B), dtype=np.int64)
        status = np.zeros(B, dtype=np.uint8)
        stats = np.zeros(7, dtype=np.int64)

        ret = kernel.timestep(
            B, S, n_nodes,
            g_static_a, c_unit_a, es._b_const.ctypes.data,
            ts.n_ramps, ts.rows.ctypes.data,
            ts.v0.ctypes.data, ts.dv.ctypes.data,
            ts.t0.ctypes.data, ts.inv_dur.ctypes.data,
            dev_off_a, d_a, g_a, s_a, pol_a, par_a,
            FET_GMIN, newton.abstol_v, newton.abstol_i,
            newton.max_step_v, newton.max_iterations,
            et._damped_step_v, et._damped_iter,
            *bypass_args,
            et.x.ctypes.data, et.t.ctypes.data, et.dt.ctypes.data,
            et.x_last.ctypes.data, et.dt_last.ctypes.data,
            et.has_hist.view(np.uint8).ctypes.data, et.steps.ctypes.data,
            et.t_stop.ctypes.data, et.dt_min.ctypes.data,
            et.dt_nom.ctypes.data, et.dt_cap.ctypes.data,
            et.lte_tol.ctypes.data, et.growth.ctypes.data,
            n_probes, et._probe_slot_arr.ctypes.data,
            et._levels_mat.ctypes.data,
            CROSS_CAP, cross_t.ctypes.data, cross_rise.ctypes.data,
            cross_n.ctypes.data,
            status.ctypes.data, stats.ctypes.data)
        if ret < 0:                   # scratch allocation failed, no state
            return None               # was touched: full Python fallback

        # Transfer the kernel's crossing records into the per-member
        # event lists (oldest first, same tuples the Python recorder
        # appends).
        for p, m in zip(*np.nonzero(cross_n)):
            times = cross_t[p, m]
            rising = cross_rise[p, m]
            et.crossings[p][m].extend(
                (float(times[k]), bool(rising[k]))
                for k in range(int(cross_n[p, m])))

        if telemetry.ENABLED:
            telemetry.count("backend.native.timestep_calls")
            telemetry.count("backend.native.timestep_lanes", B)
            telemetry.count("backend.native.timestep_steps", int(stats[0]))
            if stats[3]:
                telemetry.count("backend.native.bypassed_lane_steps",
                                int(stats[3]))
            if stats[4]:
                telemetry.count("backend.native.timestep_bailouts",
                                int(stats[4]))
            # Parity counters with the reference sweep loop (see the
            # counter-parity test): lane Newton iterations and recorded
            # probe crossings.
            telemetry.count("ensemble.newton_lane_iterations",
                            int(stats[5]))
            if stats[6]:
                telemetry.count("ensemble.probe_crossings", int(stats[6]))
        return {"accepted": int(stats[0]), "halvings": int(stats[1]),
                "lte_rejections": int(stats[2]), "bailed": int(stats[4])}
