"""Compiled C backend: the whole ensemble Newton inner loop in one call.

The profile of a characterisation run is dominated not by LAPACK flops
but by the Python orchestration *around* them: per-iteration stacked
assembly, fancy-indexed device scatters, ``np.linalg.solve`` dispatch,
and the active-set mask arithmetic — each a handful of microseconds,
tens of thousands of times.  This backend moves the complete
stamp-residual-solve-update loop over a masked lane set into one C call
per timestep, following the proven :mod:`repro.core.ipc_native` recipe:
compile with whatever system compiler exists (``cc``/``gcc``/``clang``),
cache the shared object by source hash, bind through :mod:`ctypes`, and
degrade silently to the pure-NumPy reference when any of that fails.

The C kernel is a transliteration of the reference semantics:

- per-lane damped Newton exactly as
  :meth:`repro.spice.ensemble.EnsembleSystem.newton_batch` /
  :func:`repro.spice.dc._newton` (damping scale, freeze-on-converge,
  per-lane iteration budgets, gmin conditioning, exact-zero-pivot
  singularity semantics — a singular lane is deactivated, never fatal);
- the :class:`~repro.devices.tft_level61.StackedTftParams` device
  equations, same branch structure as the NumPy kernel (branch-free
  softplus, ``log u > 60`` deep-triode asymptote, tanh/cosh leakage);
- the transient fast path composes ``G_static[m] + C_unit[m]/dt`` and
  the storage history term per lane *inside* the kernel, so Python
  never materialises gathered ``(A, S, S)`` arrays at all;
- the stamp-bypass protocol (see :mod:`repro.spice.transient`): frozen
  lanes reuse the cached nonlinear stamps, fresh converged lanes write
  the per-member cache back — the same decision rule, same cache
  layout, as the scalar and NumPy-ensemble engines.

Scalar and small-batch solves inherit the NumPy reference paths; only
the ensemble hook is native.  Results agree with the reference to
solver/rounding tolerance (libm vs NumPy transcendentals differ in the
last ulp), which the backend-equivalence suite pins down.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.devices.tft_level61 import StackedTftParams
from repro.runtime import telemetry
from repro.runtime.log import get_logger
from repro.spice.backends.base import EnsembleNewtonRequest
from repro.spice.backends.numpy_ref import NumpyBackend
from repro.spice.elements import FET_GMIN

logger = get_logger(__name__)

_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Damped Newton over a masked lane set: assemble (linear base + TFT
 * stamps), solve by partial-pivot LU, damp, update, converge — per lane
 * to completion.  A transliteration of EnsembleSystem.newton_batch and
 * StackedTftParams.evaluate; see the Python module docstring for the
 * exact correspondence.  Returns the largest per-lane iteration count,
 * or -1 when scratch allocation fails.
 */

#define PF 15  /* parameter fields per device, StackedTftParams order */

static void eval_tft(const double *pr, double vgs, double vds,
                     double *ids, double *gm, double *gds)
{
    double k_z = pr[0], k_zd = pr[1], z0 = pr[2], nvth = pr[3];
    double beta = pr[4], p = pr[5], beta_p = pr[6], alpha = pr[7];
    double k_vsat = pr[8], m = pr[9], e_pow = pr[10], lam = pr[11];
    double vt_dibl = pr[12], leak_i = pr[13], leak_g = pr[14];

    double z = vgs * k_z - vds * k_zd - z0;
    double sp = fmax(z, 0.0) + log1p(exp(-fabs(z)));
    if (sp < 1e-300) sp = 1e-300;
    double sig = exp(z - sp);
    double vgte = nvth * sp;
    double vsat = k_vsat * sp;

    double log_u = m * log(vds / vsat);   /* vds==0 -> -inf -> u=0 */
    double vdse, dvdse_dvsat, base_pow;
    if (log_u > 60.0) {                   /* deep-triode asymptote */
        vdse = vsat;
        dvdse_dvsat = 1.0;
        base_pow = 0.0;
    } else {
        double u = exp(log_u);
        double t = 1.0 + u;
        base_pow = pow(t, e_pow);
        vdse = vds * (base_pow * t);
        dvdse_dvsat = (vds * (base_pow * u)) / vsat;
    }

    double clm = 1.0 + lam * vds;
    double vgte_p = pow(vgte, p);
    double i0 = (beta * clm) * vgte_p;
    double i_ch = i0 * vdse;
    double di_dvgte = (beta_p * clm) * (vgte_p / vgte) * vdse;

    double g_m = (di_dvgte + i0 * (dvdse_dvsat * alpha)) * sig;
    double dvgte_dvds = sig * (-vt_dibl);
    double g_ds = di_dvgte * dvgte_dvds
        + i0 * (base_pow + (dvdse_dvsat * alpha) * dvgte_dvds)
        + i_ch * (lam / clm);

    if (leak_i > 0.0) {
        double x_leak = vds * 10.0;       /* 1 / V_LEAK, V_LEAK = 0.1 */
        i_ch += leak_i * tanh(x_leak);
        double ch = cosh(x_leak);         /* overflow -> inf -> g += 0 */
        g_ds += leak_g / (ch * ch);
    }
    *ids = i_ch; *gm = g_m; *gds = g_ds;
}

/* Partial-pivot LU solve of J delta = rhs, in place; J is S x S with
 * row stride `stride`.  Returns 0, or 1 on an exactly-zero pivot (the
 * LAPACK dgesv singularity condition). */
static int lu_solve(double *J, long stride, double *rhs, long S)
{
    for (long k = 0; k < S; k++) {
        long p = k;
        double best = fabs(J[k * stride + k]);
        for (long i = k + 1; i < S; i++) {
            double v = fabs(J[i * stride + k]);
            if (v > best) { best = v; p = i; }
        }
        if (J[p * stride + k] == 0.0) return 1;
        if (p != k) {
            for (long j = k; j < S; j++) {
                double t = J[k * stride + j];
                J[k * stride + j] = J[p * stride + j];
                J[p * stride + j] = t;
            }
            double t = rhs[k]; rhs[k] = rhs[p]; rhs[p] = t;
        }
        double piv = J[k * stride + k];
        for (long i = k + 1; i < S; i++) {
            double f = J[i * stride + k] / piv;
            J[i * stride + k] = f;
            for (long j = k + 1; j < S; j++)
                J[i * stride + j] -= f * J[k * stride + j];
            rhs[i] -= f * rhs[k];
        }
    }
    for (long k = S - 1; k >= 0; k--) {
        double t = rhs[k];
        for (long j = k + 1; j < S; j++)
            t -= J[k * stride + j] * rhs[j];
        rhs[k] = t / J[k * stride + k];
    }
    return 0;
}

long repro_ensemble_newton(
    long A, long S, long n_nodes,
    const int64_t *mem,
    long compose_g,
    const double *G_lin,        /* A*S*S when compose_g == 0 */
    const double *G_static,     /* member-indexed, compose mode */
    const double *C_unit,       /* member-indexed, compose/storage */
    const double *inv_dt,       /* per lane */
    const double *b,            /* A*S */
    long add_storage,
    const double *x_prev,       /* A*S; accepted state (storage, bypass) */
    const int64_t *dev_off,     /* member -> device range */
    const int64_t *d_loc, const int64_t *g_loc, const int64_t *s_loc,
    const double *pol,
    const double *par,          /* n_dev x PF, field-minor */
    double fet_gmin,
    double abstol_v, double abstol_i,
    const double *max_step_v,   /* per lane */
    const int64_t *max_iter,    /* per lane */
    double gmin,
    long bypass_on, double eta,
    long n_slots, const int64_t *slots,
    uint8_t *cache_valid,       /* member-indexed bypass cache */
    double *cache_x, double *cache_jnl, double *cache_fnl,
    double *x,                  /* A*S, in/out */
    uint8_t *conv,              /* A, out */
    int64_t *stats)             /* [0] frozen lane-steps, out */
{
    long ext = S + 1;
    double *gbase = malloc((size_t)(S * S) * sizeof(double));
    double *jmat  = malloc((size_t)(S * S) * sizeof(double));
    double *jnl   = malloc((size_t)(ext * ext) * sizeof(double));
    double *fnl   = malloc((size_t)ext * sizeof(double));
    double *xext  = malloc((size_t)ext * sizeof(double));
    double *beff  = malloc((size_t)S * sizeof(double));
    double *fvec  = malloc((size_t)S * sizeof(double));
    double *rhs   = malloc((size_t)S * sizeof(double));
    long iters_max = 0;
    long frozen_steps = 0;
    if (!gbase || !jmat || !jnl || !fnl || !xext || !beff || !fvec || !rhs) {
        iters_max = -1;
        goto done;
    }

    for (long lane = 0; lane < A; lane++) {
        long m = mem[lane];
        double *xl = x + lane * S;
        const double *bl = b + lane * S;
        const double *xp = x_prev ? x_prev + lane * S : 0;

        /* Linear base: gathered G_lin, or G_static[m] + C_unit[m]/dt. */
        const double *G;
        if (compose_g) {
            const double *gs = G_static + (size_t)m * S * S;
            const double *cu = C_unit + (size_t)m * S * S;
            double idt = inv_dt[lane];
            for (long i = 0; i < S * S; i++)
                gbase[i] = gs[i] + cu[i] * idt;
            G = gbase;
        } else {
            G = G_lin + (size_t)lane * S * S;
        }

        /* Effective rhs: b plus the storage history C x_prev / dt. */
        if (add_storage) {
            const double *cu = C_unit + (size_t)m * S * S;
            double idt = inv_dt[lane];
            for (long i = 0; i < S; i++) {
                double acc = 0.0;
                for (long j = 0; j < S; j++)
                    acc += cu[i * S + j] * xp[j];
                beff[i] = bl[i] + acc * idt;
            }
        } else {
            memcpy(beff, bl, (size_t)S * sizeof(double));
        }

        /* Stamp bypass: reuse cached nonlinear stamps while no device
         * terminal has drifted beyond eta from the cached state. */
        long frozen = 0;
        if (bypass_on && cache_valid[m]) {
            double mv = 0.0;
            const double *cx = cache_x + (size_t)m * S;
            for (long si = 0; si < n_slots; si++) {
                long sl = slots[si];
                double d = fabs(xp[sl] - cx[sl]);
                if (d > mv) mv = d;
            }
            frozen = mv <= eta;
        }
        if (frozen) frozen_steps++;

        long budget = max_iter[lane];
        double step_cap = max_step_v[lane];
        long iter = 0;
        long ok = 0;
        while (iter < budget) {
            /* Nonlinear stamps: cached (frozen) or fresh. */
            if (frozen) {
                const double *cj = cache_jnl + (size_t)m * S * S;
                const double *cf = cache_fnl + (size_t)m * S;
                for (long i = 0; i < S; i++)
                    for (long j = 0; j < S; j++)
                        jmat[i * S + j] = G[i * S + j] + cj[i * S + j];
                for (long i = 0; i < S; i++) {
                    double acc = 0.0;
                    for (long j = 0; j < S; j++)
                        acc += G[i * S + j] * xl[j];
                    fvec[i] = acc - beff[i] + cf[i];
                }
            } else {
                memset(jnl, 0, (size_t)(ext * ext) * sizeof(double));
                memset(fnl, 0, (size_t)ext * sizeof(double));
                memcpy(xext, xl, (size_t)S * sizeof(double));
                xext[S] = 0.0;
                for (long dev = dev_off[m]; dev < dev_off[m + 1]; dev++) {
                    long d = d_loc[dev], g = g_loc[dev], s = s_loc[dev];
                    double pl = pol[dev];
                    double dv = xext[d] - xext[s];
                    long a_n = d, b_n = s;
                    if (pl * dv < 0.0) { a_n = s; b_n = d; }
                    double vds_n = fabs(dv);
                    double vgs_n = pl * (xext[g] - xext[b_n]);
                    double ids, gmv, gdsv;
                    eval_tft(par + (size_t)dev * PF, vgs_n, vds_n,
                             &ids, &gmv, &gdsv);
                    double i_phys = pl * (ids + fet_gmin * vds_n);
                    fnl[a_n] += i_phys;
                    fnl[b_n] -= i_phys;
                    double g_ds = gdsv + fet_gmin;
                    double gsum = gmv + g_ds;
                    jnl[a_n * ext + a_n] += g_ds;
                    jnl[a_n * ext + g]   += gmv;
                    jnl[a_n * ext + b_n] -= gsum;
                    jnl[b_n * ext + a_n] -= g_ds;
                    jnl[b_n * ext + g]   -= gmv;
                    jnl[b_n * ext + b_n] += gsum;
                }
                for (long i = 0; i < S; i++)
                    for (long j = 0; j < S; j++)
                        jmat[i * S + j] = G[i * S + j] + jnl[i * ext + j];
                for (long i = 0; i < S; i++) {
                    double acc = 0.0;
                    for (long j = 0; j < S; j++)
                        acc += G[i * S + j] * xl[j];
                    fvec[i] = acc - beff[i] + fnl[i];
                }
            }
            if (gmin > 0.0) {
                for (long i = 0; i < n_nodes; i++) {
                    jmat[i * S + i] += gmin;
                    fvec[i] += gmin * xl[i];
                }
            }
            double residual = 0.0;
            for (long i = 0; i < n_nodes; i++) {
                double v = fabs(fvec[i]);
                if (v > residual) residual = v;
            }
            for (long i = 0; i < S; i++)
                rhs[i] = -fvec[i];
            if (lu_solve(jmat, S, rhs, S)) {
                ok = 0;          /* singular lane: deactivate, not fatal */
                break;
            }
            double max_delta = 0.0;
            for (long i = 0; i < S; i++) {
                double v = fabs(rhs[i]);
                if (v > max_delta) max_delta = v;
            }
            double scale = 1.0;
            if (max_delta > step_cap)
                scale = step_cap / max_delta;
            long done_now = (max_delta < abstol_v) && (residual < abstol_i);
            if (done_now && !frozen && bypass_on) {
                /* Export the stamps evaluated at the pre-update state. */
                double *cj = cache_jnl + (size_t)m * S * S;
                double *cf = cache_fnl + (size_t)m * S;
                double *cx = cache_x + (size_t)m * S;
                for (long i = 0; i < S; i++)
                    for (long j = 0; j < S; j++)
                        cj[i * S + j] = jnl[i * ext + j];
                for (long i = 0; i < S; i++) cf[i] = fnl[i];
                memcpy(cx, xl, (size_t)S * sizeof(double));
                cache_valid[m] = 1;
            }
            for (long i = 0; i < S; i++)
                xl[i] += rhs[i] * scale;
            iter++;
            if (done_now) { ok = 1; break; }
        }
        conv[lane] = (uint8_t)ok;
        if (iter > iters_max) iters_max = iter;
    }

done:
    free(gbase); free(jmat); free(jnl); free(fnl);
    free(xext); free(beff); free(fvec); free(rhs);
    if (stats) stats[0] = frozen_steps;
    return iters_max;
}
"""

# Load state: "unset" until the first request, then the bound ctypes
# function or None (unavailable).  Never retried within a process.
_STATE: list = ["unset"]

#: (bypass_on, eta, n_slots, slots, valid, x_stamp, J_nl, F_nl) when the
#: stamp bypass is off — None maps to NULL under the void* argtypes.
_NO_BYPASS = (0, 0.0, 0, None, None, None, None, None)



# Same conventions as repro.core.ipc_native (not imported: repro.core's
# package __init__ drags in the characterization stack and would make
# the solver import cyclic).
def native_dir() -> Path:
    """Directory for compiled kernels (override: REPRO_NATIVE_DIR)."""
    override = os.environ.get("REPRO_NATIVE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "native"


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile() -> Path | None:
    """Compile (or reuse) the solver kernel; None on any failure."""
    tag = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    directory = native_dir()
    so_path = directory / f"spice_kernel_{tag}.so"
    if so_path.exists():
        return so_path

    compiler = _find_compiler()
    if compiler is None:
        logger.warning(
            "no C compiler found; the spice solver runs on the pure-NumPy "
            "backend (correct, but slower)")
        return None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        src_path = directory / f"spice_kernel_{tag}.c"
        src_path.write_text(_C_SOURCE)
        with tempfile.NamedTemporaryFile(
                dir=directory, suffix=".so", delete=False) as tmp:
            tmp_path = Path(tmp.name)
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(tmp_path),
             str(src_path), "-lm"],
            capture_output=True, text=True, timeout=120)
        if result.returncode != 0:
            logger.warning(
                "spice kernel compile failed (%s); falling back to the "
                "pure-NumPy backend:\n%s", compiler, result.stderr.strip())
            tmp_path.unlink(missing_ok=True)
            return None
        os.replace(tmp_path, so_path)              # atomic publish
        return so_path
    except OSError as exc:
        logger.warning(
            "spice kernel build unavailable (%s); falling back to the "
            "pure-NumPy backend", exc)
        return None


def _bind(so_path: Path):
    lib = ctypes.CDLL(str(so_path))
    fn = lib.repro_ensemble_newton
    L, D = ctypes.c_long, ctypes.c_double
    # All pointer parameters are declared void* and fed raw integer
    # addresses (``ndarray.ctypes.data`` / precomputed ints): the hook
    # runs ~1e4 times per characterisation and typed ``data_as`` casts
    # were its single largest cost.  The caller keeps every array alive
    # across the call and guarantees dtype/contiguity.
    P = ctypes.c_void_p
    fn.restype = L
    fn.argtypes = [
        L, L, L,                    # A, S, n_nodes
        P,                          # mem
        L, P, P, P, P,              # compose_g, G_lin, G_static, C_unit, inv_dt
        P, L, P,                    # b, add_storage, x_prev
        P, P, P, P, P, P,           # dev_off, d/g/s, pol, par
        D, D, D,                    # fet_gmin, abstol_v, abstol_i
        P, P, D,                    # max_step_v, max_iter, gmin
        L, D, L, P,                 # bypass_on, eta, n_slots, slots
        P, P, P, P,                 # cache_valid, cache_x, cache_jnl, cache_fnl
        P, P, P,                    # x, conv, stats
    ]
    return fn


def load_kernel():
    """The bound C kernel, or None when disabled/unavailable (cached)."""
    if _STATE[0] != "unset":
        return _STATE[0]
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        _STATE[0] = None
        return None
    so_path = _compile()
    if so_path is None:
        _STATE[0] = None
        return None
    try:
        _STATE[0] = _bind(so_path)
    except OSError as exc:                         # stale/foreign object
        logger.warning(
            "spice kernel load failed (%s); falling back to the pure-NumPy "
            "backend", exc)
        _STATE[0] = None
    return _STATE[0]


def reset(state: str = "unset") -> None:
    """Forget the cached load state (tests toggle REPRO_NATIVE around this)."""
    _STATE[0] = state


class _NativePrep:
    """Per-EnsembleSystem arrays the kernel call needs, computed once.

    Besides the member-contiguous device tables this caches the raw data
    addresses of every call-invariant array (the tables themselves plus
    the system's ``G_static``/``C_unit``), so the per-call hook only has
    to marshal the handful of arrays that change between calls.  The
    arrays are kept referenced here — addresses alone would not keep
    them alive.
    """

    __slots__ = ("ok", "dev_off", "d_loc", "g_loc", "s_loc", "pol", "par",
                 "slots", "static_args")

    def __init__(self, es) -> None:
        # Any non-stackable nonlinear element means the Python assembly
        # must run; decline and let the reference path handle it.
        self.ok = all(len(fb) == 0 for fb in es._fallback)
        if not self.ok:
            return
        batch = es.fet_batch
        member_id = batch.member_id
        self.dev_off = np.searchsorted(
            member_id, np.arange(es.B + 1)).astype(np.int64)
        self.d_loc = np.ascontiguousarray(batch.d_loc, dtype=np.int64)
        self.g_loc = np.ascontiguousarray(batch.g_loc, dtype=np.int64)
        self.s_loc = np.ascontiguousarray(batch.s_loc, dtype=np.int64)
        self.pol = np.ascontiguousarray(batch.pol, dtype=np.float64)
        self.par = np.ascontiguousarray(np.stack(
            [getattr(batch.params, f) for f in StackedTftParams._FIELDS],
            axis=1), dtype=np.float64)
        locs = np.concatenate([self.d_loc, self.g_loc, self.s_loc])
        self.slots = np.unique(locs[locs < es.size]).astype(np.int64)
        # (S, n_nodes, G_static*, C_unit*, dev_off*, d*, g*, s*, pol*,
        #  par*, n_slots, slots*) — everything below is immutable for
        # the lifetime of the EnsembleSystem.
        self.static_args = (
            es.size, es.n_nodes,
            es.G_static.ctypes.data, es.C_unit.ctypes.data,
            self.dev_off.ctypes.data, self.d_loc.ctypes.data,
            self.g_loc.ctypes.data, self.s_loc.ctypes.data,
            self.pol.ctypes.data, self.par.ctypes.data,
            len(self.slots), self.slots.ctypes.data,
        )


def _prep(es) -> _NativePrep:
    prep = getattr(es, "_native_prep", None)
    if prep is None:
        prep = _NativePrep(es)
        es._native_prep = prep
    return prep


class NativeBackend(NumpyBackend):
    """NumPy reference solves plus the compiled ensemble Newton kernel."""

    name = "native"

    def available(self) -> bool:
        return load_kernel() is not None

    def ensemble_newton(self, request: EnsembleNewtonRequest
                        ) -> tuple[np.ndarray, np.ndarray, int] | None:
        kernel = load_kernel()
        if kernel is None:
            return None
        es = request.es
        prep = _prep(es)
        if not prep.ok:
            return None

        # Pointer arguments travel as raw addresses (void* argtypes, see
        # _bind); every array passed here is a C-contiguous float64 /
        # int64 / uint8 ndarray kept alive by the request or prep.
        mem = request.mem_idx
        if mem.dtype != np.int64 or not mem.flags.c_contiguous:
            mem = np.ascontiguousarray(mem, dtype=np.int64)
        max_iter = request.max_iterations
        if max_iter.dtype != np.int64 or not max_iter.flags.c_contiguous:
            max_iter = np.ascontiguousarray(max_iter, dtype=np.int64)
        A = len(mem)
        x = request.x
        G_lin = request.G_lin
        options = request.options
        conv = np.zeros(A, dtype=np.uint8)
        stats = np.zeros(1, dtype=np.int64)
        bypass = request.bypass
        (S, n_nodes, g_static_a, c_unit_a, dev_off_a, d_a, g_a, s_a,
         pol_a, par_a, n_slots, slots_a) = prep.static_args
        if bypass is not None:
            bypass_args = (1, bypass.eta, n_slots, slots_a, *bypass.addrs)
        else:
            bypass_args = _NO_BYPASS

        iters = kernel(
            A, S, n_nodes,
            mem.ctypes.data,
            1 if G_lin is None else 0,
            None if G_lin is None else G_lin.ctypes.data,
            g_static_a, c_unit_a,
            None if request.inv_dt is None else request.inv_dt.ctypes.data,
            request.b.ctypes.data, 1 if request.add_storage else 0,
            None if request.x_prev is None else request.x_prev.ctypes.data,
            dev_off_a, d_a, g_a, s_a, pol_a, par_a,
            FET_GMIN, options.abstol_v, options.abstol_i,
            request.max_step_v.ctypes.data,
            max_iter.ctypes.data,
            request.gmin,
            *bypass_args,
            x.ctypes.data, conv.ctypes.data, stats.ctypes.data)
        if iters < 0:                              # scratch allocation failed
            return None
        if telemetry.ENABLED:
            telemetry.count("backend.native.kernel_calls")
            telemetry.count("backend.native.lanes_solved", A)
            if stats[0]:
                telemetry.count("backend.native.bypassed_lane_steps",
                                int(stats[0]))
        return x, conv.view(np.bool_), int(iters)
