"""Runtime-selectable solver backends for the spice engines.

``REPRO_BACKEND`` picks the linear-algebra core once per process:

``auto`` (default)
    The compiled :class:`~repro.spice.backends.native.NativeBackend`
    when a C compiler (or a cached kernel build) is available, else the
    pure-NumPy reference.
``numpy``
    The reference backend — bit-for-bit the pre-backend-layer engine
    behaviour, used as the oracle by the equivalence suites.
``blocked``
    Structure-aware batched static-pivot LU
    (:class:`~repro.spice.backends.blocked.BlockedBackend`).
``native``
    Force the compiled kernel; when the build fails the process warns
    once and runs on the reference backend instead (correct, slower).

Resolution happens lazily on the first :func:`get_backend` call and is
cached; tests flip the environment and call :func:`reset_backend`.
"""

from __future__ import annotations

import os

from repro.runtime.log import get_logger
from repro.spice.backends.base import EnsembleNewtonRequest, SolverBackend
from repro.spice.backends.blocked import BlockedBackend, JacobianStructure
from repro.spice.backends.numpy_ref import NumpyBackend
from repro.spice.backends.native import NativeBackend

__all__ = [
    "SolverBackend", "EnsembleNewtonRequest", "JacobianStructure",
    "NumpyBackend", "BlockedBackend", "NativeBackend",
    "get_backend", "reset_backend",
]

logger = get_logger(__name__)

_BACKENDS = {
    "numpy": NumpyBackend,
    "blocked": BlockedBackend,
    "native": NativeBackend,
}

# Resolved singleton; "unset" until the first get_backend() call.
_CURRENT: list = ["unset"]


def _resolve(requested: str) -> SolverBackend:
    name = requested.strip().lower() or "auto"
    if name == "auto":
        native = NativeBackend()
        return native if native.available() else NumpyBackend()
    cls = _BACKENDS.get(name)
    if cls is None:
        logger.warning(
            "unknown REPRO_BACKEND=%r (choose auto|%s); using auto",
            requested, "|".join(sorted(_BACKENDS)))
        return _resolve("auto")
    backend = cls()
    if not backend.available():
        # native.load_kernel already warned once with the build details.
        logger.warning(
            "REPRO_BACKEND=%s is unavailable on this machine; running on "
            "the pure-NumPy reference backend", name)
        return NumpyBackend()
    return backend


def get_backend() -> SolverBackend:
    """The process-wide solver backend (resolved once, from REPRO_BACKEND)."""
    if _CURRENT[0] == "unset":
        _CURRENT[0] = _resolve(os.environ.get("REPRO_BACKEND", "auto"))
    return _CURRENT[0]


def reset_backend() -> None:
    """Forget the resolved backend so the next call re-reads the env."""
    _CURRENT[0] = "unset"
