"""Solver-backend protocol for the linear-algebra core of ``repro.spice``.

Every Newton iteration of the DC and transient engines bottoms out in a
dense linear solve: ``J delta = -F`` for one circuit (scalar path) or a
stacked ``(B, S, S)`` batch of them (ensemble path).  A
:class:`SolverBackend` owns exactly that layer.  The contract is small on
purpose:

- :meth:`solve` / :meth:`solve_stacked` **never raise** on singular
  matrices — they report per-system success flags instead, so a single
  degenerate ensemble lane can never abort a whole batch (the caller
  decides whether a failed lane is retried, deactivated, or fatal);
- :meth:`factor_stacked` optionally returns a reusable factorisation so
  a Newton loop whose Jacobian is frozen (bypassed stamps) can skip
  re-factorising — backends without a cheap explicit LU return ``None``;
- :meth:`ensemble_newton` optionally takes over the *entire* ensemble
  Newton inner loop (assemble + device eval + solve + damped update over
  the masked active set); backends that cannot return ``None`` and the
  caller runs the reference NumPy loop.

Backends are selected once per process by ``REPRO_BACKEND`` (see
:mod:`repro.spice.backends`) and are stateless apart from telemetry
counters, so one instance serves every circuit and thread of a run.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.runtime import telemetry


class SolverBackend:
    """Interface + shared accounting for linear-solve backends."""

    #: Identity reported in telemetry span metadata and run reports.
    name = "base"

    def available(self) -> bool:
        """Whether this backend can run on the current machine."""
        return True

    # -- accounting ---------------------------------------------------------

    def _count(self, lanes: int) -> None:
        """Per-backend solve counters (one registry update per solve call)."""
        if telemetry.ENABLED:
            telemetry.count(f"backend.{self.name}.solve_calls")
            telemetry.count(f"backend.{self.name}.lanes_solved", lanes)

    # -- scalar -------------------------------------------------------------

    def solve(self, J: np.ndarray, F: np.ndarray,
              structure: Any | None = None) -> tuple[np.ndarray, bool]:
        """Solve ``J delta = -F`` for one system.

        Returns ``(delta, ok)``; ``ok`` is False (and ``delta`` all-zero)
        when ``J`` is singular.  Never raises ``LinAlgError``.
        """
        raise NotImplementedError

    # -- stacked ------------------------------------------------------------

    def solve_stacked(self, J: np.ndarray, F: np.ndarray,
                      structure: Any | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Solve ``J[a] delta[a] = -F[a]`` for a stacked ``(A, S, S)`` batch.

        Returns ``(delta, ok)`` where ``ok`` is a boolean lane mask;
        singular lanes come back ``ok[a] = False`` with ``delta[a] = 0``
        and **must not** raise — this is the per-lane containment the
        ensemble active set relies on.
        """
        raise NotImplementedError

    def factor_stacked(self, J: np.ndarray,
                       structure: Any | None = None) -> Any | None:
        """Optional reusable factorisation of a stacked Jacobian.

        Returns an object with ``solve(F) -> (delta, ok)`` semantics
        matching :meth:`solve_stacked`, or ``None`` when this backend has
        no cheap explicit factorisation (callers then re-solve).
        """
        return None

    # -- whole-loop hook ----------------------------------------------------

    def ensemble_newton(self, request: "EnsembleNewtonRequest"
                        ) -> tuple[np.ndarray, np.ndarray, int] | None:
        """Run a full ensemble Newton solve, or decline with ``None``.

        Implementations must reproduce the reference semantics of
        :meth:`repro.spice.ensemble.EnsembleSystem.newton_batch` (per-lane
        damping, freeze-on-converge, singular-lane deactivation, stamp
        bypass) to solver tolerance.  Returns ``(x, converged,
        iterations)`` with ``x`` updated in place of ``request.x``.
        """
        return None

    def ensemble_timestep(self, et) -> dict | None:
        """Run a whole transient sweep natively, or decline with ``None``.

        *et* is an :class:`repro.spice.ensemble.EnsembleTransient`.  An
        implementation integrates every lane towards its ``t_stop`` with
        the **bit-exact** per-lane step schedule of the reference sweep
        loop in :meth:`~repro.spice.ensemble.EnsembleTransient.run`
        (predictor extrapolation, BE companion RHS, Newton with stamp
        bypass, LTE accept/reject and dt halving/growth, probe crossing
        records), mutating the transient's state arrays and crossing
        lists in place.  Lanes it cannot finish must be left at their
        last accepted state — the reference loop resumes them.  Returns
        ``{"accepted", "halvings", "lte_rejections", "bailed"}`` step
        counts for the caller's telemetry flush, or ``None`` to decline
        (the default: only the native backend implements this).
        """
        return None


class EnsembleNewtonRequest:
    """Everything a backend needs to run one batched Newton solve.

    A plain attribute bag (no behaviour) so the native kernel call site
    and the pure-Python reference read the same fields.  ``G_lin`` is
    either a gathered ``(A, S, S)`` array or ``None`` — in the latter
    case the backend composes ``G_static[m] + C_unit[m] / dt`` per lane
    from the ensemble's base arrays (the transient fast path, which
    avoids materialising the gathered Jacobian in Python entirely).
    """

    __slots__ = ("es", "mem_idx", "G_lin", "inv_dt", "b", "x", "x_prev",
                 "add_storage", "options", "max_step_v", "max_iterations",
                 "gmin", "bypass")

    def __init__(self, es, mem_idx, G_lin, inv_dt, b, x, x_prev,
                 add_storage, options, max_step_v, max_iterations,
                 gmin, bypass) -> None:
        self.es = es
        self.mem_idx = mem_idx
        self.G_lin = G_lin
        self.inv_dt = inv_dt
        self.b = b
        self.x = x
        self.x_prev = x_prev
        self.add_storage = add_storage
        self.options = options
        self.max_step_v = max_step_v
        self.max_iterations = max_iterations
        self.gmin = gmin
        self.bypass = bypass
