"""Pure-NumPy reference backend.

Bit-for-bit the solver behaviour the engines had before the backend
layer existed: the scalar path goes through SciPy's raw ``dgesv`` LAPACK
driver when SciPy is importable (~2.5x less call overhead than
``numpy.linalg.solve``) and the stacked path through one batched
``numpy.linalg.solve``.  A singular lane in a batch triggers the
lane-by-lane fallback solve so the healthy lanes still get their LAPACK
answers — the same containment the ensemble engine previously inlined.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.spice.backends.base import SolverBackend

try:  # Direct LAPACK driver: ~2.5x less overhead than np.linalg.solve
    from scipy.linalg.lapack import dgesv as _dgesv  # type: ignore
except ImportError:  # pragma: no cover - scipy is a standard dependency
    _dgesv = None


class NumpyBackend(SolverBackend):
    """Dense LAPACK solves through NumPy/SciPy; the behaviour oracle."""

    name = "numpy"

    def solve(self, J: np.ndarray, F: np.ndarray,
              structure: Any | None = None) -> tuple[np.ndarray, bool]:
        self._count(1)
        if _dgesv is not None:
            _, _, delta, info = _dgesv(J, -F, 0, 1)
            if info != 0:
                return np.zeros_like(F), False
            return delta, True
        try:
            return np.linalg.solve(J, -F), True
        except np.linalg.LinAlgError:
            return np.zeros_like(F), False

    def solve_stacked(self, J: np.ndarray, F: np.ndarray,
                      structure: Any | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
        self._count(len(J))
        ok = np.ones(len(J), dtype=bool)
        try:
            return np.linalg.solve(J, -F[..., None])[..., 0], ok
        except np.linalg.LinAlgError:
            # Some lane is singular: solve lane by lane so the healthy
            # lanes still get the exact batched-LAPACK answers.
            delta = np.zeros_like(F)
            for a in range(len(J)):
                try:
                    delta[a] = np.linalg.solve(J[a], -F[a])
                except np.linalg.LinAlgError:
                    ok[a] = False
            return delta, ok
