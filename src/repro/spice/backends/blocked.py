"""Structure-aware stacked solver: static-pivot LU vectorised over lanes.

MNA Jacobians of one ensemble share a single sparsity pattern: the union
of the static stamps, the storage companions, and the (precomputable)
transistor scatter positions.  This backend prefactors that *structure*
once per system:

- a static row permutation (greedy bipartite matching on the pattern)
  moves a structural nonzero onto every diagonal slot — voltage-source
  branch rows have a hard zero diagonal, so unpermuted elimination is
  impossible no matter how well-conditioned the circuit is;
- a symbolic elimination pass on the boolean pattern marks the pivot
  columns that are structurally empty below the diagonal, whose
  elimination step can be skipped outright.

The numeric factorisation is then a short data-independent loop of
vectorised rank-1 updates across all lanes at once — no per-lane LAPACK
call, no dynamic pivoting — and is shared by :meth:`solve_stacked` and
the reusable :meth:`factor_stacked` (Newton iterations against a frozen
Jacobian factor once and back-substitute per iteration).

Static pivoting trades LAPACK's partial-pivot guarantee for batch speed,
so every factorisation guards each pivot against collapse
(``|pivot| < 1e-12 * ||J||``) and falls back to the dense reference
solve when any lane trips it — correctness never depends on the
structural gamble.  Small batches (below :data:`MIN_BATCH` lanes, env
``REPRO_BLOCKED_MIN_BATCH``) always take the dense path: one batched
LAPACK call beats a Python elimination loop until the per-op cost is
amortised over enough lanes.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.spice.backends.numpy_ref import NumpyBackend

#: Lane count below which batched LAPACK beats the vectorised static LU.
MIN_BATCH = 48

#: Relative pivot-collapse guard for the static (pivot-free) elimination.
_PIVOT_RTOL = 1e-12


class JacobianStructure:
    """The shared sparsity pattern of one system's Jacobians.

    ``pattern`` is a boolean ``(S, S)`` array covering **every** position
    any Newton iteration may make nonzero (static stamps, storage
    companions, device scatters, the gmin diagonal).  Backends hang their
    prepared data off :attr:`prep` keyed by backend name.
    """

    __slots__ = ("pattern", "n_nodes", "prep")

    def __init__(self, pattern: np.ndarray, n_nodes: int) -> None:
        self.pattern = pattern
        self.n_nodes = n_nodes
        self.prep: dict[str, Any] = {}


def _match_diagonal(pattern: np.ndarray) -> np.ndarray | None:
    """Row permutation ``perm`` with ``pattern[perm[i], i]`` True for all i.

    Greedy assignment with augmenting paths (Kuhn's algorithm); returns
    None when the pattern has no zero-free diagonal under any permutation
    (a structurally singular system — let LAPACK report it instead).
    Rows already matched to their own column are preferred so
    well-ordered systems keep an identity-like permutation.
    """
    S = len(pattern)
    row_of_col = np.full(S, -1, dtype=np.intp)
    # Cheap first pass: keep existing nonzero diagonals in place.
    claimed = np.zeros(S, dtype=bool)
    for c in range(S):
        if pattern[c, c]:
            row_of_col[c] = c
            claimed[c] = True

    def augment(c: int, visited: np.ndarray) -> bool:
        for r in np.flatnonzero(pattern[:, c]):
            if visited[r]:
                continue
            visited[r] = True
            owner = np.flatnonzero(row_of_col == r)
            if len(owner) == 0 or augment(int(owner[0]), visited):
                row_of_col[c] = r
                return True
        return False

    for c in range(S):
        if row_of_col[c] < 0:
            if not augment(c, np.zeros(S, dtype=bool)):
                return None
    return row_of_col


def _symbolic_fill(pattern: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Boolean ``needs_elim[k]``: pivot columns with sub-diagonal fill.

    Simulates the (pivot-free) elimination on the permuted boolean
    pattern, propagating fill, and records which steps actually have
    rows to update — the numeric loop skips the rest.
    """
    p = pattern[perm, :].copy()
    S = len(p)
    needs = np.zeros(S, dtype=bool)
    for k in range(S):
        rows = p[k + 1:, k]
        if rows.any():
            needs[k] = True
            p[k + 1:, k + 1:] |= rows[:, None] & p[k, k + 1:][None, :]
    return needs


class BlockedBackend(NumpyBackend):
    """Static-structure batched LU with a guarded dense fallback."""

    name = "blocked"

    def __init__(self) -> None:
        self.min_batch = int(os.environ.get("REPRO_BLOCKED_MIN_BATCH",
                                            MIN_BATCH))
        # Lane count from which a *reusable* factorisation pays for
        # itself (factor_stacked); defaults to the dense/static-LU
        # crossover above.
        self.refactor_min = int(os.environ.get("REPRO_BLOCKED_REFACTOR",
                                               self.min_batch))

    # -- structure preparation ----------------------------------------------

    def _prepare(self, structure: Any | None):
        """(perm, needs_elim) for *structure*, or None when unusable."""
        if structure is None or getattr(structure, "pattern", None) is None:
            return None
        prep = structure.prep.get(self.name, "unset")
        if prep == "unset":
            perm = _match_diagonal(structure.pattern)
            prep = None if perm is None else (
                perm, _symbolic_fill(structure.pattern, perm))
            structure.prep[self.name] = prep
        return prep

    # -- batched static-pivot LU --------------------------------------------

    def _factor(self, J: np.ndarray, perm: np.ndarray,
                needs_elim: np.ndarray) -> np.ndarray | None:
        """In-place-style LU of the row-permuted batch; None on collapse."""
        A = np.ascontiguousarray(J[:, perm, :])
        S = A.shape[1]
        # Pivot guard scale: one per lane, from the original magnitudes.
        tiny = _PIVOT_RTOL * np.max(np.abs(J), axis=(1, 2))
        for k in range(S):
            piv = A[:, k, k]
            if np.any(np.abs(piv) <= tiny):
                return None
            if not needs_elim[k]:
                continue
            l = A[:, k + 1:, k] / piv[:, None]
            A[:, k + 1:, k] = l
            row = A[:, k, k + 1:]
            A[:, k + 1:, k + 1:] -= l[:, :, None] * row[:, None, :]
        return A

    @staticmethod
    def _substitute(A: np.ndarray, perm: np.ndarray,
                    F: np.ndarray) -> np.ndarray:
        """Forward/back substitution of ``-F`` through the batched LU."""
        y = -F[:, perm]
        S = A.shape[1]
        for k in range(1, S):
            y[:, k] -= np.einsum("aj,aj->a", A[:, k, :k], y[:, :k])
        for k in range(S - 1, -1, -1):
            if k + 1 < S:
                y[:, k] -= np.einsum("aj,aj->a", A[:, k, k + 1:],
                                     y[:, k + 1:])
            y[:, k] /= A[:, k, k]
        return y

    # -- SolverBackend ------------------------------------------------------

    def solve_stacked(self, J: np.ndarray, F: np.ndarray,
                      structure: Any | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
        if len(J) >= self.min_batch:
            prep = self._prepare(structure)
            if prep is not None:
                factored = self._factor(J, *prep)
                if factored is not None:
                    self._count(len(J))
                    delta = self._substitute(factored, prep[0], F)
                    return delta, np.ones(len(J), dtype=bool)
        return super().solve_stacked(J, F, structure)

    def factor_stacked(self, J: np.ndarray,
                       structure: Any | None = None):
        if len(J) < self.refactor_min:
            return None
        prep = self._prepare(structure)
        if prep is None:
            return None
        factored = self._factor(J, *prep)
        if factored is None:
            return None
        return _BlockedFactor(self, factored, prep[0], len(J))


class _BlockedFactor:
    """A reusable batched LU (frozen-Jacobian Newton iterations)."""

    __slots__ = ("backend", "factored", "perm", "lanes")

    def __init__(self, backend: BlockedBackend, factored: np.ndarray,
                 perm: np.ndarray, lanes: int) -> None:
        self.backend = backend
        self.factored = factored
        self.perm = perm
        self.lanes = lanes

    def solve(self, F: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        self.backend._count(self.lanes)
        delta = BlockedBackend._substitute(self.factored, self.perm, F)
        return delta, np.ones(self.lanes, dtype=bool)
