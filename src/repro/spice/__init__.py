"""A small modified-nodal-analysis circuit simulator.

This subpackage is the repro stand-in for HSPICE in the paper's flow
(Figure 10).  It supports:

- DC operating point via damped Newton-Raphson with gmin and source
  stepping fallbacks (:mod:`repro.spice.dc`),
- DC sweeps with continuation (:func:`repro.spice.dc.dc_sweep`),
- transient analysis with backward-Euler or trapezoidal integration
  (:mod:`repro.spice.transient`),
- waveform measurements (delay, slew, crossings) used by NLDM
  characterisation (:mod:`repro.spice.waveform`).

Circuits are built from :class:`repro.spice.netlist.Circuit` and element
classes in :mod:`repro.spice.elements`.  Nonlinear transistors take a
device model object from :mod:`repro.devices`.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.elements import (
    Resistor,
    Capacitor,
    VoltageSource,
    CurrentSource,
    Fet,
    RampValue,
)
from repro.spice.dc import NewtonOptions, operating_point, dc_sweep
from repro.spice.ensemble import (
    EnsembleSystem,
    EnsembleTransient,
    Probe,
    ensemble_dc_sweep,
    ensemble_operating_point,
)
from repro.spice.transient import TransientOptions, TransientResult, transient
from repro.spice.waveform import Waveform

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Fet",
    "RampValue",
    "NewtonOptions",
    "operating_point",
    "dc_sweep",
    "EnsembleSystem",
    "EnsembleTransient",
    "Probe",
    "ensemble_dc_sweep",
    "ensemble_operating_point",
    "TransientOptions",
    "TransientResult",
    "transient",
    "Waveform",
]
