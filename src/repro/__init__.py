"""repro — Architectural Tradeoffs for Biodegradable Computing.

A from-scratch reproduction of Chang, Yao, Jackson, Rand and Wentzlaff's
MICRO-50 (2017) paper: an OTFT device-to-architecture simulation stack.

Layers (bottom to top):

- :mod:`repro.spice` — modified-nodal-analysis circuit simulator,
- :mod:`repro.devices` — OTFT / MOSFET compact models, the calibrated
  pentacene golden device, extraction and fitting,
- :mod:`repro.cells` — unipolar pseudo-E (and CMOS) standard cells with
  VTC analysis and sizing exploration,
- :mod:`repro.characterization` — NLDM library characterisation,
- :mod:`repro.synthesis` — gate-level netlists, technology mapping, STA,
  wire models, pipeline retiming,
- :mod:`repro.core` — the paper's contribution: AnyCore-style
  parameterised superscalar cores, IPC simulation, and the depth/width
  tradeoff sweeps,
- :mod:`repro.analysis` — per-figure experiment runners, calibration
  registry, and extension studies.

Run ``python -m repro list`` for the figure-regeneration CLI.
"""

__version__ = "1.0.0"
