"""Persistent content-addressed result cache.

Expensive, deterministic stages — library characterisation (hundreds of
transistor-level transients) and trace simulation (tens of thousands of
recurrence steps per config) — memoise their results here so re-running
a sweep or regenerating figures after the first run skips straight to
the answers.

Entries are content-addressed: the caller hashes *everything the result
depends on* (device-model parameters and the NLDM grid for libraries;
the config timing signature and the trace fingerprint for simulations)
into a key with :meth:`ResultCache.key`, and stores a JSON-serialisable
payload under ``<root>/<category>/<key>.json``.  Any input change
produces a different key, so stale hits are impossible by construction
— invalidation is just a miss.

Environment knobs:

- ``REPRO_CACHE_DIR`` — cache root (default
  ``~/.cache/repro-biodegradable``, shared with the historic library
  cache);
- ``REPRO_CACHE=0`` — disable reads *and* writes (every lookup misses,
  nothing is stored); any other value, or unset, leaves it enabled.
- ``REPRO_CACHE_FSYNC=1`` — additionally ``fsync`` each entry before
  publishing it (off by default).

Writes are atomic (temp file + ``os.replace``) so concurrent sweep
workers can share a cache directory and a crash mid-write never leaves
a truncated entry under the final name; corrupt entries are dropped and
treated as misses.  Because a torn or lost entry is therefore *safe*
(it degrades to a recomputation, never a wrong result), the per-entry
``fsync`` is opt-in: a cold 1000-point sweep writes thousands of small
entries and the fsyncs were costing more than the JSON encoding.  Set
``REPRO_CACHE_FSYNC=1`` to trade that speed for power-loss durability.

Every :class:`ResultCache` also feeds process-wide hit/miss/byte
counters (:func:`stats_snapshot`); ``python -m repro cache-stats``
reports them together with the on-disk entry counts per category.  With
:mod:`repro.runtime.telemetry` enabled the same events additionally
flow into per-category registry counters
(``cache.hit.<category>`` / ``cache.miss.<category>`` /
``cache.put.<category>`` plus ``cache.bytes_read`` /
``cache.bytes_written``), which worker processes ship back to the
parent — so a run report's cache section covers the whole process tree.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.runtime import telemetry

__all__ = [
    "ResultCache",
    "default_cache",
    "default_cache_root",
    "disk_stats",
    "reset_stats",
    "stats_snapshot",
]

#: Process-wide counters, accumulated across every ResultCache instance
#: (sweep helpers construct caches freshly per call, so instance counters
#: alone would vanish with them).
_STATS = {"hits": 0, "misses": 0, "puts": 0,
          "bytes_read": 0, "bytes_written": 0}


def stats_snapshot() -> dict[str, int]:
    """Copy of the process-wide cache counters."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the process-wide cache counters (used by tests and the CLI)."""
    for k in _STATS:
        _STATS[k] = 0


def disk_stats(root: str | Path | None = None) -> dict[str, dict[str, int]]:
    """On-disk ``{category: {"entries": n, "bytes": b}}`` under *root*."""
    root = Path(root) if root is not None else default_cache_root()
    out: dict[str, dict[str, int]] = {}
    if not root.is_dir():
        return out
    for directory in sorted(d for d in root.iterdir() if d.is_dir()):
        entries = 0
        size = 0
        for entry in directory.glob("*.json"):
            try:
                size += entry.stat().st_size
                entries += 1
            except OSError:
                continue
        out[directory.name] = {"entries": entries, "bytes": size}
    return out

#: Category directory names must stay filesystem-friendly.
_SAFE_CATEGORY = set("abcdefghijklmnopqrstuvwxyz0123456789_-")


def default_cache_root() -> Path:
    """Cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro-biodegradable``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-biodegradable"


def cache_enabled() -> bool:
    """False iff ``REPRO_CACHE`` is set to ``0`` (or ``false``/``off``)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "false",
                                                              "off")


class ResultCache:
    """A directory of content-addressed JSON results.

    ``root=None`` resolves ``REPRO_CACHE_DIR`` at construction time;
    ``enabled=None`` resolves ``REPRO_CACHE``.  A disabled cache is a
    null object: :meth:`get` always misses, :meth:`put` is a no-op —
    callers never branch on the flag themselves.
    """

    def __init__(self, root: str | Path | None = None,
                 enabled: bool | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.enabled = cache_enabled() if enabled is None else bool(enabled)
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def key(material: Any) -> str:
        """Content hash (hex) of *material*.

        *material* is anything JSON can canonicalise (dicts are
        sorted; non-JSON leaves fall back to ``repr``).  Include every
        input the result depends on — and a schema version when the
        payload layout may evolve.
        """
        blob = json.dumps(material, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    # -- paths ----------------------------------------------------------------

    def path_for(self, category: str, key: str) -> Path:
        if not category or not set(category) <= _SAFE_CATEGORY:
            raise ValueError(f"bad cache category {category!r}")
        return self.root / category / f"{key}.json"

    # -- access ---------------------------------------------------------------

    def get(self, category: str, key: str) -> Any | None:
        """The stored payload, or None on miss/disabled/corrupt entry."""
        if not self.enabled:
            return None
        path = self.path_for(category, key)
        try:
            text = path.read_text()
            payload = json.loads(text)
        except FileNotFoundError:
            self.misses += 1
            _STATS["misses"] += 1
            if telemetry.ENABLED:
                telemetry.count(f"cache.miss.{category}")
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            # Corrupt / truncated entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            _STATS["misses"] += 1
            if telemetry.ENABLED:
                telemetry.count(f"cache.miss.{category}")
            return None
        self.hits += 1
        _STATS["hits"] += 1
        _STATS["bytes_read"] += len(text)
        if telemetry.ENABLED:
            telemetry.count(f"cache.hit.{category}")
            telemetry.count("cache.bytes_read", len(text))
        return payload

    def put(self, category: str, key: str, payload: Any) -> Path | None:
        """Store *payload* atomically; returns its path (None if disabled)."""
        if not self.enabled:
            return None
        path = self.path_for(category, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                blob = json.dumps(payload)
                handle.write(blob)
                handle.flush()
                # Atomicity comes from the rename alone; fsync-before-
                # publish only buys durability across power loss, and a
                # lost entry is just a future miss — so it is opt-in
                # (REPRO_CACHE_FSYNC=1) rather than a per-entry tax on
                # every cold sweep write.
                if os.environ.get("REPRO_CACHE_FSYNC", "") == "1":
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _STATS["puts"] += 1
        _STATS["bytes_written"] += len(blob)
        if telemetry.ENABLED:
            telemetry.count(f"cache.put.{category}")
            telemetry.count("cache.bytes_written", len(blob))
        return path

    def clear(self, category: str | None = None) -> int:
        """Delete entries (one category, or everything); returns the count."""
        removed = 0
        if category is not None:
            dirs = [self.root / category]
        elif self.root.is_dir():
            dirs = [d for d in self.root.iterdir() if d.is_dir()]
        else:
            dirs = []
        for directory in dirs:
            if not directory.is_dir():
                continue
            for entry in directory.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def default_cache() -> ResultCache:
    """A cache on the default root, honouring the environment knobs.

    Constructed fresh on every call (construction is cheap and re-reads
    the environment, which tests and sweep workers mutate)."""
    return ResultCache()
