"""Chrome Trace Event export for telemetry span trees.

Converts the merged span tree a run report carries (parent-process
spans plus the worker-task subtrees :func:`telemetry.merge_snapshot`
grafts back in task order) into the Trace Event JSON format that
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load:
one ``"X"`` (complete) event per span, ``ts``/``dur`` in microseconds,
span metadata in ``args``.

**Track layout.**  The parent process renders as track ``main``
(tid 0).  Worker-task subtrees are laid out on ``worker-K`` tracks by
the *deterministic* round-robin ``K = task_index % workers`` with a
per-track time cursor that places each task's subtree after the
previous one on its track, starting at the launching span's start.
This is a reconstruction of the deterministic task schedule — task
order and worker count only, never actual OS interleaving — so the
same run report always exports byte-identical JSON, and two reports of
the same workload differ only in measured durations.  Worker span
durations are the workers' real measured wall-clock.

**Counter annotations.**  The report's native-kernel and solver
counters (``backend.native.*``, ``ensemble.*``, ``ipc.*``) are
attached as a global instant event (``native-counters``) plus
``otherData``, so the numbers that explain the ``solve`` bucket ride
along with the timeline.

``canonical=True`` strips timestamps, tracks, and worker bookkeeping
meta from the events, leaving the pure task-ordered event sequence —
the exporter's determinism contract (``REPRO_WORKERS=1`` and ``N``
produce the identical canonical sequence) is tested against it.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "chrome_trace",
    "default_trace_path",
    "trace_events",
    "write_trace",
]

#: Counter-name prefixes attached to the trace as annotations.
COUNTER_PREFIXES = ("backend.native.", "ensemble.", "ipc.", "solver.")


def _us(seconds: float) -> float:
    """Seconds -> integer-ish microseconds (stable under JSON round-trip)."""
    return round(seconds * 1e6, 3)


def _span_event(node: dict, offset: float, tid: int,
                canonical: bool) -> dict:
    meta = dict(node.get("meta", {}))
    if canonical:
        meta.pop("task", None)
        meta.pop("worker_task", None)
        event = {"name": node.get("name", "?"), "ph": "X", "pid": 0,
                 "tid": 0, "ts": 0, "dur": 0}
    else:
        event = {
            "name": node.get("name", "?"),
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": _us(offset + float(node.get("t_start", 0.0))),
            "dur": _us(float(node.get("seconds", 0.0))),
        }
    if meta:
        event["args"] = meta
    return event


def _walk(node: dict, offset: float, tid: int, workers: int,
          events: list[dict], canonical: bool) -> None:
    events.append(_span_event(node, offset, tid, canonical))
    start = offset + float(node.get("t_start", 0.0))
    cursors: dict[int, float] = {}
    for child in node.get("children", ()):
        meta = child.get("meta", {})
        if meta.get("worker_task"):
            task = int(meta.get("task", 0))
            track = 1 + task % workers
            cursor = cursors.get(track, start)
            _walk(child, cursor, track, workers, events, canonical)
            cursors[track] = cursor + float(child.get("t_start", 0.0)) \
                + float(child.get("seconds", 0.0))
        else:
            _walk(child, offset, tid, workers, events, canonical)


def _annotation_counters(report: dict) -> dict:
    counters = report.get("metrics", {}).get("counters", {})
    return {name: value for name, value in sorted(counters.items())
            if name.startswith(COUNTER_PREFIXES)}


def trace_events(report: dict, canonical: bool = False) -> list[dict]:
    """The Trace Event list for *report* (see module docstring)."""
    workers = 1
    try:
        workers = max(1, int(report.get("env", {}).get("workers", 1)))
    except (TypeError, ValueError):
        pass
    events: list[dict] = []
    if not canonical:
        target = str(report.get("target", "run"))
        events.append({"name": "process_name", "ph": "M", "pid": 0,
                       "tid": 0, "args": {"name": f"repro:{target}"}})
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": 0, "args": {"name": "main"}})
        for k in range(workers):
            events.append({"name": "thread_name", "ph": "M", "pid": 0,
                           "tid": 1 + k,
                           "args": {"name": f"worker-{k}"}})
    for root in report.get("span_tree", ()):
        _walk(root, 0.0, 0, workers, events, canonical)
    counters = _annotation_counters(report)
    if counters and not canonical:
        events.append({"name": "native-counters", "ph": "i", "s": "g",
                       "pid": 0, "tid": 0, "ts": 0, "args": counters})
    return events


def chrome_trace(report: dict, canonical: bool = False) -> dict:
    """Full Chrome Trace JSON document (object form) for *report*."""
    doc = {
        "traceEvents": trace_events(report, canonical=canonical),
        "displayTimeUnit": "ms",
    }
    if not canonical:
        doc["otherData"] = {
            "target": report.get("target"),
            "timestamp": report.get("timestamp"),
            "schema": report.get("schema"),
            "workers": report.get("env", {}).get("workers"),
            "counters": _annotation_counters(report),
        }
    return doc


def default_trace_path(report_path: str | Path) -> Path:
    """``foo.json`` -> ``foo.trace.json`` next to the report."""
    path = Path(report_path)
    return path.with_name(path.stem + ".trace.json")


def write_trace(report: dict, path: str | Path) -> Path:
    """Write the Chrome trace for *report* to *path* and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(report),
                               separators=(",", ":"),
                               sort_keys=False) + "\n")
    return path
