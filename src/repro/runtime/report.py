"""Per-experiment JSON run reports.

Every ``python -m repro figN`` invocation (and ``run_bench --report``)
writes one self-describing JSON document capturing what ran and how:

- an **environment fingerprint** — interpreter, platform, package
  versions, and every ``REPRO_*`` knob in effect — so a surprising
  number in a report is attributable to its configuration;
- the telemetry **span tree** and flattened per-path span totals
  (including spans grafted back from worker processes);
- all **metrics** (counters / timers / distributions): Newton
  iterations, LTE rejections, ensemble occupancy, NLDM lookups, native
  vs Python IPC kernel paths, ...;
- **cache statistics**, both this process tree's session counters and
  the on-disk entry counts per category;
- the **warnings** the run hit (serial-pool fallback, failed kernel
  compile, ...), teed in from the ``repro`` loggers.

Reports land under ``runs/`` (override with ``REPRO_RUNS_DIR`` or an
explicit ``--report PATH``); ``python -m repro report`` pretty-prints
the most recent one.  The schema is versioned so downstream tooling can
evolve with it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.runtime import telemetry

__all__ = [
    "SCHEMA_VERSION",
    "build_report",
    "default_runs_dir",
    "format_report",
    "latest_report_path",
    "write_report",
]

SCHEMA_VERSION = 1

#: Environment variable overriding where reports are written.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"


def default_runs_dir() -> Path:
    """``REPRO_RUNS_DIR`` or ``runs/`` under the working directory."""
    env = os.environ.get(RUNS_DIR_ENV)
    return Path(env) if env else Path("runs")


def _package_versions() -> dict[str, str]:
    versions: dict[str, str] = {}
    for name in ("numpy", "scipy"):
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except ImportError:              # pragma: no cover - stubbed envs
                continue
        versions[name] = getattr(module, "__version__", "unknown")
    return versions


def env_fingerprint() -> dict:
    """Everything about the host/configuration a report reader needs."""
    from repro.runtime.executor import resolve_workers
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "packages": _package_versions(),
        "workers": resolve_workers(),
        "repro_env": {k: v for k, v in sorted(os.environ.items())
                      if k.startswith("REPRO_")},
        "solver_backend": _solver_backend(),
    }


def _solver_backend() -> dict:
    """Resolved spice solver backend vs what was requested."""
    from repro.spice.backends import get_backend
    return {
        "requested": os.environ.get("REPRO_BACKEND", "auto"),
        "resolved": get_backend().name,
    }


def build_report(target: str, argv: list[str] | None = None,
                 status: str = "ok", error: str | None = None,
                 duration_seconds: float | None = None) -> dict:
    """Assemble the report dict from the current telemetry registry."""
    from repro.runtime.cache import disk_stats, stats_snapshot
    try:
        disk = disk_stats()
    except OSError:                           # pragma: no cover - odd mounts
        disk = {}
    report = {
        "schema": SCHEMA_VERSION,
        "target": target,
        "argv": list(argv) if argv is not None else sys.argv[1:],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "status": status,
        "env": env_fingerprint(),
        "metrics": telemetry.metrics_snapshot(),
        "span_totals": telemetry.span_totals(),
        "span_tree": telemetry.span_tree(),
        "cache": {"session": stats_snapshot(), "disk": disk},
        "warnings": telemetry.warnings(),
    }
    if duration_seconds is not None:
        report["duration_seconds"] = round(duration_seconds, 6)
    if error is not None:
        report["error"] = error
    return report


def write_report(report: dict, path: str | Path | None = None) -> Path:
    """Write *report* as JSON; default path is timestamped under ``runs/``.

    The default filename couples the target name with a wall-clock stamp
    plus the PID, so concurrent runs never collide.  Every written
    report is also summarised into the append-only run-history index
    (:mod:`repro.runtime.history`), best-effort.
    """
    if path is None:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        name = f"{report.get('target', 'run')}-{stamp}-{os.getpid()}.json"
        path = default_runs_dir() / name
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    from repro.runtime import history
    history.append_entry(report, path)
    return path


def latest_report_path(runs_dir: str | Path | None = None) -> Path | None:
    """The most recently modified report JSON, or None if there is none."""
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    if not root.is_dir():
        return None
    candidates = [p for p in root.glob("*.json") if p.is_file()]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _render_span(node: dict, indent: int, lines: list[str]) -> None:
    lines.append(f"{'  ' * indent}{node['name']}  "
                 f"{_format_seconds(node.get('seconds', 0.0))}")
    for child in node.get("children", ()):
        _render_span(child, indent + 1, lines)


def format_report(report: dict) -> str:
    """Human-readable rendering of a run report (the ``report`` command)."""
    lines: list[str] = []
    target = report.get("target", "?")
    status = report.get("status", "?")
    lines.append(f"run report: {target} [{status}] "
                 f"at {report.get('timestamp', '?')}")
    if "duration_seconds" in report:
        lines.append(f"duration: {_format_seconds(report['duration_seconds'])}")
    if report.get("error"):
        lines.append(f"error: {report['error']}")

    env = report.get("env", {})
    if env:
        packages = ", ".join(f"{k} {v}"
                             for k, v in env.get("packages", {}).items())
        lines.append(f"python {env.get('python', '?')} on "
                     f"{env.get('platform', '?')}"
                     + (f"; {packages}" if packages else ""))
        knobs = env.get("repro_env", {})
        if knobs:
            lines.append("knobs: " + ", ".join(f"{k}={v}"
                                               for k, v in knobs.items()))
        lines.append(f"workers: {env.get('workers', '?')}")

    tree = report.get("span_tree", [])
    if tree:
        lines.append("")
        lines.append("spans:")
        for root in tree:
            _render_span(root, 1, lines)

    totals = report.get("span_totals", {})
    if totals:
        lines.append("")
        lines.append("span totals (incl. workers):")
        ranked = sorted(totals.items(),
                        key=lambda kv: kv[1]["seconds"], reverse=True)
        for path, cell in ranked[:15]:
            lines.append(f"  {path}: {cell['count']}x "
                         f"{_format_seconds(cell['seconds'])}")

    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name}: {value}")
    timers = metrics.get("timers", {})
    if timers:
        lines.append("")
        lines.append("timers:")
        for name, cell in timers.items():
            lines.append(f"  {name}: {cell['calls']} calls, "
                         f"{_format_seconds(cell['seconds'])}")
    dists = metrics.get("distributions", {})
    if dists:
        lines.append("")
        lines.append("distributions:")
        for name, cell in dists.items():
            lines.append(f"  {name}: n={cell['count']} "
                         f"mean={cell['mean']:.3g} "
                         f"min={cell['min']:.3g} max={cell['max']:.3g}")

    cache = report.get("cache", {})
    session = cache.get("session", {})
    if session:
        lines.append("")
        lines.append(f"cache (session): {session.get('hits', 0)} hits, "
                     f"{session.get('misses', 0)} misses, "
                     f"{session.get('puts', 0)} puts")
    disk = cache.get("disk", {})
    if disk:
        for category, stats in disk.items():
            lines.append(f"cache (disk) {category}: "
                         f"{stats['entries']} entries, "
                         f"{stats['bytes'] / 1024:.1f} KiB")

    warns = report.get("warnings", [])
    if warns:
        lines.append("")
        lines.append("warnings:")
        for message in warns:
            lines.append(f"  - {message}")
    return "\n".join(lines)
