"""Per-stage solver wall-clock counters — a thin view over the registry.

The perf benchmarks (``benchmarks/perf/run_bench.py --profile``) want a
breakdown of where a characterisation run spends its time — matrix
stamping, linear solves, device-model evaluation — without slowing the
normal path down.  The hot loops therefore guard every measurement with
a single module-global ``ENABLED`` check (one attribute load and branch
when profiling is off).

Since the telemetry registry landed, this module no longer owns any
storage: :func:`add` accumulates into the
:mod:`repro.runtime.telemetry` timers (``solver.stamp`` /
``solver.device_eval`` / ``solver.solve``), and :func:`snapshot` /
:func:`breakdown` read them back.  That is what makes the counters
**process-aware**: worker processes ship their registry snapshot back
through :func:`repro.runtime.parallel_map`'s result channel and the
parent merges them in task order, so ``run_bench --profile`` reports
the full stamp/solve time even under ``REPRO_WORKERS>1`` (previously
the workers' share was silently lost).

Stages
------
- ``stamp`` — residual/Jacobian assembly (:meth:`MnaSystem.
  residual_and_jacobian` and the ensemble engine's stacked assembly),
  *including* device evaluation on the scalar per-element path;
- ``device_eval`` — batched device-model kernels (the vectorized FET
  paths time their model call separately; it is reported subtracted
  from ``stamp`` so the two never double-count);
- ``solve`` — linear-solve work through the active
  :mod:`repro.spice.backends` backend (``dgesv`` /
  ``numpy.linalg.solve`` / the blocked static LU); on the native
  backend the compiled kernel fuses stamping and device evaluation
  into the solve call, so its whole runtime lands here;
- ``rhs`` — right-hand-side evaluation (sources, ramps, storage
  history);
- ``probe`` — waveform probing (threshold-crossing extraction);
- ``step_control`` — timestep selection and accept/grow/shrink
  bookkeeping;
- ``predict`` — warm-start prediction: extrapolating the start state
  from integration history and measuring the prediction miss (the LTE
  estimate);
- ``retry`` — retry orchestration (Newton-failure halving and LTE
  rejection handling);
- ``cache`` — cache and fingerprint maintenance (gather memoisation,
  result-cache keys) in the harness;
- ``telemetry`` — span/report bookkeeping while profiling;
- ``netlist`` — gate-level netlist construction (the generator blocks a
  sweep synthesises, including copy-on-extend construction);
- ``mapping`` — technology mapping onto the library cells;
- ``sta`` — static timing analysis (scalar, vector and incremental
  engines), timed at the :func:`repro.synthesis.sta.static_timing`
  entry point only;
- ``structures`` — the Palacharla-style structure-model arithmetic in
  :mod:`repro.core.physical` (array/wakeup/regfile/ROB delay and area
  models, NLDM lookups outside STA), timed in segments disjoint from
  the nested netlist/mapping/sta/cache bookings;
- ``ipc`` — the trace-driven core timing model
  (:func:`repro.core.superscalar.simulate`, whichever kernel runs);
  result-cache lookups around it (``simulate_cached``) land in
  ``cache``, so warm sweep rows attribute their wall time instead of
  leaking it into ``overhead``.

The three synthesis stages never nest (generation, mapping and timing
are sequential phases of a sweep point), so the
:class:`ProfileAccountingError` double-count guard applies to them
unchanged.

Whatever none of the stages account for remains the *overhead* line,
derived by the reporter as ``total - tracked``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.runtime import telemetry

__all__ = ["ENABLED", "ProfileAccountingError", "add", "breakdown",
           "enable", "profiled", "reset", "snapshot"]


class ProfileAccountingError(RuntimeError):
    """Stage sub-timers exceed the measured wall time.

    Raised by :func:`breakdown` when the tracked stages sum to more than
    the row's wall clock (beyond timer-granularity slack): some stage is
    being double-counted — typically a new fused native stage whose time
    is also still accumulated by the Python path it replaced.  Without
    this check the ``overhead`` line just clamps to zero and the
    double-count ships silently in BENCH_perf.json.
    """

#: Hot-path guard: solver code only calls :func:`add` when this is True.
#: Kept separate from ``telemetry.ENABLED`` so ``--profile`` can collect
#: the stage timers without turning full telemetry on.
ENABLED = False

_STAGES = ("stamp", "device_eval", "solve", "rhs", "probe",
           "step_control", "predict", "retry", "cache", "telemetry",
           "netlist", "mapping", "sta", "structures", "ipc")

#: Registry timer names backing each stage.
_TIMER = {stage: f"solver.{stage}" for stage in _STAGES}


def enable(flag: bool = True) -> None:
    """Turn stage accumulation on or off (leaves accumulated totals)."""
    global ENABLED
    ENABLED = bool(flag)


def reset() -> None:
    """Zero all accumulated stage times and counts."""
    timers = telemetry._REG.timers
    for stage in _STAGES:
        timers.pop(_TIMER[stage], None)


def add(stage: str, seconds: float) -> None:
    """Accumulate *seconds* into *stage* (call only when ``ENABLED``)."""
    telemetry._REG.time_add(_TIMER[stage], seconds)


def _stage(stage: str) -> tuple[float, int]:
    cell = telemetry._REG.timers.get(_TIMER[stage])
    return (cell[0], int(cell[1])) if cell is not None else (0.0, 0)


def snapshot() -> dict[str, dict[str, float]]:
    """Raw accumulated ``{stage: {seconds, calls}}`` since the last reset."""
    out = {}
    for stage in _STAGES:
        seconds, calls = _stage(stage)
        out[stage] = {"seconds": seconds, "calls": calls}
    return out


#: Accounting slack before :func:`breakdown` declares a double-count:
#: per-call timer granularity and clock skew legitimately push the stage
#: sum a little past wall time, but a genuinely double-counted stage
#: overshoots by its whole runtime.
_SUM_SLACK_FRACTION = 0.02
_SUM_SLACK_SECONDS = 2e-3


def breakdown(total_seconds: float, check: bool = True) -> dict[str, float]:
    """Per-stage seconds plus the derived ``overhead`` line.

    ``device_eval`` time is recorded from inside ``stamp`` regions, so it
    is subtracted from the stamp line rather than double-counted;
    ``overhead`` is whatever part of *total_seconds* none of the solver
    stages account for (step control, sources, measurements, Python).

    With ``check`` (the default) the stage sum is verified against
    *total_seconds* and :class:`ProfileAccountingError` is raised when it
    exceeds wall time beyond measurement slack — the signature of a stage
    counted twice (see the exception docstring).
    """
    stamp_s, _ = _stage("stamp")
    dev_s, _ = _stage("device_eval")
    stamp = max(0.0, stamp_s - dev_s)
    out = {"stamp": round(stamp, 4), "device_eval": round(dev_s, 4)}
    tracked = stamp + dev_s
    for stage in _STAGES[2:]:
        seconds, _ = _stage(stage)
        out[stage] = round(seconds, 4)
        tracked += seconds
    if check and tracked > (total_seconds * (1.0 + _SUM_SLACK_FRACTION)
                            + _SUM_SLACK_SECONDS):
        raise ProfileAccountingError(
            f"profiled stages sum to {tracked:.4f}s but the row's wall "
            f"time is only {total_seconds:.4f}s — a stage is being "
            f"double-counted (stages: {out})")
    out["overhead"] = round(max(0.0, total_seconds - tracked), 4)
    return out


@contextmanager
def profiled() -> Iterator[None]:
    """Enable profiling (reset first) for the duration of a block."""
    reset()
    enable(True)
    try:
        yield
    finally:
        enable(False)
