"""Lightweight per-stage wall-clock counters for the solver hot paths.

The perf benchmarks (``benchmarks/perf/run_bench.py --profile``) want a
breakdown of where a characterisation run spends its time — matrix
stamping, linear solves, device-model evaluation — without slowing the
normal path down.  The hot loops therefore guard every measurement with
a single module-global ``ENABLED`` check (one attribute load and branch
when profiling is off) and accumulate raw ``perf_counter`` durations
into a flat dict when it is on.

Stages
------
- ``stamp`` — residual/Jacobian assembly (:meth:`MnaSystem.
  residual_and_jacobian` and the ensemble engine's stacked assembly),
  *including* device evaluation on the scalar per-element path;
- ``device_eval`` — batched device-model kernels (the vectorized FET
  paths time their model call separately; it is reported subtracted
  from ``stamp`` so the two never double-count);
- ``solve`` — dense linear solves (``dgesv`` / ``numpy.linalg.solve``,
  scalar and stacked).

Everything else (step control, source evaluation, measurement
bookkeeping, Python overhead) is the *overhead* line, derived by the
reporter as ``total - stamp - solve``.

Profiling is process-local and not thread-safe — it exists for the
single-threaded benchmark driver, not for production telemetry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["ENABLED", "add", "breakdown", "enable", "profiled", "reset",
           "snapshot"]

#: Hot-path guard: solver code only calls :func:`add` when this is True.
ENABLED = False

_STAGES = ("stamp", "device_eval", "solve")

_times: dict[str, float] = {stage: 0.0 for stage in _STAGES}
_counts: dict[str, int] = {stage: 0 for stage in _STAGES}


def enable(flag: bool = True) -> None:
    """Turn stage accumulation on or off (leaves accumulated totals)."""
    global ENABLED
    ENABLED = bool(flag)


def reset() -> None:
    """Zero all accumulated stage times and counts."""
    for stage in _STAGES:
        _times[stage] = 0.0
        _counts[stage] = 0


def add(stage: str, seconds: float) -> None:
    """Accumulate *seconds* into *stage* (call only when ``ENABLED``)."""
    _times[stage] += seconds
    _counts[stage] += 1


def snapshot() -> dict[str, dict[str, float]]:
    """Raw accumulated ``{stage: {seconds, calls}}`` since the last reset."""
    return {stage: {"seconds": _times[stage], "calls": _counts[stage]}
            for stage in _STAGES}


def breakdown(total_seconds: float) -> dict[str, float]:
    """Per-stage seconds plus the derived ``overhead`` line.

    ``device_eval`` time is recorded from inside ``stamp`` regions, so it
    is subtracted from the stamp line rather than double-counted;
    ``overhead`` is whatever part of *total_seconds* none of the solver
    stages account for (step control, sources, measurements, Python).
    """
    stamp = max(0.0, _times["stamp"] - _times["device_eval"])
    tracked = stamp + _times["device_eval"] + _times["solve"]
    return {
        "stamp": round(stamp, 4),
        "device_eval": round(_times["device_eval"], 4),
        "solve": round(_times["solve"], 4),
        "overhead": round(max(0.0, total_seconds - tracked), 4),
    }


@contextmanager
def profiled() -> Iterator[None]:
    """Enable profiling (reset first) for the duration of a block."""
    reset()
    enable(True)
    try:
        yield
    finally:
        enable(False)
