"""Unified logging configuration for CLIs and library diagnostics.

Library modules (:mod:`repro.runtime.executor`,
:mod:`repro.core.ipc_native`, ...) log through standard per-module
loggers under the ``repro`` namespace and never configure handlers —
that is an application decision.  This module is the one place the
applications (``python -m repro``, ``run_bench.py``) make it:

- :func:`configure` installs a single stream handler with a consistent
  ``LEVEL module: message`` format on the ``repro`` root logger,
  mapping ``-v`` counts and ``--log-level`` names to levels;
- :func:`add_cli_flags` / :func:`configure_from_args` wire the standard
  ``-v/--verbose`` and ``--log-level`` flags into any argparse-based
  entry point;
- :func:`capture_warnings` additionally tees WARNING-and-above records
  into :func:`repro.runtime.telemetry.warn`, so run reports list every
  degradation (serial fallback, failed kernel compile) the run hit.

The environment variable ``REPRO_LOG_LEVEL`` supplies a default level
when the flags don't.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

__all__ = ["add_cli_flags", "capture_warnings", "configure",
           "configure_from_args", "get_logger"]

#: The namespace every library logger lives under.
ROOT = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (accepts dotted suffixes)."""
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def _resolve_level(level: str | int | None, verbose: int) -> int:
    if isinstance(level, int):
        return level
    name = level or os.environ.get("REPRO_LOG_LEVEL")
    if name:
        resolved = logging.getLevelName(str(name).upper())
        if isinstance(resolved, int):
            return resolved
        raise ValueError(f"unknown log level {name!r}")
    if verbose >= 2:
        return logging.DEBUG
    if verbose == 1:
        return logging.INFO
    return logging.WARNING


class _StderrHandler(logging.StreamHandler):
    """Writes to the *current* ``sys.stderr``.

    Binding the stream at emit time (instead of handler construction)
    keeps the handler valid when the surrounding environment swaps
    ``sys.stderr`` out and back — pytest's capture does exactly that.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:               # StreamHandler protocol
        pass


def configure(level: str | int | None = None, verbose: int = 0,
              stream=None) -> logging.Logger:
    """Install (or update) the ``repro`` handler and set the level.

    Idempotent: repeated calls reuse the existing handler rather than
    stacking duplicates, so tests and REPL users can reconfigure freely.
    Records still propagate to the root logger, so log-capture tooling
    (pytest's ``caplog``) keeps working after a CLI configured logging.
    """
    logger = logging.getLogger(ROOT)
    logger.setLevel(_resolve_level(level, verbose))
    # Progress heartbeats ride the same verbosity dial: INFO or finer
    # turns the stderr status lines on (see repro.runtime.progress).
    from repro.runtime import progress
    progress.set_stderr(logger.level <= logging.INFO)
    handler = next((h for h in logger.handlers
                    if getattr(h, "_repro_handler", False)), None)
    if handler is not None and stream is not None:
        logger.removeHandler(handler)
        handler = None
    if handler is None:
        handler = (_StderrHandler() if stream is None
                   else logging.StreamHandler(stream))
        handler._repro_handler = True
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    return logger


class _TelemetryHandler(logging.Handler):
    """Tees WARNING+ records into the telemetry registry's warning list."""

    def emit(self, record: logging.LogRecord) -> None:
        from repro.runtime import telemetry
        try:
            telemetry.warn(f"{record.name}: {record.getMessage()}")
        except Exception:                          # pragma: no cover
            self.handleError(record)


def capture_warnings() -> logging.Handler:
    """Route ``repro`` warnings into the run report; returns the handler.

    Safe to call repeatedly (one capture handler is kept installed).
    """
    logger = logging.getLogger(ROOT)
    for h in logger.handlers:
        if isinstance(h, _TelemetryHandler):
            return h
    handler = _TelemetryHandler(level=logging.WARNING)
    logger.addHandler(handler)
    return handler


def add_cli_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``-v/--verbose`` and ``--log-level`` flags."""
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v: info, -vv: debug diagnostics")
    parser.add_argument("--log-level", default=None,
                        metavar="LEVEL",
                        help="explicit log level name (overrides -v and "
                             "REPRO_LOG_LEVEL)")


def configure_from_args(args: argparse.Namespace) -> logging.Logger:
    """Apply :func:`configure` from parsed :func:`add_cli_flags` flags."""
    return configure(level=getattr(args, "log_level", None),
                     verbose=getattr(args, "verbose", 0))
