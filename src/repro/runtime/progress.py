"""Live progress heartbeats: phase, completed/total units, ETA.

Long runs — library characterisation (hundreds of arcs), Monte Carlo
yield (thousands of samples), the 1008-point DSE grid — were silent
until done.  This module is the streaming seam: drivers declare a
*phase* with a unit total, tick it as units complete, and heartbeats
flow to two sinks:

- **stderr**, when library logging is at INFO or finer (the ``-v``
  CLI flag) — one rewritten status line per phase
  (``[dse] 412/1008 41% eta 0.8s``), throttled to a few per second;
- an **ndjson stream file**, when ``REPRO_PROGRESS=PATH`` names one —
  one JSON object per heartbeat (``{"event", "phase", "done",
  "total", "eta_seconds", "elapsed_seconds", "t"}``), append-only so
  a tail-following consumer (the future characterisation-as-a-service
  daemon) can stream it live.

Cost model matches :mod:`repro.runtime.telemetry`: every call site is
one module-attribute load and branch while disabled, and heartbeats
are rate-limited (``begin``/``end`` and the final unit always emit).
Phases nest (a DSE combo inside the sweep); emission happens in the
*parent* process only — workers tick nothing, the parent ticks once
per completed task as results arrive — so the stream is append-ordered
and free of interleaving.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "ENABLED",
    "PROGRESS_ENV",
    "Phase",
    "add_sink",
    "begin",
    "end",
    "get_context",
    "phase",
    "refresh",
    "remove_sink",
    "set_context",
    "stream_path",
    "update",
]

#: Hot-path guard: call sites only do work when this is True.  Kept in
#: sync with the sinks by :func:`refresh`.
ENABLED = False

#: Environment variable naming the ndjson stream file.
PROGRESS_ENV = "REPRO_PROGRESS"

#: Minimum seconds between throttled heartbeats of one phase.
_MIN_INTERVAL = 0.2

_stderr_wanted = False          # set by repro.runtime.log.configure()
_stream: io.IOBase | None = None
_stream_pid: int | None = None
_stream_failed = False
_active: list["Phase"] = []

#: In-process subscribers: callables receiving each heartbeat record
#: (a dict).  The service scheduler registers one to route ticks to the
#: jobs that produced them (see :func:`set_context`).  A raising sink is
#: never allowed to break the instrumented computation.
_sinks: list[Callable[[dict], None]] = []

#: Thread-local context label stamped on every record emitted by this
#: thread (as ``"ctx"``), so a multiplexed stream — several service jobs
#: heartbeating concurrently — can be demultiplexed per job.
_ctx_tls = threading.local()


def stream_path() -> str | None:
    """The ndjson sink path (``REPRO_PROGRESS``), or None."""
    return os.environ.get(PROGRESS_ENV) or None


def set_stderr(wanted: bool) -> None:
    """Ask for (or retract) stderr heartbeats; called by log.configure."""
    global _stderr_wanted
    _stderr_wanted = bool(wanted)
    refresh()


def refresh() -> None:
    """Re-derive :data:`ENABLED` from the env knob, logging level and sinks."""
    global ENABLED
    ENABLED = _stderr_wanted or stream_path() is not None or bool(_sinks)


def add_sink(fn: Callable[[dict], None]) -> None:
    """Subscribe *fn* to every heartbeat record emitted in this process."""
    if fn not in _sinks:
        _sinks.append(fn)
    refresh()


def remove_sink(fn: Callable[[dict], None]) -> None:
    """Unsubscribe a sink added with :func:`add_sink` (no-op if absent)."""
    if fn in _sinks:
        _sinks.remove(fn)
    refresh()


def set_context(label: str | None) -> str | None:
    """Set this thread's context label; returns the previous one.

    While set, every record emitted by this thread carries it as
    ``"ctx"`` — the seam that lets the service scheduler attribute
    heartbeats from concurrent jobs to the right client.
    """
    previous = get_context()
    _ctx_tls.value = label
    return previous


def get_context() -> str | None:
    """This thread's context label, or None."""
    return getattr(_ctx_tls, "value", None)


def _open_stream() -> io.IOBase | None:
    """The ndjson stream fd, (re)opened per process.

    A forked pool worker inherits the parent's open file *object*,
    including its userspace buffer: writes from both processes through
    that shared buffer interleave mid-record and duplicate whatever was
    buffered at fork time.  Keying the stream on ``os.getpid()`` makes
    each process open its own ``O_APPEND`` fd, and records are written
    unbuffered, one :func:`os.write` per line, so concurrent emitters
    only ever interleave *whole* lines.
    """
    global _stream, _stream_pid, _stream_failed
    path = stream_path()
    if path is None or _stream_failed:
        return None
    pid = os.getpid()
    if _stream is None or _stream.name != path or _stream_pid != pid:
        if _stream is not None and _stream_pid == pid:
            try:
                _stream.close()
            except OSError:                  # pragma: no cover - best effort
                pass
        _stream = None
        try:
            _stream = open(path, "ab", buffering=0)
        except OSError:
            _stream_failed = True
            return None
        _stream_pid = pid
    return _stream


class Phase:
    """One progress phase: a named unit counter with an optional total."""

    __slots__ = ("name", "total", "done", "t0", "_last_emit", "_closed")

    def __init__(self, name: str, total: int | None) -> None:
        self.name = name
        self.total = int(total) if total is not None else None
        self.done = 0
        self.t0 = time.perf_counter()
        self._last_emit = 0.0
        self._closed = False

    # -- ticking -------------------------------------------------------------

    def step(self, n: int = 1) -> None:
        """Mark *n* more units complete and maybe emit a heartbeat."""
        self.done += n
        self._emit("tick")

    def set_done(self, done: int) -> None:
        """Set the absolute completed-unit count."""
        self.done = int(done)
        self._emit("tick")

    # -- emission ------------------------------------------------------------

    def _eta(self) -> float | None:
        if not self.total or self.done <= 0:
            return None
        elapsed = time.perf_counter() - self.t0
        remaining = max(0, self.total - self.done)
        return elapsed / self.done * remaining

    def _emit(self, event: str) -> None:
        now = time.perf_counter()
        final = (event != "tick"
                 or (self.total is not None and self.done >= self.total))
        if not final and now - self._last_emit < _MIN_INTERVAL:
            return
        self._last_emit = now
        elapsed = now - self.t0
        eta = self._eta()
        if _stderr_wanted:
            frac = (f" {100 * self.done // self.total:3d}%"
                    if self.total else "")
            eta_s = f" eta {eta:.1f}s" if eta is not None else ""
            total_s = f"/{self.total}" if self.total is not None else ""
            end_ch = "\n" if event == "end" else "\r"
            try:
                sys.stderr.write(f"[{self.name}] {self.done}{total_s}"
                                 f"{frac}{eta_s}   {end_ch}")
                sys.stderr.flush()
            except OSError:                  # pragma: no cover - closed pipe
                pass
        stream = _open_stream()
        if stream is not None or _sinks:
            record: dict = {
                "event": event,
                "phase": self.name,
                "done": self.done,
                "elapsed_seconds": round(elapsed, 4),
                "t": round(time.time(), 3),
            }
            if self.total is not None:
                record["total"] = self.total
            if eta is not None:
                record["eta_seconds"] = round(eta, 3)
            ctx = get_context()
            if ctx is not None:
                record["ctx"] = ctx
            if stream is not None:
                record["pid"] = os.getpid()
                try:
                    # One os.write per record (the fd is unbuffered and
                    # O_APPEND): lines from concurrent processes never tear.
                    stream.write((json.dumps(record) + "\n").encode())
                except OSError:              # pragma: no cover - full disk
                    pass
            for sink in list(_sinks):
                try:
                    sink(record)
                except Exception:            # noqa: BLE001 - sinks must not
                    pass                     # break the instrumented run


def begin(name: str, total: int | None = None) -> Phase | None:
    """Open a progress phase (None while disabled)."""
    if not ENABLED:
        return None
    ph = Phase(name, total)
    _active.append(ph)
    ph._emit("begin")
    return ph


def update(ph: Phase | None, n: int = 1) -> None:
    """Tick *n* completed units on *ph* (no-op for None)."""
    if ph is not None:
        ph.step(n)


def end(ph: Phase | None) -> None:
    """Close a phase, emitting the final heartbeat."""
    if ph is None or ph._closed:
        return
    ph._closed = True
    ph._emit("end")
    if ph in _active:
        _active.remove(ph)


@contextmanager
def phase(name: str, total: int | None = None) -> Iterator[Phase | None]:
    """``with progress.phase("dse", total=n) as ph: ... ph.step()``."""
    ph = begin(name, total)
    try:
        yield ph
    finally:
        end(ph)


if stream_path() is not None:               # pragma: no cover - env driven
    ENABLED = True
