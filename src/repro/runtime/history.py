"""Run-history store and regression analytics over ``runs/`` reports.

``BENCH_perf.json`` is a single published snapshot; this module is the
run-over-run memory.  Every report :func:`repro.runtime.report.
write_report` lands is summarised into an **append-only ndjson index**
(one JSON object per line, ``history.ndjson`` next to the reports,
``REPRO_HISTORY`` overrides the path), keyed by an **environment
fingerprint hash** so wall-clock numbers are only ever compared within
one machine identity (python x machine x cpu count x solver backend).

On top of the index sit the ``python -m repro perf`` analytics:

- ``list`` — recent runs (target, status, duration, env key);
- ``diff A B`` — span/benchmark/duration deltas between two reports,
  flagging rows beyond a relative threshold;
- ``trend NAME`` — one benchmark's seconds across the index, env-keyed;
- ``regress --baseline BENCH_perf.json`` — the CI perf gate: compares
  a fresh benchmark-bearing run report against the published baseline
  and exits nonzero on any seeded row slower than the tolerance, with
  the same env-fingerprint self-skip the old ``run_bench --check``
  gate had (cross-machine wall-clock comparison is meaningless).

The index is a cache of the reports, not a source of truth: a missing
or corrupt line degrades to reading the report JSONs themselves, and
unparseable lines are skipped, never fatal.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.runtime import report as run_report

__all__ = [
    "HISTORY_ENV",
    "append_entry",
    "default_history_path",
    "diff_reports",
    "env_key",
    "format_diff",
    "index_entry",
    "load_entries",
    "regress_check",
    "resolve_report",
]

#: Environment variable overriding where the ndjson index lives.
HISTORY_ENV = "REPRO_HISTORY"

#: Relative slowdown beyond which ``perf diff`` flags a row.
DIFF_THRESHOLD = 0.10

#: Absolute floor below which timing deltas are scheduler noise.
MIN_SECONDS = 0.002


def default_history_path() -> Path:
    """``REPRO_HISTORY`` or ``history.ndjson`` beside the run reports."""
    env = os.environ.get(HISTORY_ENV)
    return Path(env) if env else run_report.default_runs_dir() / \
        "history.ndjson"


def env_key(env: dict) -> str:
    """Short stable hash of the machine identity a report ran on.

    Only fields that make wall-clock numbers comparable participate:
    interpreter version, machine architecture, CPU count, and the
    resolved solver backend.  Worker count and cache knobs deliberately
    do not — those are per-run configuration, visible in the report.
    """
    identity = {
        "python": env.get("python", "?"),
        "machine": env.get("machine", "?"),
        "cpu_count": env.get("cpu_count", "?"),
        "backend": env.get("solver_backend", {}).get("resolved", "?"),
    }
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode()).hexdigest()
    return digest[:12]


def index_entry(report: dict, path: str | Path) -> dict:
    """The one-line index summary of a written report."""
    env = report.get("env", {})
    entry = {
        "path": str(path),
        "target": report.get("target", "?"),
        "timestamp": report.get("timestamp"),
        "status": report.get("status", "?"),
        "env_key": env_key(env),
        "workers": env.get("workers"),
        "backend": env.get("solver_backend", {}).get("resolved"),
        "schema": report.get("schema"),
    }
    if "duration_seconds" in report:
        entry["duration_seconds"] = report["duration_seconds"]
    benches = report.get("benchmarks")
    if isinstance(benches, dict):
        entry["benchmarks"] = {
            name: cell.get("seconds") for name, cell in benches.items()
            if isinstance(cell, dict) and cell.get("seconds") is not None}
    return entry


def _append_line(path: Path, line: bytes) -> None:
    """Append *line* to *path* as one ``os.write`` on an ``O_APPEND`` fd.

    Concurrent appenders (sweep workers and the service daemon all land
    reports) must never interleave partial lines.  Buffered ``open(...,
    "a")`` writes tear once an entry outgrows the IO buffer — the
    flush splits it into several ``write(2)`` calls and another
    process's line can land between them.  A single ``os.write`` on an
    ``O_APPEND`` descriptor is atomic for regular files on every
    platform we run on; where that guarantee is shaky (network
    filesystems) the advisory lock below serialises writers, and is
    quietly skipped where unsupported.
    """
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666)
    try:
        try:
            import fcntl
            fcntl.flock(fd, fcntl.LOCK_EX)
        except (ImportError, OSError):
            pass                       # O_APPEND atomicity is the fallback
        os.write(fd, line)
    finally:
        os.close(fd)                   # also releases the advisory lock


def append_entry(report: dict, path: str | Path,
                 history_path: str | Path | None = None) -> Path | None:
    """Append the report's index line; best-effort (None on failure).

    The line is emitted whole, via :func:`_append_line`, so index files
    shared by concurrent processes stay parseable line-by-line.
    """
    hist = Path(history_path) if history_path is not None \
        else default_history_path()
    line = (json.dumps(index_entry(report, path), sort_keys=False)
            + "\n").encode()
    try:
        hist.parent.mkdir(parents=True, exist_ok=True)
        _append_line(hist, line)
    except OSError:
        return None
    return hist


def load_entries(history_path: str | Path | None = None) -> list[dict]:
    """All parseable index lines, oldest first (corrupt lines skipped)."""
    hist = Path(history_path) if history_path is not None \
        else default_history_path()
    entries: list[dict] = []
    try:
        text = hist.read_text()
    except OSError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def resolve_report(ref: str,
                   history_path: str | Path | None = None) -> tuple[Path, dict]:
    """A report path + parsed dict from a path or a history reference.

    *ref* may be a report JSON path, an index ordinal (``-1`` = most
    recent entry, ``-2`` the one before, ...), or a substring matched
    against indexed report paths (most recent match wins).
    """
    candidate = Path(ref)
    if candidate.is_file():
        return candidate, json.loads(candidate.read_text())
    entries = load_entries(history_path)
    try:
        ordinal = int(ref)
    except ValueError:
        ordinal = None
    if ordinal is not None and ordinal < 0 and len(entries) >= -ordinal:
        path = Path(entries[ordinal]["path"])
        return path, json.loads(path.read_text())
    for entry in reversed(entries):
        if ref in entry.get("path", ""):
            path = Path(entry["path"])
            return path, json.loads(path.read_text())
    raise FileNotFoundError(
        f"no report matches {ref!r} (not a file, ordinal, or indexed "
        f"path substring; index: {Path(history_path) if history_path else default_history_path()})")


# -- diff ---------------------------------------------------------------------

def _bench_seconds(report: dict) -> dict[str, float]:
    benches = report.get("benchmarks", {})
    out = {}
    if isinstance(benches, dict):
        for name, cell in benches.items():
            seconds = cell.get("seconds") if isinstance(cell, dict) else cell
            if isinstance(seconds, (int, float)):
                out[name] = float(seconds)
    return out


def _span_seconds(report: dict) -> dict[str, float]:
    return {path: cell.get("seconds", 0.0)
            for path, cell in report.get("span_totals", {}).items()}


def diff_reports(a: dict, b: dict, threshold: float = DIFF_THRESHOLD,
                 min_seconds: float = MIN_SECONDS) -> dict:
    """Structured delta between two run reports (A = before, B = after).

    Rows cover total duration, per-benchmark seconds, and per-path span
    totals; a row is *flagged* when B is slower than A by more than
    *threshold* (relative) **and** *min_seconds* (absolute).  Counter
    deltas ride along unflagged — integers differ for structural
    reasons, not perf noise.
    """
    rows: list[dict] = []

    def add(kind: str, name: str, va: float | None, vb: float | None) -> None:
        if va is None or vb is None:
            rows.append({"kind": kind, "name": name, "a": va, "b": vb,
                         "flagged": False, "note": "only in one run"})
            return
        delta = vb - va
        ratio = vb / va if va else None
        flagged = bool(delta > min_seconds and va > 0
                       and delta / va > threshold)
        rows.append({"kind": kind, "name": name, "a": round(va, 6),
                     "b": round(vb, 6), "delta": round(delta, 6),
                     "ratio": round(ratio, 4) if ratio is not None else None,
                     "flagged": flagged})

    da, db = a.get("duration_seconds"), b.get("duration_seconds")
    if da is not None or db is not None:
        add("duration", "total", da, db)
    bench_a, bench_b = _bench_seconds(a), _bench_seconds(b)
    for name in sorted(set(bench_a) | set(bench_b)):
        add("benchmark", name, bench_a.get(name), bench_b.get(name))
    span_a, span_b = _span_seconds(a), _span_seconds(b)
    for name in sorted(set(span_a) | set(span_b)):
        va, vb = span_a.get(name), span_b.get(name)
        if (va or 0.0) < min_seconds and (vb or 0.0) < min_seconds:
            continue                      # both below the noise floor
        add("span", name, va, vb)

    counters_a = a.get("metrics", {}).get("counters", {})
    counters_b = b.get("metrics", {}).get("counters", {})
    counter_deltas = {
        name: counters_b.get(name, 0) - counters_a.get(name, 0)
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_b.get(name, 0) != counters_a.get(name, 0)}

    env_match = env_key(a.get("env", {})) == env_key(b.get("env", {}))
    return {
        "rows": rows,
        "flags": [r for r in rows if r["flagged"]],
        "counter_deltas": counter_deltas,
        "env_match": env_match,
        "threshold": threshold,
    }


def format_diff(diff: dict, verbose: bool = False) -> str:
    """Human-readable rendering of :func:`diff_reports` output."""
    lines: list[str] = []
    if not diff["env_match"]:
        lines.append("note: environment fingerprints differ — wall-clock "
                     "deltas are not meaningful across machines")
    shown = [r for r in diff["rows"]
             if verbose or r["flagged"] or r["kind"] in ("duration",
                                                         "benchmark")]
    for row in shown:
        if row.get("note"):
            lines.append(f"  {row['kind']:<10} {row['name']}: "
                         f"{row['a']} -> {row['b']} ({row['note']})")
            continue
        mark = "  ** FLAG" if row["flagged"] else ""
        ratio = f" ({row['ratio']:.2f}x)" if row.get("ratio") else ""
        lines.append(f"  {row['kind']:<10} {row['name']}: "
                     f"{row['a']:.4f}s -> {row['b']:.4f}s{ratio}{mark}")
    flags = diff["flags"]
    if flags:
        lines.append(f"{len(flags)} row(s) flagged beyond "
                     f"{diff['threshold']:.0%} slowdown")
    else:
        lines.append("clean: no row slower beyond "
                     f"{diff['threshold']:.0%}")
    if verbose and diff["counter_deltas"]:
        lines.append("counter deltas:")
        for name, delta in diff["counter_deltas"].items():
            lines.append(f"  {name}: {delta:+d}")
    return "\n".join(lines)


# -- regression gate ----------------------------------------------------------

def regress_check(fresh_benchmarks: dict[str, float], baseline: dict,
                  current_env: dict | None = None,
                  tolerance: float = 0.25) -> tuple[int, list[str]]:
    """The CI perf gate: (exit status, report lines).

    *baseline* is a published ``BENCH_perf.json`` document.  Rows whose
    recorded entry is missing or carries ``seed_seconds: null`` are not
    gated; the gate self-skips (status 0, with a line saying so) when
    the recorded environment fingerprint (machine / python / cpu count)
    does not match *current_env*.
    """
    lines: list[str] = []
    recorded_env = baseline.get("environment", {})
    if current_env is None:
        import platform
        current_env = {"cpu_count": os.cpu_count(),
                       "python": platform.python_version(),
                       "machine": platform.machine()}
    mismatch = {k: (recorded_env.get(k), v) for k, v in current_env.items()
                if recorded_env.get(k) != v}
    if mismatch:
        lines.append(f"regress skipped: environment fingerprint mismatch "
                     f"(recorded vs current): {mismatch}")
        return 0, lines
    failures = []
    for name, entry in baseline.get("benchmarks", {}).items():
        if entry.get("seed_seconds") is None:
            continue                     # benchmark newer than the baseline
        reference = entry.get("seconds")
        fresh = fresh_benchmarks.get(name)
        if not reference or fresh is None:
            continue
        limit = reference * (1.0 + tolerance)
        if fresh > limit:
            failures.append(f"{name}: {fresh:.4f}s vs recorded "
                            f"{reference:.4f}s (limit {limit:.4f}s)")
    if failures:
        lines.append(f"regress FAILED ({len(failures)} regression(s) "
                     f"beyond {tolerance:.0%}):")
        lines.extend(f"  {line}" for line in failures)
        return 1, lines
    lines.append(f"regress passed: no seeded benchmark slower than "
                 f"{tolerance:.0%} over baseline")
    return 0, lines
