"""Process-aware telemetry: metrics registry plus hierarchical spans.

The pipeline spans four instrumentation-blind layers (scalar/ensemble
SPICE solves, NLDM characterisation, STA/synthesis, IPC sweeps) that fan
out across worker processes and a persistent result cache.  This module
is their shared observability substrate:

- a **metrics registry** with three instrument kinds —

  * *counters* (monotonic integers: Newton iterations, LTE rejections,
    cache hits),
  * *timers* (accumulated wall-clock seconds + call counts: the solver
    stage breakdown ``run_bench --profile`` reports),
  * *distributions* (count/sum/min/max summaries of observed values:
    ensemble batch occupancy, cycles per simulation);

- **hierarchical spans**: nested timed regions forming a tree per
  process (``with telemetry.span("characterize:nand2"): ...``), with a
  flat per-path total view (:func:`span_totals`) that survives
  cross-process aggregation;

- **deterministic cross-process merge**: worker processes serialise a
  registry snapshot per task back through ``parallel_map``'s result
  channel and the parent folds them in **task order**
  (:func:`merge_snapshot`), so integer metrics are bit-identical to a
  serial run whatever the worker count.  Worker span paths are grafted
  under the parent's span active at the ``parallel_map`` call site.

Cost model: the *disabled* hot path is one module-attribute load and
branch per instrumentation site (the same pattern
:mod:`repro.runtime.profiling` established), and sites sit at natural
aggregation boundaries — per solve, per batch, per run — never inside
per-iteration inner loops; counts accumulate in locals and flush once.
The enabled path appends to plain dicts.

Environment knob: ``REPRO_TELEMETRY=1`` force-enables collection at
import time (``0`` force-disables even if a caller asks for it); by
default collection is off until a driver — the ``python -m repro`` CLI,
``run_bench --profile``/``--report`` — calls :func:`enable`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "ENABLED",
    "count",
    "counters",
    "current_path",
    "enable",
    "enabled_by_env",
    "force_disabled_by_env",
    "merge_snapshot",
    "observe",
    "reset",
    "snapshot",
    "span",
    "span_totals",
    "span_tree",
    "time_add",
    "timers",
    "warn",
    "warnings",
]

#: Hot-path guard: instrumentation sites only touch the registry when
#: this is True.  One attribute load + branch when telemetry is off.
ENABLED = False

#: Separator used in flattened span paths ("fig11/characterize/cell:inv").
PATH_SEP = "/"


def enabled_by_env() -> bool:
    """True iff ``REPRO_TELEMETRY`` asks for collection (``1``/``on``)."""
    return os.environ.get("REPRO_TELEMETRY", "").lower() in ("1", "true", "on")


def force_disabled_by_env() -> bool:
    """True iff ``REPRO_TELEMETRY`` explicitly disables collection."""
    return os.environ.get("REPRO_TELEMETRY", "").lower() in ("0", "false",
                                                             "off")


class _Span:
    """One node of the span tree (name, relative start, duration, children)."""

    __slots__ = ("name", "t_start", "seconds", "children", "meta")

    def __init__(self, name: str, t_start: float) -> None:
        self.name = name
        self.t_start = t_start
        self.seconds = 0.0
        self.children: list[_Span] = []
        self.meta: dict[str, Any] = {}

    def to_dict(self) -> dict:
        node = {
            "name": self.name,
            "t_start": round(self.t_start, 6),
            "seconds": round(self.seconds, 6),
        }
        if self.meta:
            node["meta"] = dict(self.meta)
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        return node

    @classmethod
    def from_dict(cls, node: dict) -> "_Span":
        span = cls(str(node.get("name", "?")),
                   float(node.get("t_start", 0.0)))
        span.seconds = float(node.get("seconds", 0.0))
        span.meta = dict(node.get("meta", {}))
        span.children = [cls.from_dict(c) for c in node.get("children", ())]
        return span


class _Registry:
    """The per-process metric store.  One instance per process."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list[float]] = {}   # name -> [seconds, calls]
        self.dists: dict[str, list[float]] = {}    # name -> [n, sum, min, max]
        self.roots: list[_Span] = []
        self._stack_tls = threading.local()
        self.span_totals: dict[str, list[float]] = {}  # path -> [count, secs]
        self.warnings: list[str] = []
        self.epoch = time.perf_counter()

    @property
    def stack(self) -> list[_Span]:
        """This thread's open-span stack.

        Thread-local so concurrent service jobs (scheduler threads) each
        build their own span hierarchy instead of corrupting one shared
        stack; counters/timers/roots stay registry-wide (their updates
        are associative and append-only).
        """
        stack = getattr(self._stack_tls, "value", None)
        if stack is None:
            stack = self._stack_tls.value = []
        return stack

    # -- instruments --------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def time_add(self, name: str, seconds: float, calls: int = 1) -> None:
        cell = self.timers.get(name)
        if cell is None:
            self.timers[name] = [seconds, calls]
        else:
            cell[0] += seconds
            cell[1] += calls

    def observe(self, name: str, value: float) -> None:
        cell = self.dists.get(name)
        if cell is None:
            self.dists[name] = [1, value, value, value]
        else:
            cell[0] += 1
            cell[1] += value
            if value < cell[2]:
                cell[2] = value
            if value > cell[3]:
                cell[3] = value

    def warn(self, message: str) -> None:
        self.warnings.append(str(message))

    # -- spans ---------------------------------------------------------------

    def span_path(self) -> str:
        return PATH_SEP.join(s.name for s in self.stack)

    def open_span(self, name: str) -> _Span:
        node = _Span(name, time.perf_counter() - self.epoch)
        if self.stack:
            self.stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self.stack.append(node)
        return node

    def close_span(self, node: _Span, t0: float) -> None:
        node.seconds = time.perf_counter() - t0
        # Tolerate exceptions having unwound intermediate spans.
        while self.stack and self.stack[-1] is not node:
            self.stack.pop()
        if self.stack:
            self.stack.pop()
        path = (PATH_SEP.join([self.span_path(), node.name])
                if self.stack else node.name)
        cell = self.span_totals.get(path)
        if cell is None:
            self.span_totals[path] = [1, node.seconds]
        else:
            cell[0] += 1
            cell[1] += node.seconds


_REG = _Registry()

if enabled_by_env():                               # pragma: no cover - env
    ENABLED = True


def enable(flag: bool = True) -> None:
    """Turn collection on/off (leaves accumulated data in place).

    ``REPRO_TELEMETRY=0`` wins over ``enable(True)`` so a user can force
    the zero-overhead path through any driver.
    """
    global ENABLED
    if flag and force_disabled_by_env():
        ENABLED = False
        return
    ENABLED = bool(flag)


def reset() -> None:
    """Drop all accumulated metrics, spans and warnings."""
    global _REG
    _REG = _Registry()


# -- module-level instrument helpers (call only behind an ENABLED check
#    on hot paths; cold paths may call unconditionally) ----------------------

def count(name: str, n: int = 1) -> None:
    """Add *n* to counter *name*."""
    if ENABLED:
        _REG.count(name, n)


def time_add(name: str, seconds: float, calls: int = 1) -> None:
    """Accumulate wall-clock *seconds* into timer *name*."""
    if ENABLED:
        _REG.time_add(name, seconds, calls)


def observe(name: str, value: float) -> None:
    """Fold *value* into the count/sum/min/max summary of *name*."""
    if ENABLED:
        _REG.observe(name, float(value))


def warn(message: str) -> None:
    """Record a warning line for the run report (always collected)."""
    _REG.warn(message)


@contextmanager
def span(name: str, **meta) -> Iterator[None]:
    """A timed hierarchical region; nests under the enclosing span.

    No-op (and allocation-free) while telemetry is disabled.
    """
    if not ENABLED:
        yield
        return
    node = _REG.open_span(name)
    if meta:
        node.meta.update(meta)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        _REG.close_span(node, t0)


def current_path() -> str:
    """Flattened path of the innermost open span ('' at top level)."""
    return _REG.span_path()


# -- snapshots and deterministic merge ---------------------------------------

def snapshot() -> dict:
    """Serialisable copy of the registry (ships across process pools).

    Workers call this once per task (on a freshly reset registry, so the
    snapshot *is* the task's delta); the parent merges snapshots in task
    order with :func:`merge_snapshot`.  Open spans are not included —
    only completed spans have defined durations.
    """
    return {
        "counters": dict(_REG.counters),
        "timers": {k: list(v) for k, v in _REG.timers.items()},
        "dists": {k: list(v) for k, v in _REG.dists.items()},
        "span_totals": {k: list(v) for k, v in _REG.span_totals.items()},
        "span_tree": [root.to_dict() for root in _REG.roots],
        "warnings": list(_REG.warnings),
    }


def merge_snapshot(snap: dict, prefix: str | None = None,
                   task: int | None = None) -> None:
    """Fold a worker snapshot into this process's registry.

    Counters/timers/span totals add; distributions merge count/sum and
    take elementwise min/max — all associative and applied in task
    order, so the merged totals are independent of worker scheduling.
    *prefix* (default: the caller's current span path) grafts the
    worker's span paths under the span that launched the workers.

    The worker's completed **span tree** is grafted as child nodes of
    the currently open span (or as new roots at top level), each tagged
    ``meta["task"] = task`` so the trace exporter can reconstruct the
    deterministic worker schedule.  Worker ``t_start`` values are
    relative to the worker task's own epoch, not the parent's.
    """
    if prefix is None:
        prefix = _REG.span_path()
    for node in snap.get("span_tree", ()):
        span = _Span.from_dict(node)
        if task is not None:
            span.meta.setdefault("task", task)
        span.meta.setdefault("worker_task", True)
        if _REG.stack:
            _REG.stack[-1].children.append(span)
        else:
            _REG.roots.append(span)
    for name, n in snap.get("counters", {}).items():
        _REG.count(name, n)
    for name, (seconds, calls) in snap.get("timers", {}).items():
        _REG.time_add(name, seconds, int(calls))
    for name, (n, total, lo, hi) in snap.get("dists", {}).items():
        cell = _REG.dists.get(name)
        if cell is None:
            _REG.dists[name] = [n, total, lo, hi]
        else:
            cell[0] += n
            cell[1] += total
            if lo < cell[2]:
                cell[2] = lo
            if hi > cell[3]:
                cell[3] = hi
    for path, (n, seconds) in snap.get("span_totals", {}).items():
        full = f"{prefix}{PATH_SEP}{path}" if prefix else path
        cell = _REG.span_totals.get(full)
        if cell is None:
            _REG.span_totals[full] = [n, seconds]
        else:
            cell[0] += n
            cell[1] += seconds
    for message in snap.get("warnings", []):
        _REG.warn(message)


# -- read-side views ----------------------------------------------------------

def counters() -> dict[str, int]:
    """Copy of all counters."""
    return dict(_REG.counters)


def timers() -> dict[str, dict[str, float]]:
    """``{name: {"seconds": s, "calls": n}}`` for all timers."""
    return {k: {"seconds": v[0], "calls": int(v[1])}
            for k, v in _REG.timers.items()}


def distributions() -> dict[str, dict[str, float]]:
    """``{name: {count, sum, min, max, mean}}`` for all distributions."""
    out = {}
    for k, (n, total, lo, hi) in _REG.dists.items():
        out[k] = {"count": int(n), "sum": total, "min": lo, "max": hi,
                  "mean": total / n if n else 0.0}
    return out


def span_totals() -> dict[str, dict[str, float]]:
    """Flat per-path ``{count, seconds}`` totals (includes worker spans)."""
    return {k: {"count": int(v[0]), "seconds": v[1]}
            for k, v in sorted(_REG.span_totals.items())}


def span_tree() -> list[dict]:
    """This process's completed top-level spans as nested dicts."""
    return [root.to_dict() for root in _REG.roots]


def warnings() -> list[str]:
    """Warning lines recorded (or merged from workers) this run."""
    return list(_REG.warnings)


def metrics_snapshot() -> dict:
    """Everything a run report embeds: counters, timers, distributions."""
    return {
        "counters": dict(sorted(_REG.counters.items())),
        "timers": {k: v for k, v in sorted(timers().items())},
        "distributions": {k: v for k, v in
                          sorted(distributions().items())},
    }


@contextmanager
def collecting() -> Iterator[None]:
    """Enable collection on a fresh registry for the duration of a block."""
    reset()
    enable(True)
    try:
        yield
    finally:
        enable(False)
