"""Process-pool map with deterministic ordering and error capture.

The characterisation harness, the Monte Carlo yield analysis, and the
depth/width sweeps are all embarrassingly parallel outer loops around an
expensive, picklable, side-effect-free function.  :func:`parallel_map` is
the one primitive they share:

- results come back **in task order**, regardless of completion order, so
  parallel runs are bit-identical to serial runs;
- the worker count comes from the ``workers`` argument, falling back to the
  ``REPRO_WORKERS`` environment variable, falling back to serial (``1``) —
  parallelism is strictly opt-in, so library users on shared machines are
  never surprised by a process fan-out;
- ``workers=0`` asks for one worker per CPU;
- worker exceptions do not abort the whole map: each task's error is
  captured in its :class:`TaskResult` and re-raised (or reported) by the
  caller, labelled with the task that failed;
- when a pool cannot be created at all (restricted environments, missing
  semaphores), the map degrades to serial execution, logging a
  once-per-process warning so an unexpectedly slow sweep is diagnosable;
- when a worker process **dies** mid-map (crash, OOM kill), the whole map
  re-runs serially in the parent — mapped functions are side-effect-free
  by contract, so no task is dropped and no caller ever hangs on a broken
  pool; the degradation is logged every time it happens;
- when telemetry or solver profiling is enabled in the parent, each task
  additionally returns a :mod:`repro.runtime.telemetry` registry snapshot
  (collected on a per-task-reset registry, so it is exactly that task's
  delta) and the parent merges the snapshots **in task order** — metrics
  and ``run_bench --profile`` breakdowns are therefore complete and
  deterministic under ``REPRO_WORKERS>1``, where they were previously
  lost with the worker processes.

Workers are plain ``fork``/``spawn`` processes: the mapped function and its
arguments must be picklable.  Use :func:`functools.partial` over module-level
functions, not closures.

Long-running callers (the characterisation service daemon) can keep one
:class:`WorkerPool` alive across many ``parallel_map`` calls instead of
paying pool start-up per map; ``with use_pool(pool):`` makes it ambient
for every nested map on the current thread.  The parent-side ``shared``
payload is **thread-local**, so concurrent maps on different threads
(service jobs) never observe each other's payloads.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.runtime import progress, telemetry
from repro.runtime.log import get_logger

_logger = get_logger(__name__)

#: Set once the serial-fallback warning has been emitted, so a sweep with
#: hundreds of parallel_map calls reports the degradation exactly once.
_fallback_warned = False

__all__ = ["TaskError", "TaskResult", "WorkerPool", "active_pool",
           "get_shared", "parallel_map", "resolve_workers", "use_pool"]

#: Read-only payload of the enclosing :func:`parallel_map` call.
#: Thread-local in the parent: the service scheduler runs several maps
#: concurrently on different threads, and a module global would leak one
#: job's library/traces into another's tasks (a silent wrong-results
#: bug, not a crash).  Pool workers run tasks on their main thread, so
#: the initializer's value is visible there too.
_SHARED_TLS = threading.local()


def _init_shared(obj: Any) -> None:
    _SHARED_TLS.value = obj


def get_shared() -> Any:
    """The ``shared`` object of the enclosing :func:`parallel_map` call.

    Valid inside a mapped function (both serial and pooled execution).
    """
    return getattr(_SHARED_TLS, "value", None)


# -- persistent worker pools --------------------------------------------------

class _SharedRef:
    """Pointer to a pickled ``shared`` payload spilled to disk.

    A persistent pool cannot ship ``shared`` through the pool
    initializer (initargs are fixed at pool creation); instead the
    payload is pickled once per map and tasks carry this tiny reference.
    Workers unpickle it once and memoise by token (:func:`_load_shared_ref`),
    so the per-worker cost matches the initializer path.
    """

    __slots__ = ("token", "path")

    def __init__(self, token: str, path: str) -> None:
        self.token = token
        self.path = path

    def __reduce__(self):
        return (_SharedRef, (self.token, self.path))


#: Worker-side memo of recently loaded spilled payloads (token -> object).
#: Bounded so interleaved maps from concurrent service jobs don't thrash
#: a single slot; 4 covers the scheduler's job-slot fan-in.
_SPILL_CACHE: dict[str, Any] = {}
_SPILL_CACHE_LIMIT = 4


def _load_shared_ref(ref: _SharedRef | None) -> None:
    if ref is None:
        _init_shared(None)
        return
    payload = _SPILL_CACHE.get(ref.token)
    if payload is None and ref.token not in _SPILL_CACHE:
        with open(ref.path, "rb") as fh:
            payload = pickle.load(fh)
        while len(_SPILL_CACHE) >= _SPILL_CACHE_LIMIT:
            _SPILL_CACHE.pop(next(iter(_SPILL_CACHE)))
        _SPILL_CACHE[ref.token] = payload
    _init_shared(payload)


class WorkerPool:
    """A persistent process pool reusable across :func:`parallel_map` calls.

    One-shot maps create and tear down a :class:`ProcessPoolExecutor`
    per call — right for batch sweeps, wasteful for a daemon running
    thousands of small jobs.  A ``WorkerPool`` keeps the processes warm:

    - construction is lazy (no processes until the first pooled map);
    - maps on it preserve every ``parallel_map`` guarantee (task order,
      per-task error capture, telemetry snapshots in task order);
    - a worker death discards the broken executor so the next map gets
      a fresh one (the interrupted map re-runs serially, as always);
    - it is thread-safe: concurrent maps from different scheduler
      threads share the same workers.

    Use ``with use_pool(pool):`` to make it ambient for nested maps, or
    pass ``pool=`` explicitly.  Close with :meth:`close` (or use it as a
    context manager).
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            return self._executor

    def discard(self) -> None:
        """Drop a broken executor; the next map creates a fresh one."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_POOL_TLS = threading.local()


def active_pool() -> WorkerPool | None:
    """The ambient :class:`WorkerPool` of the current thread, if any."""
    return getattr(_POOL_TLS, "value", None)


@contextmanager
def use_pool(pool: WorkerPool | None) -> Iterator[WorkerPool | None]:
    """Make *pool* the ambient pool for nested maps on this thread."""
    previous = active_pool()
    _POOL_TLS.value = pool
    try:
        yield pool
    finally:
        _POOL_TLS.value = previous


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task of a :func:`parallel_map` call."""

    index: int
    label: str
    value: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """Return the value, re-raising the captured worker error if any."""
        if self.error is not None:
            raise self.error
        return self.value


class TaskError(RuntimeError):
    """Raised by :meth:`parallel_map` when ``on_error='raise'`` and a task
    failed; chains the original worker exception."""


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument, else ``REPRO_WORKERS``, else 1.

    ``0`` (from either source) means one worker per available CPU.
    Non-numeric or negative environment values fall back to serial.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        try:
            workers = int(env) if env else 1
        except ValueError:
            workers = 1
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _run_one(fn: Callable[..., Any], task: Any,
             collect: tuple[bool, bool] | None = None,
             shared_ref: _SharedRef | None = None
             ) -> tuple[Any, BaseException | None, dict | None]:
    """Run one task; optionally collect and return a telemetry snapshot.

    *collect* is ``None`` in-process (instrumentation writes straight
    into the caller's registry) and ``(telemetry_on, profiling_on)`` in
    pool workers: the worker resets its registry before the task (fork
    inherits the parent's accumulations; a reused worker holds earlier
    tasks' — both would double-count), enables collection to match the
    parent, and ships the resulting per-task delta back.

    *shared_ref* carries the spilled ``shared`` payload reference on
    persistent pools (one-shot pools deliver it via the initializer).
    """
    snap: dict | None = None
    if collect is not None:
        from repro.runtime import profiling
        telemetry.reset()
        telemetry.enable(collect[0])
        profiling.enable(collect[1])
    try:
        if shared_ref is not None:
            _load_shared_ref(shared_ref)
        value, error = fn(task), None
    except Exception as exc:  # noqa: BLE001 - captured and re-raised by caller
        value, error = None, exc
    if collect is not None:
        snap = telemetry.snapshot()
    return value, error, snap


def _pooled_outcomes(fn: Callable[..., Any], tasks: list[Any],
                     collect: tuple[bool, bool] | None, shared: Any,
                     phase_name: str, n_workers: int,
                     pool: WorkerPool | None
                     ) -> list[tuple[Any, BaseException | None, dict | None]]:
    """Run the map on worker processes, one-shot or persistent.

    One-shot pools deliver ``shared`` through the pool initializer;
    persistent pools cannot (initargs are fixed at creation), so the
    payload is spilled to a temp pickle and tasks carry a
    :class:`_SharedRef` that workers load and memoise by token.
    """
    n = len(tasks)
    spill_path: str | None = None
    try:
        one_shot: ProcessPoolExecutor | None = None
        if pool is not None:
            shared_ref = None
            if shared is not None:
                token = uuid.uuid4().hex
                fd, spill_path = tempfile.mkstemp(
                    prefix=f"repro-shared-{token}-", suffix=".pkl")
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(shared, fh, protocol=pickle.HIGHEST_PROTOCOL)
                shared_ref = _SharedRef(token, spill_path)
            executor = pool.executor()
        else:
            executor = one_shot = ProcessPoolExecutor(
                max_workers=min(n_workers, n),
                initializer=_init_shared if shared is not None else None,
                initargs=(shared,) if shared is not None else ())
        try:
            if pool is not None:
                mapper = executor.map(_run_one, [fn] * n, tasks,
                                      [collect] * n, [shared_ref] * n)
            else:
                mapper = executor.map(_run_one, [fn] * n, tasks, [collect] * n)
            # The map yields results in task order as they complete;
            # consuming lazily lets the parent heartbeat per task.
            ph = progress.begin(phase_name, n) if progress.ENABLED else None
            try:
                outcomes = []
                for outcome in mapper:
                    outcomes.append(outcome)
                    progress.update(ph)
            finally:
                progress.end(ph)
        finally:
            if one_shot is not None:
                one_shot.shutdown(wait=True)
        return outcomes
    finally:
        if spill_path is not None:
            try:
                os.unlink(spill_path)
            except OSError:
                pass


def parallel_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
                 *, workers: int | None = None,
                 labels: Iterable[str] | None = None,
                 on_error: str = "raise",
                 shared: Any = None,
                 phase: str | None = None,
                 pool: WorkerPool | None = None) -> list[TaskResult]:
    """Apply *fn* to every task, possibly across worker processes.

    Parameters
    ----------
    fn:
        Picklable callable of one argument (module-level function or
        :func:`functools.partial` thereof).
    tasks:
        Sequence of picklable task descriptions.
    workers:
        Worker process count; see :func:`resolve_workers`.  With one worker
        the map runs in-process (no pool, no pickling).
    labels:
        Optional human-readable label per task, used in error reports.
    on_error:
        ``'raise'`` (default) re-raises the first failing task's exception
        (in task order) wrapped in :class:`TaskError` naming the task;
        ``'capture'`` returns all results and leaves error handling to the
        caller.
    shared:
        Optional read-only payload pickled **once per worker process**
        instead of once per task; the mapped function reads it back with
        :func:`get_shared`.  Use this for large invariants (a characterised
        library, benchmark traces) shared by every task.
    phase:
        Optional :mod:`repro.runtime.progress` phase name for the
        per-task heartbeat; defaults to the mapped function's name.
    pool:
        Optional persistent :class:`WorkerPool` to run on instead of a
        one-shot pool; defaults to the thread's ambient pool from
        :func:`use_pool` (if any).  Results are identical either way.

    Returns
    -------
    list[TaskResult] in the same order as *tasks*.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
    tasks = list(tasks)
    label_list = [str(lbl) for lbl in labels] if labels is not None else \
        [f"task[{i}]" for i in range(len(tasks))]
    if len(label_list) != len(tasks):
        raise ValueError("labels must match tasks in length")

    if pool is None:
        pool = active_pool()
    n_workers = pool.workers if pool is not None and workers is None \
        else resolve_workers(workers)
    phase_name = phase or getattr(fn, "__name__", None) or getattr(
        getattr(fn, "func", None), "__name__", None) or "parallel_map"
    outcomes: list[tuple[Any, BaseException | None, dict | None]] | None = None
    if n_workers > 1 and len(tasks) > 1:
        from repro.runtime import profiling
        collect: tuple[bool, bool] | None = None
        if telemetry.ENABLED or profiling.ENABLED:
            collect = (telemetry.ENABLED, profiling.ENABLED)
        try:
            outcomes = _pooled_outcomes(fn, tasks, collect, shared,
                                        phase_name, n_workers, pool)
            # Graft every task's metrics delta into this process, in task
            # order, under the span enclosing this parallel_map call.
            if collect is not None:
                prefix = telemetry.current_path()
                for i, (_value, _error, snap) in enumerate(outcomes):
                    if snap:
                        telemetry.merge_snapshot(snap, prefix=prefix,
                                                 task=i)
        except BrokenProcessPool as exc:
            # A worker process died mid-map (crash, OOM kill, os._exit).
            # The mapped functions are side-effect-free by contract, so
            # nothing is lost by re-running the whole map serially in
            # this process: no task is dropped, no deadlock, and per-task
            # errors are still captured individually.  Warned every time
            # — a dying worker is an exceptional event worth surfacing —
            # and later maps still get to try a fresh pool.
            if pool is not None:
                pool.discard()
            _logger.warning(
                "parallel_map: a worker process died (%s); re-running all "
                "%d task(s) serially in this process", exc, len(tasks))
            outcomes = None
        except (OSError, PermissionError, ImportError) as exc:
            # Restricted environment (no semaphores / fork denied): degrade
            # to serial rather than failing the analysis.
            global _fallback_warned
            if not _fallback_warned:
                _fallback_warned = True
                _logger.warning(
                    "parallel_map: cannot create a %d-worker process pool "
                    "(%s: %s); falling back to serial execution for this "
                    "and later maps in this process",
                    n_workers, type(exc).__name__, exc)
            outcomes = None
    if outcomes is None:
        # Serial path.  The previous shared payload is restored in a
        # finally of its own: a nested map must hand the outer payload
        # back, and an exception anywhere (including progress.begin)
        # must not leave a stale payload behind for the next map on
        # this thread.
        previous_shared = get_shared()
        ph = None
        try:
            if shared is not None:
                _init_shared(shared)
            ph = progress.begin(phase_name, len(tasks)) \
                if progress.ENABLED and len(tasks) > 1 else None
            outcomes = []
            for task in tasks:
                outcomes.append(_run_one(fn, task))
                progress.update(ph)
        finally:
            try:
                progress.end(ph)
            finally:
                _init_shared(previous_shared)

    results = [TaskResult(index=i, label=label_list[i], value=value, error=error)
               for i, (value, error, _snap) in enumerate(outcomes)]
    if on_error == "raise":
        for result in results:
            if result.error is not None:
                raise TaskError(
                    f"{result.label} failed: {result.error}") from result.error
    return results
