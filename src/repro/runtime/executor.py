"""Process-pool map with deterministic ordering and error capture.

The characterisation harness, the Monte Carlo yield analysis, and the
depth/width sweeps are all embarrassingly parallel outer loops around an
expensive, picklable, side-effect-free function.  :func:`parallel_map` is
the one primitive they share:

- results come back **in task order**, regardless of completion order, so
  parallel runs are bit-identical to serial runs;
- the worker count comes from the ``workers`` argument, falling back to the
  ``REPRO_WORKERS`` environment variable, falling back to serial (``1``) —
  parallelism is strictly opt-in, so library users on shared machines are
  never surprised by a process fan-out;
- ``workers=0`` asks for one worker per CPU;
- worker exceptions do not abort the whole map: each task's error is
  captured in its :class:`TaskResult` and re-raised (or reported) by the
  caller, labelled with the task that failed;
- when a pool cannot be created at all (restricted environments, missing
  semaphores), the map degrades to serial execution, logging a
  once-per-process warning so an unexpectedly slow sweep is diagnosable;
- when a worker process **dies** mid-map (crash, OOM kill), the whole map
  re-runs serially in the parent — mapped functions are side-effect-free
  by contract, so no task is dropped and no caller ever hangs on a broken
  pool; the degradation is logged every time it happens;
- when telemetry or solver profiling is enabled in the parent, each task
  additionally returns a :mod:`repro.runtime.telemetry` registry snapshot
  (collected on a per-task-reset registry, so it is exactly that task's
  delta) and the parent merges the snapshots **in task order** — metrics
  and ``run_bench --profile`` breakdowns are therefore complete and
  deterministic under ``REPRO_WORKERS>1``, where they were previously
  lost with the worker processes.

Workers are plain ``fork``/``spawn`` processes: the mapped function and its
arguments must be picklable.  Use :func:`functools.partial` over module-level
functions, not closures.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.runtime import progress, telemetry
from repro.runtime.log import get_logger

_logger = get_logger(__name__)

#: Set once the serial-fallback warning has been emitted, so a sweep with
#: hundreds of parallel_map calls reports the degradation exactly once.
_fallback_warned = False

__all__ = ["TaskError", "TaskResult", "get_shared", "parallel_map",
           "resolve_workers"]

#: Read-only payload shipped to workers once per process (see
#: :func:`parallel_map`'s ``shared`` parameter).
_SHARED: Any = None


def _init_shared(obj: Any) -> None:
    global _SHARED
    _SHARED = obj


def get_shared() -> Any:
    """The ``shared`` object of the enclosing :func:`parallel_map` call.

    Valid inside a mapped function (both serial and pooled execution).
    """
    return _SHARED


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task of a :func:`parallel_map` call."""

    index: int
    label: str
    value: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """Return the value, re-raising the captured worker error if any."""
        if self.error is not None:
            raise self.error
        return self.value


class TaskError(RuntimeError):
    """Raised by :meth:`parallel_map` when ``on_error='raise'`` and a task
    failed; chains the original worker exception."""


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument, else ``REPRO_WORKERS``, else 1.

    ``0`` (from either source) means one worker per available CPU.
    Non-numeric or negative environment values fall back to serial.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        try:
            workers = int(env) if env else 1
        except ValueError:
            workers = 1
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _run_one(fn: Callable[..., Any], task: Any,
             collect: tuple[bool, bool] | None = None
             ) -> tuple[Any, BaseException | None, dict | None]:
    """Run one task; optionally collect and return a telemetry snapshot.

    *collect* is ``None`` in-process (instrumentation writes straight
    into the caller's registry) and ``(telemetry_on, profiling_on)`` in
    pool workers: the worker resets its registry before the task (fork
    inherits the parent's accumulations; a reused worker holds earlier
    tasks' — both would double-count), enables collection to match the
    parent, and ships the resulting per-task delta back.
    """
    snap: dict | None = None
    if collect is not None:
        from repro.runtime import profiling
        telemetry.reset()
        telemetry.enable(collect[0])
        profiling.enable(collect[1])
    try:
        value, error = fn(task), None
    except Exception as exc:  # noqa: BLE001 - captured and re-raised by caller
        value, error = None, exc
    if collect is not None:
        snap = telemetry.snapshot()
    return value, error, snap


def parallel_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
                 *, workers: int | None = None,
                 labels: Iterable[str] | None = None,
                 on_error: str = "raise",
                 shared: Any = None,
                 phase: str | None = None) -> list[TaskResult]:
    """Apply *fn* to every task, possibly across worker processes.

    Parameters
    ----------
    fn:
        Picklable callable of one argument (module-level function or
        :func:`functools.partial` thereof).
    tasks:
        Sequence of picklable task descriptions.
    workers:
        Worker process count; see :func:`resolve_workers`.  With one worker
        the map runs in-process (no pool, no pickling).
    labels:
        Optional human-readable label per task, used in error reports.
    on_error:
        ``'raise'`` (default) re-raises the first failing task's exception
        (in task order) wrapped in :class:`TaskError` naming the task;
        ``'capture'`` returns all results and leaves error handling to the
        caller.
    shared:
        Optional read-only payload pickled **once per worker process**
        instead of once per task; the mapped function reads it back with
        :func:`get_shared`.  Use this for large invariants (a characterised
        library, benchmark traces) shared by every task.
    phase:
        Optional :mod:`repro.runtime.progress` phase name for the
        per-task heartbeat; defaults to the mapped function's name.

    Returns
    -------
    list[TaskResult] in the same order as *tasks*.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
    tasks = list(tasks)
    label_list = [str(lbl) for lbl in labels] if labels is not None else \
        [f"task[{i}]" for i in range(len(tasks))]
    if len(label_list) != len(tasks):
        raise ValueError("labels must match tasks in length")

    n_workers = resolve_workers(workers)
    phase_name = phase or getattr(fn, "__name__", None) or getattr(
        getattr(fn, "func", None), "__name__", None) or "parallel_map"
    outcomes: list[tuple[Any, BaseException | None, dict | None]] | None = None
    if n_workers > 1 and len(tasks) > 1:
        from repro.runtime import profiling
        collect: tuple[bool, bool] | None = None
        if telemetry.ENABLED or profiling.ENABLED:
            collect = (telemetry.ENABLED, profiling.ENABLED)
        try:
            with ProcessPoolExecutor(
                    max_workers=min(n_workers, len(tasks)),
                    initializer=_init_shared if shared is not None else None,
                    initargs=(shared,) if shared is not None else ()) as pool:
                # pool.map yields results in task order as they complete;
                # consuming lazily lets the parent heartbeat per task.
                ph = progress.begin(phase_name, len(tasks)) \
                    if progress.ENABLED else None
                try:
                    outcomes = []
                    for outcome in pool.map(_run_one, [fn] * len(tasks),
                                            tasks, [collect] * len(tasks)):
                        outcomes.append(outcome)
                        progress.update(ph)
                finally:
                    progress.end(ph)
            # Graft every task's metrics delta into this process, in task
            # order, under the span enclosing this parallel_map call.
            if collect is not None:
                prefix = telemetry.current_path()
                for i, (_value, _error, snap) in enumerate(outcomes):
                    if snap:
                        telemetry.merge_snapshot(snap, prefix=prefix,
                                                 task=i)
        except BrokenProcessPool as exc:
            # A worker process died mid-map (crash, OOM kill, os._exit).
            # The mapped functions are side-effect-free by contract, so
            # nothing is lost by re-running the whole map serially in
            # this process: no task is dropped, no deadlock, and per-task
            # errors are still captured individually.  Warned every time
            # — a dying worker is an exceptional event worth surfacing —
            # and later maps still get to try a fresh pool.
            _logger.warning(
                "parallel_map: a worker process died (%s); re-running all "
                "%d task(s) serially in this process", exc, len(tasks))
            outcomes = None
        except (OSError, PermissionError, ImportError) as exc:
            # Restricted environment (no semaphores / fork denied): degrade
            # to serial rather than failing the analysis.
            global _fallback_warned
            if not _fallback_warned:
                _fallback_warned = True
                _logger.warning(
                    "parallel_map: cannot create a %d-worker process pool "
                    "(%s: %s); falling back to serial execution for this "
                    "and later maps in this process",
                    n_workers, type(exc).__name__, exc)
            outcomes = None
    if outcomes is None:
        previous_shared = _SHARED
        if shared is not None:
            _init_shared(shared)
        ph = progress.begin(phase_name, len(tasks)) \
            if progress.ENABLED and len(tasks) > 1 else None
        try:
            outcomes = []
            for task in tasks:
                outcomes.append(_run_one(fn, task))
                progress.update(ph)
        finally:
            progress.end(ph)
            _init_shared(previous_shared)

    results = [TaskResult(index=i, label=label_list[i], value=value, error=error)
               for i, (value, error, _snap) in enumerate(outcomes)]
    if on_error == "raise":
        for result in results:
            if result.error is not None:
                raise TaskError(
                    f"{result.label} failed: {result.error}") from result.error
    return results
