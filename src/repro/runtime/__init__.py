"""Process-level runtime: parallel fan-out, caching, and observability.

Besides the executor and result cache, this package hosts the shared
observability substrate: :mod:`repro.runtime.telemetry` (metrics
registry + hierarchical spans, merged deterministically across worker
processes), :mod:`repro.runtime.log` (unified logging config for the
CLIs), :mod:`repro.runtime.profiling` (the solver stage breakdown, now
a view over the telemetry registry), and :mod:`repro.runtime.report`
(per-experiment JSON run reports).
"""

import os

from repro.runtime import log, telemetry
from repro.runtime.cache import ResultCache, default_cache, default_cache_root
from repro.runtime.executor import (
    TaskError,
    TaskResult,
    WorkerPool,
    active_pool,
    get_shared,
    parallel_map,
    resolve_workers,
    use_pool,
)
from repro.runtime.log import get_logger


def ensemble_enabled() -> bool:
    """Batched ensemble solves are on unless ``REPRO_ENSEMBLE=0``."""
    return os.environ.get("REPRO_ENSEMBLE", "1") != "0"


def ensemble_batch() -> int:
    """Max members per stacked solve (``REPRO_ENSEMBLE_BATCH``, default 32).

    The chunk size is fixed by this knob alone (never by the worker
    count), so batched results are bit-identical for any ``REPRO_WORKERS``.
    """
    try:
        return max(1, int(os.environ.get("REPRO_ENSEMBLE_BATCH", "32")))
    except ValueError:
        return 32


def chunked(items: list, size: int) -> list[list]:
    """Split *items* into consecutive chunks of at most *size*."""
    return [items[i:i + size] for i in range(0, len(items), size)]


__all__ = [
    "ResultCache",
    "TaskError",
    "TaskResult",
    "WorkerPool",
    "active_pool",
    "chunked",
    "default_cache",
    "default_cache_root",
    "ensemble_batch",
    "ensemble_enabled",
    "get_logger",
    "get_shared",
    "log",
    "parallel_map",
    "resolve_workers",
    "telemetry",
    "use_pool",
]
