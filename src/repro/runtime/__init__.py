"""Parallel execution runtime for embarrassingly parallel outer loops."""

from repro.runtime.executor import (
    TaskError,
    TaskResult,
    get_shared,
    parallel_map,
    resolve_workers,
)

__all__ = [
    "TaskError",
    "TaskResult",
    "get_shared",
    "parallel_map",
    "resolve_workers",
]
