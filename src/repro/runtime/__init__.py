"""Process-level runtime: parallel fan-out and persistent result caching."""

from repro.runtime.cache import ResultCache, default_cache, default_cache_root
from repro.runtime.executor import (
    TaskError,
    TaskResult,
    get_shared,
    parallel_map,
    resolve_workers,
)

__all__ = [
    "ResultCache",
    "TaskError",
    "TaskResult",
    "default_cache",
    "default_cache_root",
    "get_shared",
    "parallel_map",
    "resolve_workers",
]
