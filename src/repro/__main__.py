"""Command-line entry point: regenerate paper figures from the shell.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig3                 # one experiment
    python -m repro fig12 fig15          # several
    python -m repro liberty out.lib --process organic
    python -m repro cache-stats          # persistent result-cache usage
    python -m repro report               # pretty-print the latest run report
    python -m repro validate --fast      # differential validation + faults
    python -m repro serve --port 7341    # characterization-as-a-service
    python -m repro submit sta -p block=adder --address 127.0.0.1:7341

Heavy experiments (fig11, fig13) accept ``--quick`` to shorten traces.

Every experiment run collects telemetry (hierarchical spans, solver and
cache metrics — see :mod:`repro.runtime.telemetry`) and writes a JSON
run report under ``runs/`` (``--report PATH`` overrides the location,
``--no-report`` skips it, ``REPRO_TELEMETRY=0`` forces the
zero-overhead path).  ``-v``/``-vv``/``--log-level`` control library
logging.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis import figures as F
from repro.analysis.tables import format_matrix, format_series, format_table
from repro.runtime import log as repro_log, telemetry
from repro.runtime import report as run_report


def _run_fig3(args) -> None:
    r = F.fig3_transfer_characteristics()
    print(format_table(
        ["quantity", "measured", "paper"],
        [["mobility (cm^2/Vs)", f"{r.report_vds1.mobility_cm2:.3f}", r.paper_mobility],
         ["SS (mV/dec)", f"{r.report_vds1.subthreshold_slope_mv_dec:.0f}", r.paper_ss],
         ["on/off", f"{r.report_vds1.on_off_ratio:.2e}", f"{r.paper_on_off:.0e}"],
         ["VT@-1V", f"{r.report_vds1.threshold_v:.2f}", r.paper_vt1],
         ["VT@-10V", f"{r.report_vds10.threshold_v:.2f}", r.paper_vt10]],
        title="Figure 3"))


def _run_fig4(args) -> None:
    r = F.fig4_model_fits()
    print(format_table(
        ["model", "rms log err (full)", "rms log err (on)"],
        [["level 1", f"{r.level1.rms_log_error:.3f}",
          f"{r.level1.rms_log_error_on:.3f}"],
         ["level 61", f"{r.level61.rms_log_error:.3f}",
          f"{r.level61.rms_log_error_on:.3f}"]],
        title="Figure 4"))


def _run_fig6(args) -> None:
    r = F.fig6_inverter_comparison()
    rows = []
    for label, a in (("diode", r.diode), ("biased", r.biased),
                     ("pseudo-E", r.pseudo_e)):
        rows.append([label, f"{a.vm:.2f}", f"{a.max_gain:.2f}",
                     f"{a.nm_mec:.2f}", f"{a.voh:.2f}", f"{a.vol:.3f}",
                     f"{a.static_power_low*1e6:.1f}",
                     f"{a.static_power_high*1e6:.2f}"])
    print(format_table(
        ["style", "VM", "gain", "NM", "VOH", "VOL", "P0 uW", "P1 uW"],
        rows, title="Figure 6d (VDD = 15 V)"))


def _run_fig7(args) -> None:
    r = F.fig7_vdd_scaling()
    rows = [[f"{vdd:.0f}", f"{r.vss_used[vdd]:.0f}", f"{a.vm:.2f}",
             f"{a.max_gain:.2f}", f"{a.nm_mec:.2f}",
             f"{a.static_power_low*1e6:.1f}"]
            for vdd, a in sorted(r.analyses.items())]
    print(format_table(["VDD", "VSS", "VM", "gain", "NM", "P0 uW"], rows,
                       title="Figure 7d"))


def _run_fig8(args) -> None:
    r = F.fig8_vss_tuning()
    print(format_series([f"{v:.1f}" for v in r.vss_values], r.vm_values,
                        title=f"Figure 8b: VM = {r.slope:.3f} VSS + "
                              f"{r.intercept:.2f} (paper slope "
                              f"{r.paper_slope})"))


def _run_fig11(args) -> None:
    n = 8000 if args.quick else 25_000
    r = F.fig11_pipeline_depth(n_instructions=n)
    for process in ("silicon", "organic"):
        perf = r.normalized_performance(process)
        depths = sorted(perf)
        means = [sum(perf[d].values()) / len(perf[d]) for d in depths]
        print(format_series(depths, means,
                            title=f"Figure 11 ({process}): mean perf"))
    print(f"optima: silicon {r.optimal_depth('silicon')}, "
          f"organic {r.optimal_depth('organic')}")


def _run_fig12(args) -> None:
    r = F.fig12_alu_depth()
    rows = [[n, f"{r.frequency_ratios('organic')[i]:.2f}",
             f"{r.frequency_ratios('silicon')[i]:.2f}"]
            for i, n in enumerate(r.stage_counts)]
    print(format_table(["stages", "organic f/f1", "silicon f/f1"], rows,
                       title="Figure 12"))


def _run_fig13(args) -> None:
    n = 6000 if args.quick else 20_000
    r = F.fig13_width_performance(n_instructions=n)
    print(format_matrix(r.silicon, title="Figure 13a (silicon)"))
    print(format_matrix(r.organic, title="Figure 13b (organic)"))
    print(f"optima: silicon {r.optimum('silicon')}, "
          f"organic {r.optimum('organic')}")


def _run_fig14(args) -> None:
    r = F.fig14_width_area()
    print(format_matrix(r.silicon, title="Figure 14a (silicon)"))
    print(format_matrix(r.organic, title="Figure 14b (organic)"))


def _run_fig15(args) -> None:
    r = F.fig15_wire_ablation()
    rows = [[d] + [f"{r.core[s][i]:.2f}" for s in r.SERIES]
            for i, d in enumerate(r.core_depths)]
    print(format_table(["depth", *r.SERIES], rows, title="Figure 15b"))


def _run_cache_stats(args) -> None:
    from repro.runtime.cache import (
        cache_enabled,
        default_cache_root,
        disk_stats,
        stats_snapshot,
    )

    root = default_cache_root()
    print(f"cache root: {root} "
          f"({'enabled' if cache_enabled() else 'disabled via REPRO_CACHE'})")
    stats = disk_stats(root)
    if not stats:
        print("no cached entries")
    else:
        rows = [[cat, str(s["entries"]), f"{s['bytes'] / 1024:.1f}"]
                for cat, s in stats.items()]
        total_entries = sum(s["entries"] for s in stats.values())
        total_bytes = sum(s["bytes"] for s in stats.values())
        rows.append(["total", str(total_entries),
                     f"{total_bytes / 1024:.1f}"])
        print(format_table(["category", "entries", "KiB"], rows,
                           title="On-disk entries"))
    session = stats_snapshot()
    print(f"this process: {session['hits']} hits, {session['misses']} "
          f"misses, {session['puts']} puts, "
          f"{session['bytes_read']} B read, "
          f"{session['bytes_written']} B written")


def _run_liberty(args) -> None:
    from repro.characterization import organic_library, silicon_library
    from repro.characterization.liberty import write_liberty
    lib = organic_library() if args.process == "organic" else silicon_library()
    write_liberty(lib, args.output)
    print(f"wrote {args.output} ({args.process})")


def _run_validate(args, argv: list[str] | None = None) -> int:
    """Differential validation and fault injection (``validate`` command).

    Runs the registered checks (:mod:`repro.validate`) in fast mode by
    default (``--full`` for the larger nightly samples), prints the
    per-check report, and exits nonzero when any check failed.  Like
    the experiment commands it collects telemetry and lands a schema-v1
    run report under ``runs/`` (``--report PATH`` overrides the
    location, ``--no-report`` skips it); the check outcomes are
    embedded under the report's ``validation`` key so the run-history
    index sees validation runs too.
    """
    from repro.validate import run_validation

    only = args.only.split(",") if args.only else None
    telemetry.reset()
    telemetry.enable(True)
    repro_log.capture_warnings()
    t0 = time.perf_counter()
    try:
        with telemetry.span("validate"):
            report = run_validation(fast=not args.full, seed=args.seed,
                                    only=only)
    except ValueError as exc:          # unknown --only name
        telemetry.enable(False)
        print(exc)
        return 2
    duration = time.perf_counter() - t0
    print(report.format())
    if not args.no_report:
        doc = run_report.build_report(
            "validate", argv=argv,
            status="ok" if report.ok else "check-failed",
            duration_seconds=duration)
        doc["validation"] = report.to_dict()
        path = run_report.write_report(doc, path=args.report)
        print(f"run report: {path}")
        _maybe_write_trace(args, doc, path)
    telemetry.enable(False)
    return 0 if report.ok else 1


def _run_dse(args) -> None:
    """Batched design-space exploration (the ``dse`` command).

    Evaluates the stock (depth x data width x width pair x combo) grid
    through the shared-structure synthesis path and incremental STA
    (:mod:`repro.analysis.dse`); ``--quick`` shrinks the grid to a
    smoke-test slice.
    """
    from repro.analysis import dse as D

    if args.quick:
        result = D.dse_sweep(widths=(8, 16), width_pairs=((2, 4), (3, 5)),
                             max_depth=11)
    else:
        result = D.dse_sweep()
    rows = []
    for combo in result.combos:
        points = result.for_combo(combo)
        best = result.best(combo)
        rows.append([combo, str(len(points)),
                     best.config.name, str(best.config.depth),
                     f"{best.physical.frequency:.1f}",
                     f"{best.mean_performance():.1f}"])
    print(format_table(
        ["combo", "points", "best config", "depth", "f (Hz)", "perf"],
        rows, title=f"DSE grid ({len(result)} points)"))


def _maybe_write_trace(args, report: dict, report_path) -> None:
    """Honour ``--trace [PATH]``: export the Chrome trace for *report*."""
    from repro.runtime import trace_export

    if not getattr(args, "trace", None):
        return
    if args.trace is True:
        if report_path is None:
            print("--trace needs a PATH when no run report is written")
            return
        path = trace_export.default_trace_path(report_path)
    else:
        path = args.trace
    path = trace_export.write_trace(report, path)
    print(f"trace: {path}")


def _run_trace(argv: list[str]) -> int:
    """Post-hoc trace conversion (``python -m repro trace <report>``)."""
    import json

    from repro.runtime import trace_export

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Convert a saved run report to Chrome Trace Event "
                    "JSON (chrome://tracing, ui.perfetto.dev)")
    parser.add_argument("report", help="run-report JSON path, or a "
                                       "history reference like -1")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="trace output path (default: "
                             "<report>.trace.json beside the report)")
    args = parser.parse_args(argv)
    from repro.runtime import history
    try:
        path, report = history.resolve_report(args.report)
    except (OSError, json.JSONDecodeError, FileNotFoundError) as exc:
        print(f"cannot read report {args.report!r}: {exc}")
        return 1
    out = args.out or trace_export.default_trace_path(path)
    out = trace_export.write_trace(report, out)
    events = len(trace_export.trace_events(report))
    print(f"trace: {out} ({events} events from {path})")
    return 0


def _run_perf(argv: list[str]) -> int:
    """Run-history analytics (``python -m repro perf ...``)."""
    import json

    from repro.runtime import history

    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Run-over-run performance analytics over the "
                    "runs/ history index")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="recent runs from the index")
    p_list.add_argument("-n", "--limit", type=int, default=20)

    p_diff = sub.add_parser("diff", help="span/benchmark deltas A -> B")
    p_diff.add_argument("a", help="report path, -N ordinal, or substring")
    p_diff.add_argument("b", help="report path, -N ordinal, or substring")
    p_diff.add_argument("--threshold", type=float,
                        default=history.DIFF_THRESHOLD,
                        help="relative slowdown that flags a row "
                             "(default 0.10)")
    p_diff.add_argument("--all", action="store_true",
                        help="show every row and counter delta")
    p_diff.add_argument("--strict", action="store_true",
                        help="exit 1 when any row is flagged")

    p_trend = sub.add_parser("trend", help="one benchmark across history")
    p_trend.add_argument("bench", help="benchmark name (e.g. dse_sweep)")
    p_trend.add_argument("-n", "--limit", type=int, default=20)
    p_trend.add_argument("--all-envs", action="store_true",
                         help="include entries from other machines")

    p_regress = sub.add_parser(
        "regress", help="CI perf gate vs a published BENCH_perf.json")
    p_regress.add_argument("--baseline", required=True, metavar="JSON")
    p_regress.add_argument("--tolerance", type=float, default=0.25)
    p_regress.add_argument("--report", default=None, metavar="PATH",
                           help="benchmark-bearing run report to gate "
                                "(default: most recent indexed one)")

    args = parser.parse_args(argv)

    if args.command == "list":
        entries = history.load_entries()
        if not entries:
            print(f"empty history index: {history.default_history_path()}")
            return 0
        for entry in entries[-args.limit:]:
            duration = entry.get("duration_seconds")
            dur = f" {duration:.2f}s" if duration is not None else ""
            benches = entry.get("benchmarks")
            extra = f" [{len(benches)} benchmarks]" if benches else ""
            print(f"{entry.get('timestamp', '?')}  "
                  f"{entry.get('target', '?'):<12} "
                  f"{entry.get('status', '?'):<12}{dur}  "
                  f"env={entry.get('env_key', '?')}{extra}  "
                  f"{entry.get('path', '')}")
        return 0

    if args.command == "diff":
        try:
            path_a, rep_a = history.resolve_report(args.a)
            path_b, rep_b = history.resolve_report(args.b)
        except (OSError, json.JSONDecodeError, FileNotFoundError) as exc:
            print(f"perf diff: {exc}")
            return 2
        print(f"A: {path_a}\nB: {path_b}")
        diff = history.diff_reports(rep_a, rep_b,
                                    threshold=args.threshold)
        print(history.format_diff(diff, verbose=args.all))
        return 1 if args.strict and diff["flags"] else 0

    if args.command == "trend":
        entries = history.load_entries()
        current = history.env_key(run_report.env_fingerprint())
        rows = []
        for entry in entries:
            seconds = (entry.get("benchmarks") or {}).get(args.bench)
            if seconds is None:
                continue
            if not args.all_envs and entry.get("env_key") != current:
                continue
            rows.append((entry.get("timestamp", "?"), seconds,
                         entry.get("env_key", "?")))
        if not rows:
            print(f"no history entries carry benchmark {args.bench!r} "
                  f"(env {current}; try --all-envs)")
            return 1
        rows = rows[-args.limit:]
        best = min(seconds for _, seconds, _ in rows)
        for stamp, seconds, key in rows:
            bar = "#" * max(1, round(20 * best / seconds))
            print(f"{stamp}  {seconds:8.4f}s  env={key}  {bar}")
        return 0

    # regress: the CI perf gate.
    try:
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf regress: cannot read baseline {args.baseline}: {exc}")
        return 2
    if args.report is not None:
        try:
            _path, report = history.resolve_report(args.report)
        except (OSError, json.JSONDecodeError, FileNotFoundError) as exc:
            print(f"perf regress: {exc}")
            return 2
        fresh = history._bench_seconds(report)
    else:
        fresh = {}
        for entry in reversed(history.load_entries()):
            if entry.get("benchmarks"):
                fresh = {k: float(v)
                         for k, v in entry["benchmarks"].items()
                         if v is not None}
                print(f"gating most recent benchmark run: {entry['path']}")
                break
        if not fresh:
            print("perf regress: no benchmark-bearing run in the history "
                  "index; run run_bench --report first or pass --report")
            return 2
    status, lines = history.regress_check(fresh, baseline,
                                          tolerance=args.tolerance)
    for line in lines:
        print(f"[perf] {line}")
    return status


def _run_report(args) -> int:
    """Pretty-print the most recent run report (the ``report`` command)."""
    import json

    path = run_report.latest_report_path()
    if path is None:
        print(f"no run reports found under {run_report.default_runs_dir()}")
        return 1
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read {path}: {exc}")
        return 1
    print(f"[{path}]")
    print(run_report.format_report(report))
    return 0


EXPERIMENTS = {
    "fig3": _run_fig3, "fig4": _run_fig4, "fig6": _run_fig6,
    "fig7": _run_fig7, "fig8": _run_fig8, "fig11": _run_fig11,
    "fig12": _run_fig12, "fig13": _run_fig13, "fig14": _run_fig14,
    "fig15": _run_fig15, "dse": _run_dse,
}


def _run_experiments(targets: list[str], args,
                     argv: list[str] | None) -> int:
    """Run experiments under telemetry and emit one run report.

    One report covers the whole invocation (each target gets its own
    root span), written to ``--report PATH`` or timestamped under
    ``runs/``.  ``REPRO_TELEMETRY=0`` keeps collection off; the report
    then still carries the environment fingerprint and cache stats.
    """
    telemetry.reset()
    telemetry.enable(True)
    repro_log.capture_warnings()
    t0 = time.perf_counter()
    status, error = "ok", None
    try:
        for target in targets:
            with telemetry.span(target):
                EXPERIMENTS[target](args)
            print()
    except Exception as exc:
        status, error = "error", f"{type(exc).__name__}: {exc}"
        raise
    finally:
        duration = time.perf_counter() - t0
        if not args.no_report:
            report = run_report.build_report(
                "+".join(targets), argv=argv, status=status, error=error,
                duration_seconds=duration)
            path = run_report.write_report(report, path=args.report)
            print(f"run report: {path}")
            _maybe_write_trace(args, report, path)
        elif getattr(args, "trace", None):
            report = run_report.build_report(
                "+".join(targets), argv=argv, status=status, error=error,
                duration_seconds=duration)
            _maybe_write_trace(args, report, None)
        telemetry.enable(False)
    return 0


def _run_serve(argv: list[str]) -> int:
    """The characterization service daemon (``python -m repro serve``)."""
    from repro.service.daemon import ServiceDaemon
    from repro.service.scheduler import Scheduler

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve characterization / sweep / STA / DSE jobs over "
                    "a local socket (ndjson protocol; see README 'Service')")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed at start)")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="serve on a unix socket instead of TCP")
    parser.add_argument("--slots", type=int, default=2,
                        help="concurrent job slots (default 2)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes in the persistent pool "
                             "(default: REPRO_WORKERS, else 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent warm-result cache")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the run-report JSON here on shutdown")
    parser.add_argument("--no-report", action="store_true",
                        help="skip writing the run-report JSON")
    repro_log.add_cli_flags(parser)
    args = parser.parse_args(argv)
    repro_log.configure_from_args(args)

    telemetry.reset()
    telemetry.enable(True)
    repro_log.capture_warnings()
    scheduler = Scheduler(slots=args.slots, workers=args.workers,
                          use_cache=not args.no_cache)
    daemon = ServiceDaemon(scheduler, host=args.host, port=args.port,
                           socket_path=args.socket)
    t0 = time.perf_counter()
    status, error = "ok", None
    try:
        with telemetry.span("serve"):
            daemon.run()
    except KeyboardInterrupt:
        status = "interrupted"
        scheduler.close()
    except Exception as exc:
        status, error = "error", f"{type(exc).__name__}: {exc}"
        raise
    finally:
        duration = time.perf_counter() - t0
        if not args.no_report:
            report = run_report.build_report(
                "serve", argv=["serve", *argv], status=status, error=error,
                duration_seconds=duration)
            report["service"] = scheduler.stats_snapshot()
            path = run_report.write_report(report, path=args.report)
            print(f"run report: {path}")
        telemetry.enable(False)
    return 0


def _parse_param(text: str):
    """``key=value`` with JSON-typed values (bare words stay strings)."""
    import json

    key, sep, value = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}")
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def _run_submit(argv: list[str]) -> int:
    """Submit one job (``python -m repro submit <kind> ...``)."""
    import json

    from repro.service.jobs import (JobError, job_kinds, normalize_request,
                                    run_job)

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a job to a running service daemon (or run it "
                    "in-process with --local)")
    parser.add_argument("kind", help=f"job kind: {', '.join(job_kinds())}")
    parser.add_argument("--param", "-p", action="append", default=[],
                        type=_parse_param, metavar="KEY=VALUE",
                        help="job parameter (VALUE parsed as JSON when "
                             "possible); repeatable")
    parser.add_argument("--address", default="127.0.0.1:7341",
                        help="daemon address host:port or unix socket path")
    parser.add_argument("--local", action="store_true",
                        help="run the job in this process (no daemon)")
    parser.add_argument("--no-wait", action="store_true",
                        help="submit and print the job id without waiting")
    parser.add_argument("--stream", action="store_true",
                        help="print progress heartbeats while waiting")
    repro_log.add_cli_flags(parser)
    args = parser.parse_args(argv)
    repro_log.configure_from_args(args)

    job = {"kind": args.kind, "params": dict(args.param)}
    if args.local:
        try:
            spec = normalize_request(job)
            result = run_job(spec)
        except JobError as exc:
            print(f"bad job: {exc}")
            return 2
        print(json.dumps({"kind": spec.kind, "params": spec.param_dict(),
                          "fingerprint": spec.fingerprint(),
                          "result": result}, indent=2, sort_keys=True))
        return 0

    from repro.service.client import ServiceClient, parse_address
    try:
        client = ServiceClient(parse_address(args.address))
    except OSError as exc:
        print(f"cannot connect to {args.address}: {exc} "
              f"(is `python -m repro serve` running?)")
        return 1
    with client:
        on_progress = ((lambda rec: print(
            f"[{rec.get('phase', '?')}] {rec.get('done', 0)}"
            f"/{rec.get('total', '?')}", flush=True))
            if args.stream else None)
        reply = client.submit(job, wait=not args.no_wait,
                              on_progress=on_progress)
    if not reply.get("ok"):
        print(f"job failed: {reply.get('error', 'unknown error')}")
        return 1
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "perf":
        return _run_perf(raw[1:])
    if raw and raw[0] == "trace":
        return _run_trace(raw[1:])
    if raw and raw[0] == "serve":
        return _run_serve(raw[1:])
    if raw and raw[0] == "submit":
        return _run_submit(raw[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from 'Architectural Tradeoffs for "
                    "Biodegradable Computing' (MICRO-50 2017).")
    parser.add_argument("targets", nargs="+",
                        help="'list', experiment names (fig3..fig15, dse), "
                             "'liberty <out.lib>', 'cache-stats', "
                             "'report', or 'validate'")
    parser.add_argument("--quick", action="store_true",
                        help="shorter traces for the heavy sweeps")
    parser.add_argument("--fast", action="store_true",
                        help="validate: small seeded samples (the default)")
    parser.add_argument("--full", action="store_true",
                        help="validate: larger samples and all checks")
    parser.add_argument("--seed", type=int, default=0,
                        help="validate: seed for the randomized samples")
    parser.add_argument("--only", default=None, metavar="NAMES",
                        help="validate: comma-separated check names to run")
    parser.add_argument("--process", choices=("organic", "silicon"),
                        default="organic", help="library for liberty export")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the run-report JSON here instead of "
                             "a timestamped file under runs/")
    parser.add_argument("--no-report", action="store_true",
                        help="skip writing the run-report JSON")
    parser.add_argument("--trace", nargs="?", const=True, default=None,
                        metavar="PATH",
                        help="additionally export a Chrome Trace Event "
                             "JSON (default: <report>.trace.json)")
    repro_log.add_cli_flags(parser)
    args = parser.parse_args(raw)
    repro_log.configure_from_args(args)

    targets = list(args.targets)
    if targets[0] == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("also: liberty <output.lib> [--process organic|silicon], "
              "cache-stats, report, validate [--fast|--full] [--seed N], "
              "serve, submit <kind>")
        return 0
    if targets[0] == "cache-stats":
        _run_cache_stats(args)
        return 0
    if targets[0] == "report":
        return _run_report(args)
    if targets[0] == "validate":
        if len(targets) != 1:
            parser.error("validate takes no extra targets")
        return _run_validate(args, argv=raw)
    if targets[0] == "liberty":
        if len(targets) != 2:
            parser.error("liberty needs an output path")
        args.output = targets[1]
        _run_liberty(args)
        return 0

    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; try 'list'")
    return _run_experiments(targets, args, raw)


if __name__ == "__main__":
    sys.exit(main())
