"""Characterised timing libraries (the Liberty-file equivalent).

A :class:`Library` is what synthesis and STA consume: per-cell NLDM timing
arcs, pin capacitances, areas and leakage for the six cells, plus the
flip-flop's clk->q / setup / hold data.  Libraries serialise to JSON so a
characterisation run (hundreds of transistor-level transients) can be
cached on disk and shipped with experiment results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.characterization.nldm import NldmTable
from repro.errors import LibraryError

Transition = str  # 'rise' | 'fall'


@dataclass(frozen=True)
class TimingArc:
    """One input-pin -> output timing arc of a combinational cell."""

    input_pin: str
    output_transition: Transition        # transition at the *output*
    delay: NldmTable                     # 50%-in to 50%-out, seconds
    transition: NldmTable                # output 20%-80% slew, seconds

    def to_dict(self) -> dict:
        return {
            "input_pin": self.input_pin,
            "output_transition": self.output_transition,
            "delay": self.delay.to_dict(),
            "transition": self.transition.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingArc":
        return cls(data["input_pin"], data["output_transition"],
                   NldmTable.from_dict(data["delay"]),
                   NldmTable.from_dict(data["transition"]))


@dataclass(frozen=True)
class CellTiming:
    """Characterised combinational cell."""

    name: str
    function: str
    inputs: tuple[str, ...]
    input_caps: dict[str, float]
    area: float
    arcs: tuple[TimingArc, ...]
    leakage: float                       # average static power, watts

    def __post_init__(self) -> None:
        # Group arcs by input pin once: STA calls delay()/output_slew()
        # hundreds of thousands of times per netlist, and rebuilding the
        # per-pin tuple on every call dominated the profile.
        by_pin: dict[str, tuple[TimingArc, ...]] = {}
        for arc in self.arcs:
            by_pin[arc.input_pin] = by_pin.get(arc.input_pin, ()) + (arc,)
        object.__setattr__(self, "_arcs_by_pin", by_pin)
        object.__setattr__(
            self, "_tables_by_pin",
            {pin: ([a.delay for a in arcs], [a.transition for a in arcs])
             for pin, arcs in by_pin.items()})

    def arcs_from(self, input_pin: str) -> tuple[TimingArc, ...]:
        found = self._arcs_by_pin.get(input_pin)
        if not found:
            raise LibraryError(
                f"cell {self.name!r} has no arcs from pin {input_pin!r}")
        return found

    def delay(self, input_pin: str, slew: float, load: float) -> float:
        """Worst (max over output transitions) delay for one input pin."""
        tables = self._tables_by_pin.get(input_pin)
        if tables is None:
            self.arcs_from(input_pin)          # raises LibraryError
        best = -1.0
        for table in tables[0]:
            d = table.lookup(slew, load)
            if d > best:
                best = d
        return best

    def output_slew(self, input_pin: str, slew: float, load: float) -> float:
        """Worst output transition for one input pin."""
        tables = self._tables_by_pin.get(input_pin)
        if tables is None:
            self.arcs_from(input_pin)          # raises LibraryError
        best = -1.0
        for table in tables[1]:
            s = table.lookup(slew, load)
            if s > best:
                best = s
        return best

    def worst_delay(self, slew: float, load: float) -> float:
        return max(a.delay.lookup(slew, load) for a in self.arcs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "function": self.function,
            "inputs": list(self.inputs),
            "input_caps": dict(self.input_caps),
            "area": self.area,
            "arcs": [a.to_dict() for a in self.arcs],
            "leakage": self.leakage,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellTiming":
        return cls(
            name=data["name"],
            function=data["function"],
            inputs=tuple(data["inputs"]),
            input_caps=dict(data["input_caps"]),
            area=float(data["area"]),
            arcs=tuple(TimingArc.from_dict(a) for a in data["arcs"]),
            leakage=float(data["leakage"]),
        )


@dataclass(frozen=True)
class SequentialTiming:
    """Characterised D-flip-flop."""

    name: str
    input_caps: dict[str, float]
    area: float
    clk_to_q: NldmTable                  # indexed by clock slew x Q load
    setup_time: float
    hold_time: float
    leakage: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "input_caps": dict(self.input_caps),
            "area": self.area,
            "clk_to_q": self.clk_to_q.to_dict(),
            "setup_time": self.setup_time,
            "hold_time": self.hold_time,
            "leakage": self.leakage,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SequentialTiming":
        return cls(
            name=data["name"],
            input_caps=dict(data["input_caps"]),
            area=float(data["area"]),
            clk_to_q=NldmTable.from_dict(data["clk_to_q"]),
            setup_time=float(data["setup_time"]),
            hold_time=float(data["hold_time"]),
            leakage=float(data["leakage"]),
        )


@dataclass(frozen=True)
class Library:
    """A characterised 6-cell library for one process."""

    name: str
    process: str                         # 'organic' | 'silicon'
    vdd: float
    cells: dict[str, CellTiming]
    dff: SequentialTiming
    metadata: dict = field(default_factory=dict)

    def cell(self, name: str) -> CellTiming:
        try:
            return self.cells[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r} has no cell {name!r}; available: "
                f"{sorted(self.cells)}") from None

    # -- figures of merit --------------------------------------------------

    def inverter_fo4_delay(self) -> float:
        """FO4 inverter delay: the process's canonical speed unit."""
        inv = self.cell("inv")
        cin = inv.input_caps["a"]
        slew = self.typical_slew()
        return inv.delay("a", slew, 4.0 * cin)

    def typical_slew(self) -> float:
        """A representative mid-grid input slew for quick estimates."""
        inv = self.cell("inv")
        slews = inv.arcs[0].delay.slews
        return float(slews[len(slews) // 2])

    def register_overhead(self) -> float:
        """Per-stage sequencing cost: clk->q + setup at typical conditions.

        This is the pipeline-overhead term in the depth experiments; wire
        and skew costs are added by the synthesis layer.
        """
        inv_cin = self.cell("inv").input_caps["a"]
        slew = self.typical_slew()
        clk_q = self.dff.clk_to_q.lookup(slew, 4.0 * inv_cin)
        return clk_q + self.dff.setup_time

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form (files and the persistent result cache)."""
        return {
            "name": self.name,
            "process": self.process,
            "vdd": self.vdd,
            "cells": {k: v.to_dict() for k, v in self.cells.items()},
            "dff": self.dff.to_dict(),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Library":
        return cls(
            name=data["name"],
            process=data["process"],
            vdd=float(data["vdd"]),
            cells={k: CellTiming.from_dict(v)
                   for k, v in data["cells"].items()},
            dff=SequentialTiming.from_dict(data["dff"]),
            metadata=data.get("metadata", {}),
        )

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def from_json(cls, path: str | Path) -> "Library":
        return cls.from_dict(json.loads(Path(path).read_text()))
