"""NLDM standard-cell characterisation (paper Section 4.4).

"The organic standard cell library is characterized with the non-linear
delay model (NLDM) [...] a conventional and fast voltage-based model that
relies on input signal slope and output capacitive loads.  The delay
information is obtained from the SPICE simulation and formatted into a
look-up table (LUT) format."

This subpackage is the repro stand-in for Synopsys SiliconSmart: it drives
:mod:`repro.spice` transients over a slew x load grid for every timing arc
of every cell, measures propagation delay and output transition, and packs
the results into Liberty-style lookup tables
(:class:`repro.characterization.nldm.NldmTable`).  Characterised libraries
serialise to JSON and are disk-cached because a full library build runs
hundreds of transistor-level transients.
"""

from repro.characterization.nldm import NldmTable
from repro.characterization.library import (
    TimingArc,
    CellTiming,
    SequentialTiming,
    Library,
)
from repro.characterization.harness import (
    CharacterizationGrid,
    characterize_cell,
    characterize_dff,
    characterize_library,
)
from repro.characterization.organic import organic_library
from repro.characterization.silicon45 import silicon_library

__all__ = [
    "NldmTable",
    "TimingArc",
    "CellTiming",
    "SequentialTiming",
    "Library",
    "CharacterizationGrid",
    "characterize_cell",
    "characterize_dff",
    "characterize_library",
    "organic_library",
    "silicon_library",
]
