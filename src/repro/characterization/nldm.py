"""Non-linear delay model lookup tables.

An :class:`NldmTable` is the Liberty ``lu_table``: values indexed by input
transition time (rows) and output load capacitance (columns), with bilinear
interpolation inside the characterised window and linear extrapolation
outside it (the same behaviour commercial STA engines implement).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LibraryError


@dataclass(frozen=True)
class NldmTable:
    """A 2-D lookup table over (input slew, output load)."""

    slews: np.ndarray      # ascending, seconds
    loads: np.ndarray      # ascending, farads
    values: np.ndarray     # shape (len(slews), len(loads))

    def __post_init__(self) -> None:
        slews = np.asarray(self.slews, dtype=float)
        loads = np.asarray(self.loads, dtype=float)
        values = np.asarray(self.values, dtype=float)
        object.__setattr__(self, "slews", slews)
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "values", values)
        if slews.ndim != 1 or loads.ndim != 1:
            raise LibraryError("NLDM index arrays must be 1-D")
        if values.shape != (len(slews), len(loads)):
            raise LibraryError(
                f"NLDM table shape {values.shape} does not match index sizes "
                f"({len(slews)}, {len(loads)})")
        if len(slews) < 2 or len(loads) < 2:
            raise LibraryError("NLDM tables need at least a 2x2 grid")
        if np.any(np.diff(slews) <= 0) or np.any(np.diff(loads) <= 0):
            raise LibraryError("NLDM index arrays must be strictly increasing")
        if not np.all(np.isfinite(values)):
            raise LibraryError("NLDM table contains non-finite values")

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with linear edge extrapolation."""
        i = _segment(self.slews, slew)
        j = _segment(self.loads, load)
        s0, s1 = self.slews[i], self.slews[i + 1]
        l0, l1 = self.loads[j], self.loads[j + 1]
        ts = (slew - s0) / (s1 - s0)
        tl = (load - l0) / (l1 - l0)
        v00 = self.values[i, j]
        v01 = self.values[i, j + 1]
        v10 = self.values[i + 1, j]
        v11 = self.values[i + 1, j + 1]
        return float((1 - ts) * (1 - tl) * v00 + (1 - ts) * tl * v01
                     + ts * (1 - tl) * v10 + ts * tl * v11)

    def scaled(self, factor: float) -> "NldmTable":
        """A copy with all values multiplied by *factor* (ablations)."""
        return NldmTable(self.slews.copy(), self.loads.copy(),
                         self.values * factor)

    def to_dict(self) -> dict:
        return {
            "slews": self.slews.tolist(),
            "loads": self.loads.tolist(),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NldmTable":
        return cls(np.asarray(data["slews"]), np.asarray(data["loads"]),
                   np.asarray(data["values"]))


def _segment(axis: np.ndarray, x: float) -> int:
    """Index of the interpolation segment for *x* (clamped for edges)."""
    i = int(np.searchsorted(axis, x) - 1)
    return min(max(i, 0), len(axis) - 2)
